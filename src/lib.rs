//! Umbrella crate of the **Viracocha** workspace — a Rust reproduction of
//! "VIRACOCHA: An Efficient Parallelization Framework for Large-Scale CFD
//! Post-Processing in Virtual Environments" (SC 2004).
//!
//! This crate only hosts the cross-crate integration tests (`tests/`) and
//! the runnable examples (`examples/`); all functionality lives in the
//! member crates:
//!
//! | crate | role |
//! |---|---|
//! | [`vira_grid`] | multi-block curvilinear grids, synthetic datasets, on-disk format |
//! | [`vira_storage`] | storage devices, time-dilation cost model, compression study |
//! | [`vira_comm`] | layer-1 transport: rank world, collectives, client link |
//! | [`vira_dms`] | data management: caches, policies, prefetchers, proxies, server |
//! | [`vira_extract`] | isosurfaces, λ₂, BSP, pathlines/streaklines, welding, export |
//! | [`vira_vista`] | client protocol, ViSTA FlowLib stand-in, session logs |
//! | [`viracocha`] | scheduler, workers, commands, runtime assembly |
//!
//! ```
//! use std::sync::Arc;
//! use viracocha::{Viracocha, ViracochaConfig};
//! use vira_storage::source::SynthSource;
//! use vira_vista::{CommandParams, SubmitSpec, VistaClient};
//!
//! let (backend, link) = Viracocha::launch(ViracochaConfig::for_tests(2));
//! backend.register_dataset(
//!     Arc::new(SynthSource::new(Arc::new(vira_grid::synth::test_cube(8, 2)))),
//!     false,
//! );
//! let mut client = VistaClient::new(link);
//! let out = client
//!     .run(&SubmitSpec {
//!         command: "ViewerIso".into(),
//!         dataset: "TestCube".into(),
//!         params: CommandParams::new()
//!             .set("iso", 0.15)
//!             .set_vec3("viewpoint", [3.0, 0.0, 0.0]),
//!         workers: 2,
//!     })
//!     .unwrap();
//! assert!(out.triangles.n_triangles() > 0);
//! client.shutdown().unwrap();
//! backend.join();
//! ```

pub use vira_comm;
pub use vira_dms;
pub use vira_extract;
pub use vira_grid;
pub use vira_storage;
pub use vira_vista;
pub use viracocha;
