//! Streaklines through the Propfan's blade wakes (the paper's §9
//! particle-trace extension), exported as legacy VTK for ParaView.
//!
//! A streakline is what smoke released continuously from a fixed point
//! traces out — for rotating blade rows it winds into the characteristic
//! wake spirals.
//!
//! ```text
//! cargo run --release --example streaklines_blades
//! ```

use std::sync::Arc;
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

fn main() {
    let (backend, link) = Viracocha::launch(ViracochaConfig::for_tests(4));
    let propfan = Arc::new(vira_grid::synth::propfan(5));
    let source = Arc::new(CachedSynthSource::new(propfan));
    backend.register_dataset(source, false);
    let mut client = VistaClient::new(link);

    println!("releasing tracer particles into the Propfan duct (two counter-rotating rows)\n");
    let out = client
        .run(&SubmitSpec {
            command: "Streaklines".into(),
            dataset: "Propfan".into(),
            params: CommandParams::new()
                .set("n_seeds", 10)
                .set("rngseed", 17)
                .set("releases", 24),
            workers: 4,
        })
        .expect("streakline job failed");

    println!("{:>6} {:>8} {:>12} {:>12}", "seed", "points", "arc len [m]", "span z [m]");
    for (i, line) in out.polylines.iter().enumerate() {
        let (zmin, zmax) = line
            .points
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p[2]), hi.max(p[2]))
            });
        println!(
            "{:>6} {:>8} {:>12.4} {:>12.4}",
            i,
            line.len(),
            line.arc_length(),
            zmax - zmin
        );
    }
    println!(
        "\n{} streaklines, {} total points, job took {:.2} modeled s",
        out.polylines.len(),
        out.polylines.iter().map(|l| l.len()).sum::<usize>(),
        out.report.total_runtime_s
    );

    // Export for ParaView.
    let path = std::env::temp_dir().join("propfan_streaklines.vtk");
    let write = std::fs::File::create(&path).and_then(|f| {
        let mut w = std::io::BufWriter::new(f);
        vira_extract::export::write_vtk_polylines(&out.polylines, "propfan streaklines", &mut w)
    });
    match write {
        Ok(()) => println!("exported to {} (open in ParaView)", path.display()),
        Err(e) => eprintln!("export failed: {e}"),
    }

    client.shutdown().expect("shutdown");
    backend.join();
}
