//! Layer-3 extensibility (paper §3): "this design allows the reuse of
//! the Viracocha framework for purposes different from CFD
//! post-processing by simply exchanging this topmost layer."
//!
//! This example registers a custom **cut-plane** command — a classic
//! visualization filter the built-in registry does not ship — without
//! touching the scheduler, workers, DMS or transport.
//!
//! ```text
//! cargo run --example custom_command
//! ```

use std::sync::Arc;
use vira_extract::iso::extract_isosurface;
use vira_grid::field::ScalarField;
use vira_storage::source::SynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::command::{Command, CommandError, CommandOutput, JobCtx};
use viracocha::{default_registry, Viracocha, ViracochaConfig};

/// Extracts the cut plane `z = z0` through every block of one time step:
/// the iso-contour of the z-coordinate field, triangulated by the same
/// marching-tetrahedra kernel the isosurface commands use.
struct CutPlane;

impl Command for CutPlane {
    fn name(&self) -> &'static str {
        "CutPlane"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        let z0 = ctx
            .params
            .get_f64("z")
            .ok_or_else(|| CommandError::BadParams("missing parameter 'z'".into()))?;
        let step = ctx.params.get_usize("step").unwrap_or(0) as u32;
        let order: Vec<_> = (0..ctx.spec.n_blocks).collect();
        let mut out = CommandOutput::default();
        for id in ctx.my_blocks(step, &order) {
            let data = ctx.load_block(id)?;
            // Scalar field = z coordinate; its iso-contour at z0 is the
            // cut plane restricted to this block.
            let field = ScalarField::new(
                data.dims(),
                data.grid.points.iter().map(|p| p.z).collect(),
            );
            let (soup, _) = extract_isosurface(&data.grid, &field, z0);
            out.triangles.extend_from(&soup);
        }
        Ok(out)
    }
}

fn main() {
    // Exchange the topmost layer: built-ins plus the custom filter.
    let mut registry = default_registry();
    registry.register(Arc::new(CutPlane));

    let (backend, link) =
        Viracocha::launch_with_registry(ViracochaConfig::for_tests(2), registry);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(vira_grid::synth::engine(6)))),
        false,
    );
    let mut client = VistaClient::new(link);

    println!("custom CutPlane command through the mid-height of the Engine cylinder:");
    let out = client
        .run(&SubmitSpec {
            command: "CutPlane".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("z", 0.05).set("step", 0),
            workers: 2,
        })
        .expect("cut plane failed");
    let bbox = out.triangles.bbox();
    println!("  triangles : {}", out.triangles.n_triangles());
    println!(
        "  plane bbox: z ∈ [{:.4}, {:.4}] (expect ≈ 0.05 on both ends)",
        bbox.min.z, bbox.max.z
    );
    println!("  area      : {:.6} m² (full annulus ≈ {:.6})",
        out.triangles.area(),
        std::f64::consts::PI * (0.05f64.powi(2) - (0.15 * 0.05f64).powi(2))
    );

    client.shutdown().expect("shutdown");
    backend.join();
}
