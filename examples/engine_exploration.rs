//! Explorative analysis of the Engine dataset — the paper's §1.1 usage
//! pattern: "the user continuously defines parameter values to extract
//! features, which are thereafter often rejected because of unsatisfying
//! results. Then, the parameters are modified for a renewed computation."
//!
//! The data management system is what makes this loop interactive: the
//! first extraction pays for loading, every parameter tweak afterwards is
//! served from the cache.
//!
//! ```text
//! cargo run --release --example engine_exploration
//! ```

use std::sync::Arc;
use vira_dms::proxy::ProxyConfig;
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, SessionLog, SessionRecord, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

fn main() {
    let dilation = 0.002; // modeled seconds sleep 2 ms each: quick demo
    let config = ViracochaConfig {
        n_workers: 4,
        dilation,
        proxy: ProxyConfig {
            prefetcher: "obl".into(),
            ..ProxyConfig::default()
        },
        ..ViracochaConfig::default()
    };
    let (backend, link) = Viracocha::launch(config);
    let engine = Arc::new(vira_grid::synth::engine(7));
    backend.register_dataset(Arc::new(CachedSynthSource::new(engine)), false);
    let mut client = VistaClient::new(link);

    let mut session = SessionLog::new();
    println!("exploring the Engine intake flow (23 blocks, trial-and-error isosurfaces)\n");
    println!("{:>6} {:>12} {:>12} {:>8} {:>8} {:>10}", "iso", "triangles", "runtime[s]", "hits", "misses", "read[s]");

    // The user sweeps the iso level looking for the intake jet: each
    // attempt is a full parallel extraction over 8 time steps.
    for iso in [22.0, 18.0, 15.0, 12.0, 9.0, 6.0] {
        let params = CommandParams::new().set("iso", iso).set("n_steps", 8);
        let out = client
            .run(&SubmitSpec {
                command: "IsoDataMan".into(),
                dataset: "Engine".into(),
                params: params.clone(),
                workers: 4,
            })
            .expect("extraction failed");
        session.push(SessionRecord::from_outcome("IsoDataMan", "Engine", &params, 4, &out));
        println!(
            "{:>6.1} {:>12} {:>12.2} {:>8} {:>8} {:>10.3}",
            iso,
            out.triangles.n_triangles(),
            out.report.total_runtime_s,
            out.report.cache_hits,
            out.report.cache_misses,
            out.report.read_s
        );
    }

    println!("\nnow the λ₂ vortex criterion on the cached data (\"a value about zero\"):");
    for threshold in [-1.0e5, -2.0e4, -5.0e3] {
        let out = client
            .run(&SubmitSpec {
                command: "VortexDataMan".into(),
                dataset: "Engine".into(),
                params: CommandParams::new()
                    .set("threshold", threshold)
                    .set("n_steps", 8),
                workers: 4,
            })
            .expect("vortex extraction failed");
        println!(
            "  λ₂ = {:>9.0}: {:>8} triangles in {:>6.2} modeled s ({} cache hits)",
            threshold,
            out.triangles.n_triangles(),
            out.report.total_runtime_s,
            out.report.cache_hits
        );
    }

    let summary = session.summary();
    println!(
        "\nsession: {} jobs, {:.1} modeled s total, cache hit rate {:.0} %",
        summary.jobs,
        summary.total_modeled_s,
        summary.cache_hit_rate * 100.0
    );
    let log_path = std::env::temp_dir().join("viracocha_session.json");
    if session.save(&log_path).is_ok() {
        println!("session log saved to {}", log_path.display());
    }

    client.shutdown().expect("shutdown");
    backend.join();
}
