//! Streamed λ₂ vortex extraction on the Propfan — the paper's Figure 5
//! scenario: coarse fragments of the blade-tip vortex system arrive in
//! the "virtual environment" (here: the terminal) long before the full
//! extraction finishes.
//!
//! ```text
//! cargo run --release --example propfan_streaming
//! ```

use std::sync::Arc;
use vira_dms::proxy::ProxyConfig;
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

fn main() {
    let dilation = 0.005;
    let config = ViracochaConfig {
        n_workers: 4,
        dilation,
        proxy: ProxyConfig {
            prefetcher: "obl".into(),
            ..ProxyConfig::default()
        },
        ..ViracochaConfig::default()
    };
    let (backend, link) = Viracocha::launch(config);
    let propfan = Arc::new(vira_grid::synth::propfan(4));
    let source = Arc::new(CachedSynthSource::new(propfan));
    source.prewarm();
    backend.register_dataset(source, false);
    let mut client = VistaClient::new(link);

    println!("streaming λ₂ vortex boundaries of the Propfan (144 blocks, 4 workers)\n");
    let job = client
        .submit(&SubmitSpec {
            command: "StreamedVortex".into(),
            dataset: "Propfan".into(),
            params: CommandParams::new()
                .set("threshold", -120.0)
                .set("n_steps", 2)
                .set("batch", 400),
            workers: 4,
        })
        .expect("submit failed");
    let outcome = client.collect(job).expect("job failed");

    println!("{:>10} {:>8} {:>10} {:>12}", "t[mod s]", "worker", "packet", "cum. tris");
    for p in outcome.packets.iter().take(12) {
        println!(
            "{:>10.2} {:>8} {:>10} {:>12}",
            p.elapsed.as_secs_f64() / dilation,
            p.from_worker,
            p.seq,
            p.cumulative_items
        );
    }
    if outcome.packets.len() > 12 {
        println!("       ... {} more packets ...", outcome.packets.len() - 12);
    }
    println!(
        "\nfirst fragment after {:.2} modeled s; job finished after {:.2} modeled s",
        outcome
            .first_result_wall
            .map(|d| d.as_secs_f64() / dilation)
            .unwrap_or(f64::NAN),
        outcome.report.total_runtime_s
    );
    println!(
        "total: {} triangles across {} packets",
        outcome.triangles.n_triangles(),
        outcome.packets.len()
    );

    client.shutdown().expect("shutdown");
    backend.join();
}
