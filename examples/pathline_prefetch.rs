//! Pathline tracing with the Markov prefetcher — the paper's Figure 14
//! setup: time-dependent particle traces produce non-uniform block
//! requests that naive sequential prefetchers cannot predict, but a
//! first-order Markov prefetcher learns them.
//!
//! ```text
//! cargo run --release --example pathline_prefetch
//! ```

use std::sync::Arc;
use vira_dms::proxy::ProxyConfig;
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

fn run_pathlines(client: &mut VistaClient) -> vira_vista::JobOutcome {
    client
        .run(&SubmitSpec {
            command: "PathlinesDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("n_seeds", 8).set("rngseed", 42),
            workers: 2,
        })
        .expect("pathline job failed")
}

fn main() {
    let config = ViracochaConfig {
        n_workers: 2,
        dilation: 0.02,
        proxy: ProxyConfig {
            prefetcher: "markov".into(),
            ..ProxyConfig::default()
        },
        ..ViracochaConfig::default()
    };
    let (backend, link) = Viracocha::launch(config);
    let engine = Arc::new(vira_grid::synth::engine(6));
    let source = Arc::new(CachedSynthSource::new(engine));
    source.prewarm();
    backend.register_dataset(source, false);
    let mut client = VistaClient::new(link);

    println!("tracing 8 pathlines through the unsteady Engine intake flow\n");

    // Learning phase: the Markov prefetcher observes which block follows
    // which along the traces.
    let learning = run_pathlines(&mut client);
    println!(
        "learning run : {:.2} modeled s, {} misses, {} prefetches issued",
        learning.report.total_runtime_s,
        learning.report.cache_misses,
        learning.report.prefetch_issued
    );

    // Cold cache, learned transitions kept.
    client
        .run(&SubmitSpec {
            command: "ClearCache".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("reset_prefetcher", "false"),
            workers: 2,
        })
        .expect("cache clear failed");

    // Measured run: the prefetcher now predicts each trace's next block
    // and overlaps its load with the numerical integration.
    let measured = run_pathlines(&mut client);
    println!(
        "prefetch run : {:.2} modeled s, {} misses, {} prefetches issued, {} prefetch hits",
        measured.report.total_runtime_s,
        measured.report.cache_misses,
        measured.report.prefetch_issued,
        measured.report.prefetch_hits
    );
    if learning.report.cache_misses > 0 {
        println!(
            "\nmisses eliminated: {:.0} %  (paper: up to 95 %)",
            100.0 * (1.0 - measured.report.cache_misses as f64 / learning.report.cache_misses as f64)
        );
    }
    println!("polylines traced: {}", measured.polylines.len());
    for (i, line) in measured.polylines.iter().enumerate().take(4) {
        println!(
            "  trace {i}: {} points, arc length {:.4} m",
            line.len(),
            line.arc_length()
        );
    }

    client.shutdown().expect("shutdown");
    backend.join();
}
