//! Quickstart: launch a Viracocha back-end, register a small synthetic
//! dataset, extract an isosurface in parallel, and read the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use vira_storage::source::SynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

fn main() {
    // A back-end with 4 workers. Dilation 0 = no modeled-time sleeps:
    // instant for interactive use; benchmarks set it > 0.
    let (backend, link) = Viracocha::launch(ViracochaConfig::for_tests(4));

    // The test dataset: a single block around a Lamb–Oseen vortex.
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(vira_grid::synth::test_cube(16, 4)))),
        false,
    );

    // The visualization-client stand-in submits commands and assembles
    // (streamed) geometry.
    let mut client = VistaClient::new(link);
    let outcome = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new().set("iso", 0.15).set("n_steps", 1),
            workers: 4,
        })
        .expect("job failed");

    println!("isosurface |u| = 0.15 of the test vortex:");
    println!("  triangles       : {}", outcome.triangles.n_triangles());
    println!("  bounding box    : {:?}", outcome.triangles.bbox());
    println!("  modeled runtime : {:.3} s", outcome.report.total_runtime_s);
    println!(
        "  cache           : {} hits / {} misses",
        outcome.report.cache_hits, outcome.report.cache_misses
    );

    // Second run: the data management system serves everything from its
    // caches.
    let warm = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new().set("iso", 0.15).set("n_steps", 1),
            workers: 4,
        })
        .expect("job failed");
    println!(
        "warm rerun      : {} hits / {} misses (read time {:.4} s vs {:.4} s)",
        warm.report.cache_hits,
        warm.report.cache_misses,
        warm.report.read_s,
        outcome.report.read_s
    );

    client.shutdown().expect("shutdown");
    backend.join();
}
