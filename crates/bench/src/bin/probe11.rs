//! Diagnostic probe for the Fig. 11 OBL-prefetch pipeline.
use vira_bench::{runner::{proxy_with_prefetcher, Dataset, Harness}, BenchConfig};

fn main() {
    let mut cfg = BenchConfig::quick();
    cfg.engine_steps = 16;
    for pf in ["none", "obl"] {
        let mut h = Harness::launch(Dataset::Engine, &cfg, 1, proxy_with_prefetcher(pf));
        let r = h.run("VortexDataMan", &cfg, 1);
        h.finish();
        vira_obs::info(
            "probe11",
            &format!("prefetcher '{pf}'"),
            &[
                ("total_s", r.total_s.into()),
                ("read_s", r.report.read_s.into()),
                ("compute_s", r.report.compute_s.into()),
                ("misses", r.report.cache_misses.into()),
                ("hits", r.report.cache_hits.into()),
                ("pf_issued", r.report.prefetch_issued.into()),
                ("pf_hits", r.report.prefetch_hits.into()),
            ],
        );
    }
}
