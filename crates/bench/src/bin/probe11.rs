//! Diagnostic probe for the Fig. 11 OBL-prefetch pipeline.
use vira_bench::{runner::{proxy_with_prefetcher, Dataset, Harness}, BenchConfig};

fn main() {
    let mut cfg = BenchConfig::quick();
    cfg.engine_steps = 16;
    for pf in ["none", "obl"] {
        let mut h = Harness::launch(Dataset::Engine, &cfg, 1, proxy_with_prefetcher(pf));
        let r = h.run("VortexDataMan", &cfg, 1);
        h.finish();
        eprintln!("{pf:>5}: total {:.2} read {:.2} compute {:.2} misses {} hits {} pf_issued {} pf_hits {}",
            r.total_s, r.report.read_s, r.report.compute_s,
            r.report.cache_misses, r.report.cache_hits,
            r.report.prefetch_issued, r.report.prefetch_hits);
    }
}
