//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p vira-bench --release --bin repro              # everything
//! cargo run -p vira-bench --release --bin repro -- fig06     # one id
//! VIRA_QUICK=1 cargo run -p vira-bench --bin repro           # smoke run
//! ```
//!
//! JSON records land in `results/`; markdown tables go to stdout.

use vira_bench::{run_ids, write_json, BenchConfig};

fn main() {
    let ids: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::default();
    eprintln!(
        "[repro] config: engine res {} / {} steps, propfan res {} / {} steps, sweep {:?}",
        cfg.engine_res, cfg.engine_steps, cfg.propfan_res, cfg.propfan_steps, cfg.worker_sweep
    );
    let results = run_ids(&ids, &cfg);
    let out = std::path::Path::new("results");
    match write_json(&results, out) {
        Ok(()) => eprintln!("[repro] wrote {} JSON records to {}", results.len(), out.display()),
        Err(e) => eprintln!("[repro] could not write results: {e}"),
    }
}
