//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p vira-bench --release --bin repro              # everything
//! cargo run -p vira-bench --release --bin repro -- fig06     # one id
//! VIRA_QUICK=1 cargo run -p vira-bench --bin repro           # smoke run
//! cargo run -p vira-bench --release --bin repro -- --trace-out traces fig06
//! ```
//!
//! JSON records land in `results/`; markdown tables go to stdout. With
//! `--trace-out <dir>`, each experiment additionally writes its Chrome
//! trace, JSONL event log and metrics dump under `<dir>/<id>/`.

use std::path::PathBuf;
use vira_bench::{run_ids_traced, write_json, BenchConfig};

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            match args.next() {
                Some(dir) => trace_out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("usage: repro [--trace-out <dir>] [ids…]");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(a);
        }
    }
    let cfg = BenchConfig::default();
    vira_obs::info(
        "repro",
        &format!(
            "config: engine res {} / {} steps, propfan res {} / {} steps, sweep {:?}",
            cfg.engine_res, cfg.engine_steps, cfg.propfan_res, cfg.propfan_steps, cfg.worker_sweep
        ),
        &[],
    );
    let results = run_ids_traced(&ids, &cfg, trace_out.as_deref());
    let out = std::path::Path::new("results");
    match write_json(&results, out) {
        Ok(()) => vira_obs::info(
            "repro",
            &format!("wrote {} JSON records to {}", results.len(), out.display()),
            &[],
        ),
        Err(e) => vira_obs::error("repro", &format!("could not write results: {e}"), &[]),
    }
}
