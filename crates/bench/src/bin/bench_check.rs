//! Gate fresh micro-benchmark readings against the checked-in manifest.
//!
//! ```text
//! cargo run -p vira-bench --bin bench_check -- fresh.json
//! cargo run -p vira-bench --bin bench_check -- fresh.json --merge
//! cargo run -p vira-bench --bin bench_check -- fresh.json --tolerance 35
//! ```
//!
//! `fresh.json` is the `[{"name", "measured_ns"}, ...]` array emitted by
//! `tools/standalone/run.sh bench` (or assembled from Criterion output).
//! The tool exits non-zero when any bench regressed past the tolerance
//! (default 20%) against `results/BENCH_micro.json`, or went
//! null-after-measured — the two failure modes `merge_measurements`
//! would otherwise absorb silently. With `--merge`, passing readings are
//! folded back into the manifest (statuses re-derived), keeping the
//! checked-in numbers current.

use std::path::PathBuf;
use std::process::exit;

use vira_bench::micro_manifest::{
    check_regressions, merge_measurements, parse_fresh, DEFAULT_TOLERANCE,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench_check <fresh.json> [--manifest <path>] [--merge] [--tolerance <percent>]"
    );
    exit(2);
}

fn main() {
    let mut fresh_path: Option<PathBuf> = None;
    let mut manifest_path = PathBuf::from("crates/bench/results/BENCH_micro.json");
    let mut merge = false;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--merge" => merge = true,
            "--manifest" => match args.next() {
                Some(p) => manifest_path = PathBuf::from(p),
                None => usage(),
            },
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => tolerance = pct / 100.0,
                _ => usage(),
            },
            _ if fresh_path.is_none() && !a.starts_with('-') => {
                fresh_path = Some(PathBuf::from(a));
            }
            _ => usage(),
        }
    }
    let Some(fresh_path) = fresh_path else { usage() };

    // Fall back to the manifest relative to the crate when invoked from
    // the crate directory rather than the workspace root.
    if !manifest_path.exists() {
        let local = PathBuf::from("results/BENCH_micro.json");
        if local.exists() {
            manifest_path = local;
        }
    }

    let fresh_text = std::fs::read_to_string(&fresh_path)
        .unwrap_or_else(|e| fatal(&format!("reading {}: {e}", fresh_path.display())));
    let fresh_value: serde_json::Value = serde_json::from_str(&fresh_text)
        .unwrap_or_else(|e| fatal(&format!("parsing {}: {e}", fresh_path.display())));
    let fresh = parse_fresh(&fresh_value).unwrap_or_else(|| {
        fatal(&format!(
            "{} is not a [{{\"name\", \"measured_ns\"}}] array",
            fresh_path.display()
        ))
    });

    let manifest_text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| fatal(&format!("reading {}: {e}", manifest_path.display())));
    let mut manifest: serde_json::Value = serde_json::from_str(&manifest_text)
        .unwrap_or_else(|e| fatal(&format!("parsing {}: {e}", manifest_path.display())));

    let regressions = check_regressions(&manifest, &fresh, tolerance);
    for r in &regressions {
        eprintln!("REGRESSION {}: {}", r.name, r.detail);
    }

    if regressions.is_empty() && merge {
        let out = merge_measurements(&mut manifest, &fresh);
        let pretty =
            serde_json::to_string_pretty(&manifest).expect("manifest serializes");
        std::fs::write(&manifest_path, pretty + "\n")
            .unwrap_or_else(|e| fatal(&format!("writing {}: {e}", manifest_path.display())));
        eprintln!(
            "merged into {}: {} updated, {} kept, {} added",
            manifest_path.display(),
            out.updated,
            out.kept,
            out.added
        );
    }

    if regressions.is_empty() {
        eprintln!("bench_check: {} readings OK", fresh.len());
    } else {
        eprintln!("bench_check: {} regression(s)", regressions.len());
        exit(1);
    }
}

fn fatal(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    exit(2);
}
