//! # vira-bench
//!
//! The experiment harness of the Viracocha reproduction: regenerates
//! every table and figure of the paper's evaluation (§6–§7) plus the
//! ablations DESIGN.md calls out, reporting modeled seconds produced by
//! the time-dilation cost model.
//!
//! Entry points:
//!
//! * `cargo run -p vira-bench --release --bin repro [-- ids…]` — runs
//!   experiments (default: all), prints markdown tables and writes JSON
//!   records under `results/`.
//! * `cargo bench` — runs the same experiments as `harness = false`
//!   bench targets, plus Criterion micro-benchmarks of the extraction
//!   kernels.
//!
//! `VIRA_QUICK=1` switches to a scaled-down smoke configuration.

pub mod config;
pub mod experiments;
pub mod result;
pub mod runner;

pub use config::BenchConfig;
pub use result::{ExperimentResult, Row};
pub use runner::{Dataset, Harness, RunRecord};

use std::path::Path;

/// Timing-sensitive tests (anything that interprets dilated sleeps) must
/// not run concurrently with each other — parallel test threads distort
/// each other's wall-clock measurements on small hosts. Tests grab this
/// process-wide lock.
#[doc(hidden)]
pub fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Runs a set of experiment ids (or all when empty), printing each
/// result and collecting them.
pub fn run_ids(ids: &[String], cfg: &BenchConfig) -> Vec<ExperimentResult> {
    let selected: Vec<String> = if ids.is_empty() {
        experiments::all_ids().iter().map(|s| s.to_string()).collect()
    } else {
        ids.to_vec()
    };
    let mut all = Vec::new();
    for id in &selected {
        let t0 = std::time::Instant::now();
        match experiments::run_experiment(id, cfg) {
            Some(results) => {
                eprintln!(
                    "[repro] {id} finished in {:.1}s wall",
                    t0.elapsed().as_secs_f64()
                );
                for r in results {
                    println!("{}", r.to_markdown());
                    all.push(r);
                }
            }
            None => eprintln!(
                "[repro] unknown experiment id '{id}' (known: {:?})",
                experiments::all_ids()
            ),
        }
    }
    all
}

/// Writes experiment results as JSON files under `dir`.
pub fn write_json(results: &[ExperimentResult], dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for r in results {
        let path = dir.join(format!("{}.json", r.id));
        std::fs::write(path, serde_json::to_string_pretty(r).expect("serializable"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_reported_not_fatal() {
        let cfg = BenchConfig::quick();
        let out = run_ids(&["does-not-exist".into()], &cfg);
        assert!(out.is_empty());
    }
}
