//! # vira-bench
//!
//! The experiment harness of the Viracocha reproduction: regenerates
//! every table and figure of the paper's evaluation (§6–§7) plus the
//! ablations DESIGN.md calls out, reporting modeled seconds produced by
//! the time-dilation cost model.
//!
//! Entry points:
//!
//! * `cargo run -p vira-bench --release --bin repro [-- ids…]` — runs
//!   experiments (default: all), prints markdown tables and writes JSON
//!   records under `results/`.
//! * `cargo bench` — runs the same experiments as `harness = false`
//!   bench targets, plus Criterion micro-benchmarks of the extraction
//!   kernels.
//!
//! `VIRA_QUICK=1` switches to a scaled-down smoke configuration.

pub mod config;
pub mod experiments;
pub mod micro_manifest;
pub mod result;
pub mod runner;

pub use config::BenchConfig;
pub use result::{ExperimentResult, Row};
pub use runner::{Dataset, Harness, RunRecord};

use std::path::Path;

/// Timing-sensitive tests (anything that interprets dilated sleeps) must
/// not run concurrently with each other — parallel test threads distort
/// each other's wall-clock measurements on small hosts. Tests grab this
/// process-wide lock.
#[doc(hidden)]
pub fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Runs a set of experiment ids (or all when empty), printing each
/// result and collecting them.
pub fn run_ids(ids: &[String], cfg: &BenchConfig) -> Vec<ExperimentResult> {
    run_ids_traced(ids, cfg, None)
}

/// Like [`run_ids`], but when `trace_out` is set the observability layer
/// is enabled and each experiment's spans, events and metric *deltas*
/// are exported under `trace_out/<id>/` (Chrome trace + JSONL + metrics
/// dump, each schema-checked before writing).
pub fn run_ids_traced(
    ids: &[String],
    cfg: &BenchConfig,
    trace_out: Option<&Path>,
) -> Vec<ExperimentResult> {
    let selected: Vec<String> = if ids.is_empty() {
        experiments::all_ids().iter().map(|s| s.to_string()).collect()
    } else {
        ids.to_vec()
    };
    if trace_out.is_some() {
        vira_obs::set_enabled(true);
        // Discard anything recorded before the first experiment.
        let _ = vira_obs::trace::drain();
        let _ = vira_obs::drain_events();
    }
    let mut metrics_before = vira_obs::metrics::snapshot();
    let mut all = Vec::new();
    for id in &selected {
        let t0 = std::time::Instant::now();
        match experiments::run_experiment(id, cfg) {
            Some(results) => {
                vira_obs::info(
                    "repro",
                    &format!("{id} finished"),
                    &[("wall_s", t0.elapsed().as_secs_f64().into())],
                );
                for r in results {
                    println!("{}", r.to_markdown());
                    all.push(r);
                }
            }
            None => vira_obs::warn(
                "repro",
                &format!(
                    "unknown experiment id '{id}' (known: {:?})",
                    experiments::all_ids()
                ),
                &[],
            ),
        }
        if let Some(dir) = trace_out {
            let metrics_now = vira_obs::metrics::snapshot();
            let delta = metrics_now.delta(&metrics_before);
            metrics_before = metrics_now;
            let dump = vira_obs::trace::drain();
            let (events, dropped_events) = vira_obs::drain_events();
            match vira_obs::export::write_artifacts(
                &dir.join(id),
                &dump,
                &events,
                dropped_events,
                &delta,
            ) {
                Ok(s) => vira_obs::info(
                    "repro",
                    &format!("trace artifacts for {id} written to {}", dir.join(id).display()),
                    &[
                        ("spans", (s.spans as u64).into()),
                        ("events", (s.events as u64).into()),
                        ("dropped_spans", s.dropped_spans.into()),
                    ],
                ),
                Err(e) => vira_obs::error(
                    "repro",
                    &format!("trace export for {id} failed: {e}"),
                    &[],
                ),
            }
        }
    }
    all
}

/// Writes experiment results as JSON files under `dir`.
pub fn write_json(results: &[ExperimentResult], dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for r in results {
        let path = dir.join(format!("{}.json", r.id));
        std::fs::write(path, serde_json::to_string_pretty(r).expect("serializable"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_reported_not_fatal() {
        let cfg = BenchConfig::quick();
        let out = run_ids(&["does-not-exist".into()], &cfg);
        assert!(out.is_empty());
    }
}
