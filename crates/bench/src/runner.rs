//! The measurement harness: launches back-ends, runs commands, converts
//! wall measurements back into modeled time.
//!
//! Methodology mirrors the paper (§7): times are taken from the
//! post-processing server (the scheduler's accept→done window), DMS
//! commands are measured on a warm cache by issuing one call of the
//! command at hand in advance, and cold-cache experiments start from a
//! freshly cleared proxy.

use crate::config::BenchConfig;
use std::sync::Arc;
use vira_dms::proxy::ProxyConfig;
use vira_dms::server::ServerConfig;
use vira_grid::synth::{self, SyntheticDataset};
use vira_storage::costmodel::ComputeCosts;
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, JobReport, PacketRecord, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

/// Which stand-in dataset a harness serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    Engine,
    Propfan,
}

impl Dataset {
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Engine => "Engine",
            Dataset::Propfan => "Propfan",
        }
    }

    pub fn build(self, cfg: &BenchConfig) -> Arc<SyntheticDataset> {
        match self {
            Dataset::Engine => Arc::new(synth::engine(cfg.engine_res)),
            Dataset::Propfan => Arc::new(synth::propfan(cfg.propfan_res)),
        }
    }

    pub fn dilation(self, cfg: &BenchConfig) -> f64 {
        match self {
            Dataset::Engine => cfg.dilation_engine,
            Dataset::Propfan => cfg.dilation_propfan,
        }
    }

    /// Steps processed per run.
    pub fn steps(self, cfg: &BenchConfig) -> usize {
        match self {
            Dataset::Engine => cfg.engine_steps,
            Dataset::Propfan => cfg.propfan_steps,
        }
    }

    /// A viewpoint outside the dataset, for `ViewerIso`.
    pub fn viewpoint(self) -> [f64; 3] {
        match self {
            Dataset::Engine => [0.15, 0.0, 0.05],
            Dataset::Propfan => [1.5, 0.0, 0.6],
        }
    }

    /// An iso level that cuts through the dataset's speed range.
    pub fn iso_value(self) -> f64 {
        match self {
            Dataset::Engine => 15.0,
            Dataset::Propfan => 27.0,
        }
    }

    /// A λ₂ threshold slightly below zero ("in practice a value about
    /// zero is used", §1.1).
    pub fn lambda2_threshold(self) -> f64 {
        match self {
            Dataset::Engine => -2.0e4,
            Dataset::Propfan => -120.0,
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Modeled total runtime (scheduler accept → final merge).
    pub total_s: f64,
    /// Modeled time until the first streamed geometry arrived (equals
    /// `total_s` for non-streamed commands, per the paper's definition).
    pub latency_s: f64,
    pub report: JobReport,
    /// Streamed packet arrivals converted to modeled seconds:
    /// `(t_modeled, cumulative items)`.
    pub packet_series: Vec<(f64, u64)>,
    pub triangles: usize,
    pub polylines: usize,
}

/// A launched back-end + client pair bound to one dataset.
pub struct Harness {
    backend: Option<Viracocha>,
    pub client: VistaClient,
    pub dataset: Dataset,
    pub dilation: f64,
    n_workers: usize,
}

impl Harness {
    /// Launches a back-end serving `dataset` with `n_workers` workers.
    pub fn launch(dataset: Dataset, cfg: &BenchConfig, n_workers: usize, proxy: ProxyConfig) -> Harness {
        Harness::launch_custom(dataset, cfg, n_workers, proxy, ServerConfig::default(), ComputeCosts::default())
    }

    pub fn launch_custom(
        dataset: Dataset,
        cfg: &BenchConfig,
        n_workers: usize,
        proxy: ProxyConfig,
        server: ServerConfig,
        costs: ComputeCosts,
    ) -> Harness {
        let dilation = dataset.dilation(cfg);
        let vcfg = ViracochaConfig {
            n_workers,
            dilation,
            costs,
            proxy,
            server,
            ..ViracochaConfig::default()
        };
        let (backend, link) = Viracocha::launch(vcfg);
        let ds = dataset.build(cfg);
        let source = Arc::new(CachedSynthSource::new(ds));
        // Materialize everything up front so item generation never
        // pollutes the dilated measurements.
        source.prewarm();
        backend.register_dataset(source, false);
        Harness {
            backend: Some(backend),
            client: VistaClient::new(link),
            dataset,
            dilation,
            n_workers,
        }
    }

    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Base parameters of a command on this harness's dataset.
    pub fn params_for(&self, command: &str, cfg: &BenchConfig) -> CommandParams {
        let d = self.dataset;
        let mut p = CommandParams::new().set("n_steps", d.steps(cfg));
        match command {
            "SimpleIso" | "IsoDataMan" | "CollectiveIso" | "ProgressiveIso" => {
                p = p.set("iso", d.iso_value());
            }
            "ViewerIso" => {
                p = p
                    .set("iso", d.iso_value())
                    .set_vec3("viewpoint", d.viewpoint())
                    .set("batch", 2000);
            }
            "SimpleVortex" | "VortexDataMan" => {
                p = p.set("threshold", d.lambda2_threshold());
            }
            "StreamedVortex" => {
                p = p.set("threshold", d.lambda2_threshold()).set("batch", 2000);
            }
            "SimplePathlines" | "PathlinesDataMan" => {
                p = p.set("n_seeds", cfg.n_seeds).set("rngseed", 42);
            }
            _ => {}
        }
        p
    }

    /// Runs one command with explicit parameters and returns the
    /// measured record.
    pub fn run_with(&mut self, command: &str, params: CommandParams, workers: usize) -> RunRecord {
        let spec = SubmitSpec {
            command: command.into(),
            dataset: self.dataset.name().into(),
            params,
            workers,
        };
        let out = self.client.run(&spec).unwrap_or_else(|e| {
            panic!("command {command} on {} failed: {e}", self.dataset.name())
        });
        let to_modeled = |w: std::time::Duration| w.as_secs_f64() / self.dilation;
        let total_s = out.report.total_runtime_s;
        let latency_s = out
            .first_result_wall
            .map(to_modeled)
            .unwrap_or(total_s);
        let packet_series = out
            .packets
            .iter()
            .map(|p: &PacketRecord| (to_modeled(p.elapsed), p.cumulative_items))
            .collect();
        RunRecord {
            total_s,
            latency_s,
            report: out.report,
            packet_series,
            triangles: out.triangles.n_triangles(),
            polylines: out.polylines.len(),
        }
    }

    /// Runs a command with the standard parameters.
    pub fn run(&mut self, command: &str, cfg: &BenchConfig, workers: usize) -> RunRecord {
        let params = self.params_for(command, cfg);
        self.run_with(command, params, workers)
    }

    /// Warm-cache run of the paper's methodology: "one single call of the
    /// command at hand was issued in advance of the measurements".
    pub fn run_warm(&mut self, command: &str, cfg: &BenchConfig, workers: usize) -> RunRecord {
        let _ = self.run(command, cfg, workers);
        self.run(command, cfg, workers)
    }

    /// Clears every worker's caches (optionally resetting learned
    /// prefetcher state).
    pub fn clear_caches(&mut self, reset_prefetcher: bool) {
        let params = CommandParams::new().set(
            "reset_prefetcher",
            if reset_prefetcher { "true" } else { "false" },
        );
        let spec = SubmitSpec {
            command: "ClearCache".into(),
            dataset: self.dataset.name().into(),
            params,
            workers: self.n_workers,
        };
        self.client.run(&spec).expect("ClearCache failed");
    }

    /// Shuts the back-end down.
    pub fn finish(mut self) {
        let _ = self.client.shutdown();
        if let Some(b) = self.backend.take() {
            b.join();
        }
    }
}

/// Proxy configuration helpers.
pub fn proxy_with_prefetcher(prefetcher: &str) -> ProxyConfig {
    ProxyConfig {
        l1_capacity_bytes: 1 << 30,
        l1_policy: "fbr".into(),
        l2: None,
        prefetcher: prefetcher.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_a_quick_run() {
        let _guard = crate::timing_lock();
        let cfg = BenchConfig::quick();
        let mut h = Harness::launch(Dataset::Engine, &cfg, 2, proxy_with_prefetcher("none"));
        let rec = h.run("IsoDataMan", &cfg, 2);
        assert!(rec.total_s > 0.0);
        assert!(rec.triangles > 0);
        assert!(rec.latency_s <= rec.total_s * 1.5);
        h.finish();
    }

    #[test]
    fn warm_run_is_faster_than_cold() {
        let _guard = crate::timing_lock();
        let cfg = BenchConfig::quick();
        let mut h = Harness::launch(Dataset::Engine, &cfg, 2, proxy_with_prefetcher("none"));
        let cold = h.run("IsoDataMan", &cfg, 2);
        let warm = h.run("IsoDataMan", &cfg, 2);
        assert!(warm.report.read_s < cold.report.read_s);
        assert!(warm.total_s < cold.total_s);
        h.finish();
    }

    #[test]
    fn clear_caches_restores_cold_behaviour() {
        let _guard = crate::timing_lock();
        let cfg = BenchConfig::quick();
        let mut h = Harness::launch(Dataset::Engine, &cfg, 2, proxy_with_prefetcher("none"));
        let cold = h.run("IsoDataMan", &cfg, 2);
        h.clear_caches(true);
        let cold2 = h.run("IsoDataMan", &cfg, 2);
        // Both cold: similar read time (within 50 %).
        assert!(cold2.report.read_s > 0.5 * cold.report.read_s);
        h.finish();
    }
}
