//! Provenance handling for `results/BENCH_micro.json`.
//!
//! The micro-benchmark manifest records the Criterion bench inventory
//! plus (optionally) measured per-iteration times. Measurements are
//! machine-dependent, so the manifest distinguishes real numbers from
//! placeholders: every entry carries a `status` of `"measured"` or
//! `"unmeasured"`, derived from whether `measured_ns` is a number or
//! null. Merging fresh results into the manifest never lets a null
//! (an unmeasured re-run, a skipped bench) clobber a real measurement.

use serde_json::Value;

/// Status string for an entry with a numeric `measured_ns`.
pub const MEASURED: &str = "measured";
/// Status string for an entry whose `measured_ns` is null.
pub const UNMEASURED: &str = "unmeasured";

/// What [`merge_measurements`] did.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Entries whose `measured_ns` was overwritten with a fresh number.
    pub updated: usize,
    /// Entries where a fresh null was *refused* because the manifest
    /// already holds a real measurement.
    pub kept: usize,
    /// Fresh entries appended because the manifest had no bench of that
    /// name.
    pub added: usize,
}

fn benches_mut(manifest: &mut Value) -> Option<&mut Vec<Value>> {
    manifest.get_mut("benches")?.as_array_mut()
}

fn entry_name(entry: &Value) -> Option<&str> {
    entry.get("name")?.as_str()
}

fn is_measured(entry: &Value) -> bool {
    entry
        .get("measured_ns")
        .map(|v| v.is_number())
        .unwrap_or(false)
}

/// Stamps every bench entry's `status` field from its `measured_ns`
/// (`"measured"` for numbers, `"unmeasured"` for null/absent).
pub fn annotate_status(manifest: &mut Value) {
    let Some(benches) = benches_mut(manifest) else {
        return;
    };
    for entry in benches.iter_mut() {
        let status = if is_measured(entry) { MEASURED } else { UNMEASURED };
        if let Some(obj) = entry.as_object_mut() {
            obj.insert("status".into(), Value::String(status.into()));
        }
    }
}

/// Merges freshly measured per-iteration times into `manifest`.
///
/// `fresh` maps bench names to `Some(ns)` (a real measurement) or `None`
/// (the bench ran but produced nothing, or was skipped). Real numbers
/// overwrite; `None` never downgrades an entry that already holds a
/// measurement — the manifest's provenance rule. Unknown names are
/// appended as minimal entries. `status` fields are re-derived at the
/// end.
pub fn merge_measurements(manifest: &mut Value, fresh: &[(String, Option<u64>)]) -> MergeOutcome {
    let mut out = MergeOutcome::default();
    if let Some(benches) = benches_mut(manifest) {
        for (name, measured) in fresh {
            let existing = benches
                .iter_mut()
                .find(|e| entry_name(e) == Some(name.as_str()));
            match (existing, measured) {
                (Some(entry), Some(ns)) => {
                    if let Some(obj) = entry.as_object_mut() {
                        obj.insert("measured_ns".into(), Value::from(*ns));
                        out.updated += 1;
                    }
                }
                (Some(entry), None) => {
                    // Refuse to null out a real measurement.
                    if is_measured(entry) {
                        out.kept += 1;
                    }
                }
                (None, measured) => {
                    benches.push(serde_json::json!({
                        "name": name,
                        "unit": "ns/iter",
                        "measured_ns": measured,
                    }));
                    out.added += 1;
                }
            }
        }
    }
    annotate_status(manifest);
    out
}

/// Default regression tolerance for [`check_regressions`]: a fresh
/// reading more than 20% slower than the manifest baseline fails.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// One failed check from [`check_regressions`].
#[derive(Debug, PartialEq)]
pub struct Regression {
    /// Bench name (`group/case`).
    pub name: String,
    /// Human-readable explanation of the failure.
    pub detail: String,
}

/// Parses the `[{"name", "measured_ns"}, ...]` array shape that the
/// measurement harnesses emit into the pair list
/// [`merge_measurements`] and [`check_regressions`] consume.
pub fn parse_fresh(fresh: &Value) -> Option<Vec<(String, Option<u64>)>> {
    fresh
        .as_array()?
        .iter()
        .map(|e| {
            let name = entry_name(e)?.to_string();
            let ns = match e.get("measured_ns") {
                Some(Value::Null) | None => None,
                Some(v) => Some(v.as_u64()?),
            };
            Some((name, ns))
        })
        .collect()
}

/// Compares fresh measurements against the manifest's recorded
/// baselines and returns every regression found.
///
/// Two failure modes, matching what the merge rules let through
/// silently:
/// - a fresh reading more than `tolerance` (fractional, e.g. 0.2 for
///   20%) slower than a measured baseline;
/// - a fresh `None` for a bench the manifest has already measured
///   (null-after-measured — the bench stopped producing numbers, which
///   the provenance rule would otherwise quietly paper over).
///
/// Benches absent from the manifest, or with a null baseline, are new
/// territory and never fail. Fresh readings *faster* than baseline
/// never fail either — improvements land via [`merge_measurements`].
pub fn check_regressions(
    manifest: &Value,
    fresh: &[(String, Option<u64>)],
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let Some(benches) = manifest.get("benches").and_then(|b| b.as_array()) else {
        return out;
    };
    for (name, measured) in fresh {
        let baseline = benches
            .iter()
            .find(|e| entry_name(e) == Some(name.as_str()))
            .and_then(|e| e.get("measured_ns"))
            .and_then(|v| v.as_u64());
        let Some(baseline) = baseline else {
            continue;
        };
        match measured {
            Some(ns) => {
                let limit = baseline as f64 * (1.0 + tolerance);
                if *ns as f64 > limit {
                    out.push(Regression {
                        name: name.clone(),
                        detail: format!(
                            "{ns} ns/iter is {:.0}% over the {baseline} ns/iter baseline \
                             (tolerance {:.0}%)",
                            (*ns as f64 / baseline as f64 - 1.0) * 100.0,
                            tolerance * 100.0,
                        ),
                    });
                }
            }
            None => out.push(Regression {
                name: name.clone(),
                detail: format!(
                    "produced no measurement but the manifest holds a \
                     {baseline} ns/iter baseline (null-after-measured)"
                ),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Value {
        serde_json::json!({
            "id": "micro",
            "benches": [
                {"name": "a/real", "unit": "ns/iter", "measured_ns": 120},
                {"name": "b/null", "unit": "ns/iter", "measured_ns": null},
            ]
        })
    }

    #[test]
    fn annotate_derives_status_from_measured_ns() {
        let mut m = manifest();
        annotate_status(&mut m);
        let b = m["benches"].as_array().unwrap();
        assert_eq!(b[0]["status"], MEASURED);
        assert_eq!(b[1]["status"], UNMEASURED);
    }

    #[test]
    fn null_never_overwrites_a_real_measurement() {
        let mut m = manifest();
        let out = merge_measurements(
            &mut m,
            &[("a/real".into(), None), ("b/null".into(), None)],
        );
        assert_eq!(out, MergeOutcome { updated: 0, kept: 1, added: 0 });
        assert_eq!(m["benches"][0]["measured_ns"], 120);
        assert_eq!(m["benches"][0]["status"], MEASURED);
        assert!(m["benches"][1]["measured_ns"].is_null());
        assert_eq!(m["benches"][1]["status"], UNMEASURED);
    }

    #[test]
    fn fresh_numbers_overwrite_and_unknown_names_append() {
        let mut m = manifest();
        let out = merge_measurements(
            &mut m,
            &[
                ("a/real".into(), Some(95)),
                ("b/null".into(), Some(40)),
                ("c/new".into(), Some(7)),
            ],
        );
        assert_eq!(out, MergeOutcome { updated: 2, kept: 0, added: 1 });
        assert_eq!(m["benches"][0]["measured_ns"], 95);
        assert_eq!(m["benches"][1]["measured_ns"], 40);
        assert_eq!(m["benches"][1]["status"], MEASURED);
        let c = &m["benches"][2];
        assert_eq!(c["name"], "c/new");
        assert_eq!(c["measured_ns"], 7);
        assert_eq!(c["status"], MEASURED);
    }

    #[test]
    fn parse_fresh_accepts_harness_output_shape() {
        let fresh = serde_json::json!([
            {"name": "a/real", "measured_ns": 120},
            {"name": "b/skipped", "measured_ns": null},
        ]);
        let pairs = parse_fresh(&fresh).expect("well-formed");
        assert_eq!(
            pairs,
            vec![("a/real".into(), Some(120)), ("b/skipped".into(), None)]
        );
        assert!(parse_fresh(&serde_json::json!({"not": "an array"})).is_none());
        assert!(
            parse_fresh(&serde_json::json!([{"measured_ns": 5}])).is_none(),
            "entries without a name are malformed"
        );
    }

    #[test]
    fn regressions_fail_only_on_slowdown_past_tolerance() {
        let m = manifest();
        // 20% over a 120 ns baseline is 144 ns: 144 passes, 145 fails.
        let ok = check_regressions(
            &m,
            &[("a/real".into(), Some(144)), ("a/real".into(), Some(60))],
            DEFAULT_TOLERANCE,
        );
        assert!(ok.is_empty(), "within tolerance and improvements pass: {ok:?}");
        let bad = check_regressions(&m, &[("a/real".into(), Some(145))], DEFAULT_TOLERANCE);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "a/real");
        assert!(bad[0].detail.contains("145 ns/iter"), "{}", bad[0].detail);
    }

    #[test]
    fn regressions_flag_null_after_measured_but_not_new_ground() {
        let m = manifest();
        let found = check_regressions(
            &m,
            &[
                ("a/real".into(), None),          // null-after-measured: fails
                ("b/null".into(), None),          // never measured: fine
                ("b/null".into(), Some(9999)),    // no baseline: fine
                ("c/unknown".into(), Some(1)),    // not in manifest: fine
                ("c/unknown".into(), None),       // ditto
            ],
            DEFAULT_TOLERANCE,
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "a/real");
        assert!(
            found[0].detail.contains("null-after-measured"),
            "{}",
            found[0].detail
        );
    }

    #[test]
    fn shipped_manifest_annotates_cleanly() {
        // The checked-in manifest must parse and already carry statuses
        // consistent with its measurements.
        let text = include_str!("../results/BENCH_micro.json");
        let mut m: Value = serde_json::from_str(text).expect("BENCH_micro.json parses");
        let before = m.clone();
        annotate_status(&mut m);
        assert_eq!(before, m, "checked-in statuses must match measured_ns");
    }
}
