//! Experiment result records and rendering.

use serde::{Deserialize, Serialize};

/// One measured data point of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Series label (typically a command name or configuration).
    pub series: String,
    /// X coordinate label (e.g. "workers=4" or "policy=fbr").
    pub x: String,
    pub value: f64,
    pub unit: String,
}

impl Row {
    pub fn new(series: impl Into<String>, x: impl Into<String>, value: f64, unit: &str) -> Row {
        Row {
            series: series.into(),
            x: x.into(),
            value,
            unit: unit.into(),
        }
    }
}

/// A fully evaluated experiment (one table or figure of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Harness id, e.g. "fig06".
    pub id: String,
    pub title: String,
    /// What the paper reports ("Figure 6", "Table 1", …).
    pub paper_ref: String,
    pub rows: Vec<Row>,
    /// Free-form remarks (workload used, substitutions, observations).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    pub fn new(id: &str, title: &str, paper_ref: &str) -> ExperimentResult {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            paper_ref: paper_ref.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Values of one series in row order.
    pub fn series(&self, name: &str) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .filter(|r| r.series == name)
            .map(|r| (r.x.clone(), r.value))
            .collect()
    }

    /// Distinct series names in first-appearance order.
    pub fn series_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for r in &self.rows {
            if !names.contains(&r.series) {
                names.push(r.series.clone());
            }
        }
        names
    }

    /// Distinct x labels in first-appearance order.
    pub fn x_labels(&self) -> Vec<String> {
        let mut xs = Vec::new();
        for r in &self.rows {
            if !xs.contains(&r.x) {
                xs.push(r.x.clone());
            }
        }
        xs
    }

    /// Renders a markdown table: one row per x label, one column per
    /// series.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### {} — {} ({})\n\n",
            self.id, self.title, self.paper_ref
        ));
        let series = self.series_names();
        let xs = self.x_labels();
        let unit = self.rows.first().map(|r| r.unit.clone()).unwrap_or_default();
        out.push_str("| |");
        for s in &series {
            out.push_str(&format!(" {s} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &series {
            out.push_str("---|");
        }
        out.push('\n');
        for x in &xs {
            out.push_str(&format!("| {x} |"));
            for s in &series {
                let v = self
                    .rows
                    .iter()
                    .find(|r| &r.series == s && &r.x == x)
                    .map(|r| format_value(r.value))
                    .unwrap_or_else(|| "–".into());
                out.push_str(&format!(" {v} |"));
            }
            out.push('\n');
        }
        if !unit.is_empty() {
            out.push_str(&format!("\n*values in {unit}*\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out.push('\n');
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        let mut e = ExperimentResult::new("fig00", "demo", "Figure 0");
        e.push(Row::new("A", "workers=1", 10.0, "s"));
        e.push(Row::new("A", "workers=2", 5.5, "s"));
        e.push(Row::new("B", "workers=1", 20.0, "s"));
        e.note("note text");
        e
    }

    #[test]
    fn series_extraction() {
        let e = sample();
        assert_eq!(e.series_names(), vec!["A", "B"]);
        assert_eq!(e.x_labels(), vec!["workers=1", "workers=2"]);
        assert_eq!(
            e.series("A"),
            vec![("workers=1".to_string(), 10.0), ("workers=2".to_string(), 5.5)]
        );
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("| workers=1 | 10.00 | 20.00 |"));
        assert!(md.contains("| workers=2 | 5.50 | – |"));
        assert!(md.contains("note text"));
        assert!(md.contains("*values in s*"));
    }

    #[test]
    fn json_roundtrip() {
        let e = sample();
        let json = serde_json::to_string(&e).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows, e.rows);
        assert_eq!(back.id, e.id);
    }
}
