//! Benchmark configuration: dataset resolutions, time dilations and
//! worker sweeps for the experiment harness.
//!
//! Defaults are tuned so the full reproduction runs in a few minutes on
//! a small host while keeping the measured-time error from *real*
//! computation under ~10 % even at the largest worker counts (see
//! DESIGN.md on time dilation). `VIRA_QUICK=1` shrinks everything for
//! smoke runs.

/// Harness-wide settings.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Grid points per block direction for the Engine stand-in.
    pub engine_res: usize,
    /// Grid points per block direction for the Propfan stand-in.
    pub propfan_res: usize,
    /// Number of Propfan time steps processed per run (the full 50 make
    /// runs long without changing any shape; the modeled numbers scale
    /// linearly and EXPERIMENTS.md reports the workload used).
    pub propfan_steps: usize,
    /// Number of Engine time steps processed per run.
    pub engine_steps: usize,
    /// Wall seconds per modeled second for Engine experiments.
    pub dilation_engine: f64,
    /// Wall seconds per modeled second for Propfan experiments.
    pub dilation_propfan: f64,
    /// Wall seconds per modeled second for pathline experiments (higher:
    /// pathline integration does real numerical work whose wall time must
    /// stay far below the modeled sleeps).
    pub dilation_pathlines: f64,
    /// Worker counts for the runtime sweeps (Figures 6–12).
    pub worker_sweep: Vec<usize>,
    /// Worker counts for the pathline sweeps (Figure 13–14).
    pub pathline_sweep: Vec<usize>,
    /// Seeds per pathline job.
    pub n_seeds: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        if std::env::var("VIRA_QUICK").map(|v| v == "1").unwrap_or(false) {
            BenchConfig::quick()
        } else {
            BenchConfig::full()
        }
    }
}

impl BenchConfig {
    /// The standard configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        BenchConfig {
            engine_res: 5,
            propfan_res: 4,
            propfan_steps: 12,
            engine_steps: 63,
            dilation_engine: 0.05,
            dilation_propfan: 0.02,
            dilation_pathlines: 0.1,
            worker_sweep: vec![1, 2, 4, 8, 16],
            pathline_sweep: vec![1, 2, 4, 8],
            n_seeds: 16,
        }
    }

    /// Smoke configuration (`VIRA_QUICK=1`).
    pub fn quick() -> Self {
        BenchConfig {
            engine_res: 4,
            propfan_res: 3,
            propfan_steps: 3,
            engine_steps: 8,
            dilation_engine: 0.02,
            dilation_propfan: 0.01,
            dilation_pathlines: 0.05,
            worker_sweep: vec![1, 2, 4],
            pathline_sweep: vec![1, 2, 4],
            n_seeds: 6,
        }
    }

    /// The largest worker count in the sweep (= pool size needed).
    pub fn max_workers(&self) -> usize {
        self.worker_sweep
            .iter()
            .chain(self.pathline_sweep.iter())
            .copied()
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_sweeps_to_16() {
        let c = BenchConfig::full();
        assert_eq!(c.max_workers(), 16);
        assert!(c.dilation_engine > 0.0);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = BenchConfig::quick();
        let f = BenchConfig::full();
        assert!(q.engine_steps < f.engine_steps);
        assert!(q.max_workers() <= f.max_workers());
    }
}
