//! E9 — Figure 13: Engine pathlines, total runtime for
//! `SimplePathlines` vs `PathlinesDataMan` (warm cache).
//!
//! Expected shape: poor scalability of both variants (load imbalance —
//! every pathline has different computational effort and block
//! requirements), with the fully cached variant much faster overall.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    // Pathline runs use the dedicated (higher) dilation.
    let mut cfg = cfg.clone();
    cfg.dilation_engine = cfg.dilation_pathlines;
    let cfg = &cfg;
    let mut e = ExperimentResult::new("fig13", "Engine, pathlines, total runtime", "Figure 13");
    for &w in &cfg.pathline_sweep {
        let mut h = Harness::launch(Dataset::Engine, cfg, w, proxy_with_prefetcher("none"));
        let simple = h.run("SimplePathlines", cfg, w);
        let dataman = h.run_warm("PathlinesDataMan", cfg, w);
        h.finish();
        let x = format!("workers={w}");
        e.push(Row::new("SimplePathlines", x.clone(), simple.total_s, "modeled s"));
        e.push(Row::new("PathlinesDataMan", x, dataman.total_s, "modeled s"));
    }
    e.note(format!(
        "{} seed points distributed round-robin; PathlinesDataMan measured \
         on fully cached data. Scalability is limited by load imbalance \
         across traces (§7.3).",
        cfg.n_seeds
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_pathlines_beat_simple() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.pathline_sweep = vec![1];
        cfg.n_seeds = 4;
        let e = run(&cfg);
        let simple = e.series("SimplePathlines")[0].1;
        let dataman = e.series("PathlinesDataMan")[0].1;
        assert!(dataman < simple, "{dataman} vs {simple}");
    }
}
