//! E14 — the §4.3 loading-strategy study: modeled cost of the four
//! loading strategies, the benefit of adaptive selection under a
//! file-server failure, and why collective I/O without a parallel file
//! system is "of limited use".

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use std::sync::Arc;
use vira_dms::proxy::{DataProxy, ProxyConfig};
use vira_dms::server::{DataServer, ServerConfig};
use vira_grid::block::BlockStepId;
use vira_storage::costmodel::{CostCategory, Meter, SimClock};
use vira_storage::source::CachedSynthSource;
use vira_grid::synth;

fn proxy_cfg() -> ProxyConfig {
    ProxyConfig {
        l1_capacity_bytes: 1 << 30,
        l1_policy: "lru".into(),
        l2: None,
        prefetcher: "none".into(),
    }
}

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "e14-loading",
        "Loading strategies: modeled per-item read time and adaptive selection",
        "§4.3",
    );
    let ds = Arc::new(synth::engine(cfg.engine_res));
    let n_items = 8u32; // one step's worth of probes

    // --- Per-strategy per-item read cost (accounting only, no sleeps).
    // File server (no replica, no peers).
    {
        let server = DataServer::new(SimClock::instant(), ServerConfig::default());
        server.register_dataset(Arc::new(CachedSynthSource::new(ds.clone())), false);
        let proxy = DataProxy::new(0, server.clone(), proxy_cfg());
        let m = Meter::new();
        for b in 0..n_items {
            proxy.request("Engine", BlockStepId::new(b, 0), &m).unwrap();
        }
        e.push(Row::new(
            "file server",
            "per-item read",
            m.total(CostCategory::Read) / n_items as f64,
            "modeled s",
        ));
    }
    // Local replica.
    {
        let server = DataServer::new(SimClock::instant(), ServerConfig::default());
        server.register_dataset(Arc::new(CachedSynthSource::new(ds.clone())), true);
        let proxy = DataProxy::new(0, server.clone(), proxy_cfg());
        let m = Meter::new();
        for b in 0..n_items {
            proxy.request("Engine", BlockStepId::new(b, 0), &m).unwrap();
        }
        e.push(Row::new(
            "local replica",
            "per-item read",
            m.total(CostCategory::Read) / n_items as f64,
            "modeled s",
        ));
    }
    // Peer transfer: node 0 warms, node 1 pulls everything from node 0.
    {
        let server = DataServer::new(SimClock::instant(), ServerConfig::default());
        server.register_dataset(Arc::new(CachedSynthSource::new(ds.clone())), false);
        let p0 = DataProxy::new(0, server.clone(), proxy_cfg());
        let p1 = DataProxy::new(1, server.clone(), proxy_cfg());
        let m0 = Meter::new();
        for b in 0..n_items {
            p0.request("Engine", BlockStepId::new(b, 0), &m0).unwrap();
        }
        let m1 = Meter::new();
        for b in 0..n_items {
            p1.request("Engine", BlockStepId::new(b, 0), &m1).unwrap();
        }
        e.push(Row::new(
            "peer transfer",
            "per-item read",
            m1.total(CostCategory::Read) / n_items as f64,
            "modeled s",
        ));
    }
    // Collective I/O, with and without a parallel file system (4
    // participants).
    for (label, parallel_fs) in [
        ("collective (no parallel FS)", false),
        ("collective (parallel FS)", true),
    ] {
        let server = DataServer::new(
            SimClock::instant(),
            ServerConfig {
                parallel_fs,
                ..ServerConfig::default()
            },
        );
        server.register_dataset(Arc::new(CachedSynthSource::new(ds.clone())), false);
        let m = Meter::new();
        for b in 0..n_items {
            server
                .collective_read("Engine", BlockStepId::new(b, 0), 4, &m)
                .unwrap();
        }
        e.push(Row::new(
            label,
            "per-item read",
            m.total(CostCategory::Read) / n_items as f64,
            "modeled s",
        ));
    }

    // --- Adaptive selection under a file-server failure.
    {
        let server = DataServer::new(SimClock::instant(), ServerConfig::default());
        server.register_dataset(Arc::new(CachedSynthSource::new(ds.clone())), false);
        let p0 = DataProxy::new(0, server.clone(), proxy_cfg());
        let p1 = DataProxy::new(1, server.clone(), proxy_cfg());
        let m = Meter::new();
        // Node 0 caches the first half before the server "fails".
        for b in 0..n_items / 2 {
            p0.request("Engine", BlockStepId::new(b, 0), &m).unwrap();
        }
        server.report_fileserver_failure();
        // Node 1 can still obtain the cached half through peers.
        let mut served = 0;
        let mut failed = 0;
        for b in 0..n_items {
            match p1.request("Engine", BlockStepId::new(b, 0), &m) {
                Ok(_) => served += 1,
                Err(_) => failed += 1,
            }
        }
        e.push(Row::new(
            "adaptive (server down)",
            "items served via peers",
            served as f64,
            "items",
        ));
        e.push(Row::new(
            "adaptive (server down)",
            "items unavailable",
            failed as f64,
            "items",
        ));
    }

    e.note(
        "Fitness-based selection picks the fastest available path per load; \
         after a file-server failure the cooperative cache keeps previously \
         loaded items reachable (§4.3).",
    );
    e.note(
        "Collective I/O without a parallel file system serializes the \
         participants' transfers — 'more expensive than the benefit of \
         collective file access'.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_ordering_matches_tiers() {
        let _guard = crate::timing_lock();
        let e = run(&BenchConfig::quick());
        let get = |s: &str| {
            e.rows
                .iter()
                .find(|r| r.series == s && r.x == "per-item read")
                .unwrap()
                .value
        };
        assert!(get("peer transfer") < get("local replica"));
        assert!(get("local replica") < get("file server"));
        assert!(get("collective (no parallel FS)") > get("file server"));
        assert!(get("collective (parallel FS)") < get("collective (no parallel FS)"));
    }

    #[test]
    fn adaptive_selection_survives_fileserver_failure() {
        let _guard = crate::timing_lock();
        let e = run(&BenchConfig::quick());
        let served = e
            .rows
            .iter()
            .find(|r| r.x == "items served via peers")
            .unwrap()
            .value;
        assert!(served >= 4.0, "peer half must remain reachable: {served}");
    }
}
