//! E18 — scheduling-policy ablation: FIFO vs locality-aware backfill.
//!
//! Two simulated-clock studies of the dispatch policies in
//! `viracocha::scheduler`:
//!
//! 1. **Queueing** — a discrete-event replay of a mixed trace (wide
//!    long jobs interleaved with one-rank short jobs) through the same
//!    candidate-selection rule the scheduler uses: strict FIFO vs
//!    backfill with an aging bound. Reported: mean small-job queue
//!    wait, trace makespan, and the wait of a wide job under a
//!    saturating small-job stream with and without the aging bound.
//!
//! 2. **Placement** — a repeated-timestep scrub (the §1.1 explorative
//!    loop: the analyst slides a short step window forward, re-running
//!    the extraction) replayed against per-rank `MemoryCache`s while
//!    unrelated sessions pin a changing pair of ranks. Lowest-free-rank
//!    placement scatters the window across whichever low ranks happen
//!    to be free; digest-overlap placement follows the warm rank.
//!    Reported: DMS cache hits per policy.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use std::sync::Arc;
use vira_dms::cache::{CachePayload, MemoryCache, ResidencyDigest};
use vira_dms::name::ItemId;
use vira_dms::policy::policy_by_name;

/// A fixed-size stand-in payload (1 "unit" per item; placement only
/// looks at ids).
struct Unit;

impl CachePayload for Unit {
    fn payload_bytes(&self) -> usize {
        1
    }
}

/// One job of the synthetic queue trace, in modeled seconds.
#[derive(Clone, Copy)]
pub struct TraceJob {
    pub arrival: f64,
    pub workers: usize,
    pub duration: f64,
}

/// Replays `jobs` (sorted by arrival) through the scheduler's candidate
/// selection on a simulated clock: strict FIFO when `backfill` is off,
/// otherwise scan-past-the-head bounded by the `max_skipped` aging
/// barrier. Returns the per-job queue wait in modeled seconds.
pub fn simulate_queue(
    jobs: &[TraceJob],
    n_ranks: usize,
    backfill: bool,
    max_skipped: u32,
) -> Vec<f64> {
    const EPS: f64 = 1e-9;
    struct Queued {
        idx: usize,
        workers: usize,
        duration: f64,
        skipped: u32,
    }
    let mut free_at = vec![0.0f64; n_ranks];
    let mut queue: Vec<Queued> = Vec::new();
    let mut waits = vec![0.0f64; jobs.len()];
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    loop {
        while next_arrival < jobs.len() && jobs[next_arrival].arrival <= now + EPS {
            queue.push(Queued {
                idx: next_arrival,
                workers: jobs[next_arrival].workers,
                duration: jobs[next_arrival].duration,
                skipped: 0,
            });
            next_arrival += 1;
        }
        if queue.is_empty() && next_arrival >= jobs.len() {
            return waits;
        }
        let n_free = free_at.iter().filter(|&&t| t <= now + EPS).count();
        // Mirror of scheduler::select_candidate (without fair share —
        // the trace is single-session).
        let pick = if queue.is_empty() {
            None
        } else {
            let limit = if backfill {
                queue
                    .iter()
                    .position(|q| q.skipped >= max_skipped)
                    .unwrap_or(queue.len() - 1)
            } else {
                0
            };
            (0..=limit).find(|&i| queue[i].workers.min(n_ranks) <= n_free)
        };
        if let Some(i) = pick {
            for jumped in queue.iter_mut().take(i) {
                jumped.skipped += 1;
            }
            let q = queue.remove(i);
            waits[q.idx] = now - jobs[q.idx].arrival;
            let mut claimed = 0;
            for slot in free_at.iter_mut() {
                if claimed < q.workers.min(n_ranks) && *slot <= now + EPS {
                    *slot = now + q.duration;
                    claimed += 1;
                }
            }
        } else {
            // Nothing dispatchable: advance to the next release/arrival.
            let release = free_at
                .iter()
                .copied()
                .filter(|&t| t > now + EPS)
                .fold(f64::INFINITY, f64::min);
            let arrival = jobs
                .get(next_arrival)
                .map(|j| j.arrival)
                .unwrap_or(f64::INFINITY);
            now = release.min(arrival).max(now);
        }
    }
}

/// The mixed batch trace: every fourth job wants the whole machine for
/// a long time, the rest are one-rank short jobs; everything is queued
/// at once (the §1.1 burst of trial-and-error submissions).
pub fn mixed_batch(n_jobs: usize, n_ranks: usize) -> Vec<TraceJob> {
    (0..n_jobs)
        .map(|i| {
            if i % 4 == 1 {
                TraceJob {
                    arrival: 0.0,
                    workers: n_ranks,
                    duration: 40.0,
                }
            } else {
                TraceJob {
                    arrival: 0.0,
                    workers: 1,
                    duration: 5.0,
                }
            }
        })
        .collect()
}

/// Makespan of a replay: the last modeled completion time.
pub fn makespan(jobs: &[TraceJob], waits: &[f64]) -> f64 {
    jobs.iter()
        .zip(waits)
        .map(|(j, w)| j.arrival + w + j.duration)
        .fold(0.0, f64::max)
}

fn mean_small_wait(jobs: &[TraceJob], waits: &[f64]) -> f64 {
    let small: Vec<f64> = jobs
        .iter()
        .zip(waits)
        .filter(|(j, _)| j.workers == 1)
        .map(|(_, &w)| w)
        .collect();
    small.iter().sum::<f64>() / small.len() as f64
}

/// A saturating stream of one-rank jobs plus one wide job that arrives
/// early: the starvation scenario the aging bound exists for.
pub fn starvation_stream(n_small: usize, n_ranks: usize) -> (Vec<TraceJob>, usize) {
    let mut jobs = Vec::new();
    for i in 0..n_small {
        jobs.push(TraceJob {
            arrival: 0.5 * i as f64,
            workers: 1,
            duration: 2.0,
        });
    }
    let wide = TraceJob {
        arrival: 1.0,
        workers: n_ranks,
        duration: 8.0,
    };
    // Keep the vector arrival-sorted.
    let pos = jobs.iter().position(|j| j.arrival > wide.arrival).unwrap();
    jobs.insert(pos, wide);
    (jobs, pos)
}

/// Replays the repeated-timestep scrub against per-rank caches and
/// returns the total DMS hit count. Each job re-extracts a 4-step ×
/// 4-block window slid forward one step; a deterministic xorshift pins
/// two "busy" ranks per dispatch (unrelated sessions holding them), so
/// placement picks among the remaining two. `locality` scores free
/// ranks by residency-digest overlap exactly like
/// `scheduler::place_group`; otherwise the lowest free rank wins.
pub fn replay_placement(locality: bool, n_jobs: usize) -> usize {
    const N_RANKS: usize = 4;
    const BLOCKS: u64 = 4;
    const WINDOW: u64 = 4;
    let mut caches: Vec<MemoryCache<Unit>> = (0..N_RANKS)
        .map(|_| MemoryCache::new(32, policy_by_name("lru").expect("lru policy")))
        .collect();
    let mut hits = 0usize;
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    for t in 0..n_jobs as u64 {
        let items: Vec<ItemId> = (0..WINDOW)
            .flat_map(|s| (0..BLOCKS).map(move |b| ItemId((t + s) * BLOCKS + b)))
            .collect();
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let pin_a = (rng % N_RANKS as u64) as usize;
        let pin_b = (pin_a + 1 + ((rng >> 32) % (N_RANKS as u64 - 1)) as usize) % N_RANKS;
        let free: Vec<usize> = (0..N_RANKS).filter(|r| *r != pin_a && *r != pin_b).collect();
        let rank = if locality {
            // Max overlap, ties to the lowest rank (= place_group).
            *free
                .iter()
                .max_by_key(|&&r| {
                    let digest = ResidencyDigest::from_items(caches[r].resident());
                    (digest.overlap(&items), std::cmp::Reverse(r))
                })
                .expect("two free ranks")
        } else {
            *free.iter().min().expect("two free ranks")
        };
        for &id in &items {
            if caches[rank].get(id).is_some() {
                hits += 1;
            } else {
                caches[rank].insert(id, Arc::new(Unit));
            }
        }
    }
    hits
}

pub fn run(_cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "e18-sched",
        "FIFO vs locality-aware backfill dispatch",
        "§5 scheduling (policy ablation)",
    );
    let n_ranks = 8;
    let trace = mixed_batch(32, n_ranks);
    for (name, backfill) in [("FIFO", false), ("backfill", true)] {
        let waits = simulate_queue(&trace, n_ranks, backfill, 8);
        e.push(Row::new(
            name,
            "mean small-job wait",
            mean_small_wait(&trace, &waits),
            "s",
        ));
        e.push(Row::new(name, "makespan", makespan(&trace, &waits), "s"));
    }
    let (stream, wide) = starvation_stream(48, 4);
    for (name, bound) in [("backfill(bound=4)", 4u32), ("backfill(unbounded)", u32::MAX)] {
        let waits = simulate_queue(&stream, 4, true, bound);
        e.push(Row::new(name, "wide-job wait", waits[wide], "s"));
    }
    let n_jobs = 200;
    let total = n_jobs * 16;
    for (name, locality) in [("lowest-rank", false), ("locality", true)] {
        let hits = replay_placement(locality, n_jobs);
        e.push(Row::new(name, "digest hits", hits as f64, "hits"));
        e.push(Row::new(
            name,
            "hit rate",
            100.0 * hits as f64 / total as f64,
            "%",
        ));
    }
    e.note(
        "Queue replay: 32-job burst on 8 ranks, every 4th job wants the whole \
         machine for 40 s, the rest 1 rank for 5 s; backfill aging bound 8.",
    );
    e.note(
        "Placement replay: 200-dispatch repeated-timestep scrub (4 blocks × \
         4-step sliding window) over 4 rank caches of 32 items, two ranks \
         pinned per dispatch by unrelated sessions.",
    );
    e.note(
        "Expectation: backfill cuts small-job waits without hurting makespan, \
         the aging bound caps wide-job starvation, and digest placement hits \
         strictly more than lowest-free-rank.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backfill_cuts_small_job_waits_without_hurting_makespan() {
        let n_ranks = 8;
        let trace = mixed_batch(32, n_ranks);
        let fifo = simulate_queue(&trace, n_ranks, false, 8);
        let back = simulate_queue(&trace, n_ranks, true, 8);
        assert!(
            mean_small_wait(&trace, &back) < mean_small_wait(&trace, &fifo),
            "backfill must shorten small-job queueing ({} vs {})",
            mean_small_wait(&trace, &back),
            mean_small_wait(&trace, &fifo)
        );
        assert!(
            makespan(&trace, &back) <= makespan(&trace, &fifo) + 1e-9,
            "backfill is work-conserving on this trace"
        );
        // Every job ran exactly once: total work conserved.
        assert_eq!(fifo.len(), trace.len());
        assert_eq!(back.len(), trace.len());
    }

    #[test]
    fn aging_bound_caps_wide_job_starvation() {
        let (stream, wide) = starvation_stream(48, 4);
        let bounded = simulate_queue(&stream, 4, true, 4);
        let unbounded = simulate_queue(&stream, 4, true, u32::MAX);
        assert!(
            bounded[wide] < unbounded[wide],
            "the aging bound must dispatch the wide job earlier \
             ({} vs {})",
            bounded[wide],
            unbounded[wide]
        );
        // Without the bound the wide job waits out essentially the whole
        // small-job stream.
        assert!(unbounded[wide] > 20.0);
    }

    #[test]
    fn fifo_and_backfill_agree_on_an_all_small_trace() {
        // Nothing to jump over: the policies must be identical.
        let trace: Vec<TraceJob> = (0..16)
            .map(|i| TraceJob {
                arrival: i as f64,
                workers: 1,
                duration: 3.0,
            })
            .collect();
        let fifo = simulate_queue(&trace, 4, false, 8);
        let back = simulate_queue(&trace, 4, true, 8);
        assert_eq!(fifo, back);
    }

    #[test]
    fn locality_placement_hits_strictly_more_than_lowest_rank() {
        let lowest = replay_placement(false, 200);
        let locality = replay_placement(true, 200);
        assert!(
            locality > lowest,
            "digest placement must beat lowest-free-rank on the \
             repeated-timestep scrub ({locality} vs {lowest} hits)"
        );
    }
}
