//! E16 — the §4.3 compression decision: "Data compression has been
//! considered, too, but has been found ineffective due to long runtimes
//! and low compression rates compared to transmission time."
//!
//! Measures the PackBits codec on real block payloads of both stand-in
//! datasets: the achieved ratio, the compression throughput, and the
//! break-even link bandwidth (below which compressing would pay off)
//! compared against the modeled file-server bandwidth actually in use.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::Dataset;
use vira_grid::block::BlockStepId;
use vira_storage::compress::probe_block_compression;
use vira_storage::device::DeviceProfile;

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "e16-compression",
        "Block-transfer compression: ratio vs break-even bandwidth",
        "§4.3 (compression rejected)",
    );
    let fileserver_bw = DeviceProfile::file_server().bandwidth_bps;
    for d in [Dataset::Engine, Dataset::Propfan] {
        let ds = d.build(cfg);
        // Average over a handful of blocks of the first step.
        let n = 6.min(ds.spec.n_blocks);
        let mut ratio = 0.0;
        let mut breakeven = 0.0;
        let mut throughput = 0.0;
        for b in 0..n {
            let item = ds.generate(BlockStepId::new(b, 0));
            let probe = probe_block_compression(&item);
            ratio += probe.ratio();
            breakeven += probe.breakeven_bandwidth_bps();
            throughput += probe.raw_bytes as f64 / probe.compress_wall_s.max(1e-12);
        }
        let n = n as f64;
        e.push(Row::new(d.name(), "compression ratio", ratio / n, ""));
        e.push(Row::new(
            d.name(),
            "compressor throughput [MB/s]",
            throughput / n / 1e6,
            "",
        ));
        e.push(Row::new(
            d.name(),
            "break-even link bandwidth [MB/s]",
            breakeven / n / 1e6,
            "",
        ));
        e.push(Row::new(
            d.name(),
            "modeled file-server bandwidth [MB/s]",
            fileserver_bw / 1e6,
            "",
        ));
    }
    e.note(
        "Compressing pays off only on links slower than the break-even \
         bandwidth; with ratios near 1 on floating-point CFD payloads the \
         break-even sits far below the file server's bandwidth — the \
         paper's conclusion holds.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_is_rejected_like_the_paper() {
        let _guard = crate::timing_lock();
        let e = run(&BenchConfig::quick());
        for d in ["Engine", "Propfan"] {
            let get = |x: &str| {
                e.rows
                    .iter()
                    .find(|r| r.series == d && r.x == x)
                    .unwrap()
                    .value
            };
            assert!(get("compression ratio") < 2.0, "{d} ratio");
            assert!(
                get("break-even link bandwidth [MB/s]")
                    < get("modeled file-server bandwidth [MB/s]") * 5.0,
                "{d}: compression would have to pay off only on much slower links"
            );
        }
    }
}
