//! E10 — Figure 14: the Markov prefetcher's influence on pathline
//! computation (Engine data).
//!
//! Methodology of §7.3: both configurations work on **uncached** data
//! ("otherwise prefetching would be unnecessary"). The Markov prefetcher
//! is given a learning phase — one identical pathline command — after
//! which the caches are cleared but the learned successor graph is kept.
//! The paper reports runtime savings up to 40 % and up to 95 % of cache
//! misses eliminated; naive sequential prefetchers (OBL) fail on the
//! non-uniform block requests of time-dependent particle traces.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    // Pathline runs use the dedicated (higher) dilation.
    let mut cfg = cfg.clone();
    cfg.dilation_engine = cfg.dilation_pathlines;
    let cfg = &cfg;
    let mut e = ExperimentResult::new(
        "fig14",
        "Prefetching influence on pathline computation (Engine data)",
        "Figure 14",
    );
    let mut miss_elimination: Vec<f64> = Vec::new();
    for &w in &cfg.pathline_sweep {
        // Cold runs are noisy; run each configuration twice and keep the
        // better (minimum) measurement.
        let mut without_best = f64::INFINITY;
        let mut without_misses = 0;
        for _ in 0..2 {
            let mut h = Harness::launch(Dataset::Engine, cfg, w, proxy_with_prefetcher("none"));
            let r = h.run("PathlinesDataMan", cfg, w);
            h.finish();
            if r.total_s < without_best {
                without_best = r.total_s;
                without_misses = r.report.cache_misses;
            }
        }

        // Markov prefetcher: learning phase → clear caches (keep learned
        // transitions) → measured cold run.
        let mut with_best = f64::INFINITY;
        let mut with_misses = 0;
        for _ in 0..2 {
            let mut h = Harness::launch(Dataset::Engine, cfg, w, proxy_with_prefetcher("markov"));
            let _learning = h.run("PathlinesDataMan", cfg, w);
            h.clear_caches(false);
            let r = h.run("PathlinesDataMan", cfg, w);
            h.finish();
            if r.total_s < with_best {
                with_best = r.total_s;
                with_misses = r.report.cache_misses;
            }
        }

        let x = format!("workers={w}");
        e.push(Row::new("without prefetching", x.clone(), without_best, "modeled s"));
        e.push(Row::new("with prefetching", x, with_best, "modeled s"));
        if without_misses > 0 {
            let eliminated = 1.0 - with_misses as f64 / without_misses as f64;
            miss_elimination.push(eliminated * 100.0);
        }
    }
    if let Some(best) = miss_elimination.iter().cloned().fold(None::<f64>, |a, v| {
        Some(a.map_or(v, |m| m.max(v)))
    }) {
        e.note(format!(
            "Cache misses eliminated by the learned Markov prefetcher: up to \
             {best:.0} % (paper: up to 95 %)."
        ));
    }
    e.note(
        "Identical learning and measurement traces (the paper's repeated \
         command); caches cleared between the two, learned transitions kept.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_prefetching_saves_time_on_repeat_traces() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.pathline_sweep = vec![1];
        cfg.n_seeds = 4;
        let e = run(&cfg);
        let without = e.series("without prefetching")[0].1;
        let with = e.series("with prefetching")[0].1;
        assert!(with < without, "markov run {with} vs baseline {without}");
    }
}
