//! E15 — progressive multi-resolution extraction (§5.3): latency gained
//! vs total-runtime overhead as the pyramid deepens.
//!
//! Expected shape: more levels → earlier (much smaller) first results,
//! at the cost of total computation exceeding the single-pass extraction
//! ("a progressive computation scheme might take much longer for the
//! computation of the final result than a highly optimized standard
//! algorithm. However, the reduction in query latency … might outweigh
//! this disadvantage considerably").

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "e15-progressive",
        "Progressive multi-resolution isosurface (Engine): latency vs overhead",
        "§5.3 / §9 extension",
    );
    for levels in [1usize, 2, 3] {
        let mut h = Harness::launch(Dataset::Engine, cfg, 2, proxy_with_prefetcher("obl"));
        let params = h
            .params_for("ProgressiveIso", cfg)
            .set("levels", levels)
            .set("batch", 4000);
        // Warm cache so the comparison isolates the computation scheme.
        let _ = h.run_with("ProgressiveIso", params.clone(), 2);
        let rec = h.run_with("ProgressiveIso", params, 2);
        h.finish();
        let x = format!("levels={levels}");
        e.push(Row::new("latency", x.clone(), rec.latency_s, "modeled s"));
        e.push(Row::new("total runtime", x.clone(), rec.total_s, "modeled s"));
        e.push(Row::new(
            "compute",
            x.clone(),
            rec.report.compute_s,
            "modeled s",
        ));
        // Pruning effectiveness across all pyramid levels: every level
        // runs through the bricktree-pruned extractor.
        e.push(Row::new(
            "cells pruned",
            x.clone(),
            rec.report.cells_skipped as f64,
            "cells",
        ));
        e.push(Row::new(
            "bricks pruned",
            x,
            rec.report.bricks_skipped as f64,
            "bricks",
        ));
    }
    e.note(
        "levels=1 is the plain extraction baseline; each added level streams \
         a coarser preview first (base data) and repeats the pass at the \
         next resolution.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_levels_cut_latency_but_add_compute() {
        let _guard = crate::timing_lock();
        let cfg = BenchConfig::quick();
        let e = run(&cfg);
        let latency = e.series("latency");
        let total = e.series("total runtime");
        let compute = e.series("compute");
        // The pyramid streams previews well before the job completes.
        // (Absolute latencies sit near the measurement noise floor in the
        // quick config, so compare against the run's own total.)
        let (l3, t3) = (latency.last().unwrap().1, total.last().unwrap().1);
        assert!(l3 < t3, "levels=3 must stream before completion: {l3} vs {t3}");
        // Total compute grows with the pyramid depth — the deterministic
        // meter-based signature of the progressive overhead (§5.3).
        assert!(
            compute.last().unwrap().1 > compute[0].1,
            "progressive overhead must exist: {compute:?}"
        );
    }
}
