//! E12 — the §4.2 replacement-policy study: LRU vs LFU vs FBR miss
//! counts on CFD request traces.
//!
//! The paper: "Standard replacement algorithms such as LRU, LFU and FBR
//! … have been evaluated with respect to CFD data requests. In this
//! special case, strategies based on frequency, foremost FBR, turned out
//! to produce less cache misses."
//!
//! The trace models explorative analysis (§1.1's trial-and-error loop):
//! the user repeatedly re-extracts features over a *hot* region of
//! interest (same blocks, a few adjacent time steps) while occasional
//! full-dataset sweeps (animation scrubs) scan every block once.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use std::sync::Arc;
use vira_dms::cache::{CachePayload, MemoryCache};
use vira_dms::name::ItemId;
use vira_dms::policy::policy_by_name;

/// A fixed-size stand-in payload (1 "unit" per item; the policies only
/// see ids).
struct Unit;

impl CachePayload for Unit {
    fn payload_bytes(&self) -> usize {
        1
    }
}

/// Builds the explorative-analysis trace over `n_blocks × n_steps`
/// items: rounds of hot-region re-extraction interleaved with full
/// scans.
pub fn exploration_trace(n_blocks: u64, n_steps: u64, rounds: usize) -> Vec<u64> {
    let item = |block: u64, step: u64| step * n_blocks + block;
    let hot_blocks: Vec<u64> = (0..n_blocks).take((n_blocks as usize / 4).max(2)).collect();
    let hot_steps: Vec<u64> = (0..n_steps.min(3)).collect();
    let mut trace = Vec::new();
    let mut scan_step = 0u64;
    for round in 0..rounds {
        // Several parameter-tweak iterations over the region of interest.
        for _tweak in 0..3 {
            for &s in &hot_steps {
                for &b in &hot_blocks {
                    trace.push(item(b, s));
                }
            }
        }
        // An animation scrub: one full step, advancing each round.
        for b in 0..n_blocks {
            trace.push(item(b, scan_step));
        }
        scan_step = (scan_step + 1) % n_steps;
        // Occasionally revisit the hot region mid-scan.
        if round % 2 == 1 {
            for &b in &hot_blocks {
                trace.push(item(b, hot_steps[0]));
            }
        }
    }
    trace
}

/// Replays a trace against a policy-driven cache of `capacity` items;
/// returns the miss count.
pub fn misses_for(policy_name: &str, capacity: usize, trace: &[u64]) -> usize {
    let policy = policy_by_name(policy_name).expect("known policy");
    let mut cache: MemoryCache<Unit> = MemoryCache::new(capacity, policy);
    let mut misses = 0;
    for &t in trace {
        let id = ItemId(t);
        if cache.get(id).is_none() {
            misses += 1;
            cache.insert(id, Arc::new(Unit));
        }
    }
    misses
}

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "e12-policies",
        "Cache replacement policies on CFD request traces",
        "§4.2 (policy comparison)",
    );
    let n_blocks = 23u64; // Engine block structure
    let n_steps = cfg.engine_steps as u64;
    let trace = exploration_trace(n_blocks, n_steps, 12);
    // Capacities as a fraction of the hot set + scan working set.
    for capacity in [8usize, 16, 32, 64] {
        for policy in ["lru", "lfu", "fbr"] {
            let misses = misses_for(policy, capacity, &trace);
            e.push(Row::new(
                policy.to_uppercase(),
                format!("capacity={capacity} items"),
                misses as f64,
                "misses",
            ));
        }
    }
    e.note(format!(
        "Explorative-analysis trace: {} requests over {} items (hot-region \
         re-extraction + full-step scans).",
        trace.len(),
        n_blocks * n_steps
    ));
    e.note("Paper finding: frequency-based strategies, foremost FBR, miss least.");
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbr_beats_or_ties_lru_on_the_exploration_trace() {
        let trace = exploration_trace(23, 16, 10);
        for capacity in [8, 16, 32] {
            let lru = misses_for("lru", capacity, &trace);
            let fbr = misses_for("fbr", capacity, &trace);
            assert!(
                fbr <= lru,
                "capacity {capacity}: FBR {fbr} must not miss more than LRU {lru}"
            );
        }
    }

    #[test]
    fn bigger_caches_miss_less() {
        let trace = exploration_trace(23, 16, 10);
        for policy in ["lru", "lfu", "fbr"] {
            let small = misses_for(policy, 8, &trace);
            let big = misses_for(policy, 64, &trace);
            assert!(big <= small, "{policy}: {big} vs {small}");
        }
    }

    #[test]
    fn trace_touches_all_blocks() {
        let trace = exploration_trace(5, 4, 4);
        let distinct: std::collections::HashSet<_> = trace.iter().collect();
        assert!(distinct.len() >= 5, "scan covers every block of a step");
    }
}
