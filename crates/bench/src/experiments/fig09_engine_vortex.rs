//! E5 — Figure 9: Engine, λ₂ vortex extraction, total runtime for
//! `SimpleVortex`, `StreamedVortex` and `VortexDataMan`.
//!
//! Expected shape: the absence of data management hurts exactly as in
//! the isosurface case, and — because λ₂ is compute-heavy — the
//! streaming overhead of `StreamedVortex` is *relatively* smaller than
//! ViewerIso's was (§7.2).

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    sweep_vortex(cfg, Dataset::Engine, "fig09", "Figure 9").0
}

pub(crate) fn sweep_vortex(
    cfg: &BenchConfig,
    dataset: Dataset,
    id: &str,
    paper_ref: &str,
) -> (ExperimentResult, ExperimentResult) {
    let mut runtime = ExperimentResult::new(
        id,
        &format!("{}, Lambda-2, total runtime", dataset.name()),
        paper_ref,
    );
    let mut latency = ExperimentResult::new(
        &format!("{id}-latency"),
        &format!("{}, Lambda-2, latency time", dataset.name()),
        "Figure 12",
    );
    for &w in &cfg.worker_sweep {
        let mut h = Harness::launch(dataset, cfg, w, proxy_with_prefetcher("obl"));
        let simple = h.run("SimpleVortex", cfg, w);
        let streamed = h.run_warm("StreamedVortex", cfg, w);
        let dataman = h.run_warm("VortexDataMan", cfg, w);
        h.finish();
        let x = format!("workers={w}");
        runtime.push(Row::new("SimpleVortex", x.clone(), simple.total_s, "modeled s"));
        runtime.push(Row::new(
            "StreamedVortex",
            x.clone(),
            streamed.total_s,
            "modeled s",
        ));
        runtime.push(Row::new("VortexDataMan", x.clone(), dataman.total_s, "modeled s"));
        latency.push(Row::new(
            "StreamedVortex",
            x.clone(),
            streamed.latency_s,
            "modeled s",
        ));
        latency.push(Row::new("VortexDataMan", x, dataman.latency_s, "modeled s"));
    }
    runtime.note(format!("{} time steps per run.", dataset.steps(cfg)));
    (runtime, latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vortex_runtime_shape_holds() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.worker_sweep = vec![1, 2];
        let e = run(&cfg);
        let simple = e.series("SimpleVortex");
        let dataman = e.series("VortexDataMan");
        for (s, d) in simple.iter().zip(&dataman) {
            assert!(d.1 < s.1, "VortexDataMan must beat SimpleVortex");
        }
        // Streaming overhead exists but is modest relative to λ₂ compute.
        let streamed = e.series("StreamedVortex");
        for (st, d) in streamed.iter().zip(&dataman) {
            assert!(st.1 < d.1 * 1.6, "streamed {st:?} vs dataman {d:?}");
        }
    }
}
