//! E11 — Figure 15: essential isosurface algorithm components (Engine
//! data), without and with caching.
//!
//! The paper's pies: SimpleIso ≈ 50 % compute / 49 % read / 1 % send;
//! IsoDataMan ≈ 85 % compute / 5 % read / 10 % send.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "fig15",
        "Isosurface component shares (Engine), without and with caching",
        "Figure 15",
    );
    let mut h = Harness::launch(Dataset::Engine, cfg, 1, proxy_with_prefetcher("none"));
    let simple = h.run("SimpleIso", cfg, 1);
    let dataman = h.run_warm("IsoDataMan", cfg, 1);
    h.finish();

    for (name, rec) in [("SimpleIso", &simple), ("IsoDataMan", &dataman)] {
        let total = rec.report.read_s + rec.report.compute_s + rec.report.send_s;
        if total <= 0.0 {
            continue;
        }
        e.push(Row::new(
            name,
            "Compute",
            100.0 * rec.report.compute_s / total,
            "%",
        ));
        e.push(Row::new(name, "Read", 100.0 * rec.report.read_s / total, "%"));
        e.push(Row::new(name, "Send", 100.0 * rec.report.send_s / total, "%"));
        // Bricktree pruning effectiveness: how much of the contouring
        // scan the min/max hierarchy eliminated.
        e.push(Row::new(
            name,
            "Cells pruned",
            rec.report.cells_skipped as f64,
            "cells",
        ));
        e.push(Row::new(
            name,
            "Bricks pruned",
            rec.report.bricks_skipped as f64,
            "bricks",
        ));
    }
    e.note("Paper: SimpleIso 50/49/1, IsoDataMan 85/5/10 (compute/read/send).");
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_shares_match_paper_shape() {
        let _guard = crate::timing_lock();
        let cfg = BenchConfig::quick();
        let e = run(&cfg);
        let cell = |series: &str, x: &str| {
            e.rows
                .iter()
                .find(|r| r.series == series && r.x == x)
                .unwrap()
                .value
        };
        // SimpleIso: read is a major share; caching reduces it massively.
        assert!(cell("SimpleIso", "Read") > 30.0);
        assert!(cell("IsoDataMan", "Read") < 15.0);
        assert!(cell("IsoDataMan", "Compute") > 60.0);
        // Shares sum to 100 per command.
        for name in ["SimpleIso", "IsoDataMan"] {
            let sum = cell(name, "Compute") + cell(name, "Read") + cell(name, "Send");
            assert!((sum - 100.0).abs() < 1e-6);
        }
    }
}
