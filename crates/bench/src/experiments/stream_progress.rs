//! E13 — the streaming behaviour Figures 4 and 5 illustrate with
//! screenshots: streamed triangles over time for view-dependent
//! isosurface extraction (Engine) and streamed λ₂ vortices (Propfan),
//! plus the batch-size ablation (latency vs overhead, the "good
//! compromise between low latency and interactivity" of §5.2).

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> Vec<ExperimentResult> {
    let mut progress = ExperimentResult::new(
        "e13-stream",
        "Streamed geometry arrival over time",
        "Figures 4 & 5 (proxy)",
    );
    // Engine ViewerIso arrival series.
    {
        let mut h = Harness::launch(Dataset::Engine, cfg, 4, proxy_with_prefetcher("obl"));
        let rec = h.run("ViewerIso", cfg, 4.min(h.n_workers()));
        h.finish();
        for (t, cum) in sample_series(&rec.packet_series, 8) {
            progress.push(Row::new(
                "ViewerIso (Engine)",
                format!("t={t:.1}s"),
                cum as f64,
                "cumulative triangles",
            ));
        }
    }
    // Propfan StreamedVortex arrival series.
    {
        let mut h = Harness::launch(Dataset::Propfan, cfg, 4, proxy_with_prefetcher("obl"));
        let rec = h.run("StreamedVortex", cfg, 4.min(h.n_workers()));
        h.finish();
        for (t, cum) in sample_series(&rec.packet_series, 8) {
            progress.push(Row::new(
                "StreamedVortex (Propfan)",
                format!("t={t:.1}s"),
                cum as f64,
                "cumulative triangles",
            ));
        }
    }
    progress.note(
        "The figures themselves are VR screenshots; the streaming behaviour \
         they illustrate is the monotone growth of delivered geometry long \
         before the job completes.",
    );

    // Batch-size ablation on the Engine.
    let mut batch = ExperimentResult::new(
        "e13-batch",
        "Streaming batch size: latency vs total runtime (Engine ViewerIso)",
        "§5.2 trade-off",
    );
    for batch_size in [500usize, 2000, 8000] {
        let mut h = Harness::launch(Dataset::Engine, cfg, 2, proxy_with_prefetcher("obl"));
        let params = h
            .params_for("ViewerIso", cfg)
            .set("batch", batch_size);
        let rec = h.run_with("ViewerIso", params, 2);
        h.finish();
        let x = format!("batch={batch_size}");
        batch.push(Row::new("latency", x.clone(), rec.latency_s, "modeled s"));
        batch.push(Row::new("total runtime", x.clone(), rec.total_s, "modeled s"));
        batch.push(Row::new(
            "packets",
            x,
            rec.packet_series.len() as f64,
            "modeled s",
        ));
    }
    batch.note(
        "Smaller batches lower the first-result latency but multiply \
         per-packet transmission overhead — many work nodes 'literally \
         firing data at the visualization system' can overload it (§5.2).",
    );
    vec![progress, batch]
}

/// Downsamples an arrival series to at most `n` evenly spaced points
/// (always keeping the first and last).
fn sample_series(series: &[(f64, u64)], n: usize) -> Vec<(f64, u64)> {
    if series.len() <= n {
        return series.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = i * (series.len() - 1) / (n - 1);
        out.push(series[idx]);
    }
    out.dedup_by_key(|p| p.0.to_bits());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_series_keeps_endpoints() {
        let _guard = crate::timing_lock();
        let s: Vec<(f64, u64)> = (0..100).map(|i| (i as f64, i as u64)).collect();
        let d = sample_series(&s, 8);
        assert!(d.len() <= 8);
        assert_eq!(d[0], s[0]);
        assert_eq!(*d.last().unwrap(), *s.last().unwrap());
    }

    #[test]
    fn progress_series_is_monotone() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.worker_sweep = vec![2];
        let results = run(&cfg);
        let progress = &results[0];
        for name in progress.series_names() {
            let vals: Vec<f64> = progress.series(&name).iter().map(|(_, v)| *v).collect();
            assert!(
                vals.windows(2).all(|w| w[1] >= w[0]),
                "{name}: cumulative triangles must grow: {vals:?}"
            );
        }
    }
}
