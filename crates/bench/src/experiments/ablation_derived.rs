//! E17 — derived-data caching (extension of the §4 naming scheme): the
//! explorative λ₂ threshold sweep of §1.1 with and without memoizing the
//! derived scalar field.
//!
//! The paper's DMS names items by *source, type, format and parameters*
//! precisely so that derived quantities can be first-class data items.
//! This experiment quantifies the payoff: once the λ₂ field of a block
//! is a cached item, every threshold adjustment costs only the
//! re-contouring.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};
use vira_vista::CommandParams;

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "e17-derived",
        "Derived λ₂-field caching across an explorative threshold sweep (Engine)",
        "§1.1 + §4 extension",
    );
    // The user's trial-and-error loop: five thresholds around zero.
    let thresholds = [-4.0e4, -2.0e4, -1.0e4, -5.0e3, -2.5e3];
    for cached in [false, true] {
        let mut h = Harness::launch(Dataset::Engine, cfg, 2, proxy_with_prefetcher("obl"));
        let label = if cached {
            "with field caching"
        } else {
            "without field caching"
        };
        let mut total_runtime = 0.0;
        let mut total_compute = 0.0;
        for (n, &t) in thresholds.iter().enumerate() {
            let params = CommandParams::new()
                .set("threshold", t)
                .set("n_steps", Dataset::Engine.steps(cfg))
                .set("cache_fields", if cached { "true" } else { "false" });
            let rec = h.run_with("VortexDataMan", params, 2);
            total_runtime += rec.total_s;
            total_compute += rec.report.compute_s;
            e.push(Row::new(
                label,
                format!("tweak #{n}"),
                rec.total_s,
                "modeled s",
            ));
        }
        h.finish();
        e.push(Row::new(label, "sweep total", total_runtime, "modeled s"));
        e.push(Row::new(label, "sweep compute", total_compute, "modeled s"));
    }
    e.note(
        "Five-threshold sweep over the full Engine dataset; the first \
         tweak pays the λ₂ derivation in both configurations, subsequent \
         tweaks reuse the memoized field when caching is on.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_caching_accelerates_the_sweep() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.engine_steps = 4;
        let e = run(&cfg);
        let total = |label: &str| {
            e.rows
                .iter()
                .find(|r| r.series == label && r.x == "sweep total")
                .unwrap()
                .value
        };
        assert!(
            total("with field caching") < total("without field caching") * 0.8,
            "cached {} vs uncached {}",
            total("with field caching"),
            total("without field caching")
        );
    }
}
