//! E19 — the load plane: thousands of synthetic Vista sessions driven
//! through the in-process back-end by `viracocha::loadgen`, with and
//! without admission control.
//!
//! Three studies on the same seeded mixed command stream (iso / λ₂ /
//! pathlines / progressive):
//!
//! 1. **Closed loop** — per-session think-time rounds, the sustainable
//!    baseline. Reported: throughput and job-latency / TTFG tails.
//! 2. **Open loop, admission off** — Poisson arrivals faster than the
//!    back-end serves; the queue absorbs the excess (the historical
//!    unbounded behavior). Reported: tail latencies under overload.
//! 3. **Open loop, tight quotas** — the same offered stream against a
//!    bounded queue and per-session quotas: excess is shed with a
//!    retry-after hint instead of queued. Reported: offered vs.
//!    admitted vs. shed throughput and the (smaller) tails of the jobs
//!    that were admitted.
//!
//! Expectation: shedding trades completed work for tail latency — the
//! quota run completes fewer jobs but its admitted jobs see far lower
//! p99 than the unbounded overload run.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use std::sync::Arc;
use vira_storage::source::SynthSource;
use vira_vista::VistaClient;
use viracocha::loadgen::{self, Arrival, LoadOutcome, LoadPlan};
use viracocha::{Viracocha, ViracochaConfig};

/// Exact percentile over raw samples (not histogram-bucketed): the
/// bench report is the ground truth the live plane's bucketed
/// quantiles are compared against.
pub fn percentile_ns(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

/// One configuration of the study: launch a fresh back-end, drive the
/// plan, shut down.
pub fn drive(workers: usize, admission_bound: Option<usize>, plan: &LoadPlan) -> LoadOutcome {
    let mut config = ViracochaConfig::for_tests(workers);
    if let Some(bound) = admission_bound {
        config.admission.enabled = true;
        config.admission.max_queue_depth = bound;
        config.admission.max_session_queued = 2;
        config.admission.max_session_running = 1;
        config.admission.retry_after_ms = 1;
    }
    let (backend, link) = Viracocha::launch(config);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(vira_grid::synth::test_cube(
            6, 2,
        )))),
        false,
    );
    let mut client = VistaClient::new(link);
    let out = loadgen::run(&mut client, plan).expect("load run");
    client.shutdown().expect("shutdown");
    backend.join();
    out
}

fn push_outcome(e: &mut ExperimentResult, series: &str, out: &LoadOutcome) {
    let wall_s = (out.wall_ns as f64 / 1e9).max(1e-9);
    e.push(Row::new(series, "offered", out.offered as f64, "jobs"));
    e.push(Row::new(series, "admitted", out.admitted() as f64, "jobs"));
    e.push(Row::new(series, "shed", out.shed as f64, "jobs"));
    e.push(Row::new(series, "completed", out.completed as f64, "jobs"));
    e.push(Row::new(
        series,
        "goodput",
        out.completed as f64 / wall_s,
        "jobs/s",
    ));
    for (q, label) in [(0.50, "job p50"), (0.99, "job p99"), (0.999, "job p999")] {
        e.push(Row::new(
            series,
            label,
            percentile_ns(&out.job_latency_ns, q) as f64 / 1e6,
            "ms",
        ));
    }
    e.push(Row::new(
        series,
        "ttfg p99",
        percentile_ns(&out.ttfg_ns, 0.99) as f64 / 1e6,
        "ms",
    ));
}

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "e19-load",
        "session load plane: arrival processes and admission control",
        "§1.1 many-analyst operation (load study)",
    );
    // Scale the session count down for quick runs, up for full ones.
    let quick = cfg.max_workers() <= 4;
    let (sessions, jobs) = if quick { (64, 192) } else { (2000, 4000) };
    let workers = 2;

    let closed = drive(
        workers,
        None,
        &LoadPlan::new(
            sessions,
            jobs,
            19,
            Arrival::ClosedLoop { think_ms: 1 },
            "TestCube",
        ),
    );
    push_outcome(&mut e, "closed-loop", &closed);

    let mut open = LoadPlan::new(
        sessions,
        jobs,
        19,
        Arrival::OpenLoop { rate_hz: 500.0 },
        "TestCube",
    );
    open.window = 64;
    let unbounded = drive(workers, None, &open);
    push_outcome(&mut e, "open-loop unbounded", &unbounded);

    let quota = drive(workers, Some(8), &open);
    push_outcome(&mut e, "open-loop tight-quota", &quota);

    e.note(format!(
        "{sessions} sessions, {jobs} offered jobs per configuration, seeded \
         mixed stream (IsoDataMan / VortexDataMan / PathlinesDataMan / \
         ProgressiveIso) on the test cube, {workers} workers."
    ));
    e.note(
        "Open-loop runs offer 500 jobs/s Poisson — far above service \
         capacity; the unbounded run queues the excess, the quota run \
         (queue bound 8, 2 queued + 1 running per session) sheds it.",
    );
    e.note(
        "Expectation: the quota run completes fewer jobs but its admitted \
         jobs see much lower tail latency than the unbounded overload run.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_raw_samples() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&s, 0.50), 50);
        assert_eq!(percentile_ns(&s, 0.99), 99);
        assert_eq!(percentile_ns(&s, 0.999), 100);
        assert_eq!(percentile_ns(&[], 0.5), 0);
    }

    #[test]
    fn tight_quotas_shed_and_cut_the_tail() {
        let _guard = crate::timing_lock();
        let sessions = 4;
        let jobs = 48;
        let mut open = LoadPlan::new(
            sessions,
            jobs,
            7,
            Arrival::OpenLoop { rate_hz: 2000.0 },
            "TestCube",
        );
        open.window = 32;
        let unbounded = drive(1, None, &open);
        let quota = drive(1, Some(4), &open);
        assert!(unbounded.balanced(), "{unbounded:?}");
        assert!(quota.balanced(), "{quota:?}");
        assert_eq!(unbounded.shed, 0, "no admission control, no sheds");
        assert_eq!(unbounded.completed, jobs as u64);
        assert!(quota.shed > 0, "tight quotas must shed: {quota:?}");
        assert!(quota.completed > 0);
        // The whole point of shedding: admitted jobs wait behind a
        // bounded queue, so their completion tail shrinks.
        let p99_unbounded = percentile_ns(&unbounded.job_latency_ns, 0.99);
        let p99_quota = percentile_ns(&quota.job_latency_ns, 0.99);
        assert!(
            p99_quota < p99_unbounded,
            "bounded queue must cut the admitted tail ({p99_quota} vs {p99_unbounded})"
        );
    }
}
