//! E1 — Table 1: the multi-block test data sets.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::Dataset;

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new("table1", "Multi-block test data sets", "Table 1");
    for d in [Dataset::Engine, Dataset::Propfan] {
        let ds = d.build(cfg);
        let spec = &ds.spec;
        e.push(Row::new(d.name(), "# of time steps", spec.n_steps as f64, ""));
        e.push(Row::new(d.name(), "# of blocks", spec.n_blocks as f64, ""));
        e.push(Row::new(
            d.name(),
            "Size on disk [GB] (nominal)",
            spec.nominal_disk_bytes as f64 / (1024.0 * 1024.0 * 1024.0),
            "",
        ));
        e.push(Row::new(
            d.name(),
            "Points per block (scaled grid)",
            spec.block_dims.n_points() as f64,
            "",
        ));
    }
    e.note(
        "Nominal sizes match the paper (1.12 GB / 19.5 GB); actual grids are \
         scaled-down analytic stand-ins with identical block and time-step \
         structure (see DESIGN.md substitutions).",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_structure() {
        let _guard = crate::timing_lock();
        let e = run(&BenchConfig::quick());
        let engine_steps = e
            .rows
            .iter()
            .find(|r| r.series == "Engine" && r.x == "# of time steps")
            .unwrap();
        assert_eq!(engine_steps.value, 63.0);
        let propfan_blocks = e
            .rows
            .iter()
            .find(|r| r.series == "Propfan" && r.x == "# of blocks")
            .unwrap();
        assert_eq!(propfan_blocks.value, 144.0);
    }
}
