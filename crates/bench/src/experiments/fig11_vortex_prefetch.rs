//! E7 — Figure 11: Engine λ₂ runtime on a **cold** cache, without and
//! with (OBL) prefetching.
//!
//! Expected shape: prefetching overlaps I/O with the λ₂ computation, so
//! the cold-start runtimes approach the warm-cache numbers; the benefit
//! shrinks as workers multiply ("the less time the computation takes,
//! the lower the number of prefetches that are possible", §7.2).

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        "fig11",
        "Engine, Lambda-2, cold-cache runtime without and with prefetching",
        "Figure 11",
    );
    // Cold runs are the noisiest measurements of the suite; each
    // configuration is run twice from scratch and the minimum is taken.
    let best_cold = |prefetcher: &str, w: usize| -> f64 {
        (0..2)
            .map(|_| {
                let mut h =
                    Harness::launch(Dataset::Engine, cfg, w, proxy_with_prefetcher(prefetcher));
                let r = h.run("VortexDataMan", cfg, w);
                h.finish();
                r.total_s
            })
            .fold(f64::INFINITY, f64::min)
    };
    for &w in &cfg.worker_sweep {
        let without = best_cold("none", w);
        let with = best_cold("obl", w);
        let x = format!("workers={w}");
        e.push(Row::new("without prefetching", x.clone(), without, "modeled s"));
        e.push(Row::new("with prefetching", x, with, "modeled s"));
    }
    e.note(
        "Cold caches in both configurations — the total-miss scenario of a \
         time-varying data set with uncached next time levels (§7.2).",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_reduces_cold_runtime() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.worker_sweep = vec![1];
        let e = run(&cfg);
        let without = e.series("without prefetching")[0].1;
        let with = e.series("with prefetching")[0].1;
        assert!(
            with < without,
            "prefetching must overlap I/O with compute: {with} vs {without}"
        );
    }
}
