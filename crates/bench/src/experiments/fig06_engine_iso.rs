//! E2 — Figure 6: Engine, isosurface extraction, total runtime over the
//! worker sweep for `SimpleIso`, `ViewerIso` and `IsoDataMan`.
//!
//! Methodology (paper §7): DMS commands are measured on a warm cache;
//! `SimpleIso` has no cache. Expected shape: IsoDataMan ≪ SimpleIso (the
//! "grand leap" from eliminating loading), ViewerIso slightly above
//! IsoDataMan (BSP + streaming overhead), diminishing returns toward 16
//! workers.

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> ExperimentResult {
    sweep_iso(cfg, Dataset::Engine, "fig06", "Figure 6")
}

pub(crate) fn sweep_iso(
    cfg: &BenchConfig,
    dataset: Dataset,
    id: &str,
    paper_ref: &str,
) -> ExperimentResult {
    let mut e = ExperimentResult::new(
        id,
        &format!("{}, isosurface, total runtime", dataset.name()),
        paper_ref,
    );
    for &w in &cfg.worker_sweep {
        // Fresh back-end per configuration: caches start cold, the warm
        // run fills them exactly as the paper's advance call does.
        let mut h = Harness::launch(dataset, cfg, w, proxy_with_prefetcher("obl"));
        let simple = h.run("SimpleIso", cfg, w);
        let viewer = h.run_warm("ViewerIso", cfg, w);
        let dataman = h.run_warm("IsoDataMan", cfg, w);
        h.finish();
        let x = format!("workers={w}");
        e.push(Row::new("SimpleIso", x.clone(), simple.total_s, "modeled s"));
        e.push(Row::new("ViewerIso", x.clone(), viewer.total_s, "modeled s"));
        e.push(Row::new("IsoDataMan", x, dataman.total_s, "modeled s"));
    }
    e.note(format!(
        "{} time steps per run; DMS commands measured on warm caches.",
        dataset.steps(cfg)
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_iso_shape_holds() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.worker_sweep = vec![1, 2];
        let e = run(&cfg);
        let simple = e.series("SimpleIso");
        let dataman = e.series("IsoDataMan");
        // Data management wins at every worker count.
        for (s, d) in simple.iter().zip(&dataman) {
            assert!(d.1 < s.1, "IsoDataMan {d:?} must beat SimpleIso {s:?}");
        }
        // Parallelization helps SimpleIso.
        assert!(simple[1].1 < simple[0].1);
    }
}
