//! The per-table / per-figure experiment implementations.
//!
//! See DESIGN.md's experiment index: each module regenerates one (or a
//! coupled pair) of the paper's tables and figures, printing the same
//! rows/series the paper reports in modeled seconds.

pub mod ablation_cache_policies;
pub mod ablation_compression;
pub mod ablation_derived;
pub mod ablation_loading;
pub mod ablation_progressive;
pub mod fig06_engine_iso;
pub mod fig07_08_propfan_iso;
pub mod fig09_engine_vortex;
pub mod fig10_12_propfan_vortex;
pub mod fig11_vortex_prefetch;
pub mod fig13_pathlines;
pub mod fig14_pathline_prefetch;
pub mod fig15_components;
pub mod load_plane;
pub mod sched_backfill;
pub mod stream_progress;
pub mod table1_datasets;

use crate::config::BenchConfig;
use crate::result::ExperimentResult;

/// All experiment ids in run order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "fig06",
        "fig07-08",
        "fig09",
        "fig10-12",
        "fig11",
        "fig13",
        "fig14",
        "fig15",
        "e12-policies",
        "e13-stream",
        "e14-loading",
        "e15-progressive",
        "e16-compression",
        "e17-derived",
        "e18-sched",
        "e19-load",
    ]
}

/// Runs one experiment by id; an id can produce several results (coupled
/// figures measured in the same runs).
pub fn run_experiment(id: &str, cfg: &BenchConfig) -> Option<Vec<ExperimentResult>> {
    Some(match id {
        "table1" => vec![table1_datasets::run(cfg)],
        "fig06" => vec![fig06_engine_iso::run(cfg)],
        "fig07-08" => fig07_08_propfan_iso::run(cfg),
        "fig09" => vec![fig09_engine_vortex::run(cfg)],
        "fig10-12" => fig10_12_propfan_vortex::run(cfg),
        "fig11" => vec![fig11_vortex_prefetch::run(cfg)],
        "fig13" => vec![fig13_pathlines::run(cfg)],
        "fig14" => vec![fig14_pathline_prefetch::run(cfg)],
        "fig15" => vec![fig15_components::run(cfg)],
        "e12-policies" => vec![ablation_cache_policies::run(cfg)],
        "e13-stream" => stream_progress::run(cfg),
        "e14-loading" => vec![ablation_loading::run(cfg)],
        "e15-progressive" => vec![ablation_progressive::run(cfg)],
        "e16-compression" => vec![ablation_compression::run(cfg)],
        "e17-derived" => vec![ablation_derived::run(cfg)],
        "e18-sched" => vec![sched_backfill::run(cfg)],
        "e19-load" => vec![load_plane::run(cfg)],
        _ => return None,
    })
}
