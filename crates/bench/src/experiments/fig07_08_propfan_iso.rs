//! E3 + E4 — Figures 7 and 8: Propfan isosurface total runtime and
//! latency, measured in the same runs.
//!
//! Figure 8's expected shape: `ViewerIso` latency is small and almost
//! constant with respect to the number of workers (the first worker
//! streams its first batch as soon as any data is available), while
//! `IsoDataMan`'s latency *is* its total runtime (a single transmission
//! after the computation finishes).

use crate::config::BenchConfig;
use crate::result::{ExperimentResult, Row};
use crate::runner::{proxy_with_prefetcher, Dataset, Harness};

pub fn run(cfg: &BenchConfig) -> Vec<ExperimentResult> {
    let mut fig07 = ExperimentResult::new(
        "fig07",
        "Propfan, isosurface, total runtime",
        "Figure 7",
    );
    let mut fig08 = ExperimentResult::new(
        "fig08",
        "Propfan, isosurface, latency time",
        "Figure 8",
    );
    for &w in &cfg.worker_sweep {
        let mut h = Harness::launch(Dataset::Propfan, cfg, w, proxy_with_prefetcher("obl"));
        let simple = h.run("SimpleIso", cfg, w);
        let viewer = h.run_warm("ViewerIso", cfg, w);
        let dataman = h.run_warm("IsoDataMan", cfg, w);
        h.finish();
        let x = format!("workers={w}");
        fig07.push(Row::new("SimpleIso", x.clone(), simple.total_s, "modeled s"));
        fig07.push(Row::new("ViewerIso", x.clone(), viewer.total_s, "modeled s"));
        fig07.push(Row::new("IsoDataMan", x.clone(), dataman.total_s, "modeled s"));
        fig08.push(Row::new("ViewerIso", x.clone(), viewer.latency_s, "modeled s"));
        fig08.push(Row::new("IsoDataMan", x, dataman.latency_s, "modeled s"));
    }
    let note = format!(
        "{} of 50 Propfan time steps per run (modeled totals scale linearly).",
        Dataset::Propfan.steps(cfg)
    );
    fig07.note(note.clone());
    fig08.note(
        "IsoDataMan latency equals its total runtime: the only transmission \
         happens after the computation completes (§7.1).",
    );
    fig08.note(note);
    vec![fig07, fig08]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_shape_holds() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.worker_sweep = vec![1, 2];
        let results = run(&cfg);
        let fig08 = &results[1];
        let viewer = fig08.series("ViewerIso");
        let dataman = fig08.series("IsoDataMan");
        // Streaming always delivers first results earlier.
        for (v, d) in viewer.iter().zip(&dataman) {
            assert!(v.1 < d.1, "ViewerIso latency {v:?} must beat {d:?}");
        }
    }
}
