//! E6 + E8 — Figures 10 and 12: Propfan λ₂ total runtime and latency,
//! measured in the same runs.
//!
//! Figure 12's headline: streamed first results in a few modeled seconds
//! versus tens of seconds for the non-streamed command's final package
//! (§7.2: ~4.2 s vs ~45 s at 16 workers in the paper).

use crate::config::BenchConfig;
use crate::experiments::fig09_engine_vortex::sweep_vortex;
use crate::result::ExperimentResult;
use crate::runner::Dataset;

pub fn run(cfg: &BenchConfig) -> Vec<ExperimentResult> {
    let (mut runtime, mut latency) = sweep_vortex(cfg, Dataset::Propfan, "fig10", "Figure 10");
    latency.id = "fig12".into();
    runtime.note(
        "λ₂ incorporates extensive floating-point work: runtimes are \
         significantly higher than the isosurface case (§7.2).",
    );
    latency.note(
        "Streaming presents first vortex fragments long before the \
         non-streamed command's single final transmission.",
    );
    vec![runtime, latency]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_latency_beats_final_delivery() {
        let _guard = crate::timing_lock();
        let mut cfg = BenchConfig::quick();
        cfg.worker_sweep = vec![2];
        let results = run(&cfg);
        let fig12 = &results[1];
        let streamed = fig12.series("StreamedVortex");
        let dataman = fig12.series("VortexDataMan");
        assert!(streamed[0].1 < dataman[0].1);
    }
}
