//! Criterion micro-benchmarks of the extraction and DMS kernels that sit
//! in the framework's inner loops: the *real* (undilated) computational
//! costs, complementing the modeled-time experiment benches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vira_dms::cache::{CachePayload, MemoryCache};
use vira_dms::name::ItemId;
use vira_dms::policy::policy_by_name;
use vira_dms::prefetch::{MarkovPrefetch, Prefetcher};
use vira_extract::bricktree::BrickTree;
use vira_extract::bsp::BspTree;
use vira_extract::eigen::symmetric_eigenvalues;
use vira_extract::iso::{
    extract_isosurface, extract_isosurface_oracle, extract_isosurface_soa_with_tree,
    extract_isosurface_with_tree,
};
use vira_extract::lambda2::{lambda2_field, lambda2_field_oracle, lambda2_field_soa};
use vira_extract::locate::{invert_trilinear, invert_trilinear_oracle, BlockLocator};
use vira_extract::mesh::TriangleSoup;
use vira_extract::par::scoped_map;
use vira_extract::tetra::{contour_cell, CELL_TETRAHEDRA};
use vira_extract::pathline::{trace_pathline, AnalyticSampler, PathlineConfig};
use vira_grid::block::BlockStepId;
use vira_grid::field::{BlockData, ScalarField, ScalarFieldSoA};
use vira_grid::math::{Mat3, Vec3};
use vira_grid::synth::test_cube;

fn vortex_block(res: usize) -> BlockData {
    test_cube(res, 1).generate(BlockStepId::new(0, 0))
}

fn speed_field(data: &BlockData) -> ScalarField {
    data.velocity.magnitude()
}

fn bench_eigen(c: &mut Criterion) {
    let m = Mat3::from_rows(
        Vec3::new(4.0, -2.0, 0.5),
        Vec3::new(-2.0, 1.0, 3.0),
        Vec3::new(0.5, 3.0, -2.0),
    );
    c.bench_function("eigen/symmetric_3x3", |b| {
        b.iter(|| symmetric_eigenvalues(black_box(&m)))
    });
}

fn bench_iso(c: &mut Criterion) {
    let data = vortex_block(17);
    let field = speed_field(&data);
    c.bench_function("iso/extract_block_17cubed", |b| {
        b.iter(|| extract_isosurface(black_box(&data.grid), black_box(&field), 0.15))
    });
}

// ---- baseline contouring kernel (pre case-table), for comparison ----
//
// The original scan-based marching-tetrahedra kernel allocated three
// Vecs per crossed tetrahedron. It is kept here verbatim so
// `tetra/contour_cell_active` vs `tetra/contour_cell_active_baseline`
// measures exactly what the allocation-free rewrite bought.

fn edge_point(pa: Vec3, pb: Vec3, sa: f64, sb: f64, iso: f64) -> Vec3 {
    let t = (iso - sa) / (sb - sa);
    pa.lerp(pb, t.clamp(0.0, 1.0))
}

fn push_oriented(out: &mut TriangleSoup, a: Vec3, b: Vec3, c: Vec3, toward: Vec3) {
    let n = (b - a).cross(c - a);
    if n.dot(toward) < 0.0 {
        out.push_tri(a, c, b);
    } else {
        out.push_tri(a, b, c);
    }
}

fn contour_tetra_baseline(p: &[Vec3; 4], s: &[f64; 4], iso: f64, out: &mut TriangleSoup) -> usize {
    let mut mask = 0usize;
    for (i, &si) in s.iter().enumerate() {
        if si > iso {
            mask |= 1 << i;
        }
    }
    if mask == 0 || mask == 0b1111 {
        return 0;
    }
    let inside: Vec<usize> = (0..4).filter(|&i| mask & (1 << i) != 0).collect();
    match inside.len() {
        1 | 3 => {
            let lone = if inside.len() == 1 {
                inside[0]
            } else {
                (0..4).find(|i| !inside.contains(i)).expect("one outside")
            };
            let others: Vec<usize> = (0..4).filter(|&i| i != lone).collect();
            let v: Vec<Vec3> = others
                .iter()
                .map(|&o| edge_point(p[lone], p[o], s[lone], s[o], iso))
                .collect();
            let centroid_others = (p[others[0]] + p[others[1]] + p[others[2]]) / 3.0;
            let toward = if s[lone] > iso {
                centroid_others - p[lone]
            } else {
                p[lone] - centroid_others
            };
            push_oriented(out, v[0], v[1], v[2], toward);
            1
        }
        2 => {
            let (a, b) = (inside[0], inside[1]);
            let outside: Vec<usize> = (0..4).filter(|&i| i != a && i != b).collect();
            let (c, d) = (outside[0], outside[1]);
            let q0 = edge_point(p[a], p[c], s[a], s[c], iso);
            let q1 = edge_point(p[b], p[c], s[b], s[c], iso);
            let q2 = edge_point(p[b], p[d], s[b], s[d], iso);
            let q3 = edge_point(p[a], p[d], s[a], s[d], iso);
            let toward = (p[c] + p[d] - p[a] - p[b]) * 0.5;
            push_oriented(out, q0, q1, q2, toward);
            push_oriented(out, q0, q2, q3, toward);
            2
        }
        _ => unreachable!(),
    }
}

fn contour_cell_baseline(
    corners: &[Vec3; 8],
    scalars: &[f64; 8],
    iso: f64,
    out: &mut TriangleSoup,
) -> usize {
    let mut n = 0;
    for tet in &CELL_TETRAHEDRA {
        let p = [
            corners[tet[0]],
            corners[tet[1]],
            corners[tet[2]],
            corners[tet[3]],
        ];
        let s = [
            scalars[tet[0]],
            scalars[tet[1]],
            scalars[tet[2]],
            scalars[tet[3]],
        ];
        n += contour_tetra_baseline(&p, &s, iso, out);
    }
    n
}

fn bench_contour(c: &mut Criterion) {
    // An active cell where all six tetrahedra cross the iso level —
    // the worst (and hottest) case of the inner loop.
    let corners = [
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        Vec3::new(1.0, 1.0, 0.0),
        Vec3::new(0.0, 0.0, 1.0),
        Vec3::new(1.0, 0.0, 1.0),
        Vec3::new(0.0, 1.0, 1.0),
        Vec3::new(1.0, 1.0, 1.0),
    ];
    let scalars = [0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6];
    let mut out = TriangleSoup::with_capacity(16);
    c.bench_function("tetra/contour_cell_active", |b| {
        b.iter(|| {
            out.positions.clear();
            contour_cell(black_box(&corners), black_box(&scalars), 0.5, &mut out)
        })
    });
    c.bench_function("tetra/contour_cell_active_baseline", |b| {
        b.iter(|| {
            out.positions.clear();
            contour_cell_baseline(black_box(&corners), black_box(&scalars), 0.5, &mut out)
        })
    });
}

fn bench_bricktree(c: &mut Criterion) {
    // A sparse feature — small sphere in a 25³ block — is the case the
    // bricktree exists for.
    let data = vortex_block(25);
    let grid = &data.grid;
    let field = ScalarField::from_fn(grid.dims, |i, j, k| {
        (grid.point(i, j, k) - Vec3::splat(0.5)).norm()
    });
    let iso = 0.15;
    c.bench_function("bricktree/build_25cubed", |b| {
        b.iter(|| BrickTree::build(black_box(&field)))
    });
    let tree = BrickTree::build(&field);
    c.bench_function("bricktree/scan_sparse_25cubed", |b| {
        b.iter(|| {
            let mut n = 0usize;
            tree.scan_candidates(black_box(iso), |_, _, _| n += 1);
            n
        })
    });
    c.bench_function("iso/extract_sparse_pruned", |b| {
        b.iter(|| extract_isosurface_with_tree(grid, black_box(&field), iso, Some(&tree)))
    });
    c.bench_function("iso/extract_sparse_unpruned", |b| {
        b.iter(|| extract_isosurface_with_tree(grid, black_box(&field), iso, None))
    });
}

fn bench_mesh_encode(c: &mut Criterion) {
    let data = vortex_block(17);
    let field = speed_field(&data);
    let (soup, _) = extract_isosurface(&data.grid, &field, 0.15);
    assert!(!soup.is_empty());
    c.bench_function("mesh/soup_to_bytes", |b| {
        b.iter(|| black_box(&soup).to_bytes())
    });
    let bytes = soup.to_bytes();
    c.bench_function("mesh/soup_from_bytes", |b| {
        b.iter(|| TriangleSoup::from_bytes(black_box(bytes.clone())).expect("well-formed"))
    });
}

fn bench_lambda2(c: &mut Criterion) {
    let data = vortex_block(17);
    c.bench_function("lambda2/field_block_17cubed", |b| {
        b.iter(|| lambda2_field(black_box(&data)))
    });
    // SoA staged row kernels vs the retained per-point AoS oracle — the
    // pair that backs the λ₂ acceptance ratio in BENCH_micro.json.
    c.bench_function("lambda2/field_soa", |b| {
        b.iter(|| lambda2_field_soa(black_box(&data)))
    });
    c.bench_function("lambda2/field_aos", |b| {
        b.iter(|| lambda2_field_oracle(black_box(&data)))
    });
}

fn bench_soa_contour(c: &mut Criterion) {
    // Vectorized SoA cell scan vs the retained AoS oracle, unpruned on
    // the sparse 25³ sphere so the pair isolates the *scan* (the part
    // the SoA rewrite vectorizes) rather than the shared triangulation
    // of active cells; pruned-vs-unpruned is bench_bricktree's job.
    let data = vortex_block(25);
    let grid = &data.grid;
    let field = ScalarField::from_fn(grid.dims, |i, j, k| {
        (grid.point(i, j, k) - Vec3::splat(0.5)).norm()
    });
    let iso = 0.15;
    let soa = ScalarFieldSoA::from(field.clone());
    c.bench_function("contour/block_scan_soa", |b| {
        b.iter(|| extract_isosurface_soa_with_tree(grid, black_box(&soa), iso, None))
    });
    c.bench_function("contour/block_scan_aos", |b| {
        b.iter(|| extract_isosurface_oracle(grid, black_box(&field), iso, None))
    });
}

/// The branchy scalar min/max fold `ScalarField::range` used before the
/// lane scan, retained as the AoS side of the `minmax` pair.
fn scalar_range(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Some((lo, hi))
}

fn bench_minmax(c: &mut Criterion) {
    let data = vortex_block(25);
    let speed = speed_field(&data);
    c.bench_function("minmax/block_range_lanes", |b| {
        b.iter(|| black_box(&speed).range())
    });
    c.bench_function("minmax/block_range_scalar", |b| {
        b.iter(|| scalar_range(black_box(&speed.values)))
    });
}

fn bench_newton_locate(c: &mut Criterion) {
    // Newton trilinear inversion on a sheared cell: fused residual +
    // Jacobian accumulation vs the two-pass oracle.
    let shear = |u: f64, v: f64, w: f64| {
        Vec3::new(u + 0.3 * v + 0.1 * w, v + 0.2 * w * u, w + 0.15 * u * v)
    };
    let cell = [
        shear(0.0, 0.0, 0.0),
        shear(1.0, 0.0, 0.0),
        shear(0.0, 1.0, 0.0),
        shear(1.0, 1.0, 0.0),
        shear(0.0, 0.0, 1.0),
        shear(1.0, 0.0, 1.0),
        shear(0.0, 1.0, 1.0),
        shear(1.0, 1.0, 1.0),
    ];
    let probe = shear(0.37, 0.61, 0.22);
    assert!(invert_trilinear(&cell, probe).is_some());
    c.bench_function("locate/newton_fused", |b| {
        b.iter(|| invert_trilinear(black_box(&cell), black_box(probe)))
    });
    c.bench_function("locate/newton_aos", |b| {
        b.iter(|| invert_trilinear_oracle(black_box(&cell), black_box(probe)))
    });
}

fn bench_parallel_extract(c: &mut Criterion) {
    // Intra-worker parallel block extraction: 8 items of 17³ (one block
    // over 8 steps — the test-cube dataset is single-block), full SoA
    // extraction per item, scoped pool at 1/2/4/8 threads. On a
    // single-core box the >1t numbers measure pool overhead, not
    // speedup; the manifest notes flag them accordingly.
    let blocks: Vec<(BlockData, ScalarFieldSoA, BrickTree)> = (0..8)
        .map(|s| {
            let data = test_cube(17, 8).generate(BlockStepId::new(0, s));
            let soa: ScalarFieldSoA = speed_field(&data).into();
            let tree = BrickTree::build_soa(&soa);
            (data, soa, tree)
        })
        .collect();
    for threads in [1usize, 2, 4, 8] {
        c.bench_function(&format!("extract/parallel_blocks_{threads}t"), |b| {
            b.iter(|| {
                scoped_map(threads, &blocks, |_, (data, soa, tree)| {
                    extract_isosurface_soa_with_tree(&data.grid, soa, 0.15, Some(tree))
                })
            })
        });
    }
}

fn bench_bsp(c: &mut Criterion) {
    let data = vortex_block(17);
    let field = speed_field(&data);
    c.bench_function("bsp/build_block_17cubed", |b| {
        b.iter(|| BspTree::build(black_box(&data.grid), black_box(&field)))
    });
    let tree = BspTree::build(&data.grid, &field);
    c.bench_function("bsp/traverse_front_to_back", |b| {
        b.iter(|| {
            let mut n = 0usize;
            tree.traverse_front_to_back(0.15, Vec3::new(5.0, 0.0, 0.0), &field, |_| n += 1);
            n
        })
    });
}

fn bench_locate(c: &mut Criterion) {
    let data = vortex_block(17);
    let locator = BlockLocator::build(&data.grid);
    let p = Vec3::new(0.31, -0.12, 0.44);
    c.bench_function("locate/point_cold", |b| {
        b.iter(|| locator.locate(black_box(&data.grid), black_box(p), None))
    });
    c.bench_function("locate/point_with_hint", |b| {
        b.iter(|| locator.locate(black_box(&data.grid), black_box(p), Some((10, 7, 11))))
    });
}

fn bench_pathline(c: &mut Criterion) {
    c.bench_function("pathline/rigid_rotation_one_turn", |b| {
        b.iter(|| {
            let mut s = AnalyticSampler {
                f: |p: Vec3, _t| Vec3::new(-p.y, p.x, 0.0),
            };
            trace_pathline(
                &mut s,
                Vec3::new(1.0, 0.0, 0.0),
                0.0,
                std::f64::consts::TAU,
                &PathlineConfig::default(),
            )
        })
    });
}

struct Blob(usize);
impl CachePayload for Blob {
    fn payload_bytes(&self) -> usize {
        self.0
    }
}

fn bench_cache(c: &mut Criterion) {
    for policy in ["lru", "lfu", "fbr"] {
        c.bench_function(&format!("cache/{policy}_churn_1000"), |b| {
            b.iter(|| {
                let mut cache =
                    MemoryCache::new(64, policy_by_name(policy).expect("known policy"));
                for i in 0..1000u64 {
                    let id = ItemId(i % 128);
                    if cache.get(id).is_none() {
                        cache.insert(id, Arc::new(Blob(1)));
                    }
                }
                cache.len()
            })
        });
    }
}

fn bench_markov(c: &mut Criterion) {
    c.bench_function("prefetch/markov_advise", |b| {
        let mut m = MarkovPrefetch::first_order();
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 64;
            m.advise(BlockStepId::new(i, 0), false)
        })
    });
}

fn bench_compress(c: &mut Criterion) {
    let data = vortex_block(17);
    let raw = vira_storage::compress::payload_bytes_f32(&data);
    c.bench_function("compress/rle_block_payload", |b| {
        b.iter(|| vira_storage::compress::rle_compress(black_box(&raw)))
    });
}

fn bench_dataset_generate(c: &mut Criterion) {
    let ds = vira_grid::synth::engine(5);
    c.bench_function("synth/engine_generate_item", |b| {
        b.iter(|| ds.generate(black_box(BlockStepId::new(3, 7))))
    });
}

fn bench_obs(c: &mut Criterion) {
    // The overhead bound the observability layer promises: with tracing
    // disabled a span is one relaxed atomic load; enabled, an open+drop
    // pushes one fixed-size record into a thread-local ring.
    vira_obs::set_enabled(false);
    c.bench_function("obs/span_disabled", |b| {
        b.iter(|| vira_obs::span(black_box("bench.span"), "bench"))
    });
    vira_obs::set_enabled(true);
    c.bench_function("obs/span_enabled", |b| {
        b.iter(|| vira_obs::span(black_box("bench.span"), "bench").arg("i", 1u64))
    });
    vira_obs::set_enabled(false);
    let _ = vira_obs::drain();
    let counter = vira_obs::counter("obs_bench_scratch_total");
    c.bench_function("obs/counter_inc", |b| b.iter(|| counter.inc()));
    // Trace-context propagation: what every dispatch/run_job pays to
    // adopt a wire context (install + guard drop), and what a span
    // opened under an installed context pays extra for inheriting the
    // parent linkage.
    let ctx = vira_obs::TraceCtx {
        trace_id: 0x5eed,
        parent_span_id: 7,
    };
    c.bench_function("obs/install_ctx", |b| {
        b.iter(|| vira_obs::install_ctx(black_box(ctx)))
    });
    vira_obs::set_enabled(true);
    let _guard = vira_obs::install_ctx(ctx);
    c.bench_function("obs/span_under_ctx", |b| {
        b.iter(|| vira_obs::span(black_box("bench.span"), "bench").arg("i", 1u64))
    });
    drop(_guard);
    vira_obs::set_enabled(false);
    let _ = vira_obs::drain();
}

criterion_group!(
    benches,
    bench_eigen,
    bench_iso,
    bench_contour,
    bench_bricktree,
    bench_mesh_encode,
    bench_lambda2,
    bench_soa_contour,
    bench_minmax,
    bench_newton_locate,
    bench_parallel_extract,
    bench_bsp,
    bench_locate,
    bench_pathline,
    bench_cache,
    bench_markov,
    bench_compress,
    bench_dataset_generate,
    bench_obs
);
criterion_main!(benches);
