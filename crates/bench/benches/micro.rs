//! Criterion micro-benchmarks of the extraction and DMS kernels that sit
//! in the framework's inner loops: the *real* (undilated) computational
//! costs, complementing the modeled-time experiment benches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vira_dms::cache::{CachePayload, MemoryCache};
use vira_dms::name::ItemId;
use vira_dms::policy::policy_by_name;
use vira_dms::prefetch::{MarkovPrefetch, Prefetcher};
use vira_extract::bsp::BspTree;
use vira_extract::eigen::symmetric_eigenvalues;
use vira_extract::iso::extract_isosurface;
use vira_extract::lambda2::lambda2_field;
use vira_extract::locate::BlockLocator;
use vira_extract::pathline::{trace_pathline, AnalyticSampler, PathlineConfig};
use vira_grid::block::BlockStepId;
use vira_grid::field::{BlockData, ScalarField};
use vira_grid::math::{Mat3, Vec3};
use vira_grid::synth::test_cube;

fn vortex_block(res: usize) -> BlockData {
    test_cube(res, 1).generate(BlockStepId::new(0, 0))
}

fn speed_field(data: &BlockData) -> ScalarField {
    data.velocity.magnitude()
}

fn bench_eigen(c: &mut Criterion) {
    let m = Mat3::from_rows(
        Vec3::new(4.0, -2.0, 0.5),
        Vec3::new(-2.0, 1.0, 3.0),
        Vec3::new(0.5, 3.0, -2.0),
    );
    c.bench_function("eigen/symmetric_3x3", |b| {
        b.iter(|| symmetric_eigenvalues(black_box(&m)))
    });
}

fn bench_iso(c: &mut Criterion) {
    let data = vortex_block(17);
    let field = speed_field(&data);
    c.bench_function("iso/extract_block_17cubed", |b| {
        b.iter(|| extract_isosurface(black_box(&data.grid), black_box(&field), 0.15))
    });
}

fn bench_lambda2(c: &mut Criterion) {
    let data = vortex_block(17);
    c.bench_function("lambda2/field_block_17cubed", |b| {
        b.iter(|| lambda2_field(black_box(&data)))
    });
}

fn bench_bsp(c: &mut Criterion) {
    let data = vortex_block(17);
    let field = speed_field(&data);
    c.bench_function("bsp/build_block_17cubed", |b| {
        b.iter(|| BspTree::build(black_box(&data.grid), black_box(&field)))
    });
    let tree = BspTree::build(&data.grid, &field);
    c.bench_function("bsp/traverse_front_to_back", |b| {
        b.iter(|| {
            let mut n = 0usize;
            tree.traverse_front_to_back(0.15, Vec3::new(5.0, 0.0, 0.0), &field, |_| n += 1);
            n
        })
    });
}

fn bench_locate(c: &mut Criterion) {
    let data = vortex_block(17);
    let locator = BlockLocator::build(&data.grid);
    let p = Vec3::new(0.31, -0.12, 0.44);
    c.bench_function("locate/point_cold", |b| {
        b.iter(|| locator.locate(black_box(&data.grid), black_box(p), None))
    });
    c.bench_function("locate/point_with_hint", |b| {
        b.iter(|| locator.locate(black_box(&data.grid), black_box(p), Some((10, 7, 11))))
    });
}

fn bench_pathline(c: &mut Criterion) {
    c.bench_function("pathline/rigid_rotation_one_turn", |b| {
        b.iter(|| {
            let mut s = AnalyticSampler {
                f: |p: Vec3, _t| Vec3::new(-p.y, p.x, 0.0),
            };
            trace_pathline(
                &mut s,
                Vec3::new(1.0, 0.0, 0.0),
                0.0,
                std::f64::consts::TAU,
                &PathlineConfig::default(),
            )
        })
    });
}

struct Blob(usize);
impl CachePayload for Blob {
    fn payload_bytes(&self) -> usize {
        self.0
    }
}

fn bench_cache(c: &mut Criterion) {
    for policy in ["lru", "lfu", "fbr"] {
        c.bench_function(&format!("cache/{policy}_churn_1000"), |b| {
            b.iter(|| {
                let mut cache =
                    MemoryCache::new(64, policy_by_name(policy).expect("known policy"));
                for i in 0..1000u64 {
                    let id = ItemId(i % 128);
                    if cache.get(id).is_none() {
                        cache.insert(id, Arc::new(Blob(1)));
                    }
                }
                cache.len()
            })
        });
    }
}

fn bench_markov(c: &mut Criterion) {
    c.bench_function("prefetch/markov_advise", |b| {
        let mut m = MarkovPrefetch::first_order();
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 64;
            m.advise(BlockStepId::new(i, 0), false)
        })
    });
}

fn bench_compress(c: &mut Criterion) {
    let data = vortex_block(17);
    let raw = vira_storage::compress::payload_bytes_f32(&data);
    c.bench_function("compress/rle_block_payload", |b| {
        b.iter(|| vira_storage::compress::rle_compress(black_box(&raw)))
    });
}

fn bench_dataset_generate(c: &mut Criterion) {
    let ds = vira_grid::synth::engine(5);
    c.bench_function("synth/engine_generate_item", |b| {
        b.iter(|| ds.generate(black_box(BlockStepId::new(3, 7))))
    });
}

criterion_group!(
    benches,
    bench_eigen,
    bench_iso,
    bench_lambda2,
    bench_bsp,
    bench_locate,
    bench_pathline,
    bench_cache,
    bench_markov,
    bench_compress,
    bench_dataset_generate
);
criterion_main!(benches);
