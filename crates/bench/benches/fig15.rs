//! `cargo bench` target regenerating experiment `fig15` (see DESIGN.md's
//! experiment index). Prints the measured table; JSON goes to results/.
fn main() {
    // cargo bench passes --bench; ignore all flags.
    let cfg = vira_bench::BenchConfig::default();
    let results = vira_bench::run_ids(&["fig15".to_string()], &cfg);
    let _ = vira_bench::write_json(&results, std::path::Path::new("results"));
}
