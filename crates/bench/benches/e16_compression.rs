//! `cargo bench` target regenerating experiment `e16-compression`.
fn main() {
    let cfg = vira_bench::BenchConfig::default();
    let results = vira_bench::run_ids(&["e16-compression".to_string()], &cfg);
    let _ = vira_bench::write_json(&results, std::path::Path::new("results"));
}
