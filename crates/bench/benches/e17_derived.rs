//! `cargo bench` target regenerating experiment `e17-derived`.
fn main() {
    let cfg = vira_bench::BenchConfig::default();
    let results = vira_bench::run_ids(&["e17-derived".to_string()], &cfg);
    let _ = vira_bench::write_json(&results, std::path::Path::new("results"));
}
