//! Property tests of the extraction acceleration path: bricktree-pruned
//! contouring must be *byte-identical* to the exhaustive scan on
//! arbitrary fields, and the bulk triangle-soup wire codec must
//! round-trip exactly and reject malformed payloads.

use proptest::prelude::*;
use vira_extract::bricktree::BrickTree;
use vira_extract::iso::{extract_isosurface, extract_isosurface_with_tree};
use vira_extract::mesh::{payload_triangle_count, TriangleSoup};
use vira_grid::block::{BlockDims, CurvilinearBlock};
use vira_grid::field::ScalarField;
use vira_grid::math::Vec3;

/// A regular grid of the given dims on the unit cube — geometry does not
/// influence pruning, so a simple lattice exercises everything.
fn lattice(dims: BlockDims) -> CurvilinearBlock {
    let mut points = Vec::with_capacity(dims.n_points());
    for k in 0..dims.nk {
        for j in 0..dims.nj {
            for i in 0..dims.ni {
                points.push(Vec3::new(
                    i as f64 / (dims.ni - 1).max(1) as f64,
                    j as f64 / (dims.nj - 1).max(1) as f64,
                    k as f64 / (dims.nk - 1).max(1) as f64,
                ));
            }
        }
    }
    CurvilinearBlock::new(0, dims, points)
}

/// Strategy: dims spanning sub-brick, exact-brick and multi-brick sizes
/// per axis, plus a value vector of matching length.
fn dims_and_values() -> impl Strategy<Value = (BlockDims, Vec<f64>)> {
    (2usize..=11, 2usize..=11, 2usize..=11)
        .prop_map(|(ni, nj, nk)| BlockDims::new(ni, nj, nk))
        .prop_flat_map(|d| {
            let n = d.n_points();
            (
                Just(d),
                prop::collection::vec(-1.0f64..1.0, n..=n),
            )
        })
}

proptest! {
    /// The tentpole guarantee: pruning never changes the output. The
    /// serialized surfaces (triangle order included) must be identical,
    /// and the visited/skipped partition must cover every cell.
    #[test]
    fn pruned_extraction_is_byte_identical_to_unpruned(
        (dims, values) in dims_and_values(),
        iso in -1.2f64..1.2,
    ) {
        let grid = lattice(dims);
        let field = ScalarField::new(dims, values);
        let (pruned, pstats) = extract_isosurface(&grid, &field, iso);
        let (full, fstats) = extract_isosurface_with_tree(&grid, &field, iso, None);
        prop_assert_eq!(pruned.to_bytes(), full.to_bytes());
        prop_assert_eq!(pstats.triangles, fstats.triangles);
        prop_assert_eq!(pstats.active_cells, fstats.active_cells);
        prop_assert_eq!(
            pstats.cells_visited + pstats.cells_skipped,
            dims.n_cells(),
            "visited + skipped must partition the block"
        );
        prop_assert!(pstats.cells_visited <= fstats.cells_visited);
    }

    /// Every candidate the bricktree skips really is inactive: a skipped
    /// cell's corner range can never straddle the iso value.
    #[test]
    fn skipped_cells_are_never_active(
        (dims, values) in dims_and_values(),
        iso in -1.2f64..1.2,
    ) {
        let field = ScalarField::new(dims, values);
        let tree = BrickTree::build(&field);
        let mut visited = vec![false; dims.n_cells()];
        let (ci, cj, _) = dims.cell_dims();
        tree.scan_candidates(iso, |i, j, k| {
            visited[(k * cj + j) * ci + i] = true;
        });
        for (i, j, k) in dims.cells() {
            if !visited[(k * cj + j) * ci + i] {
                let (lo, hi) = field.cell_range(i, j, k);
                prop_assert!(
                    !(hi > iso && lo <= iso),
                    "skipped cell ({i},{j},{k}) straddles iso={iso}: [{lo},{hi}]"
                );
            }
        }
    }

    /// The bulk encoder round-trips bit-exactly through `from_bytes`, and
    /// `payload_triangle_count` agrees with the decoded count.
    #[test]
    fn soup_bytes_round_trip(
        tris in prop::collection::vec(
            prop::array::uniform9(-1e6f64..1e6), 0..80,
        ),
    ) {
        let mut soup = TriangleSoup::new();
        for t in &tris {
            soup.push_tri(
                Vec3::new(t[0], t[1], t[2]),
                Vec3::new(t[3], t[4], t[5]),
                Vec3::new(t[6], t[7], t[8]),
            );
        }
        let bytes = soup.to_bytes();
        prop_assert_eq!(bytes.len(), 4 + 36 * tris.len());
        prop_assert_eq!(payload_triangle_count(&bytes), Some(tris.len()));
        let back = TriangleSoup::from_bytes(bytes).expect("well-formed payload");
        prop_assert_eq!(back, soup);
    }

    /// Truncated or length-inconsistent payloads are rejected, never
    /// mis-decoded — by both the decoder and the count validator.
    #[test]
    fn malformed_soup_bytes_are_rejected(
        n_tris in 0u32..40,
        cut in 1usize..36,
        inflate in 1u32..1000,
    ) {
        let mut soup = TriangleSoup::new();
        for t in 0..n_tris {
            let v = t as f64;
            soup.push_tri(Vec3::splat(v), Vec3::splat(v + 0.5), Vec3::splat(v + 1.0));
        }
        let good = soup.to_bytes();

        // Truncation anywhere inside the body (or into the header).
        let cut = cut.min(good.len());
        let truncated = good.slice(..good.len() - cut);
        prop_assert!(TriangleSoup::from_bytes(truncated.clone()).is_none());
        prop_assert!(payload_triangle_count(&truncated).is_none());

        // A count prefix claiming more triangles than the body holds.
        let mut lying = good.to_vec();
        lying[..4].copy_from_slice(&(n_tris + inflate).to_le_bytes());
        prop_assert!(TriangleSoup::from_bytes(lying.clone().into()).is_none());
        prop_assert!(payload_triangle_count(&lying).is_none());
    }
}

/// Deterministic acceptance check (ISSUE criterion): on a sparse iso
/// level — a small sphere in a large block — pruning must visit fewer
/// than 25 % of the cells while reproducing the full surface exactly.
#[test]
fn sparse_feature_visits_under_a_quarter_of_cells() {
    let dims = BlockDims::new(25, 25, 25);
    let grid = lattice(dims);
    let field = ScalarField::from_fn(dims, |i, j, k| {
        let p = grid.point(i, j, k) - Vec3::splat(0.5);
        p.norm()
    });
    let iso = 0.15;
    let (pruned, stats) = extract_isosurface(&grid, &field, iso);
    let (full, _) = extract_isosurface_with_tree(&grid, &field, iso, None);
    assert_eq!(pruned.to_bytes(), full.to_bytes());
    assert!(stats.triangles > 0, "the sphere must actually be extracted");
    let total = dims.n_cells();
    assert!(
        stats.cells_visited * 4 < total,
        "visited {} of {} cells (≥ 25 %)",
        stats.cells_visited,
        total
    );
    assert!(stats.bricks_skipped > 0);
}
