//! Property tests of the SoA fast paths against their retained AoS
//! oracles: the vectorized kernels are rewrites for throughput, not new
//! math, so on arbitrary inputs every one of them must be *bit-identical*
//! to the scalar original — and the scoped thread pool must preserve
//! item order at every thread count.

use proptest::prelude::*;
use vira_extract::bricktree::BrickTree;
use vira_extract::iso::{extract_isosurface_oracle, extract_isosurface_soa_with_tree};
use vira_extract::lambda2::{lambda2_field_oracle, lambda2_field_soa};
use vira_extract::locate::{invert_trilinear, invert_trilinear_oracle};
use vira_extract::par::scoped_map;
use vira_grid::block::{BlockDims, CurvilinearBlock};
use vira_grid::field::{BlockData, ScalarField, ScalarFieldSoA, VectorField};
use vira_grid::math::Vec3;

/// A regular lattice on the unit cube (geometry does not influence the
/// scan kernels, only the interpolated vertex positions).
fn lattice(dims: BlockDims) -> CurvilinearBlock {
    let mut points = Vec::with_capacity(dims.n_points());
    for k in 0..dims.nk {
        for j in 0..dims.nj {
            for i in 0..dims.ni {
                points.push(Vec3::new(
                    i as f64 / (dims.ni - 1).max(1) as f64,
                    j as f64 / (dims.nj - 1).max(1) as f64,
                    k as f64 / (dims.nk - 1).max(1) as f64,
                ));
            }
        }
    }
    CurvilinearBlock::new(0, dims, points)
}

/// Dims spanning sub-lane, exact-lane and multi-lane row lengths, plus
/// a value vector of matching length.
fn dims_and_values() -> impl Strategy<Value = (BlockDims, Vec<f64>)> {
    (2usize..=11, 2usize..=7, 2usize..=7)
        .prop_map(|(ni, nj, nk)| BlockDims::new(ni, nj, nk))
        .prop_flat_map(|d| {
            let n = d.n_points();
            (Just(d), prop::collection::vec(-1.0f64..1.0, n..=n))
        })
}

/// As above but with a velocity vector per point.
fn dims_and_velocities() -> impl Strategy<Value = (BlockDims, Vec<[f64; 3]>)> {
    (3usize..=9, 3usize..=7, 3usize..=7)
        .prop_map(|(ni, nj, nk)| BlockDims::new(ni, nj, nk))
        .prop_flat_map(|d| {
            let n = d.n_points();
            (
                Just(d),
                prop::collection::vec(prop::array::uniform3(-2.0f64..2.0), n..=n),
            )
        })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// The SoA run-scan contour kernel reproduces the AoS oracle's
    /// surface byte for byte on arbitrary fields — unpruned (pure scan
    /// comparison) and pruned through `BrickTree::build_soa` (the shape
    /// the parallel extraction path runs).
    #[test]
    fn soa_contour_is_byte_identical_to_aos_oracle(
        (dims, values) in dims_and_values(),
        iso in -1.2f64..1.2,
    ) {
        let grid = lattice(dims);
        let field = ScalarField::new(dims, values);
        let soa = ScalarFieldSoA::from(field.clone());

        let (aos_soup, aos_stats) = extract_isosurface_oracle(&grid, &field, iso, None);
        let (soa_soup, soa_stats) = extract_isosurface_soa_with_tree(&grid, &soa, iso, None);
        prop_assert_eq!(soa_soup.to_bytes(), aos_soup.to_bytes());
        prop_assert_eq!(soa_stats.triangles, aos_stats.triangles);
        prop_assert_eq!(soa_stats.active_cells, aos_stats.active_cells);

        let tree = BrickTree::build_soa(&soa);
        let (pruned_soup, pruned_stats) =
            extract_isosurface_soa_with_tree(&grid, &soa, iso, Some(&tree));
        prop_assert_eq!(pruned_soup.to_bytes(), aos_soup.to_bytes());
        prop_assert_eq!(pruned_stats.triangles, aos_stats.triangles);
        prop_assert_eq!(
            pruned_stats.cells_visited + pruned_stats.cells_skipped,
            dims.n_cells(),
            "visited + skipped must partition the block"
        );
    }

    /// The staged λ₂ row kernels are an operation-for-operation
    /// transcription of the per-point oracle, so the two fields must
    /// agree to the last bit on arbitrary velocity data.
    #[test]
    fn lambda2_soa_rows_match_the_point_oracle_bitwise(
        (dims, vel) in dims_and_velocities(),
    ) {
        let grid = lattice(dims);
        let velocity = VectorField::new(
            dims,
            vel.iter().map(|v| Vec3::new(v[0], v[1], v[2])).collect(),
        );
        let data = BlockData::new(vira_grid::block::BlockStepId::new(0, 0), grid, velocity, 0.0);
        let soa = lambda2_field_soa(&data);
        let oracle = lambda2_field_oracle(&data);
        prop_assert_eq!(soa.dims, oracle.dims);
        prop_assert_eq!(bits(&soa.values), bits(&oracle.values));
    }

    /// The lane min/max scan agrees exactly with a branchy scalar fold.
    #[test]
    fn lane_minmax_matches_the_scalar_fold(
        (dims, values) in dims_and_values(),
    ) {
        let field = ScalarField::new(dims, values.clone());
        let soa = ScalarFieldSoA::new(dims, values.clone());
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        prop_assert_eq!(field.range(), Some((lo, hi)));
        prop_assert_eq!(soa.min_max(), Some((lo, hi)));
    }

    /// The fused Newton trilinear inversion (hoisted corner differences)
    /// is bit-identical to the per-iteration oracle on random sheared
    /// cells and probe points — including the divergence cases.
    #[test]
    fn fused_newton_inversion_matches_the_oracle_bitwise(
        jitter in prop::array::uniform24(-0.2f64..0.2),
        probe in prop::array::uniform3(-0.4f64..1.4),
    ) {
        let unit = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let mut cell = unit;
        for (c, j) in cell.iter_mut().zip(jitter.chunks(3)) {
            *c = *c + Vec3::new(j[0], j[1], j[2]);
        }
        let p = Vec3::new(probe[0], probe[1], probe[2]);
        let fused = invert_trilinear(&cell, p);
        let oracle = invert_trilinear_oracle(&cell, p);
        match (fused, oracle) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                prop_assert_eq!(a.2.to_bits(), b.2.to_bits());
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "fused {a:?} vs oracle {b:?}"),
        }
    }

    /// `scoped_map` returns results in item order at every thread count,
    /// with each item visited exactly once at its own index.
    #[test]
    fn scoped_map_preserves_item_order_at_any_width(
        items in prop::collection::vec(any::<i64>(), 0..40),
        threads in 1usize..9,
    ) {
        let got = scoped_map(threads, &items, |idx, &v| (idx, v.wrapping_mul(3)));
        let want: Vec<(usize, i64)> = items
            .iter()
            .enumerate()
            .map(|(idx, &v)| (idx, v.wrapping_mul(3)))
            .collect();
        prop_assert_eq!(got, want);
    }
}
