//! # vira-extract
//!
//! Flow-feature extraction algorithms of the Viracocha reproduction —
//! the computational kernels behind the framework's commands (paper
//! §6.3):
//!
//! * [`iso`] — isosurface extraction over curvilinear blocks (marching
//!   tetrahedra, [`tetra`]), plain and streamed.
//! * [`bricktree`] — per-block min/max brick hierarchies that let every
//!   extractor skip inactive regions without touching their cells.
//! * [`bsp`] — per-block BSP trees for view-dependent front-to-back
//!   extraction with empty-region pruning (the `ViewerIso` command).
//! * [`lambda2`] / [`eigen`] — λ₂ vortex-region extraction: velocity
//!   gradient tensors on curvilinear grids, symmetric 3×3 eigenvalues,
//!   full-field and cell-streamed variants.
//! * [`pathline`] / [`locate`] — RK4 pathline integration with adaptive
//!   step-size control, Newton point location and cell walking across
//!   multi-block grids.
//! * [`multires`] — subsampling pyramids and progressive isosurface
//!   extraction (§5.3).
//! * [`mesh`] — triangle soups / polylines and their wire encodings
//!   (the payload of streamed result packets).
//! * [`par`] — the scoped thread pool behind intra-worker parallel
//!   block extraction (order-preserving, hence output-deterministic).
//!
//! Everything here is deterministic and framework-free: data access is
//! injected (see [`pathline::BlockFetcher`]), so the same kernels run
//! under unit tests, the parallel framework, and the benchmark harness.

pub mod bricktree;
pub mod bsp;
pub mod eigen;
pub mod export;
pub mod halo;
pub mod iso;
pub mod lambda2;
pub mod locate;
pub mod mesh;
pub mod multires;
pub mod par;
pub mod pathline;
pub mod stats;
pub mod tetra;
pub mod weld;

pub use bricktree::{BrickTree, PruneCounters, BRICK};
pub use bsp::BspTree;
pub use weld::{compute_normals, weld, EdgeDefects, IndexedMesh};
pub use eigen::{
    chebyshev_middle_root, lambda2_of_gradient, symmetric_eigenvalues,
    symmetric_middle_eigenvalue,
};
pub use export::{save_soup, write_obj, write_vtk_mesh, write_vtk_polylines};
pub use halo::{GhostLayer, GhostedBlock};
pub use iso::{
    active_cells, extract_isosurface, extract_isosurface_oracle, extract_isosurface_soa,
    extract_isosurface_soa_with_tree, extract_isosurface_with_tree, extract_streamed,
    extract_streamed_with_tree, IsoStats,
};
pub use lambda2::{
    lambda2_at, lambda2_element, lambda2_field, lambda2_field_oracle, lambda2_field_soa,
    velocity_gradient,
    Lambda2Stats, Lambda2Streamer,
};
pub use locate::{invert_trilinear, invert_trilinear_oracle, BlockLocator, CellHit, TrilinearCell};
pub use mesh::{payload_triangle_count, Polyline, TriangleSoup};
pub use par::scoped_map;
pub use stats::{suggest_iso_level, FieldSummary, Histogram};
pub use multires::{coarsen, progressive_isosurface, pyramid, ProgressiveLevel};
pub use pathline::{
    trace_pathline, trace_streakline, AnalyticSampler, BlockFetcher, FieldSampler,
    MultiBlockSampler, PathlineConfig, PathlineResult, SteadySampler, TimeScheme, TraceStatus,
};
