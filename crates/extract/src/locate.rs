//! Point location in curvilinear blocks: finding the cell (and local
//! trilinear coordinates) containing a physical point — the inner loop of
//! particle tracing on multi-block grids.
//!
//! Strategy: Newton inversion of the trilinear mapping inside a cell,
//! combined with *cell walking* (stepping to the neighbouring cell in the
//! direction of the most violated local coordinate) from a hint cell.
//! When walking fails (bad hint, concave regions) a uniform spatial bin
//! grid over the cell bounding boxes provides candidates for a robust
//! restart.

use vira_grid::block::{trilinear_vec3, CurvilinearBlock};
use vira_grid::math::{Aabb, Mat3, Vec3};

/// Local coordinates within a located cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellHit {
    pub cell: (usize, usize, usize),
    pub u: f64,
    pub v: f64,
    pub w: f64,
}

/// Tolerance on local coordinates: a point counts as inside for
/// `-TOL ≤ u,v,w ≤ 1+TOL` (shared cell faces belong to both cells).
const UVW_TOL: f64 = 1e-9;
/// Newton convergence threshold on local-coordinate updates.
const NEWTON_TOL: f64 = 1e-12;
const NEWTON_MAX_IT: usize = 24;
/// Maximum walking steps before falling back to the bin grid.
const WALK_MAX_STEPS: usize = 64;

/// Newton inversion of the trilinear map of one cell. Returns local
/// coordinates (possibly outside `[0,1]³`, which callers use to decide
/// the walking direction) or `None` when the iteration diverges.
///
/// The fused evaluation ([`TrilinearCell`]) hoists the twelve
/// loop-invariant corner differences out of the iteration; every float
/// operation matches the classic per-iteration evaluation
/// ([`invert_trilinear_oracle`]), so results are bit-identical.
pub fn invert_trilinear(corners: &[Vec3; 8], p: Vec3) -> Option<(f64, f64, f64)> {
    let cell = TrilinearCell::new(corners);
    let (mut u, mut v, mut w) = (0.5, 0.5, 0.5);
    for _ in 0..NEWTON_MAX_IT {
        let x = cell.value(u, v, w);
        let r = x - p;
        if r.max_abs() < NEWTON_TOL {
            return Some((u, v, w));
        }
        // Partial derivatives of the trilinear map.
        let (du, dv, dw) = cell.jacobian_cols(u, v, w);
        let jac = Mat3::from_cols(du, dv, dw);
        let inv = jac.inverse()?;
        let step = inv.mul_vec(r);
        u -= step.x;
        v -= step.y;
        w -= step.z;
        // Clamp the iterate to a generous neighbourhood of the cell to
        // keep the Jacobian well-behaved.
        u = u.clamp(-2.0, 3.0);
        v = v.clamp(-2.0, 3.0);
        w = w.clamp(-2.0, 3.0);
        if step.max_abs() < NEWTON_TOL {
            return Some((u, v, w));
        }
    }
    Some((u, v, w)) // best effort; caller validates residual bounds
}

/// The pre-fusion Newton inversion, retained verbatim as the test
/// oracle (and the AoS side of the `locate` micro-benches): corner
/// differences are re-derived inside every iteration.
pub fn invert_trilinear_oracle(corners: &[Vec3; 8], p: Vec3) -> Option<(f64, f64, f64)> {
    let (mut u, mut v, mut w) = (0.5, 0.5, 0.5);
    for _ in 0..NEWTON_MAX_IT {
        let x = trilinear_vec3(corners, u, v, w);
        let r = x - p;
        if r.max_abs() < NEWTON_TOL {
            return Some((u, v, w));
        }
        let du = deriv_u(corners, v, w);
        let dv = deriv_v(corners, u, w);
        let dw = deriv_w(corners, u, v);
        let jac = Mat3::from_cols(du, dv, dw);
        let inv = jac.inverse()?;
        let step = inv.mul_vec(r);
        u -= step.x;
        v -= step.y;
        w -= step.z;
        u = u.clamp(-2.0, 3.0);
        v = v.clamp(-2.0, 3.0);
        w = w.clamp(-2.0, 3.0);
        if step.max_abs() < NEWTON_TOL {
            return Some((u, v, w));
        }
    }
    Some((u, v, w))
}

/// One cell's trilinear map with its twelve corner differences
/// precomputed — the Newton iteration then evaluates the map and all
/// three Jacobian columns from the cached differences. The difference
/// values are exactly those `deriv_u`/`deriv_v`/`deriv_w` recompute per
/// call, and the lerp chains reuse the same expressions, so fused
/// evaluation is bit-identical to the separate one.
pub struct TrilinearCell {
    c: [Vec3; 8],
    /// `c[1]-c[0], c[3]-c[2], c[5]-c[4], c[7]-c[6]` (u-direction).
    du: [Vec3; 4],
    /// `c[2]-c[0], c[3]-c[1], c[6]-c[4], c[7]-c[5]` (v-direction).
    dv: [Vec3; 4],
    /// `c[4]-c[0], c[5]-c[1], c[6]-c[2], c[7]-c[3]` (w-direction).
    dw: [Vec3; 4],
}

impl TrilinearCell {
    pub fn new(corners: &[Vec3; 8]) -> Self {
        let c = *corners;
        TrilinearCell {
            c,
            du: [c[1] - c[0], c[3] - c[2], c[5] - c[4], c[7] - c[6]],
            dv: [c[2] - c[0], c[3] - c[1], c[6] - c[4], c[7] - c[5]],
            dw: [c[4] - c[0], c[5] - c[1], c[6] - c[2], c[7] - c[3]],
        }
    }

    /// The trilinear map at `(u, v, w)`; same lerp chain as
    /// [`trilinear_vec3`] with the u-direction differences reused.
    #[inline]
    pub fn value(&self, u: f64, v: f64, w: f64) -> Vec3 {
        let c00 = self.c[0] + self.du[0] * u;
        let c10 = self.c[2] + self.du[1] * u;
        let c01 = self.c[4] + self.du[2] * u;
        let c11 = self.c[6] + self.du[3] * u;
        let c0 = c00.lerp(c10, v);
        let c1 = c01.lerp(c11, v);
        c0.lerp(c1, w)
    }

    /// The three Jacobian columns `(∂x/∂u, ∂x/∂v, ∂x/∂w)` at `(u, v, w)`.
    #[inline]
    pub fn jacobian_cols(&self, u: f64, v: f64, w: f64) -> (Vec3, Vec3, Vec3) {
        let du = self.du[0]
            .lerp(self.du[1], v)
            .lerp(self.du[2].lerp(self.du[3], v), w);
        let dv = self.dv[0]
            .lerp(self.dv[1], u)
            .lerp(self.dv[2].lerp(self.dv[3], u), w);
        let dw = self.dw[0]
            .lerp(self.dw[1], u)
            .lerp(self.dw[2].lerp(self.dw[3], u), v);
        (du, dv, dw)
    }
}

fn deriv_u(c: &[Vec3; 8], v: f64, w: f64) -> Vec3 {
    let d00 = c[1] - c[0];
    let d10 = c[3] - c[2];
    let d01 = c[5] - c[4];
    let d11 = c[7] - c[6];
    let d0 = d00.lerp(d10, v);
    let d1 = d01.lerp(d11, v);
    d0.lerp(d1, w)
}

fn deriv_v(c: &[Vec3; 8], u: f64, w: f64) -> Vec3 {
    let d00 = c[2] - c[0];
    let d10 = c[3] - c[1];
    let d01 = c[6] - c[4];
    let d11 = c[7] - c[5];
    let d0 = d00.lerp(d10, u);
    let d1 = d01.lerp(d11, u);
    d0.lerp(d1, w)
}

fn deriv_w(c: &[Vec3; 8], u: f64, v: f64) -> Vec3 {
    let d00 = c[4] - c[0];
    let d10 = c[5] - c[1];
    let d01 = c[6] - c[2];
    let d11 = c[7] - c[3];
    let d0 = d00.lerp(d10, u);
    let d1 = d01.lerp(d11, u);
    d0.lerp(d1, v)
}

/// Spatial accelerator for point location within one block.
#[derive(Debug)]
pub struct BlockLocator {
    bbox: Aabb,
    /// Bin grid resolution per axis.
    nb: [usize; 3],
    /// Cell indices per bin.
    bins: Vec<Vec<u32>>,
}

impl BlockLocator {
    /// Builds the accelerator (one-off per block geometry).
    pub fn build(grid: &CurvilinearBlock) -> BlockLocator {
        let n_cells = grid.dims.n_cells().max(1);
        // ~4 cells per bin on average.
        let per_axis = ((n_cells as f64 / 4.0).cbrt().ceil() as usize).clamp(1, 64);
        let nb = [per_axis, per_axis, per_axis];
        let bbox = grid.bbox().inflate(1e-12);
        let mut bins = vec![Vec::new(); nb[0] * nb[1] * nb[2]];
        let (ci, cj, ck) = grid.dims.cell_dims();
        for k in 0..ck {
            for j in 0..cj {
                for i in 0..ci {
                    let cb = grid.cell_bbox(i, j, k);
                    let (lo, hi) = bin_range(&bbox, nb, &cb);
                    for bz in lo[2]..=hi[2] {
                        for by in lo[1]..=hi[1] {
                            for bx in lo[0]..=hi[0] {
                                bins[(bz * nb[1] + by) * nb[0] + bx]
                                    .push(grid.dims.cell_index(i, j, k) as u32);
                            }
                        }
                    }
                }
            }
        }
        BlockLocator { bbox, nb, bins }
    }

    /// Cells whose bounding boxes may contain `p`.
    fn candidates(&self, p: Vec3) -> &[u32] {
        if !self.bbox.contains(p) {
            return &[];
        }
        let d = self.bbox.diagonal();
        let f = |x: f64, lo: f64, extent: f64, n: usize| -> usize {
            if extent <= 0.0 {
                0
            } else {
                (((x - lo) / extent * n as f64) as usize).min(n - 1)
            }
        };
        let bx = f(p.x, self.bbox.min.x, d.x, self.nb[0]);
        let by = f(p.y, self.bbox.min.y, d.y, self.nb[1]);
        let bz = f(p.z, self.bbox.min.z, d.z, self.nb[2]);
        &self.bins[(bz * self.nb[1] + by) * self.nb[0] + bx]
    }

    /// Locates `p` in `grid`, optionally starting a cell walk from
    /// `hint`. Returns `None` when `p` lies outside the block.
    pub fn locate(
        &self,
        grid: &CurvilinearBlock,
        p: Vec3,
        hint: Option<(usize, usize, usize)>,
    ) -> Option<CellHit> {
        if let Some(h) = hint {
            if let Some(hit) = walk_from(grid, p, h) {
                return Some(hit);
            }
        }
        // Robust fallback: try every candidate cell from the bin grid.
        for &c in self.candidates(p) {
            let cell = grid.dims.cell_coords(c as usize);
            if let Some(hit) = try_cell(grid, p, cell) {
                return Some(hit);
            }
        }
        None
    }
}

fn bin_range(bbox: &Aabb, nb: [usize; 3], cell: &Aabb) -> ([usize; 3], [usize; 3]) {
    let d = bbox.diagonal();
    let mut lo = [0usize; 3];
    let mut hi = [0usize; 3];
    for a in 0..3 {
        let extent = d[a];
        if extent <= 0.0 {
            lo[a] = 0;
            hi[a] = 0;
            continue;
        }
        let f = |x: f64| ((x - bbox.min[a]) / extent * nb[a] as f64) as isize;
        lo[a] = f(cell.min[a]).clamp(0, nb[a] as isize - 1) as usize;
        hi[a] = f(cell.max[a]).clamp(0, nb[a] as isize - 1) as usize;
    }
    (lo, hi)
}

/// Attempts Newton inversion within one specific cell; succeeds only if
/// the solution lies inside (within tolerance).
fn try_cell(grid: &CurvilinearBlock, p: Vec3, cell: (usize, usize, usize)) -> Option<CellHit> {
    let corners = grid.cell_corners(cell.0, cell.1, cell.2);
    let (u, v, w) = invert_trilinear(&corners, p)?;
    let inside = |x: f64| (-UVW_TOL..=1.0 + UVW_TOL).contains(&x);
    if inside(u) && inside(v) && inside(w) {
        // Validate the residual: Newton may have stalled.
        let x = trilinear_vec3(&corners, u, v, w);
        let scale = grid.cell_bbox(cell.0, cell.1, cell.2).diagonal().norm() + 1e-30;
        if (x - p).norm() < 1e-8 * scale.max(1.0) {
            return Some(CellHit {
                cell,
                u: u.clamp(0.0, 1.0),
                v: v.clamp(0.0, 1.0),
                w: w.clamp(0.0, 1.0),
            });
        }
    }
    None
}

/// Walks from `start` toward `p`, stepping one cell per iteration in the
/// direction of the most violated local coordinate.
fn walk_from(grid: &CurvilinearBlock, p: Vec3, start: (usize, usize, usize)) -> Option<CellHit> {
    let (ci, cj, ck) = grid.dims.cell_dims();
    if ci == 0 || cj == 0 || ck == 0 {
        return None;
    }
    let mut cell = (start.0.min(ci - 1), start.1.min(cj - 1), start.2.min(ck - 1));
    for _ in 0..WALK_MAX_STEPS {
        let corners = grid.cell_corners(cell.0, cell.1, cell.2);
        let (u, v, w) = invert_trilinear(&corners, p)?;
        let inside = |x: f64| (-UVW_TOL..=1.0 + UVW_TOL).contains(&x);
        if inside(u) && inside(v) && inside(w) {
            return try_cell(grid, p, cell);
        }
        // Step toward the most violated coordinate.
        let viol = [
            violation(u),
            violation(v),
            violation(w),
        ];
        let axis = (0..3)
            .max_by(|&a, &b| {
                viol[a]
                    .abs()
                    .partial_cmp(&viol[b].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("three axes");
        if viol[axis] == 0.0 {
            return None; // numerically inside but residual failed
        }
        let dims = [ci, cj, ck];
        let c = [&mut cell.0, &mut cell.1, &mut cell.2];
        if viol[axis] > 0.0 {
            if *c[axis] + 1 >= dims[axis] {
                return None; // left the block
            }
            *c[axis] += 1;
        } else {
            if *c[axis] == 0 {
                return None;
            }
            *c[axis] -= 1;
        }
    }
    None
}

#[inline]
fn violation(x: f64) -> f64 {
    if x < 0.0 {
        x
    } else if x > 1.0 {
        x - 1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockDims;

    fn uniform_block(n: usize) -> CurvilinearBlock {
        CurvilinearBlock::from_fn(0, BlockDims::new(n, n, n), |i, j, k| {
            Vec3::new(i as f64, j as f64, k as f64) / (n as f64 - 1.0)
        })
    }

    /// A smoothly sheared (non-degenerate curvilinear) block.
    fn sheared_block(n: usize) -> CurvilinearBlock {
        CurvilinearBlock::from_fn(0, BlockDims::new(n, n, n), |i, j, k| {
            let u = i as f64 / (n - 1) as f64;
            let v = j as f64 / (n - 1) as f64;
            let w = k as f64 / (n - 1) as f64;
            Vec3::new(
                u + 0.15 * (std::f64::consts::PI * v).sin(),
                v + 0.1 * (std::f64::consts::PI * w).sin(),
                w + 0.05 * (std::f64::consts::PI * u).sin(),
            )
        })
    }

    #[test]
    fn invert_trilinear_roundtrip_uniform() {
        let b = uniform_block(4);
        let corners = b.cell_corners(1, 2, 0);
        let p = vira_grid::block::trilinear_vec3(&corners, 0.3, 0.7, 0.1);
        let (u, v, w) = invert_trilinear(&corners, p).unwrap();
        assert!((u - 0.3).abs() < 1e-9);
        assert!((v - 0.7).abs() < 1e-9);
        assert!((w - 0.1).abs() < 1e-9);
    }

    #[test]
    fn invert_trilinear_roundtrip_sheared() {
        let b = sheared_block(5);
        for &(cell, uvw) in &[
            ((0, 0, 0), (0.25, 0.5, 0.9)),
            ((3, 2, 1), (0.9, 0.1, 0.5)),
            ((1, 3, 3), (0.0, 1.0, 0.5)),
        ] {
            let corners = b.cell_corners(cell.0, cell.1, cell.2);
            let p = vira_grid::block::trilinear_vec3(&corners, uvw.0, uvw.1, uvw.2);
            let (u, v, w) = invert_trilinear(&corners, p).unwrap();
            assert!((u - uvw.0).abs() < 1e-7, "u {u} vs {}", uvw.0);
            assert!((v - uvw.1).abs() < 1e-7);
            assert!((w - uvw.2).abs() < 1e-7);
        }
    }

    #[test]
    fn fused_newton_bit_identical_to_oracle() {
        let b = sheared_block(5);
        // Interior, face, and far-outside targets: converged and
        // non-converged (best-effort) iterations must all agree bitwise.
        let probes = [
            Vec3::new(0.31, 0.47, 0.22),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(5.0, -3.0, 7.0),
            Vec3::new(0.999, 0.5, 0.001),
        ];
        for cell in [(0, 0, 0), (1, 2, 3), (3, 3, 3)] {
            let corners = b.cell_corners(cell.0, cell.1, cell.2);
            for &p in &probes {
                let fast = invert_trilinear(&corners, p);
                let oracle = invert_trilinear_oracle(&corners, p);
                match (fast, oracle) {
                    (Some((u1, v1, w1)), Some((u2, v2, w2))) => {
                        assert_eq!(u1.to_bits(), u2.to_bits(), "{cell:?} {p:?}");
                        assert_eq!(v1.to_bits(), v2.to_bits());
                        assert_eq!(w1.to_bits(), w2.to_bits());
                    }
                    (None, None) => {}
                    other => panic!("divergent outcomes {other:?}"),
                }
            }
        }
    }

    #[test]
    fn locator_finds_interior_points() {
        let b = sheared_block(6);
        let loc = BlockLocator::build(&b);
        for &(cell, uvw) in &[
            ((0, 0, 0), (0.5, 0.5, 0.5)),
            ((4, 4, 4), (0.2, 0.8, 0.6)),
            ((2, 1, 3), (0.99, 0.01, 0.5)),
        ] {
            let p = b.position_at(cell, uvw.0, uvw.1, uvw.2);
            let hit = loc.locate(&b, p, None).expect("point must be found");
            // Verify by forward evaluation (the cell may legitimately be a
            // neighbour when the point lies on a face).
            let x = b.position_at(hit.cell, hit.u, hit.v, hit.w);
            assert!((x - p).norm() < 1e-7, "residual {}", (x - p).norm());
        }
    }

    #[test]
    fn locator_rejects_outside_points() {
        let b = uniform_block(5);
        let loc = BlockLocator::build(&b);
        assert!(loc.locate(&b, Vec3::new(2.0, 0.5, 0.5), None).is_none());
        assert!(loc.locate(&b, Vec3::new(-0.5, 0.5, 0.5), None).is_none());
    }

    #[test]
    fn walking_from_hint_succeeds_across_the_block() {
        let b = uniform_block(8);
        let loc = BlockLocator::build(&b);
        let p = b.position_at((6, 6, 6), 0.5, 0.5, 0.5);
        // Hint at the opposite corner: the walker must cross the block.
        let hit = loc.locate(&b, p, Some((0, 0, 0))).unwrap();
        assert_eq!(hit.cell, (6, 6, 6));
        assert!((hit.u - 0.5).abs() < 1e-7);
    }

    #[test]
    fn boundary_points_are_located() {
        let b = uniform_block(5);
        let loc = BlockLocator::build(&b);
        // Exact block corner and a face point.
        for p in [Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), Vec3::new(0.5, 0.0, 0.25)] {
            let hit = loc.locate(&b, p, None);
            assert!(hit.is_some(), "boundary point {p:?} not found");
        }
    }

    #[test]
    fn hint_equal_to_target_is_fast_path() {
        let b = sheared_block(6);
        let loc = BlockLocator::build(&b);
        let p = b.position_at((3, 3, 3), 0.4, 0.4, 0.4);
        let hit = loc.locate(&b, p, Some((3, 3, 3))).unwrap();
        let x = b.position_at(hit.cell, hit.u, hit.v, hit.w);
        assert!((x - p).norm() < 1e-8);
    }
}
