//! Scalar-field statistics: ranges, histograms and quantile-based level
//! selection.
//!
//! The explorative analysis loop of the paper (§1.1) starts from a
//! guessed iso value and iterates; these helpers give the guess a
//! principled starting point — e.g. "the level that ≈ 10 % of the
//! samples exceed" — across all blocks of a dataset without loading
//! more than one block at a time.

use vira_grid::field::ScalarField;

/// A fixed-bin histogram over a closed value range, mergeable across
/// blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo` / above `hi` (possible when merging with a
    /// pre-set range).
    pub underflow: u64,
    pub overflow: u64,
    /// Count of non-finite samples (excluded from the bins).
    pub non_finite: u64,
}

impl Histogram {
    /// Creates an empty histogram with `n_bins` over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Histogram {
        assert!(n_bins >= 1 && hi > lo, "invalid histogram range");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
            non_finite: 0,
        }
    }

    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Total binned samples (excluding under/overflow and non-finite).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        if v < self.lo {
            self.underflow += 1;
        } else if v > self.hi {
            self.overflow += 1;
        } else {
            let t = (v - self.lo) / (self.hi - self.lo);
            let idx = ((t * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Accumulates every sample of a field.
    pub fn add_field(&mut self, field: &ScalarField) {
        for &v in &field.values {
            self.add(v);
        }
    }

    /// Merges a histogram with identical binning.
    pub fn merge(&mut self, o: &Histogram) {
        assert_eq!(self.lo, o.lo, "histogram ranges must match");
        assert_eq!(self.hi, o.hi);
        assert_eq!(self.bins.len(), o.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&o.bins) {
            *a += b;
        }
        self.underflow += o.underflow;
        self.overflow += o.overflow;
        self.non_finite += o.non_finite;
    }

    /// The value below which a fraction `q ∈ [0, 1]` of the binned
    /// samples falls (linear interpolation within the bin). `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut acc = 0.0;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target && c > 0 {
                let within = (target - acc) / c as f64;
                return Some(self.lo + (i as f64 + within) * width);
            }
            acc = next;
        }
        Some(self.hi)
    }

    /// The bin with the most samples: `(bin centre, count)`.
    pub fn mode(&self) -> Option<(f64, u64)> {
        let (i, &c) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)?;
        if c == 0 {
            return None;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        Some((self.lo + (i as f64 + 0.5) * width, c))
    }
}

/// Streaming min/max/mean accumulator, mergeable across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FieldSummary {
    pub min: f64,
    pub max: f64,
    pub sum: f64,
    pub count: u64,
    pub non_finite: u64,
}

impl FieldSummary {
    pub fn new() -> FieldSummary {
        FieldSummary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
            non_finite: 0,
        }
    }

    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
    }

    pub fn add_field(&mut self, field: &ScalarField) {
        for &v in &field.values {
            self.add(v);
        }
    }

    pub fn merge(&mut self, o: &FieldSummary) {
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        self.sum += o.sum;
        self.count += o.count;
        self.non_finite += o.non_finite;
    }

    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Picks an iso level such that roughly `exceed_fraction` of the samples
/// lie above it — a robust starting guess for explorative isosurfacing.
/// Runs in two passes over the supplied fields (range, then histogram).
pub fn suggest_iso_level<'a>(
    fields: impl Iterator<Item = &'a ScalarField> + Clone,
    exceed_fraction: f64,
    n_bins: usize,
) -> Option<f64> {
    let mut summary = FieldSummary::new();
    for f in fields.clone() {
        summary.add_field(f);
    }
    if summary.is_empty() || summary.max <= summary.min {
        return None;
    }
    let mut hist = Histogram::new(summary.min, summary.max, n_bins);
    for f in fields {
        hist.add_field(f);
    }
    hist.quantile(1.0 - exceed_fraction.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockDims;

    fn linear_field(n: usize) -> ScalarField {
        // Values 0 .. n³-1, uniformly spread.
        let dims = BlockDims::new(n, n, n);
        let total = dims.n_points();
        let mut next = 0.0;
        ScalarField::from_fn(dims, move |_, _, _| {
            let v = next;
            next += 1.0 / (total as f64 - 1.0);
            v
        })
    }

    #[test]
    fn histogram_counts_and_range() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add_field(&linear_field(5));
        assert_eq!(h.count(), 125);
        assert_eq!(h.underflow + h.overflow, 0);
        assert_eq!(h.non_finite, 0);
    }

    #[test]
    fn histogram_quantiles_of_uniform_data() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        h.add_field(&linear_field(9));
        for q in [0.1, 0.25, 0.5, 0.9] {
            let v = h.quantile(q).unwrap();
            assert!((v - q).abs() < 0.02, "q={q}: {v}");
        }
        assert_eq!(h.quantile(0.0).map(|v| v < 0.02), Some(true));
    }

    #[test]
    fn histogram_under_overflow_and_nan() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-1.0);
        h.add(2.0);
        h.add(f64::NAN);
        h.add(0.5);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.non_finite, 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_merge_equals_combined_fill() {
        let f = linear_field(6);
        let mut a = Histogram::new(0.0, 1.0, 16);
        let mut b = Histogram::new(0.0, 1.0, 16);
        a.add_field(&f);
        b.add_field(&f);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 2 * a.count());
        assert_eq!(merged.quantile(0.5), a.quantile(0.5));
    }

    #[test]
    fn histogram_mode_finds_the_peak() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for _ in 0..50 {
            h.add(0.35);
        }
        h.add(0.9);
        let (center, count) = h.mode().unwrap();
        assert_eq!(count, 50);
        assert!((center - 0.35).abs() < 0.06);
    }

    #[test]
    fn summary_accumulates() {
        let mut s = FieldSummary::new();
        s.add_field(&linear_field(5));
        assert_eq!(s.count, 125);
        assert!((s.min - 0.0).abs() < 1e-12);
        assert!((s.max - 1.0).abs() < 1e-12);
        assert!((s.mean().unwrap() - 0.5).abs() < 1e-9);
        s.add(f64::INFINITY);
        assert_eq!(s.non_finite, 1);
    }

    #[test]
    fn summary_merge_matches_single_pass() {
        let f = linear_field(5);
        let mut a = FieldSummary::new();
        a.add_field(&f);
        let mut b = FieldSummary::new();
        b.add_field(&f);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.count, 250);
        assert_eq!(m.mean(), a.mean());
    }

    #[test]
    fn suggest_iso_hits_the_exceed_fraction() {
        let fields = [linear_field(9), linear_field(9)];
        let iso = suggest_iso_level(fields.iter(), 0.1, 200).unwrap();
        // 10 % of a uniform [0,1] sample exceeds 0.9.
        assert!((iso - 0.9).abs() < 0.02, "iso = {iso}");
        // Degenerate field: no suggestion.
        let flat = ScalarField::from_fn(BlockDims::new(3, 3, 3), |_, _, _| 1.0);
        assert_eq!(suggest_iso_level([&flat].into_iter(), 0.1, 10), None);
    }
}
