//! Block-level isosurface extraction.
//!
//! The extractor walks the cells of a block in storage order; a min/max
//! [`BrickTree`] skips whole inactive bricks before a single cell of them
//! is read, and a per-cell corner-range check prunes the survivors.
//! Because the bricktree scan preserves storage order and its pruning is
//! conservative, the pruned surface is byte-identical to a plain
//! full-scan pass. Streaming variants deliver triangles in batches
//! through a sink callback, which is how the framework's streamed
//! commands flush partial results (paper §5.1: reorganization of data;
//! §6.3: "whenever a user-specified number of triangles is computed,
//! these fragments … are directly streamed").

use crate::bricktree::BrickTree;
use crate::mesh::TriangleSoup;
use crate::tetra::contour_cell;
use vira_grid::block::CurvilinearBlock;
use vira_grid::field::{ScalarField, ScalarFieldSoA, ScalarFieldSoAView};
use vira_grid::lanes;

/// Counters reported by an extraction pass. `cells_visited` counts cells
/// actually examined; `cells_visited + cells_skipped` always equals the
/// block's cell count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsoStats {
    pub cells_visited: usize,
    pub active_cells: usize,
    pub triangles: usize,
    /// Cells never examined thanks to bricktree pruning.
    pub cells_skipped: usize,
    /// Finest-level bricks skipped whole.
    pub bricks_skipped: usize,
}

/// Extracts the full isosurface of one block into a fresh soup, building
/// a throwaway bricktree for pruning.
pub fn extract_isosurface(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
) -> (TriangleSoup, IsoStats) {
    let tree = BrickTree::build(field);
    extract_isosurface_with_tree(grid, field, iso, Some(&tree))
}

/// Like [`extract_isosurface`], but reusing a caller-held bricktree
/// (`None` disables pruning — the reference full-scan path).
pub fn extract_isosurface_with_tree(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
    tree: Option<&BrickTree>,
) -> (TriangleSoup, IsoStats) {
    let mut soup = TriangleSoup::new();
    let stats = extract_streamed_with_tree(grid, field, iso, tree, usize::MAX, |batch| {
        soup.extend_from(&batch);
    });
    (soup, stats)
}

/// Extracts the isosurface, flushing `sink` whenever at least
/// `batch_triangles` triangles have accumulated (and once at the end for
/// the remainder). Cells are processed in storage order; a throwaway
/// bricktree prunes inactive bricks.
pub fn extract_streamed(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
    batch_triangles: usize,
    sink: impl FnMut(TriangleSoup),
) -> IsoStats {
    let tree = BrickTree::build(field);
    extract_streamed_with_tree(grid, field, iso, Some(&tree), batch_triangles, sink)
}

/// Streaming extraction with a caller-held bricktree (`None` disables
/// pruning). Surviving cells are visited in storage order either way, so
/// the concatenated batches are byte-identical across both modes.
pub fn extract_streamed_with_tree(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
    tree: Option<&BrickTree>,
    batch_triangles: usize,
    sink: impl FnMut(TriangleSoup),
) -> IsoStats {
    extract_streamed_view(
        grid,
        ScalarFieldSoA::of(field),
        iso,
        tree,
        batch_triangles,
        sink,
    )
}

/// SoA entry point: extracts the full isosurface of one block from a
/// structure-of-arrays field, building a throwaway bricktree.
pub fn extract_isosurface_soa(
    grid: &CurvilinearBlock,
    field: &ScalarFieldSoA,
    iso: f64,
) -> (TriangleSoup, IsoStats) {
    let tree = BrickTree::build_soa(field);
    extract_isosurface_soa_with_tree(grid, field, iso, Some(&tree))
}

/// SoA entry point with a caller-held bricktree (`None` disables
/// pruning).
pub fn extract_isosurface_soa_with_tree(
    grid: &CurvilinearBlock,
    field: &ScalarFieldSoA,
    iso: f64,
    tree: Option<&BrickTree>,
) -> (TriangleSoup, IsoStats) {
    let mut soup = TriangleSoup::new();
    let stats = extract_streamed_view(grid, field.view(), iso, tree, usize::MAX, |batch| {
        soup.extend_from(&batch);
    });
    (soup, stats)
}

/// The vectorized contour scan all public entry points funnel into.
///
/// Cells arrive as maximal storage-order runs along `i` (from the
/// bricktree's run scan, or whole rows when pruning is off). Per run,
/// the corner ranges of every cell come from one adjacent-pair
/// min/max pass over the four contiguous point rows bounding the run
/// ([`lanes::cell_ranges_along_i`]) instead of a per-cell eight-corner
/// gather; only straddling cells fall through to the scalar case-table
/// triangulation, in exactly the storage order of the classic pass —
/// the output stays byte-identical to [`extract_isosurface_oracle`].
fn extract_streamed_view(
    grid: &CurvilinearBlock,
    field: ScalarFieldSoAView<'_>,
    iso: f64,
    tree: Option<&BrickTree>,
    batch_triangles: usize,
    mut sink: impl FnMut(TriangleSoup),
) -> IsoStats {
    assert_eq!(grid.dims, field.dims, "grid/field dims mismatch");
    if let Some(t) = tree {
        assert!(t.matches(grid.dims), "bricktree dims mismatch");
    }
    let mut kernel_span = vira_obs::span("extract.iso_kernel", "extract")
        .arg("pruned", u64::from(tree.is_some()));
    let mut stats = IsoStats::default();
    let mut pending = TriangleSoup::new();
    let (ci, _, _) = grid.dims.cell_dims();
    let mut lo_buf = vec![0.0; ci];
    let mut hi_buf = vec![0.0; ci];
    let mut visit_run = |r: std::ops::Range<usize>, j: usize, k: usize| {
        let n = r.len();
        stats.cells_visited += n;
        let rows = [
            &field.row(j, k)[r.start..r.end + 1],
            &field.row(j + 1, k)[r.start..r.end + 1],
            &field.row(j, k + 1)[r.start..r.end + 1],
            &field.row(j + 1, k + 1)[r.start..r.end + 1],
        ];
        lanes::cell_ranges_along_i(rows, n, &mut lo_buf, &mut hi_buf);
        for c in 0..n {
            if !(hi_buf[c] > iso && lo_buf[c] <= iso) {
                continue;
            }
            stats.active_cells += 1;
            let i = r.start + c;
            let corners = grid.cell_corners(i, j, k);
            let scalars = [
                rows[0][c],
                rows[0][c + 1],
                rows[1][c],
                rows[1][c + 1],
                rows[2][c],
                rows[2][c + 1],
                rows[3][c],
                rows[3][c + 1],
            ];
            let n_tri = contour_cell(&corners, &scalars, iso, &mut pending);
            stats.triangles += n_tri;
            if pending.n_triangles() >= batch_triangles {
                sink(std::mem::take(&mut pending));
            }
        }
    };
    let pruned = match tree {
        Some(t) => t.scan_candidate_runs(iso, &mut visit_run),
        None => {
            let (ci, cj, ck) = grid.dims.cell_dims();
            for k in 0..ck {
                for j in 0..cj {
                    visit_run(0..ci, j, k);
                }
            }
            Default::default()
        }
    };
    stats.cells_skipped = pruned.cells_skipped;
    stats.bricks_skipped = pruned.bricks_skipped;
    if !pending.is_empty() {
        sink(pending);
    }
    kernel_span.set_arg("triangles", stats.triangles);
    kernel_span.set_arg("cells_skipped", stats.cells_skipped);
    stats
}

/// The pre-SoA cell-at-a-time extractor, retained verbatim as the test
/// oracle for the vectorized scan (and as the AoS side of the
/// `contour` micro-benches): per cell, an eight-corner gather feeds a
/// scalar min/max fold and then the same case-table triangulation.
pub fn extract_isosurface_oracle(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
    tree: Option<&BrickTree>,
) -> (TriangleSoup, IsoStats) {
    assert_eq!(grid.dims, field.dims, "grid/field dims mismatch");
    if let Some(t) = tree {
        assert!(t.matches(grid.dims), "bricktree dims mismatch");
    }
    let mut stats = IsoStats::default();
    let mut soup = TriangleSoup::new();
    let mut visit_cell = |i: usize, j: usize, k: usize| {
        stats.cells_visited += 1;
        let (lo, hi) = field.cell_range(i, j, k);
        if !(hi > iso && lo <= iso) {
            return;
        }
        stats.active_cells += 1;
        let corners = grid.cell_corners(i, j, k);
        let scalars = field.cell_corners(i, j, k);
        stats.triangles += contour_cell(&corners, &scalars, iso, &mut soup);
    };
    let pruned = match tree {
        Some(t) => t.scan_candidates(iso, &mut visit_cell),
        None => {
            for (i, j, k) in grid.dims.cells() {
                visit_cell(i, j, k);
            }
            Default::default()
        }
    };
    stats.cells_skipped = pruned.cells_skipped;
    stats.bricks_skipped = pruned.bricks_skipped;
    (soup, stats)
}

/// Lists the active cells (cells whose corner range straddles `iso`)
/// without triangulating — used by the view-dependent pipeline, which
/// triangulates in BSP traversal order instead of storage order. A
/// throwaway bricktree skips inactive bricks; the result is identical to
/// a full scan and in storage order.
pub fn active_cells(field: &ScalarField, iso: f64) -> Vec<(usize, usize, usize)> {
    let tree = BrickTree::build(field);
    let mut out = Vec::new();
    tree.scan_candidates(iso, |i, j, k| {
        let (lo, hi) = field.cell_range(i, j, k);
        if hi > iso && lo <= iso {
            out.push((i, j, k));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockDims;
    use vira_grid::math::Vec3;

    /// A uniform n³ grid on [-1,1]³ with the distance-from-origin field.
    fn sphere_case(n: usize) -> (CurvilinearBlock, ScalarField) {
        let dims = BlockDims::new(n, n, n);
        let grid = CurvilinearBlock::from_fn(0, dims, |i, j, k| {
            Vec3::new(
                2.0 * i as f64 / (n - 1) as f64 - 1.0,
                2.0 * j as f64 / (n - 1) as f64 - 1.0,
                2.0 * k as f64 / (n - 1) as f64 - 1.0,
            )
        });
        let pts = grid.points.clone();
        let field = ScalarField::new(dims, pts.iter().map(|p| p.norm()).collect());
        (grid, field)
    }

    #[test]
    fn sphere_isosurface_has_expected_area() {
        let (grid, field) = sphere_case(24);
        let r = 0.6;
        let (soup, stats) = extract_isosurface(&grid, &field, r);
        assert!(stats.triangles > 100);
        assert_eq!(stats.triangles, soup.n_triangles());
        assert!(soup.is_finite());
        // Surface area ≈ 4πr²; tetrahedral faceting stays within ~10 %.
        let expect = 4.0 * std::f64::consts::PI * r * r;
        let area = soup.area();
        assert!(
            (area - expect).abs() / expect < 0.1,
            "area {area} vs {expect}"
        );
        // All vertices near radius r (within a cell diagonal).
        let cell = 2.0 / 23.0;
        for v in &soup.positions {
            let rr = (v[0] as f64).hypot(v[1] as f64).hypot(v[2] as f64);
            assert!((rr - r).abs() < cell * 1.8, "vertex radius {rr}");
        }
    }

    #[test]
    fn pruned_extraction_matches_full_scan_exactly() {
        let (grid, field) = sphere_case(19);
        for iso in [0.3, 0.6, 0.9, 1.2] {
            let (pruned, ps) = extract_isosurface(&grid, &field, iso);
            let (full, fs) = extract_isosurface_with_tree(&grid, &field, iso, None);
            assert_eq!(pruned, full, "pruning changed geometry at iso {iso}");
            assert_eq!(ps.active_cells, fs.active_cells);
            assert_eq!(ps.triangles, fs.triangles);
            assert_eq!(
                ps.cells_visited + ps.cells_skipped,
                grid.dims.n_cells(),
                "visited + skipped must cover the block"
            );
            assert_eq!(fs.cells_skipped, 0);
            assert_eq!(fs.cells_visited, grid.dims.n_cells());
        }
    }

    #[test]
    fn sparse_iso_level_visits_minority_of_cells() {
        // The r = 0.3 sphere in a 24³ block is a small feature: the
        // bricktree must discard the bulk of the volume (acceptance
        // criterion: < 25 % of cells examined).
        let (grid, field) = sphere_case(24);
        let (soup, stats) = extract_isosurface(&grid, &field, 0.3);
        assert!(!soup.is_empty());
        let total = grid.dims.n_cells();
        assert_eq!(stats.cells_visited + stats.cells_skipped, total);
        assert!(
            stats.cells_visited * 4 < total,
            "visited {} of {total} cells",
            stats.cells_visited
        );
        assert!(stats.bricks_skipped > 0);
    }

    #[test]
    fn iso_outside_range_gives_empty_surface() {
        let (grid, field) = sphere_case(8);
        let (soup, stats) = extract_isosurface(&grid, &field, 99.0);
        assert!(soup.is_empty());
        assert_eq!(stats.active_cells, 0);
        // The root brick rejects the whole block without touching a cell.
        assert_eq!(stats.cells_visited, 0);
        assert_eq!(stats.cells_skipped, 7 * 7 * 7);
    }

    #[test]
    fn streamed_batches_concatenate_to_full_surface() {
        let (grid, field) = sphere_case(16);
        let (full, full_stats) = extract_isosurface(&grid, &field, 0.7);
        let mut streamed = TriangleSoup::new();
        let mut batches = 0;
        let stats = extract_streamed(&grid, &field, 0.7, 50, |b| {
            assert!(!b.is_empty());
            batches += 1;
            streamed.extend_from(&b);
        });
        assert_eq!(stats, full_stats);
        assert_eq!(streamed, full, "batching must not change geometry");
        assert!(batches > 1, "expected multiple batches, got {batches}");
    }

    #[test]
    fn active_cells_match_triangulated_cells() {
        let (grid, field) = sphere_case(12);
        let active = active_cells(&field, 0.5);
        let (_, stats) = extract_isosurface(&grid, &field, 0.5);
        assert_eq!(active.len(), stats.active_cells);
        assert!(!active.is_empty());
        // Pruning must not disturb the storage order of the listing.
        let mut sorted = active.clone();
        sorted.sort_by_key(|&(i, j, k)| field.dims.cell_index(i, j, k));
        assert_eq!(active, sorted);
    }

    #[test]
    fn vectorized_scan_matches_oracle_bit_exactly() {
        let (grid, field) = sphere_case(19);
        let tree = BrickTree::build(&field);
        for iso in [0.3, 0.6, 0.9, 1.2, 99.0] {
            for t in [None, Some(&tree)] {
                let (fast, fast_stats) = extract_isosurface_with_tree(&grid, &field, iso, t);
                let (oracle, oracle_stats) = extract_isosurface_oracle(&grid, &field, iso, t);
                assert_eq!(
                    fast.to_bytes(),
                    oracle.to_bytes(),
                    "iso {iso} pruned {}",
                    t.is_some()
                );
                assert_eq!(fast_stats, oracle_stats);
            }
        }
    }

    #[test]
    fn soa_entry_point_matches_aos() {
        let (grid, field) = sphere_case(14);
        let soa = ScalarFieldSoA::from(field.clone());
        let (aos_soup, aos_stats) = extract_isosurface(&grid, &field, 0.7);
        let (soa_soup, soa_stats) = extract_isosurface_soa(&grid, &soa, 0.7);
        assert_eq!(soa_soup.to_bytes(), aos_soup.to_bytes());
        assert_eq!(soa_stats, aos_stats);
        let (unpruned, _) = extract_isosurface_soa_with_tree(&grid, &soa, 0.7, None);
        assert_eq!(unpruned.to_bytes(), aos_soup.to_bytes());
    }

    #[test]
    #[should_panic]
    fn mismatched_dims_panic() {
        let (grid, _) = sphere_case(8);
        let field = ScalarField::from_fn(BlockDims::new(4, 4, 4), |_, _, _| 0.0);
        let _ = extract_isosurface(&grid, &field, 0.5);
    }
}
