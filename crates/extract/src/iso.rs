//! Block-level isosurface extraction.
//!
//! The plain extractor walks all cells of a block in storage order; the
//! active-cell path (min/max pruning) skips cells whose scalar range
//! cannot contain the iso value. Streaming variants deliver triangles in
//! batches through a sink callback, which is how the framework's
//! streamed commands flush partial results (paper §5.1: reorganization of
//! data; §6.3: "whenever a user-specified number of triangles is
//! computed, these fragments … are directly streamed").

use crate::mesh::TriangleSoup;
use crate::tetra::contour_cell;
use vira_grid::block::CurvilinearBlock;
use vira_grid::field::ScalarField;

/// Counters reported by an extraction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsoStats {
    pub cells_visited: usize,
    pub active_cells: usize,
    pub triangles: usize,
}

/// Extracts the full isosurface of one block into a fresh soup.
pub fn extract_isosurface(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
) -> (TriangleSoup, IsoStats) {
    let mut soup = TriangleSoup::new();
    let stats = extract_streamed(grid, field, iso, usize::MAX, |batch| {
        soup.extend_from(&batch);
    });
    (soup, stats)
}

/// Extracts the isosurface, flushing `sink` whenever at least
/// `batch_triangles` triangles have accumulated (and once at the end for
/// the remainder). Cells are processed in storage order.
pub fn extract_streamed(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
    batch_triangles: usize,
    mut sink: impl FnMut(TriangleSoup),
) -> IsoStats {
    assert_eq!(grid.dims, field.dims, "grid/field dims mismatch");
    let mut stats = IsoStats::default();
    let mut pending = TriangleSoup::new();
    for (i, j, k) in grid.dims.cells() {
        stats.cells_visited += 1;
        let (lo, hi) = field.cell_range(i, j, k);
        if !(hi > iso && lo <= iso) {
            continue;
        }
        stats.active_cells += 1;
        let corners = grid.cell_corners(i, j, k);
        let scalars = field.cell_corners(i, j, k);
        let n = contour_cell(&corners, &scalars, iso, &mut pending);
        stats.triangles += n;
        if pending.n_triangles() >= batch_triangles {
            sink(std::mem::take(&mut pending));
        }
    }
    if !pending.is_empty() {
        sink(pending);
    }
    stats
}

/// Lists the active cells (cells whose corner range straddles `iso`)
/// without triangulating — used by the view-dependent pipeline, which
/// triangulates in BSP traversal order instead of storage order.
pub fn active_cells(field: &ScalarField, iso: f64) -> Vec<(usize, usize, usize)> {
    field
        .dims
        .cells()
        .filter(|&(i, j, k)| {
            let (lo, hi) = field.cell_range(i, j, k);
            hi > iso && lo <= iso
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockDims;
    use vira_grid::math::Vec3;

    /// A uniform n³ grid on [-1,1]³ with the distance-from-origin field.
    fn sphere_case(n: usize) -> (CurvilinearBlock, ScalarField) {
        let dims = BlockDims::new(n, n, n);
        let grid = CurvilinearBlock::from_fn(0, dims, |i, j, k| {
            Vec3::new(
                2.0 * i as f64 / (n - 1) as f64 - 1.0,
                2.0 * j as f64 / (n - 1) as f64 - 1.0,
                2.0 * k as f64 / (n - 1) as f64 - 1.0,
            )
        });
        let pts = grid.points.clone();
        let field = ScalarField::new(dims, pts.iter().map(|p| p.norm()).collect());
        (grid, field)
    }

    #[test]
    fn sphere_isosurface_has_expected_area() {
        let (grid, field) = sphere_case(24);
        let r = 0.6;
        let (soup, stats) = extract_isosurface(&grid, &field, r);
        assert!(stats.triangles > 100);
        assert_eq!(stats.triangles, soup.n_triangles());
        assert!(soup.is_finite());
        // Surface area ≈ 4πr²; tetrahedral faceting stays within ~10 %.
        let expect = 4.0 * std::f64::consts::PI * r * r;
        let area = soup.area();
        assert!(
            (area - expect).abs() / expect < 0.1,
            "area {area} vs {expect}"
        );
        // All vertices near radius r (within a cell diagonal).
        let cell = 2.0 / 23.0;
        for v in &soup.positions {
            let rr = (v[0] as f64).hypot(v[1] as f64).hypot(v[2] as f64);
            assert!((rr - r).abs() < cell * 1.8, "vertex radius {rr}");
        }
    }

    #[test]
    fn iso_outside_range_gives_empty_surface() {
        let (grid, field) = sphere_case(8);
        let (soup, stats) = extract_isosurface(&grid, &field, 99.0);
        assert!(soup.is_empty());
        assert_eq!(stats.active_cells, 0);
        assert_eq!(stats.cells_visited, 7 * 7 * 7);
    }

    #[test]
    fn streamed_batches_concatenate_to_full_surface() {
        let (grid, field) = sphere_case(16);
        let (full, full_stats) = extract_isosurface(&grid, &field, 0.7);
        let mut streamed = TriangleSoup::new();
        let mut batches = 0;
        let stats = extract_streamed(&grid, &field, 0.7, 50, |b| {
            assert!(!b.is_empty());
            batches += 1;
            streamed.extend_from(&b);
        });
        assert_eq!(stats, full_stats);
        assert_eq!(streamed, full, "batching must not change geometry");
        assert!(batches > 1, "expected multiple batches, got {batches}");
    }

    #[test]
    fn active_cells_match_triangulated_cells() {
        let (grid, field) = sphere_case(12);
        let active = active_cells(&field, 0.5);
        let (_, stats) = extract_isosurface(&grid, &field, 0.5);
        assert_eq!(active.len(), stats.active_cells);
        assert!(!active.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_dims_panic() {
        let (grid, _) = sphere_case(8);
        let field = ScalarField::from_fn(BlockDims::new(4, 4, 4), |_, _, _| 0.0);
        let _ = extract_isosurface(&grid, &field, 0.5);
    }
}
