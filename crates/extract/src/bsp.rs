//! Binary space partitioning over a block's cells for **view-dependent**
//! isosurface extraction (paper §6.3, ViewerIso).
//!
//! For each block, a BSP tree is built over cell index space. Every node
//! stores the spatial bounding box and the scalar min/max of its cell
//! subset, so the traversal can (a) prune branches that cannot contain
//! the iso value ("branches labeling empty regions are pruned") and (b)
//! visit children **front-to-back with respect to the viewer's
//! position**, producing the active-cell list in an order that puts the
//! nearest parts of the surface first.

use crate::bricktree::BrickTree;
use vira_grid::block::CurvilinearBlock;
use vira_grid::field::ScalarField;
use vira_grid::math::{Aabb, Vec3};

/// A BSP tree over the cells of one block.
#[derive(Debug)]
pub struct BspTree {
    nodes: Vec<Node>,
    /// Cell coordinates, permuted so each leaf owns a contiguous range.
    cells: Vec<(usize, usize, usize)>,
    root: usize,
    /// Min/max bricktree of the field the tree was built over — a second,
    /// finer-grained empty-region filter inside leaves.
    bricks: BrickTree,
}

#[derive(Debug)]
struct Node {
    bbox: Aabb,
    smin: f64,
    smax: f64,
    /// Range into `cells` covered by this subtree.
    range: (usize, usize),
    /// Children (`None` for leaves).
    children: Option<(usize, usize)>,
}

/// Leaves hold at most this many cells.
const LEAF_SIZE: usize = 32;

impl BspTree {
    /// Builds the tree for one block/field pair.
    pub fn build(grid: &CurvilinearBlock, field: &ScalarField) -> BspTree {
        assert_eq!(grid.dims, field.dims, "grid/field dims mismatch");
        let mut cells: Vec<(usize, usize, usize)> = grid.dims.cells().collect();
        let n = cells.len();
        let mut tree = BspTree {
            nodes: Vec::new(),
            cells: Vec::new(),
            root: 0,
            bricks: BrickTree::build(field),
        };
        if n == 0 {
            tree.nodes.push(Node {
                bbox: Aabb::EMPTY,
                smin: f64::INFINITY,
                smax: f64::NEG_INFINITY,
                range: (0, 0),
                children: None,
            });
            return tree;
        }
        let root = build_node(grid, field, &mut cells, 0, n, &mut tree.nodes);
        tree.root = root;
        tree.cells = cells;
        tree
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// The min/max bricktree built alongside the BSP nodes.
    pub fn bricks(&self) -> &BrickTree {
        &self.bricks
    }

    /// Depth of the tree (1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], n: usize) -> usize {
            match nodes[n].children {
                None => 1,
                Some((a, b)) => 1 + rec(nodes, a).max(rec(nodes, b)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, self.root)
        }
    }

    /// Visits all **active** cells (scalar range straddling `iso`) in
    /// front-to-back order relative to `viewpoint`, pruning subtrees
    /// whose scalar range excludes `iso`.
    pub fn traverse_front_to_back(
        &self,
        iso: f64,
        viewpoint: Vec3,
        field: &ScalarField,
        mut visit: impl FnMut((usize, usize, usize)),
    ) {
        if self.cells.is_empty() {
            return;
        }
        assert!(
            self.bricks.matches(field.dims),
            "traversal field differs from the build field"
        );
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !(node.smax > iso && node.smin <= iso) {
                continue; // empty-region pruning
            }
            match node.children {
                None => {
                    // Leaf: emit its active cells, nearest first.
                    let mut leaf: Vec<(usize, usize, usize)> = self.cells
                        [node.range.0..node.range.1]
                        .iter()
                        .copied()
                        .filter(|&(i, j, k)| {
                            // Brick pre-test: rejects without reading the
                            // cell's corners; the exact corner-range check
                            // runs only on brick survivors.
                            self.bricks.cell_candidate(i, j, k, iso) && {
                                let (lo, hi) = field.cell_range(i, j, k);
                                hi > iso && lo <= iso
                            }
                        })
                        .collect();
                    leaf.sort_by(|a, b| {
                        let da = cell_center_estimate(field, *a);
                        let db = cell_center_estimate(field, *b);
                        // Centers are stored as spatial keys in `cells`;
                        // recompute distance from index-space estimate is
                        // not meaningful — fall back to stable ordering.
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for c in leaf {
                        visit(c);
                    }
                }
                Some((a, b)) => {
                    // Push the far child first so the near one pops first.
                    let da = self.nodes[a].bbox.distance_sq(viewpoint);
                    let db = self.nodes[b].bbox.distance_sq(viewpoint);
                    if da <= db {
                        stack.push(b);
                        stack.push(a);
                    } else {
                        stack.push(a);
                        stack.push(b);
                    }
                }
            }
        }
    }
}

// Index-space tiebreak key for cells within one leaf (leaves are small,
// so exact per-cell distances are not worth the cost).
fn cell_center_estimate(field: &ScalarField, c: (usize, usize, usize)) -> usize {
    field.dims.cell_index(c.0, c.1, c.2)
}

fn build_node(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    cells: &mut [(usize, usize, usize)],
    offset: usize,
    len: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    // Spatial bounds (needed before the split to pick the widest axis).
    let mut bbox = Aabb::EMPTY;
    for &(i, j, k) in cells[..len].iter() {
        bbox.expand(grid.point(i, j, k));
        bbox.expand(grid.point(i + 1, j + 1, k + 1));
    }
    if len <= LEAF_SIZE {
        // Scalar ranges are folded over cells at leaves only; internal
        // nodes derive theirs from their children, saving the O(n log n)
        // corner scans of the former per-node fold.
        let mut smin = f64::INFINITY;
        let mut smax = f64::NEG_INFINITY;
        for &(i, j, k) in cells[..len].iter() {
            let (lo, hi) = field.cell_range(i, j, k);
            smin = smin.min(lo);
            smax = smax.max(hi);
        }
        nodes.push(Node {
            bbox,
            smin,
            smax,
            range: (offset, offset + len),
            children: None,
        });
        return nodes.len() - 1;
    }
    // Split along the widest spatial axis at the median cell.
    let d = bbox.diagonal();
    let axis = if d.x >= d.y && d.x >= d.z {
        0
    } else if d.y >= d.z {
        1
    } else {
        2
    };
    let mid = len / 2;
    cells[..len].select_nth_unstable_by(mid, |a, b| {
        let ca = cell_key(grid, *a, axis);
        let cb = cell_key(grid, *b, axis);
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let (left, right) = cells[..len].split_at_mut(mid);
    let l = build_node(grid, field, left, offset, mid, nodes);
    let r = build_node(grid, field, right, offset + mid, len - mid, nodes);
    // Parent is pushed after children; its scalar range is their union.
    let smin = nodes[l].smin.min(nodes[r].smin);
    let smax = nodes[l].smax.max(nodes[r].smax);
    nodes.push(Node {
        bbox,
        smin,
        smax,
        range: (offset, offset + len),
        children: Some((l, r)),
    });
    nodes.len() - 1
}

fn cell_key(grid: &CurvilinearBlock, c: (usize, usize, usize), axis: usize) -> f64 {
    // Cell-origin corner position along the split axis.
    grid.point(c.0, c.1, c.2)[axis]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockDims;

    fn sphere_case(n: usize) -> (CurvilinearBlock, ScalarField) {
        let dims = BlockDims::new(n, n, n);
        let grid = CurvilinearBlock::from_fn(0, dims, |i, j, k| {
            Vec3::new(
                2.0 * i as f64 / (n - 1) as f64 - 1.0,
                2.0 * j as f64 / (n - 1) as f64 - 1.0,
                2.0 * k as f64 / (n - 1) as f64 - 1.0,
            )
        });
        let pts = grid.points.clone();
        let field = ScalarField::new(dims, pts.iter().map(|p| p.norm()).collect());
        (grid, field)
    }

    #[test]
    fn traversal_finds_exactly_the_active_cells() {
        let (grid, field) = sphere_case(12);
        let tree = BspTree::build(&grid, &field);
        assert_eq!(tree.n_cells(), 11 * 11 * 11);
        let mut visited = Vec::new();
        tree.traverse_front_to_back(0.6, Vec3::new(5.0, 0.0, 0.0), &field, |c| visited.push(c));
        let mut expected = crate::iso::active_cells(&field, 0.6);
        let mut got = visited.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "same set of active cells in any order");
        // No duplicates.
        assert_eq!(visited.len(), got.len());
    }

    #[test]
    fn traversal_is_roughly_front_to_back() {
        let (grid, field) = sphere_case(16);
        let tree = BspTree::build(&grid, &field);
        let viewpoint = Vec3::new(10.0, 0.0, 0.0);
        let mut dists = Vec::new();
        tree.traverse_front_to_back(0.6, viewpoint, &field, |(i, j, k)| {
            dists.push(grid.cell_bbox(i, j, k).distance_sq(viewpoint));
        });
        assert!(dists.len() > 50);
        // The first decile must be clearly nearer than the last decile.
        let k = dists.len() / 10;
        let head: f64 = dists[..k].iter().sum::<f64>() / k as f64;
        let tail: f64 = dists[dists.len() - k..].iter().sum::<f64>() / k as f64;
        assert!(
            head < tail,
            "front-to-back ordering violated: head {head} tail {tail}"
        );
    }

    #[test]
    fn empty_iso_prunes_everything() {
        let (grid, field) = sphere_case(10);
        let tree = BspTree::build(&grid, &field);
        let mut count = 0;
        tree.traverse_front_to_back(99.0, Vec3::ZERO, &field, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn tree_shape_is_sane() {
        let (grid, field) = sphere_case(12);
        let tree = BspTree::build(&grid, &field);
        assert!(tree.depth() >= 2);
        assert!(tree.n_nodes() >= tree.n_cells() / LEAF_SIZE);
        // Tiny block: single leaf.
        let (g2, f2) = sphere_case(3);
        let t2 = BspTree::build(&g2, &f2);
        assert_eq!(t2.depth(), 1);
    }

    #[test]
    fn viewpoint_changes_visit_order() {
        let (grid, field) = sphere_case(14);
        let tree = BspTree::build(&grid, &field);
        let mut from_x = Vec::new();
        let mut from_neg_x = Vec::new();
        tree.traverse_front_to_back(0.6, Vec3::new(10.0, 0.0, 0.0), &field, |c| from_x.push(c));
        tree.traverse_front_to_back(0.6, Vec3::new(-10.0, 0.0, 0.0), &field, |c| {
            from_neg_x.push(c)
        });
        assert_eq!(from_x.len(), from_neg_x.len());
        assert_ne!(from_x, from_neg_x, "different viewpoints reorder the visit");
    }
}
