//! Hierarchical min/max acceleration ("bricktree") over the cells of one
//! block — the shared empty-region-skipping layer of the extraction hot
//! path.
//!
//! The block's cells are grouped into coarse bricks of [`BRICK`]³ cells;
//! each brick stores the min/max scalar range of the grid points it
//! touches. Levels double the brick edge until a single root brick spans
//! the block. An extraction pass at iso level `c` consults the tree to
//! skip whole bricks whose range cannot contain `c` — without reading a
//! single cell of them. Construction is one cheap pass over the field
//! (`ScalarField::range_over_points` keeps the inner loop on contiguous
//! slices), so the tree pays for itself after a fraction of one
//! extraction; callers that re-extract with varying iso levels (the
//! explorative loop of §1.1) amortize it further by caching the tree
//! alongside the derived field (`viracocha::derived`).
//!
//! Pruning is *conservative*: a brick's range bounds every contained
//! cell's corner range, so a skipped brick can never contain an active
//! cell, and [`scan_candidates`](BrickTree::scan_candidates) visits the
//! surviving cells in exactly the storage order of [`BlockDims::cells`] —
//! pruned extraction is triangle-identical to the plain pass (property
//! tested in `tests/bricktree_props.rs`).

use vira_grid::block::BlockDims;
use vira_grid::field::{ScalarField, ScalarFieldSoA, ScalarFieldSoAView};

/// Cells per brick edge at the finest level.
pub const BRICK: usize = 4;

#[derive(Debug, Clone)]
struct Level {
    nx: usize,
    ny: usize,
    nz: usize,
    /// `(lo, hi)` scalar range per brick, `x` fastest.
    ranges: Vec<(f64, f64)>,
}

impl Level {
    #[inline]
    fn range(&self, bx: usize, by: usize, bz: usize) -> (f64, f64) {
        self.ranges[(bz * self.ny + by) * self.nx + bx]
    }
}

#[inline]
fn straddles(r: (f64, f64), iso: f64) -> bool {
    // Matches the active-cell test of the extractors (`s > iso` inside).
    r.1 > iso && r.0 <= iso
}

#[inline]
fn bricks_along(cells: usize, edge: usize) -> usize {
    cells.div_ceil(edge).max(1)
}

/// Counters of one pruned scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Cells never examined because a containing brick was inactive.
    pub cells_skipped: usize,
    /// Finest-level bricks skipped whole.
    pub bricks_skipped: usize,
}

/// Min/max bricktree of one scalar field.
#[derive(Debug, Clone)]
pub struct BrickTree {
    cell_dims: (usize, usize, usize),
    /// Finest level first; the last level is a single root brick.
    levels: Vec<Level>,
}

impl BrickTree {
    /// Builds the tree for one field (one pass over the point data).
    pub fn build(field: &ScalarField) -> BrickTree {
        BrickTree::build_view(ScalarFieldSoA::of(field))
    }

    /// Builds the tree for an SoA field (same pass; the scalar SoA form
    /// shares the AoS layout).
    pub fn build_soa(field: &ScalarFieldSoA) -> BrickTree {
        BrickTree::build_view(field.view())
    }

    /// Builds the tree from a borrowed sample view; the row-contiguous
    /// per-brick scans run through the lane-parallel min/max fold.
    pub fn build_view(field: ScalarFieldSoAView<'_>) -> BrickTree {
        let dims = field.dims;
        let (ci, cj, ck) = dims.cell_dims();
        let mut levels = Vec::new();

        // Finest level: point ranges per brick of BRICK³ cells. A brick
        // covering cells [c0, c1) touches points [c0, c1] inclusive.
        let (nx, ny, nz) = (
            bricks_along(ci, BRICK),
            bricks_along(cj, BRICK),
            bricks_along(ck, BRICK),
        );
        let mut ranges = Vec::with_capacity(nx * ny * nz);
        for bz in 0..nz {
            for by in 0..ny {
                for bx in 0..nx {
                    let i1 = ((bx + 1) * BRICK).min(ci);
                    let j1 = ((by + 1) * BRICK).min(cj);
                    let k1 = ((bz + 1) * BRICK).min(ck);
                    ranges.push(field.range_over_points(
                        bx * BRICK..(i1 + 1).min(dims.ni),
                        by * BRICK..(j1 + 1).min(dims.nj),
                        bz * BRICK..(k1 + 1).min(dims.nk),
                    ));
                }
            }
        }
        levels.push(Level { nx, ny, nz, ranges });

        // Coarser levels: combine 2×2×2 children until one root brick.
        while levels.last().map(|l| l.nx * l.ny * l.nz > 1) == Some(true) {
            let child = levels.last().expect("just pushed");
            let (nx, ny, nz) = (
                child.nx.div_ceil(2),
                child.ny.div_ceil(2),
                child.nz.div_ceil(2),
            );
            let mut ranges = Vec::with_capacity(nx * ny * nz);
            for bz in 0..nz {
                for by in 0..ny {
                    for bx in 0..nx {
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        for cz in 2 * bz..(2 * bz + 2).min(child.nz) {
                            for cy in 2 * by..(2 * by + 2).min(child.ny) {
                                for cx in 2 * bx..(2 * bx + 2).min(child.nx) {
                                    let r = child.range(cx, cy, cz);
                                    lo = lo.min(r.0);
                                    hi = hi.max(r.1);
                                }
                            }
                        }
                        ranges.push((lo, hi));
                    }
                }
            }
            levels.push(Level { nx, ny, nz, ranges });
        }

        BrickTree {
            cell_dims: (ci, cj, ck),
            levels,
        }
    }

    /// Cell dimensions this tree was built for.
    pub fn cell_dims(&self) -> (usize, usize, usize) {
        self.cell_dims
    }

    /// True when the tree matches `dims` (the field it was built from).
    pub fn matches(&self, dims: BlockDims) -> bool {
        self.cell_dims == dims.cell_dims()
    }

    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Finest-level brick count.
    pub fn n_bricks(&self) -> usize {
        let l = &self.levels[0];
        l.nx * l.ny * l.nz
    }

    /// Scalar range of the whole block (the root brick).
    pub fn root_range(&self) -> (f64, f64) {
        self.levels.last().expect("at least one level").ranges[0]
    }

    /// Approximate heap footprint (for cache accounting).
    pub fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.ranges.len() * std::mem::size_of::<(f64, f64)>())
            .sum()
    }

    /// True when the finest brick containing cell `(i, j, k)` straddles
    /// `iso` — the cheap per-cell pre-test for callers that visit cells
    /// in their own order (BSP leaves).
    #[inline]
    pub fn cell_candidate(&self, i: usize, j: usize, k: usize, iso: f64) -> bool {
        let l = &self.levels[0];
        straddles(l.range(i / BRICK, j / BRICK, k / BRICK), iso)
    }

    /// For cell `(i, j, k)`: if a containing brick at some level is
    /// inactive for `iso`, returns the end (exclusive, along `i`) of the
    /// *largest* such brick, clipped to the block — the whole run
    /// `i..end` of this row can be skipped. `None` when even the finest
    /// brick straddles `iso`.
    #[inline]
    pub fn inactive_run_end(&self, i: usize, j: usize, k: usize, iso: f64) -> Option<usize> {
        let mut end = None;
        let mut edge = BRICK;
        for level in &self.levels {
            let (bx, by, bz) = (i / edge, j / edge, k / edge);
            if straddles(level.range(bx, by, bz), iso) {
                break;
            }
            end = Some(((bx + 1) * edge).min(self.cell_dims.0));
            edge *= 2;
        }
        end
    }

    /// Scans all cells in storage order ([`BlockDims::cells`] order),
    /// invoking `candidate` for every cell whose containing bricks all
    /// straddle `iso`, and skipping whole inactive bricks (hierarchically
    /// — an inactive coarse brick skips its full row run in one step).
    /// The visit order of surviving cells is exactly the storage order,
    /// so downstream triangulation output is byte-identical to an
    /// unpruned pass.
    pub fn scan_candidates(
        &self,
        iso: f64,
        mut candidate: impl FnMut(usize, usize, usize),
    ) -> PruneCounters {
        self.scan_candidate_runs(iso, |r, j, k| {
            for i in r {
                candidate(i, j, k);
            }
        })
    }

    /// Run-granular form of [`scan_candidates`](Self::scan_candidates):
    /// invokes `run` once per maximal run `i0..i1` of surviving cells at
    /// fixed `(j, k)`, in storage order. Counters and the set of
    /// surviving cells are exactly those of `scan_candidates`; the
    /// vectorized contour scan consumes runs so it can compute cell
    /// ranges from contiguous point rows instead of per-cell gathers.
    pub fn scan_candidate_runs(
        &self,
        iso: f64,
        mut run: impl FnMut(std::ops::Range<usize>, usize, usize),
    ) -> PruneCounters {
        let (ci, cj, ck) = self.cell_dims;
        let mut c = PruneCounters::default();
        if !straddles(self.root_range(), iso) {
            c.cells_skipped = ci * cj * ck;
            c.bricks_skipped = self.n_bricks();
            return c;
        }
        for k in 0..ck {
            for j in 0..cj {
                let mut i = 0;
                let mut run_start = None;
                while i < ci {
                    if let Some(end) = self.inactive_run_end(i, j, k, iso) {
                        if let Some(s) = run_start.take() {
                            run(s..i, j, k);
                        }
                        c.cells_skipped += end - i;
                        // Count each finest brick once: at its first row
                        // (i lands on brick boundaries, so `end - i`
                        // spans whole bricks).
                        if j % BRICK == 0 && k % BRICK == 0 {
                            c.bricks_skipped += (end - i).div_ceil(BRICK);
                        }
                        i = end;
                    } else {
                        if run_start.is_none() {
                            run_start = Some(i);
                        }
                        i = ((i / BRICK + 1) * BRICK).min(ci);
                    }
                }
                if let Some(s) = run_start {
                    run(s..ci, j, k);
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_field(n: usize) -> ScalarField {
        // s = i + j + k: ranges are exact and easy to reason about.
        ScalarField::from_fn(BlockDims::new(n, n, n), |i, j, k| (i + j + k) as f64)
    }

    #[test]
    fn root_range_matches_field_range() {
        let f = ramp_field(9);
        let t = BrickTree::build(&f);
        assert_eq!(t.root_range(), f.range().unwrap());
        assert!(t.n_levels() >= 2);
        assert!(t.matches(f.dims));
    }

    #[test]
    fn scan_covers_every_cell_when_nothing_prunes() {
        // iso in the middle of a diagonal ramp: the root straddles it and
        // most bricks do too; skipped + visited must cover all cells.
        let f = ramp_field(9);
        let t = BrickTree::build(&f);
        let mut visited = 0usize;
        let c = t.scan_candidates(12.0, |_, _, _| visited += 1);
        assert_eq!(visited + c.cells_skipped, f.dims.n_cells());
    }

    #[test]
    fn scan_order_is_storage_order() {
        let f = ramp_field(7);
        let t = BrickTree::build(&f);
        let mut seen = Vec::new();
        t.scan_candidates(9.0, |i, j, k| seen.push((i, j, k)));
        let mut sorted = seen.clone();
        sorted.sort_by_key(|&(i, j, k)| f.dims.cell_index(i, j, k));
        assert_eq!(seen, sorted, "candidates must arrive in storage order");
    }

    #[test]
    fn pruning_never_drops_an_active_cell() {
        let f = ramp_field(11);
        let t = BrickTree::build(&f);
        for iso in [0.5, 3.0, 10.2, 15.0, 29.5] {
            let mut candidates = Vec::new();
            t.scan_candidates(iso, |i, j, k| candidates.push((i, j, k)));
            let active: Vec<_> = f
                .dims
                .cells()
                .filter(|&(i, j, k)| {
                    let (lo, hi) = f.cell_range(i, j, k);
                    hi > iso && lo <= iso
                })
                .collect();
            for c in &active {
                assert!(candidates.contains(c), "active cell {c:?} pruned at {iso}");
            }
        }
    }

    #[test]
    fn out_of_range_iso_skips_everything() {
        let f = ramp_field(9);
        let t = BrickTree::build(&f);
        let mut visited = 0usize;
        let c = t.scan_candidates(99.0, |_, _, _| visited += 1);
        assert_eq!(visited, 0);
        assert_eq!(c.cells_skipped, f.dims.n_cells());
        assert_eq!(c.bricks_skipped, t.n_bricks());
    }

    #[test]
    fn localized_feature_prunes_most_bricks() {
        // A tiny bump in one corner: every brick away from it is skipped.
        let n = 17;
        let f = ScalarField::from_fn(BlockDims::new(n, n, n), |i, j, k| {
            if i < 3 && j < 3 && k < 3 {
                1.0
            } else {
                0.0
            }
        });
        let t = BrickTree::build(&f);
        let mut visited = 0usize;
        let c = t.scan_candidates(0.5, |_, _, _| visited += 1);
        assert!(visited > 0, "the bump's cells must survive");
        assert!(
            visited < f.dims.n_cells() / 4,
            "only near-bump cells examined: {visited}"
        );
        assert!(c.bricks_skipped > t.n_bricks() / 2);
        assert_eq!(visited + c.cells_skipped, f.dims.n_cells());
    }

    #[test]
    fn non_cubic_and_tiny_blocks() {
        for dims in [
            BlockDims::new(2, 2, 2),
            BlockDims::new(5, 3, 2),
            BlockDims::new(9, 2, 6),
        ] {
            let f = ScalarField::from_fn(dims, |i, j, k| (i * 7 + j * 3 + k) as f64);
            let t = BrickTree::build(&f);
            assert_eq!(t.root_range(), f.range().unwrap());
            let mut visited = 0usize;
            let c = t.scan_candidates(1.5, |_, _, _| visited += 1);
            assert_eq!(visited + c.cells_skipped, dims.n_cells());
        }
    }

    #[test]
    fn candidate_runs_concatenate_to_scan_candidates() {
        let f = ramp_field(11);
        let t = BrickTree::build(&f);
        for iso in [0.5, 9.0, 15.0, 29.5, 99.0] {
            let mut cells = Vec::new();
            let c1 = t.scan_candidates(iso, |i, j, k| cells.push((i, j, k)));
            let mut from_runs = Vec::new();
            let mut prev_row = None;
            let c2 = t.scan_candidate_runs(iso, |r, j, k| {
                assert!(!r.is_empty(), "empty run emitted");
                if prev_row == Some((j, k)) {
                    // Runs within a row must be separated by skipped
                    // cells (maximal), never adjacent.
                    let last_i = from_runs.last().map(|&(i, _, _)| i).unwrap();
                    assert!(r.start > last_i + 1, "runs not maximal at ({j}, {k})");
                }
                prev_row = Some((j, k));
                from_runs.extend(r.map(|i| (i, j, k)));
            });
            assert_eq!(cells, from_runs, "iso {iso}");
            assert_eq!(c1, c2, "iso {iso}");
        }
    }

    #[test]
    fn memory_is_small_fraction_of_field() {
        let f = ramp_field(33);
        let t = BrickTree::build(&f);
        let field_bytes = f.values.len() * std::mem::size_of::<f64>();
        assert!(t.memory_bytes() * 10 < field_bytes, "{}", t.memory_bytes());
    }
}
