//! Multi-resolution representations for progressive computation
//! (paper §5.3 and the "fully progressive multi-resolution extraction"
//! future work of §9).
//!
//! A resolution pyramid is built by point subsampling with stride `2^l`
//! (always keeping the block's boundary points so every level covers the
//! same domain). Progressive extraction runs coarse-to-fine, streaming
//! each level's surface as soon as it is available: the base level gives
//! the user an immediate impression of the final result, later levels
//! replace it. Per §5.3 the total work exceeds a single fine-level pass —
//! that overhead is exactly what experiment E15 quantifies.

use crate::iso::{extract_isosurface, IsoStats};
use crate::mesh::TriangleSoup;
use vira_grid::block::{BlockDims, CurvilinearBlock};
use vira_grid::field::{BlockData, ScalarField, VectorField};

/// Index mapping for one subsampled axis: stride `s`, boundary kept.
fn coarse_axis(n: usize, stride: usize) -> Vec<usize> {
    assert!(stride >= 1 && n >= 2);
    let mut idx: Vec<usize> = (0..n).step_by(stride).collect();
    if *idx.last().expect("non-empty") != n - 1 {
        idx.push(n - 1);
    }
    idx
}

/// Subsamples a block (geometry + velocity) by `stride` in every
/// direction. `stride = 1` returns a clone.
pub fn coarsen(data: &BlockData, stride: usize) -> BlockData {
    let d = data.dims();
    let ix = coarse_axis(d.ni, stride);
    let iy = coarse_axis(d.nj, stride);
    let iz = coarse_axis(d.nk, stride);
    let cd = BlockDims::new(ix.len(), iy.len(), iz.len());
    let mut points = Vec::with_capacity(cd.n_points());
    let mut vel = Vec::with_capacity(cd.n_points());
    for &k in &iz {
        for &j in &iy {
            for &i in &ix {
                points.push(data.grid.point(i, j, k));
                vel.push(data.velocity.at(i, j, k));
            }
        }
    }
    BlockData::new(
        data.id,
        CurvilinearBlock::new(data.grid.id, cd, points),
        VectorField::new(cd, vel),
        data.time,
    )
}

/// Subsamples a scalar field consistently with [`coarsen`].
pub fn coarsen_scalar(field: &ScalarField, stride: usize) -> ScalarField {
    let d = field.dims;
    let ix = coarse_axis(d.ni, stride);
    let iy = coarse_axis(d.nj, stride);
    let iz = coarse_axis(d.nk, stride);
    let cd = BlockDims::new(ix.len(), iy.len(), iz.len());
    let mut values = Vec::with_capacity(cd.n_points());
    for &k in &iz {
        for &j in &iy {
            for &i in &ix {
                values.push(field.at(i, j, k));
            }
        }
    }
    ScalarField::new(cd, values)
}

/// A resolution pyramid, coarsest level first. `levels = 1` is just the
/// original data.
pub fn pyramid(data: &BlockData, levels: usize) -> Vec<BlockData> {
    assert!(levels >= 1);
    (0..levels)
        .rev()
        .map(|l| coarsen(data, 1 << l))
        .collect()
}

/// One level's output of a progressive extraction.
#[derive(Debug, Clone)]
pub struct ProgressiveLevel {
    /// Pyramid level (0 = coarsest).
    pub level: usize,
    /// Subsampling stride of this level.
    pub stride: usize,
    pub surface: TriangleSoup,
    pub stats: IsoStats,
}

/// Progressive isosurface extraction of one block: extracts the surface
/// on every pyramid level from coarse to fine, handing each level to
/// `emit` as soon as it is ready. Returns the per-level records. Every
/// level runs through the bricktree-pruned extractor, so each refinement
/// pass skips the inactive bricks of its own resolution (the per-level
/// `stats` report `cells_skipped`/`bricks_skipped`).
pub fn progressive_isosurface(
    grid: &CurvilinearBlock,
    field: &ScalarField,
    iso: f64,
    levels: usize,
    mut emit: impl FnMut(&ProgressiveLevel),
) -> Vec<ProgressiveLevel> {
    assert!(levels >= 1);
    let mut out = Vec::with_capacity(levels);
    for (n, l) in (0..levels).rev().enumerate() {
        let stride = 1 << l;
        let (cg, cf);
        let (g, f) = if stride == 1 {
            (grid, field)
        } else {
            cg = coarsen_geometry(grid, stride);
            cf = coarsen_scalar(field, stride);
            (&cg, &cf)
        };
        let (surface, stats) = extract_isosurface(g, f, iso);
        let rec = ProgressiveLevel {
            level: n,
            stride,
            surface,
            stats,
        };
        emit(&rec);
        out.push(rec);
    }
    out
}

/// Geometry-only variant of [`coarsen`] (used when the scalar field is
/// derived, not stored in the block data).
pub fn coarsen_geometry(grid: &CurvilinearBlock, stride: usize) -> CurvilinearBlock {
    let d = grid.dims;
    let ix = coarse_axis(d.ni, stride);
    let iy = coarse_axis(d.nj, stride);
    let iz = coarse_axis(d.nk, stride);
    let cd = BlockDims::new(ix.len(), iy.len(), iz.len());
    let mut points = Vec::with_capacity(cd.n_points());
    for &k in &iz {
        for &j in &iy {
            for &i in &ix {
                points.push(grid.point(i, j, k));
            }
        }
    }
    CurvilinearBlock::new(grid.id, cd, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockStepId;
    use vira_grid::math::Vec3;
    use vira_grid::synth::test_cube;

    fn data(res: usize) -> BlockData {
        test_cube(res, 1).generate(BlockStepId::new(0, 0))
    }

    #[test]
    fn coarse_axis_keeps_boundaries() {
        assert_eq!(coarse_axis(9, 2), vec![0, 2, 4, 6, 8]);
        assert_eq!(coarse_axis(8, 2), vec![0, 2, 4, 6, 7]);
        assert_eq!(coarse_axis(5, 4), vec![0, 4]);
        assert_eq!(coarse_axis(5, 16), vec![0, 4]);
        assert_eq!(coarse_axis(2, 1), vec![0, 1]);
    }

    #[test]
    fn coarsen_preserves_domain_bbox() {
        let d = data(9);
        let c = coarsen(&d, 2);
        assert_eq!(c.dims(), BlockDims::new(5, 5, 5));
        assert_eq!(c.grid.bbox(), d.grid.bbox());
        assert_eq!(c.time, d.time);
        // Corner samples survive subsampling exactly.
        assert_eq!(c.velocity.at(0, 0, 0), d.velocity.at(0, 0, 0));
        assert_eq!(c.velocity.at(4, 4, 4), d.velocity.at(8, 8, 8));
    }

    #[test]
    fn stride_one_is_identity() {
        let d = data(6);
        let c = coarsen(&d, 1);
        assert_eq!(c, d);
    }

    #[test]
    fn pyramid_is_coarse_to_fine() {
        let d = data(9);
        let p = pyramid(&d, 3);
        assert_eq!(p.len(), 3);
        assert!(p[0].dims().n_points() < p[1].dims().n_points());
        assert!(p[1].dims().n_points() < p[2].dims().n_points());
        assert_eq!(p[2], d, "finest level is the original");
    }

    #[test]
    fn progressive_iso_converges_to_final_surface() {
        let res = 17;
        let d = data(res);
        let grid = &d.grid;
        let field = ScalarField::new(
            grid.dims,
            grid.points.iter().map(|p| p.norm()).collect(),
        );
        let mut emitted = Vec::new();
        let levels = progressive_isosurface(grid, &field, 0.6, 3, |l| {
            emitted.push((l.level, l.stats.triangles));
        });
        assert_eq!(levels.len(), 3);
        assert_eq!(emitted.len(), 3);
        // Coarser levels produce fewer triangles; the finest equals a
        // direct extraction.
        assert!(levels[0].stats.triangles < levels[2].stats.triangles);
        let (direct, direct_stats) = extract_isosurface(grid, &field, 0.6);
        assert_eq!(levels[2].surface, direct);
        assert_eq!(levels[2].stats, direct_stats);
        // Every level approximates the same sphere: areas within 30 %.
        let fine_area = levels[2].surface.area();
        for l in &levels {
            if l.stats.triangles > 0 {
                let ratio = l.surface.area() / fine_area;
                assert!(
                    (0.7..1.3).contains(&ratio),
                    "level {} area ratio {ratio}",
                    l.level
                );
            }
        }
        // Total progressive work exceeds the single-pass cost (§5.3).
        let total: usize = levels.iter().map(|l| l.stats.cells_visited).sum();
        assert!(total > direct_stats.cells_visited);
    }

    #[test]
    fn coarsen_scalar_matches_geometry_subsampling() {
        let d = data(9);
        let f = ScalarField::from_fn(d.dims(), |i, j, k| (i + j + k) as f64);
        let cf = coarsen_scalar(&f, 2);
        assert_eq!(cf.dims, BlockDims::new(5, 5, 5));
        assert_eq!(cf.at(1, 1, 1), f.at(2, 2, 2));
        assert_eq!(cf.at(4, 0, 0), f.at(8, 0, 0));
    }

    #[test]
    fn coarsen_vec_and_geometry_agree() {
        let d = data(7);
        let c = coarsen(&d, 2);
        let g = coarsen_geometry(&d.grid, 2);
        assert_eq!(c.grid, g);
    }

    #[test]
    fn uneven_dims_are_handled() {
        // 8 points → stride 2 keeps 0,2,4,6,7: spacing irregular at the
        // boundary but the domain is preserved.
        let ds = test_cube(8, 1);
        let d = ds.generate(BlockStepId::new(0, 0));
        let c = coarsen(&d, 2);
        assert_eq!(c.dims(), BlockDims::new(5, 5, 5));
        assert_eq!(c.grid.bbox(), d.grid.bbox());
        assert_eq!(
            c.grid.point(4, 4, 4),
            Vec3::splat(1.0),
            "boundary point preserved"
        );
    }
}
