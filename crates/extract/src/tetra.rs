//! Marching tetrahedra over hexahedral cells.
//!
//! Each (possibly curvilinear) hexahedral cell is decomposed into six
//! tetrahedra around the main diagonal; the iso-contour of each
//! tetrahedron is triangulated exactly (1 or 2 triangles). Compared to
//! the classic 256-case marching cubes this is topologically unambiguous,
//! at the cost of a constant factor more triangles — no experiment in the
//! paper depends on absolute triangle counts (see DESIGN.md,
//! substitutions).
//!
//! The kernel is allocation-free: the 16 sign configurations of a
//! tetrahedron are resolved through the precomputed [`TET_CASES`] table
//! (lone vertex or two-two split, vertex roles in fixed arrays), so the
//! innermost loop of every extractor touches only the stack.

use crate::mesh::TriangleSoup;
use vira_grid::math::Vec3;

/// The six tetrahedra of a hexahedron, as indices into the canonical
/// corner order of `BlockDims::cell_corner_indices` (0 = (0,0,0) … 7 =
/// (1,1,1)). All six share the main diagonal 0–7 and tile the cell.
pub const CELL_TETRAHEDRA: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
    [0, 5, 1, 7],
];

/// The six edges of a tetrahedron as local vertex pairs.
const TET_EDGES: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

/// One sign configuration of a tetrahedron, indexed by the mask with bit
/// `i` set iff `s[i] > iso`.
#[derive(Debug, Clone, Copy)]
enum TetCase {
    /// No crossing (all above or all at/below).
    Empty,
    /// One vertex separated from the other three: one triangle on the
    /// three edges incident to `lone`. `others` ascending; `lone_above`
    /// tells which side of the surface the lone vertex is on.
    Lone {
        lone: u8,
        others: [u8; 3],
        lone_above: bool,
    },
    /// Two-two split: the four crossing edges form a quad, two triangles.
    /// `inside`/`outside` each ascending.
    Quad { inside: [u8; 2], outside: [u8; 2] },
}

/// All 16 sign configurations. Vertex orderings reproduce exactly the
/// ascending-index enumeration of the original scan-based kernel, so the
/// emitted triangles are bit-identical to it.
const TET_CASES: [TetCase; 16] = {
    use TetCase::*;
    [
        /* 0b0000 */ Empty,
        /* 0b0001 */
        Lone {
            lone: 0,
            others: [1, 2, 3],
            lone_above: true,
        },
        /* 0b0010 */
        Lone {
            lone: 1,
            others: [0, 2, 3],
            lone_above: true,
        },
        /* 0b0011 */
        Quad {
            inside: [0, 1],
            outside: [2, 3],
        },
        /* 0b0100 */
        Lone {
            lone: 2,
            others: [0, 1, 3],
            lone_above: true,
        },
        /* 0b0101 */
        Quad {
            inside: [0, 2],
            outside: [1, 3],
        },
        /* 0b0110 */
        Quad {
            inside: [1, 2],
            outside: [0, 3],
        },
        /* 0b0111 */
        Lone {
            lone: 3,
            others: [0, 1, 2],
            lone_above: false,
        },
        /* 0b1000 */
        Lone {
            lone: 3,
            others: [0, 1, 2],
            lone_above: true,
        },
        /* 0b1001 */
        Quad {
            inside: [0, 3],
            outside: [1, 2],
        },
        /* 0b1010 */
        Quad {
            inside: [1, 3],
            outside: [0, 2],
        },
        /* 0b1011 */
        Lone {
            lone: 2,
            others: [0, 1, 3],
            lone_above: false,
        },
        /* 0b1100 */
        Quad {
            inside: [2, 3],
            outside: [0, 1],
        },
        /* 0b1101 */
        Lone {
            lone: 1,
            others: [0, 2, 3],
            lone_above: false,
        },
        /* 0b1110 */
        Lone {
            lone: 0,
            others: [1, 2, 3],
            lone_above: false,
        },
        /* 0b1111 */ Empty,
    ]
};

#[inline]
fn edge_point(pa: Vec3, pb: Vec3, sa: f64, sb: f64, iso: f64) -> Vec3 {
    // sa and sb straddle iso, so the denominator is non-zero.
    let t = (iso - sa) / (sb - sa);
    pa.lerp(pb, t.clamp(0.0, 1.0))
}

/// Pushes `a b c` with a winding such that the triangle normal points
/// along `toward` (from the above-iso region into the at/below-iso
/// region) — consistent orientation across the whole surface.
#[inline]
fn push_oriented(out: &mut TriangleSoup, a: Vec3, b: Vec3, c: Vec3, toward: Vec3) {
    let n = (b - a).cross(c - a);
    if n.dot(toward) < 0.0 {
        out.push_tri(a, c, b);
    } else {
        out.push_tri(a, b, c);
    }
}

/// Extracts the iso-surface of one tetrahedron into `out`. `p` are vertex
/// positions, `s` the scalar samples. Returns the number of triangles
/// appended (0, 1 or 2).
pub fn contour_tetra(p: &[Vec3; 4], s: &[f64; 4], iso: f64, out: &mut TriangleSoup) -> usize {
    let mask = ((s[0] > iso) as usize)
        | (((s[1] > iso) as usize) << 1)
        | (((s[2] > iso) as usize) << 2)
        | (((s[3] > iso) as usize) << 3);
    match TET_CASES[mask] {
        TetCase::Empty => 0,
        TetCase::Lone {
            lone,
            others,
            lone_above,
        } => {
            let l = lone as usize;
            let [o0, o1, o2] = others.map(|o| o as usize);
            let v0 = edge_point(p[l], p[o0], s[l], s[o0], iso);
            let v1 = edge_point(p[l], p[o1], s[l], s[o1], iso);
            let v2 = edge_point(p[l], p[o2], s[l], s[o2], iso);
            // Normal points away from the above-iso side.
            let centroid_others = (p[o0] + p[o1] + p[o2]) / 3.0;
            let toward = if lone_above {
                centroid_others - p[l]
            } else {
                p[l] - centroid_others
            };
            push_oriented(out, v0, v1, v2, toward);
            1
        }
        TetCase::Quad { inside, outside } => {
            let [a, b] = inside.map(|v| v as usize);
            let [c, d] = outside.map(|v| v as usize);
            // Cyclic order a-c, c-b, b-d, d-a keeps the quad planar-convex
            // in barycentric coordinates.
            let q0 = edge_point(p[a], p[c], s[a], s[c], iso);
            let q1 = edge_point(p[b], p[c], s[b], s[c], iso);
            let q2 = edge_point(p[b], p[d], s[b], s[d], iso);
            let q3 = edge_point(p[a], p[d], s[a], s[d], iso);
            // a, b are above iso; normals point toward the c/d side.
            let toward = (p[c] + p[d] - p[a] - p[b]) * 0.5;
            push_oriented(out, q0, q1, q2, toward);
            push_oriented(out, q0, q2, q3, toward);
            2
        }
    }
}

/// Extracts the iso-surface of one hexahedral cell given its 8 corner
/// positions and scalars (canonical trilinear corner order). Returns the
/// number of triangles appended.
pub fn contour_cell(
    corners: &[Vec3; 8],
    scalars: &[f64; 8],
    iso: f64,
    out: &mut TriangleSoup,
) -> usize {
    // Quick reject: a crossing requires some corner above iso and some
    // at/below it (the inside test is `s > iso`).
    let (mut lo, mut hi) = (scalars[0], scalars[0]);
    for &s in &scalars[1..] {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    if !(hi > iso && lo <= iso) {
        return 0;
    }
    let mut n = 0;
    for tet in &CELL_TETRAHEDRA {
        let p = [
            corners[tet[0]],
            corners[tet[1]],
            corners[tet[2]],
            corners[tet[3]],
        ];
        let s = [
            scalars[tet[0]],
            scalars[tet[1]],
            scalars[tet[2]],
            scalars[tet[3]],
        ];
        n += contour_tetra(&p, &s, iso, out);
    }
    n
}

/// Number of crossed edges of a tetra configuration — exposed for
/// property tests.
pub fn tet_crossing_edges(s: &[f64; 4], iso: f64) -> usize {
    TET_EDGES
        .iter()
        .filter(|&&(a, b)| (s[a] > iso) != (s[b] > iso))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tet() -> [Vec3; 4] {
        [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ]
    }

    fn unit_cell() -> [Vec3; 8] {
        [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        ]
    }

    /// The original scan-based kernel, kept as the oracle: the case table
    /// must reproduce its output bit for bit on every configuration.
    fn contour_tetra_reference(
        p: &[Vec3; 4],
        s: &[f64; 4],
        iso: f64,
        out: &mut TriangleSoup,
    ) -> usize {
        let mut mask = 0usize;
        for (i, &si) in s.iter().enumerate() {
            if si > iso {
                mask |= 1 << i;
            }
        }
        if mask == 0 || mask == 0b1111 {
            return 0;
        }
        let inside: Vec<usize> = (0..4).filter(|&i| mask & (1 << i) != 0).collect();
        match inside.len() {
            1 | 3 => {
                let lone = if inside.len() == 1 {
                    inside[0]
                } else {
                    (0..4)
                        .find(|i| !inside.contains(i))
                        .expect("one outside vertex")
                };
                let others: Vec<usize> = (0..4).filter(|&i| i != lone).collect();
                let v: Vec<Vec3> = others
                    .iter()
                    .map(|&o| edge_point(p[lone], p[o], s[lone], s[o], iso))
                    .collect();
                let centroid_others = (p[others[0]] + p[others[1]] + p[others[2]]) / 3.0;
                let toward = if s[lone] > iso {
                    centroid_others - p[lone]
                } else {
                    p[lone] - centroid_others
                };
                push_oriented(out, v[0], v[1], v[2], toward);
                1
            }
            2 => {
                let (a, b) = (inside[0], inside[1]);
                let outside: Vec<usize> = (0..4).filter(|&i| i != a && i != b).collect();
                let (c, d) = (outside[0], outside[1]);
                let q0 = edge_point(p[a], p[c], s[a], s[c], iso);
                let q1 = edge_point(p[b], p[c], s[b], s[c], iso);
                let q2 = edge_point(p[b], p[d], s[b], s[d], iso);
                let q3 = edge_point(p[a], p[d], s[a], s[d], iso);
                let toward = (p[c] + p[d] - p[a] - p[b]) * 0.5;
                push_oriented(out, q0, q1, q2, toward);
                push_oriented(out, q0, q2, q3, toward);
                2
            }
            _ => unreachable!("mask 0 and 15 handled above"),
        }
    }

    #[test]
    fn case_table_matches_reference_on_all_sixteen_masks() {
        let p = unit_tet();
        for mask in 0..16usize {
            let s: [f64; 4] =
                std::array::from_fn(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 });
            let mut fast = TriangleSoup::new();
            let mut slow = TriangleSoup::new();
            let nf = contour_tetra(&p, &s, 0.5, &mut fast);
            let ns = contour_tetra_reference(&p, &s, 0.5, &mut slow);
            assert_eq!(nf, ns, "triangle count differs on mask {mask:#06b}");
            assert_eq!(fast, slow, "geometry differs on mask {mask:#06b}");
        }
    }

    #[test]
    fn case_table_matches_reference_on_skewed_scalars() {
        // Non-symmetric scalars and a skewed tetra exercise the
        // interpolation parameters and orientation logic.
        let p = [
            Vec3::new(0.1, -0.2, 0.3),
            Vec3::new(1.4, 0.2, -0.1),
            Vec3::new(-0.3, 1.1, 0.4),
            Vec3::new(0.2, 0.3, 1.7),
        ];
        let scalar_sets = [
            [0.9, 0.1, 0.4, 0.2],
            [0.1, 0.9, 0.8, 0.2],
            [0.7, 0.6, 0.1, 0.9],
            [0.2, 0.8, 0.3, 0.6],
        ];
        for s in &scalar_sets {
            for iso in [0.25, 0.5, 0.65] {
                let mut fast = TriangleSoup::new();
                let mut slow = TriangleSoup::new();
                assert_eq!(
                    contour_tetra(&p, s, iso, &mut fast),
                    contour_tetra_reference(&p, s, iso, &mut slow),
                );
                assert_eq!(fast, slow, "geometry differs for {s:?} at {iso}");
            }
        }
    }

    #[test]
    fn tetra_all_inside_or_outside_yields_nothing() {
        let p = unit_tet();
        let mut out = TriangleSoup::new();
        assert_eq!(contour_tetra(&p, &[1.0; 4], 0.5, &mut out), 0);
        assert_eq!(contour_tetra(&p, &[0.0; 4], 0.5, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn tetra_single_vertex_case_yields_one_triangle() {
        let p = unit_tet();
        let s = [1.0, 0.0, 0.0, 0.0];
        let mut out = TriangleSoup::new();
        assert_eq!(contour_tetra(&p, &s, 0.5, &mut out), 1);
        assert_eq!(out.n_triangles(), 1);
        // All vertices at midpoints of edges from vertex 0.
        for v in &out.positions {
            let sum = v[0] + v[1] + v[2];
            assert!((sum - 0.5).abs() < 1e-6, "midpoint of an edge from origin");
        }
    }

    #[test]
    fn tetra_three_inside_mirrors_one_inside() {
        let p = unit_tet();
        let mut a = TriangleSoup::new();
        let mut b = TriangleSoup::new();
        contour_tetra(&p, &[1.0, 0.0, 0.0, 0.0], 0.5, &mut a);
        contour_tetra(&p, &[0.0, 1.0, 1.0, 1.0], 0.5, &mut b);
        assert_eq!(a.n_triangles(), 1);
        assert_eq!(b.n_triangles(), 1);
        // Same cut plane: identical vertex sets (up to order).
        let mut av: Vec<_> = a.positions.clone();
        let mut bv: Vec<_> = b.positions.clone();
        let key = |p: &[f32; 3]| (p[0].to_bits(), p[1].to_bits(), p[2].to_bits());
        av.sort_by_key(key);
        bv.sort_by_key(key);
        assert_eq!(av, bv);
    }

    #[test]
    fn tetra_two_two_case_yields_quad() {
        let p = unit_tet();
        let s = [1.0, 1.0, 0.0, 0.0];
        let mut out = TriangleSoup::new();
        assert_eq!(contour_tetra(&p, &s, 0.5, &mut out), 2);
        assert_eq!(out.n_triangles(), 2);
        assert!(out.area() > 0.0);
    }

    #[test]
    fn vertices_interpolate_to_iso_value() {
        // For scalars linear in position (s = x), every emitted vertex
        // must satisfy x == iso exactly.
        let p = unit_cell();
        let s = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]; // s = x
        let mut out = TriangleSoup::new();
        contour_cell(&p, &s, 0.25, &mut out);
        assert!(!out.is_empty());
        for v in &out.positions {
            assert!((v[0] - 0.25).abs() < 1e-6, "x = {}", v[0]);
        }
    }

    #[test]
    fn planar_cut_area_is_unit() {
        // s = z, iso = 0.5 cuts the unit cube in a unit square.
        let p = unit_cell();
        let s = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let mut out = TriangleSoup::new();
        contour_cell(&p, &s, 0.5, &mut out);
        assert!((out.area() - 1.0).abs() < 1e-9, "area = {}", out.area());
    }

    #[test]
    fn no_crossing_cell_is_skipped() {
        let p = unit_cell();
        let mut out = TriangleSoup::new();
        assert_eq!(contour_cell(&p, &[2.0; 8], 0.5, &mut out), 0);
    }

    #[test]
    fn cell_tetrahedra_tile_the_cell() {
        // Volumes of the 6 tets of the unit cube sum to 1.
        let p = unit_cell();
        let mut vol = 0.0;
        for tet in &CELL_TETRAHEDRA {
            let a = p[tet[1]] - p[tet[0]];
            let b = p[tet[2]] - p[tet[0]];
            let c = p[tet[3]] - p[tet[0]];
            vol += a.cross(b).dot(c).abs() / 6.0;
        }
        assert!((vol - 1.0).abs() < 1e-12, "total volume {vol}");
    }

    #[test]
    fn crossing_edge_count_matches_case() {
        assert_eq!(tet_crossing_edges(&[1.0, 0.0, 0.0, 0.0], 0.5), 3);
        assert_eq!(tet_crossing_edges(&[1.0, 1.0, 0.0, 0.0], 0.5), 4);
        assert_eq!(tet_crossing_edges(&[1.0; 4], 0.5), 0);
    }
}
