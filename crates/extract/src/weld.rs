//! Vertex welding and normal computation: turns the triangle soups the
//! extraction commands stream into indexed meshes with per-vertex
//! normals — the representation a rendering front-end (ViSTA FlowLib)
//! actually uploads to the GPU.
//!
//! Welding also enables topological checks: on a closed iso-surface
//! every edge must be shared by exactly two triangles, which the test
//! suite uses to verify that marching tetrahedra produce watertight
//! surfaces away from block boundaries.

use crate::mesh::TriangleSoup;
use std::collections::HashMap;

/// An indexed triangle mesh with per-vertex normals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IndexedMesh {
    pub positions: Vec<[f32; 3]>,
    /// Vertex index triples.
    pub triangles: Vec<[u32; 3]>,
    /// Area-weighted, normalized per-vertex normals (zero where
    /// degenerate).
    pub normals: Vec<[f32; 3]>,
}

impl IndexedMesh {
    pub fn n_vertices(&self) -> usize {
        self.positions.len()
    }

    pub fn n_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Counts boundary edges (edges used by exactly one triangle) and
    /// non-manifold edges (used by more than two). A closed 2-manifold
    /// has zero of both.
    pub fn edge_defects(&self) -> EdgeDefects {
        let mut edges: HashMap<(u32, u32), u32> = HashMap::new();
        for t in &self.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (a.min(b), a.max(b));
                *edges.entry(key).or_insert(0) += 1;
            }
        }
        let mut d = EdgeDefects {
            total_edges: edges.len(),
            ..EdgeDefects::default()
        };
        for &c in edges.values() {
            match c {
                1 => d.boundary_edges += 1,
                2 => {}
                _ => d.non_manifold_edges += 1,
            }
        }
        d
    }
}

/// Result of [`IndexedMesh::edge_defects`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeDefects {
    pub total_edges: usize,
    pub boundary_edges: usize,
    pub non_manifold_edges: usize,
}

/// Welds a triangle soup into an indexed mesh, merging vertices that
/// agree within `tolerance` (coordinates are quantized to the tolerance
/// grid). Degenerate triangles (two or more identical welded vertices)
/// are dropped.
pub fn weld(soup: &TriangleSoup, tolerance: f32) -> IndexedMesh {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let inv = 1.0 / tolerance;
    let quantize = |p: &[f32; 3]| -> (i64, i64, i64) {
        (
            (p[0] * inv).round() as i64,
            (p[1] * inv).round() as i64,
            (p[2] * inv).round() as i64,
        )
    };
    let mut index_of: HashMap<(i64, i64, i64), u32> = HashMap::new();
    let mut mesh = IndexedMesh::default();
    let mut tri = [0u32; 3];
    for (n, p) in soup.positions.iter().enumerate() {
        let key = quantize(p);
        let idx = *index_of.entry(key).or_insert_with(|| {
            mesh.positions.push(*p);
            (mesh.positions.len() - 1) as u32
        });
        tri[n % 3] = idx;
        if n % 3 == 2 && tri[0] != tri[1] && tri[1] != tri[2] && tri[0] != tri[2] {
            mesh.triangles.push(tri);
        }
    }
    compute_normals(&mut mesh);
    mesh
}

/// Recomputes area-weighted per-vertex normals in place.
pub fn compute_normals(mesh: &mut IndexedMesh) {
    let mut acc = vec![[0.0f64; 3]; mesh.positions.len()];
    for t in &mesh.triangles {
        let p = |i: u32| {
            let v = mesh.positions[i as usize];
            [v[0] as f64, v[1] as f64, v[2] as f64]
        };
        let (a, b, c) = (p(t[0]), p(t[1]), p(t[2]));
        let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
        // Cross product magnitude = 2 × area: natural area weighting.
        let n = [
            u[1] * v[2] - u[2] * v[1],
            u[2] * v[0] - u[0] * v[2],
            u[0] * v[1] - u[1] * v[0],
        ];
        for &i in t {
            for k in 0..3 {
                acc[i as usize][k] += n[k];
            }
        }
    }
    mesh.normals = acc
        .into_iter()
        .map(|n| {
            let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
            if len < 1e-30 {
                [0.0, 0.0, 0.0]
            } else {
                [(n[0] / len) as f32, (n[1] / len) as f32, (n[2] / len) as f32]
            }
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockDims;
    use vira_grid::field::ScalarField;
    use vira_grid::math::Vec3;
    use vira_grid::CurvilinearBlock;

    fn sphere_soup(n: usize, r: f64) -> TriangleSoup {
        let dims = BlockDims::new(n, n, n);
        let grid = CurvilinearBlock::from_fn(0, dims, |i, j, k| {
            Vec3::new(
                2.0 * i as f64 / (n - 1) as f64 - 1.0,
                2.0 * j as f64 / (n - 1) as f64 - 1.0,
                2.0 * k as f64 / (n - 1) as f64 - 1.0,
            )
        });
        let pts = grid.points.clone();
        let field = ScalarField::new(dims, pts.iter().map(|p| p.norm()).collect());
        crate::iso::extract_isosurface(&grid, &field, r).0
    }

    #[test]
    fn welding_shrinks_vertex_count() {
        let soup = sphere_soup(16, 0.6);
        let mesh = weld(&soup, 1e-5);
        assert_eq!(mesh.n_triangles() + degenerate_count(&soup), soup.n_triangles());
        // Each welded vertex is shared by ~6 triangles on average.
        assert!(mesh.n_vertices() * 2 < soup.positions.len());
        assert_eq!(mesh.normals.len(), mesh.n_vertices());
    }

    fn degenerate_count(soup: &TriangleSoup) -> usize {
        // Triangles collapsing under the weld tolerance.
        soup.n_triangles() - weld(soup, 1e-5).n_triangles()
    }

    #[test]
    fn marching_tetra_sphere_is_watertight() {
        // An iso-surface fully inside the block is a closed 2-manifold:
        // zero boundary edges, zero non-manifold edges after welding.
        let soup = sphere_soup(14, 0.55);
        let mesh = weld(&soup, 1e-6);
        let d = mesh.edge_defects();
        assert_eq!(d.boundary_edges, 0, "open edges: {d:?}");
        assert_eq!(d.non_manifold_edges, 0, "non-manifold: {d:?}");
        assert!(d.total_edges > 0);
    }

    #[test]
    fn sphere_normals_point_radially() {
        let soup = sphere_soup(16, 0.6);
        let mesh = weld(&soup, 1e-6);
        let mut aligned = 0;
        for (p, n) in mesh.positions.iter().zip(&mesh.normals) {
            let len_p = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            let dot =
                ((p[0] * n[0] + p[1] * n[1] + p[2] * n[2]) / len_p).abs();
            if dot > 0.9 {
                aligned += 1;
            }
        }
        // The vast majority of normals align with the radial direction
        // (sign depends on triangle orientation).
        assert!(
            aligned * 10 >= mesh.n_vertices() * 9,
            "{aligned} of {} aligned",
            mesh.n_vertices()
        );
    }

    #[test]
    fn degenerate_triangles_are_dropped() {
        let mut soup = TriangleSoup::new();
        // A triangle whose vertices weld to a single point.
        soup.push_tri(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1e-9, 0.0, 0.0),
            Vec3::new(0.0, 1e-9, 0.0),
        );
        soup.push_tri(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let mesh = weld(&soup, 1e-5);
        assert_eq!(mesh.n_triangles(), 1);
    }

    #[test]
    fn normals_are_unit_or_zero() {
        let soup = sphere_soup(12, 0.5);
        let mesh = weld(&soup, 1e-6);
        for n in &mesh.normals {
            let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
            assert!(len < 1e-6 || (len - 1.0).abs() < 1e-4, "|n| = {len}");
        }
    }

    #[test]
    fn empty_soup_welds_to_empty_mesh() {
        let mesh = weld(&TriangleSoup::new(), 1e-5);
        assert_eq!(mesh.n_vertices(), 0);
        assert_eq!(mesh.n_triangles(), 0);
        assert_eq!(mesh.edge_defects(), EdgeDefects::default());
    }
}
