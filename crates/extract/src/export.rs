//! Geometry export: Wavefront OBJ and legacy-ASCII VTK writers for the
//! extracted surfaces and particle traces, so results can be inspected
//! in standard tools (ParaView, MeshLab, Blender) — the hand-off a
//! post-processing back-end owes its downstream users.

use crate::mesh::{Polyline, TriangleSoup};
use crate::weld::IndexedMesh;
use std::io::{self, Write};

/// Writes an indexed mesh as Wavefront OBJ (positions, normals, faces).
pub fn write_obj(mesh: &IndexedMesh, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# viracocha export: {} vertices, {} triangles", mesh.n_vertices(), mesh.n_triangles())?;
    for p in &mesh.positions {
        writeln!(w, "v {} {} {}", p[0], p[1], p[2])?;
    }
    let has_normals = mesh.normals.len() == mesh.positions.len();
    if has_normals {
        for n in &mesh.normals {
            writeln!(w, "vn {} {} {}", n[0], n[1], n[2])?;
        }
    }
    for t in &mesh.triangles {
        // OBJ indices are 1-based.
        if has_normals {
            writeln!(
                w,
                "f {0}//{0} {1}//{1} {2}//{2}",
                t[0] + 1,
                t[1] + 1,
                t[2] + 1
            )?;
        } else {
            writeln!(w, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
        }
    }
    Ok(())
}

/// Writes an indexed mesh as legacy-ASCII VTK `POLYDATA` (readable by
/// ParaView/VisIt — the toolchain family the paper built on).
pub fn write_vtk_mesh(mesh: &IndexedMesh, title: &str, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "{}", title.lines().next().unwrap_or("viracocha surface"))?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {} float", mesh.n_vertices())?;
    for p in &mesh.positions {
        writeln!(w, "{} {} {}", p[0], p[1], p[2])?;
    }
    writeln!(w, "POLYGONS {} {}", mesh.n_triangles(), mesh.n_triangles() * 4)?;
    for t in &mesh.triangles {
        writeln!(w, "3 {} {} {}", t[0], t[1], t[2])?;
    }
    if mesh.normals.len() == mesh.positions.len() && !mesh.normals.is_empty() {
        writeln!(w, "POINT_DATA {}", mesh.n_vertices())?;
        writeln!(w, "NORMALS normals float")?;
        for n in &mesh.normals {
            writeln!(w, "{} {} {}", n[0], n[1], n[2])?;
        }
    }
    Ok(())
}

/// Writes polylines (pathlines / streaklines) as legacy-ASCII VTK
/// `POLYDATA` with the solution time as point data.
pub fn write_vtk_polylines(lines: &[Polyline], title: &str, w: &mut impl Write) -> io::Result<()> {
    let n_points: usize = lines.iter().map(|l| l.len()).sum();
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "{}", title.lines().next().unwrap_or("viracocha traces"))?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {n_points} float")?;
    for l in lines {
        for p in &l.points {
            writeln!(w, "{} {} {}", p[0], p[1], p[2])?;
        }
    }
    let size: usize = lines.iter().map(|l| l.len() + 1).sum();
    writeln!(w, "LINES {} {}", lines.len(), size)?;
    let mut offset = 0usize;
    for l in lines {
        write!(w, "{}", l.len())?;
        for i in 0..l.len() {
            write!(w, " {}", offset + i)?;
        }
        writeln!(w)?;
        offset += l.len();
    }
    writeln!(w, "POINT_DATA {n_points}")?;
    writeln!(w, "SCALARS time float 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for l in lines {
        for &t in &l.times {
            writeln!(w, "{t}")?;
        }
    }
    Ok(())
}

/// Convenience: weld a soup and write it in the format implied by the
/// file extension (`.obj` or `.vtk`).
pub fn save_soup(soup: &TriangleSoup, path: &std::path::Path) -> io::Result<()> {
    let mesh = crate::weld::weld(soup, 1e-6);
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    match path.extension().and_then(|e| e.to_str()) {
        Some("obj") => write_obj(&mesh, &mut w),
        Some("vtk") => write_vtk_mesh(&mesh, "viracocha surface", &mut w),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unsupported extension {other:?} (use .obj or .vtk)"),
        )),
    }?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weld::weld;
    use vira_grid::math::Vec3;

    fn small_mesh() -> IndexedMesh {
        let mut soup = TriangleSoup::new();
        soup.push_tri(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        soup.push_tri(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        weld(&soup, 1e-6)
    }

    #[test]
    fn obj_structure() {
        let mesh = small_mesh();
        let mut buf = Vec::new();
        write_obj(&mesh, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("\nv ").count() + usize::from(text.starts_with("v ")), 4);
        assert_eq!(text.matches("\nf ").count(), 2);
        assert!(text.contains("vn "));
        // 1-based indices, never index 0.
        assert!(!text.contains("f 0"));
    }

    #[test]
    fn vtk_mesh_structure() {
        let mesh = small_mesh();
        let mut buf = Vec::new();
        write_vtk_mesh(&mesh, "unit test", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains("POINTS 4 float"));
        assert!(text.contains("POLYGONS 2 8"));
        assert!(text.contains("NORMALS normals float"));
    }

    #[test]
    fn vtk_polylines_structure() {
        let mut a = Polyline::default();
        a.push(Vec3::ZERO, 0.0);
        a.push(Vec3::new(1.0, 0.0, 0.0), 0.1);
        a.push(Vec3::new(2.0, 0.0, 0.0), 0.2);
        let mut b = Polyline::default();
        b.push(Vec3::new(0.0, 1.0, 0.0), 0.0);
        b.push(Vec3::new(0.0, 2.0, 0.0), 0.3);
        let mut buf = Vec::new();
        write_vtk_polylines(&[a, b], "traces", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("POINTS 5 float"));
        assert!(text.contains("LINES 2 7"));
        assert!(text.contains("SCALARS time float 1"));
        // Second line's indices continue after the first line's.
        assert!(text.contains("2 3 4"));
    }

    #[test]
    fn save_soup_by_extension() {
        let mut soup = TriangleSoup::new();
        soup.push_tri(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let dir = std::env::temp_dir();
        let obj = dir.join(format!("vira_export_{}.obj", std::process::id()));
        let vtk = dir.join(format!("vira_export_{}.vtk", std::process::id()));
        let bad = dir.join(format!("vira_export_{}.stl", std::process::id()));
        save_soup(&soup, &obj).unwrap();
        save_soup(&soup, &vtk).unwrap();
        assert!(save_soup(&soup, &bad).is_err());
        assert!(std::fs::read_to_string(&obj).unwrap().contains("f 1"));
        assert!(std::fs::read_to_string(&vtk).unwrap().contains("POLYDATA"));
        let _ = std::fs::remove_file(obj);
        let _ = std::fs::remove_file(vtk);
    }
}
