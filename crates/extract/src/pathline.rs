//! Pathline integration for unsteady multi-block flows (paper §6.3,
//! §7.3; scheme of Gerndt et al., PDPTA 2003 — the paper's ref. 15).
//!
//! Fourth-order Runge–Kutta with adaptive step-size control by step
//! doubling. Two temporal schemes are provided:
//!
//! * [`TimeScheme::VelocityInterp`] — classic unsteady RK4 on the
//!   time-interpolated velocity field;
//! * [`TimeScheme::AdjacentLevels`] — the paper's scheme: "the succeeding
//!   particle position is computed separately on adjacent time levels and
//!   finally interpolated with respect to the elapsed time".
//!
//! The integrator is generic over a [`FieldSampler`]; the framework crate
//! plugs in a sampler backed by the data management system (every block
//! request goes through the proxy, which is what makes pathline traces
//! interesting cache/prefetch workloads), while tests use analytic
//! samplers with known trajectories.

use crate::locate::BlockLocator;
use crate::mesh::Polyline;
use std::collections::HashMap;
use std::sync::Arc;
use vira_grid::block::{BlockId, BlockStepId};
use vira_grid::field::SharedBlockData;
use vira_grid::math::Vec3;
use vira_grid::topology::BlockTopology;

/// Access to the velocity field during integration.
pub trait FieldSampler {
    /// Velocity at `(p, t)` with full temporal interpolation, or `None`
    /// outside the domain / when data is unavailable.
    fn velocity(&mut self, p: Vec3, t: f64) -> Option<Vec3>;

    /// Velocity with time frozen at the data level adjacent to `t`
    /// (`hi = false` → level ≤ t, `hi = true` → level ≥ t). The default
    /// ignores levels (appropriate for analytic fields).
    fn velocity_at_level(&mut self, p: Vec3, t: f64, _hi: bool) -> Option<Vec3> {
        self.velocity(p, t)
    }

    /// Interpolation weight of `t` between its adjacent data levels
    /// (0 → lower level, 1 → upper). The default has no discrete levels.
    fn level_alpha(&self, _t: f64) -> f64 {
        0.0
    }
}

/// Sampler over an analytic flow (tests, verification).
pub struct AnalyticSampler<F: Fn(Vec3, f64) -> Vec3> {
    pub f: F,
}

impl<F: Fn(Vec3, f64) -> Vec3> FieldSampler for AnalyticSampler<F> {
    fn velocity(&mut self, p: Vec3, t: f64) -> Option<Vec3> {
        Some((self.f)(p, t))
    }
}

/// Supplies block data items on demand — the bridge between the
/// integrator and the data management system.
pub trait BlockFetcher {
    fn fetch(&mut self, id: BlockStepId) -> Option<SharedBlockData>;
}

impl<F: FnMut(BlockStepId) -> Option<SharedBlockData>> BlockFetcher for F {
    fn fetch(&mut self, id: BlockStepId) -> Option<SharedBlockData> {
        self(id)
    }
}

/// Sampler over a time-dependent multi-block dataset. Maintains a block
/// hint (particles usually stay in a block for many steps), per-block
/// locators, and performs linear interpolation between adjacent time
/// levels.
pub struct MultiBlockSampler<F: BlockFetcher> {
    fetcher: F,
    topology: Arc<BlockTopology>,
    n_steps: u32,
    dt: f64,
    hint: Option<(BlockId, (usize, usize, usize))>,
    locators: HashMap<BlockId, Arc<BlockLocator>>,
    /// Items fetched during this trace. Holding them (a) lets the
    /// integrator touch its working set thousands of times without
    /// hammering the data management system and (b) makes the fetch
    /// stream the clean per-item load sequence a Markov prefetcher can
    /// learn from (each distinct item is fetched exactly once per trace).
    held: HashMap<BlockStepId, SharedBlockData>,
}

impl<F: BlockFetcher> MultiBlockSampler<F> {
    pub fn new(fetcher: F, topology: Arc<BlockTopology>, n_steps: u32, dt: f64) -> Self {
        assert!(n_steps >= 1 && dt > 0.0);
        MultiBlockSampler {
            fetcher,
            topology,
            n_steps,
            dt,
            hint: None,
            locators: HashMap::new(),
            held: HashMap::new(),
        }
    }

    /// Fetches through the held-item map (one fetcher call per distinct
    /// item per trace).
    fn item(&mut self, id: BlockStepId) -> Option<SharedBlockData> {
        if let Some(d) = self.held.get(&id) {
            return Some(d.clone());
        }
        let d = self.fetcher.fetch(id)?;
        self.held.insert(id, d.clone());
        Some(d)
    }

    /// Adjacent data levels of `t` and the interpolation weight.
    fn levels(&self, t: f64) -> (u32, u32, f64) {
        let max = (self.n_steps - 1) as f64;
        let s = (t / self.dt).clamp(0.0, max);
        let lo = s.floor() as u32;
        let hi = (lo + 1).min(self.n_steps - 1);
        let alpha = if hi == lo { 0.0 } else { s - lo as f64 };
        (lo, hi, alpha)
    }

    /// Finds the block and cell containing `p`, using the hint first.
    fn locate(&mut self, p: Vec3, step: u32) -> Option<(BlockId, crate::locate::CellHit)> {
        let candidates = match self.hint {
            Some((b, _)) => self.topology.candidates_near(p, b),
            None => self.topology.candidates_for_point(p),
        };
        for b in candidates {
            let data = self.item(BlockStepId::new(b, step))?;
            let locator = self
                .locators
                .entry(b)
                .or_insert_with(|| Arc::new(BlockLocator::build(&data.grid)))
                .clone();
            let hint_cell = match self.hint {
                Some((hb, c)) if hb == b => Some(c),
                _ => None,
            };
            if let Some(hit) = locator.locate(&data.grid, p, hint_cell) {
                self.hint = Some((b, hit.cell));
                return Some((b, hit));
            }
        }
        None
    }

    fn sample_level(&mut self, p: Vec3, step: u32) -> Option<Vec3> {
        let (b, hit) = self.locate(p, step)?;
        let data = self.item(BlockStepId::new(b, step))?;
        Some(data.velocity.sample(hit.cell, hit.u, hit.v, hit.w))
    }
}

impl<F: BlockFetcher> FieldSampler for MultiBlockSampler<F> {
    fn velocity(&mut self, p: Vec3, t: f64) -> Option<Vec3> {
        let (lo, hi, alpha) = self.levels(t);
        let v_lo = self.sample_level(p, lo)?;
        if hi == lo || alpha == 0.0 {
            return Some(v_lo);
        }
        let v_hi = self.sample_level(p, hi)?;
        Some(v_lo.lerp(v_hi, alpha))
    }

    fn velocity_at_level(&mut self, p: Vec3, t: f64, hi: bool) -> Option<Vec3> {
        let (lo, hi_lv, _) = self.levels(t);
        self.sample_level(p, if hi { hi_lv } else { lo })
    }

    fn level_alpha(&self, t: f64) -> f64 {
        self.levels(t).2
    }
}

/// Freezes an unsteady sampler at one instant — turns pathline
/// integration into **streamline** integration (the instantaneous field
/// lines of a single time level).
pub struct SteadySampler<S: FieldSampler> {
    inner: S,
    /// The frozen solution time.
    pub frozen_t: f64,
}

impl<S: FieldSampler> SteadySampler<S> {
    pub fn new(inner: S, frozen_t: f64) -> Self {
        SteadySampler { inner, frozen_t }
    }
}

impl<S: FieldSampler> FieldSampler for SteadySampler<S> {
    fn velocity(&mut self, p: Vec3, _t: f64) -> Option<Vec3> {
        self.inner.velocity(p, self.frozen_t)
    }
    // Frozen time has no levels: the defaults (no interpolation) apply.
}

/// Temporal handling of the unsteady field during one RK4 step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeScheme {
    /// RK4 on the time-interpolated velocity.
    VelocityInterp,
    /// The paper's scheme: integrate on both adjacent (frozen) time
    /// levels, then interpolate the resulting positions.
    AdjacentLevels,
}

/// Integration parameters.
#[derive(Debug, Clone, Copy)]
pub struct PathlineConfig {
    pub h_init: f64,
    pub h_min: f64,
    pub h_max: f64,
    /// Per-step position tolerance for the step-doubling control.
    pub tol: f64,
    pub max_steps: usize,
    pub scheme: TimeScheme,
}

impl Default for PathlineConfig {
    fn default() -> Self {
        PathlineConfig {
            h_init: 1e-3,
            h_min: 1e-7,
            h_max: 0.25,
            tol: 1e-6,
            max_steps: 100_000,
            scheme: TimeScheme::VelocityInterp,
        }
    }
}

/// Why a trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStatus {
    ReachedEndTime,
    LeftDomain,
    StepLimit,
    /// The controller could not meet the tolerance even at `h_min`.
    StepUnderflow,
}

/// A traced pathline plus integration diagnostics.
#[derive(Debug, Clone)]
pub struct PathlineResult {
    pub line: Polyline,
    pub status: TraceStatus,
    pub steps_accepted: usize,
    pub steps_rejected: usize,
}

fn rk4<S: FieldSampler>(
    sampler: &mut S,
    p: Vec3,
    t: f64,
    h: f64,
    level: Option<bool>,
) -> Option<Vec3> {
    let vel = |s: &mut S, q: Vec3, tt: f64| match level {
        Some(hi) => s.velocity_at_level(q, tt, hi),
        None => s.velocity(q, tt),
    };
    let k1 = vel(sampler, p, t)?;
    let k2 = vel(sampler, p + k1 * (h / 2.0), t + h / 2.0)?;
    let k3 = vel(sampler, p + k2 * (h / 2.0), t + h / 2.0)?;
    let k4 = vel(sampler, p + k3 * h, t + h)?;
    Some(p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0))
}

/// One (tentative) step of the configured scheme.
fn scheme_step<S: FieldSampler>(
    sampler: &mut S,
    p: Vec3,
    t: f64,
    h: f64,
    scheme: TimeScheme,
) -> Option<Vec3> {
    match scheme {
        TimeScheme::VelocityInterp => rk4(sampler, p, t, h, None),
        TimeScheme::AdjacentLevels => {
            let p_lo = rk4(sampler, p, t, h, Some(false))?;
            let alpha = sampler.level_alpha(t + h);
            if alpha == 0.0 {
                return Some(p_lo);
            }
            let p_hi = rk4(sampler, p, t, h, Some(true))?;
            Some(p_lo.lerp(p_hi, alpha))
        }
    }
}

/// Traces a pathline from `seed` over `[t0, t1]`.
pub fn trace_pathline<S: FieldSampler>(
    sampler: &mut S,
    seed: Vec3,
    t0: f64,
    t1: f64,
    cfg: &PathlineConfig,
) -> PathlineResult {
    assert!(t1 > t0, "end time must exceed start time");
    let mut line = Polyline::default();
    line.push(seed, t0);
    let mut p = seed;
    let mut t = t0;
    let mut h = cfg.h_init.min(t1 - t0);
    let mut accepted = 0;
    let mut rejected = 0;

    while t < t1 {
        if accepted + rejected >= cfg.max_steps {
            return PathlineResult {
                line,
                status: TraceStatus::StepLimit,
                steps_accepted: accepted,
                steps_rejected: rejected,
            };
        }
        let h_eff = h.min(t1 - t);
        // Step doubling: one full step vs two half steps.
        let full = scheme_step(sampler, p, t, h_eff, cfg.scheme);
        let half1 = scheme_step(sampler, p, t, h_eff / 2.0, cfg.scheme);
        let fine = half1
            .and_then(|ph| scheme_step(sampler, ph, t + h_eff / 2.0, h_eff / 2.0, cfg.scheme));
        let (Some(full), Some(fine)) = (full, fine) else {
            return PathlineResult {
                line,
                status: TraceStatus::LeftDomain,
                steps_accepted: accepted,
                steps_rejected: rejected,
            };
        };
        let err = (full - fine).norm();
        if err > cfg.tol && h_eff > cfg.h_min {
            h = (h_eff / 2.0).max(cfg.h_min);
            rejected += 1;
            continue;
        }
        if err > cfg.tol && h_eff <= cfg.h_min {
            return PathlineResult {
                line,
                status: TraceStatus::StepUnderflow,
                steps_accepted: accepted,
                steps_rejected: rejected,
            };
        }
        // Accept the finer estimate.
        p = fine;
        t += h_eff;
        line.push(p, t);
        accepted += 1;
        // Grow the step when comfortably under tolerance.
        if err < cfg.tol / 32.0 {
            h = (h_eff * 2.0).min(cfg.h_max);
        } else {
            h = h_eff;
        }
    }
    PathlineResult {
        line,
        status: TraceStatus::ReachedEndTime,
        steps_accepted: accepted,
        steps_rejected: rejected,
    }
}

/// Traces a **streakline**: the locus, at observation time `t1`, of all
/// particles continuously released from `seed` during `[t0, t1]`
/// (paper §9 lists streaklines as future work next to pathlines).
///
/// `n_release` particles are released at equally spaced times; each is
/// advected to `t1` by the pathline integrator. The returned polyline
/// connects their final positions ordered by release time (latest
/// release — the point still at the seed — first), with the release time
/// stored as the point's time stamp. Particles that leave the domain are
/// dropped, which can shorten the line.
pub fn trace_streakline<S: FieldSampler>(
    sampler: &mut S,
    seed: Vec3,
    t0: f64,
    t1: f64,
    n_release: usize,
    cfg: &PathlineConfig,
) -> Polyline {
    assert!(n_release >= 1 && t1 > t0);
    let mut line = Polyline::default();
    for k in (0..n_release).rev() {
        let t_r = t0 + (t1 - t0) * k as f64 / n_release as f64;
        if t1 - t_r < 1e-12 {
            line.push(seed, t_r);
            continue;
        }
        let r = trace_pathline(sampler, seed, t_r, t1, cfg);
        if r.status == TraceStatus::ReachedEndTime {
            if let Some(p) = r.line.points.last() {
                line.push(
                    Vec3::new(p[0] as f64, p[1] as f64, p[2] as f64),
                    t_r,
                );
            }
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::synth::test_cube;
    use vira_grid::topology::topology_of;

    #[test]
    fn rigid_rotation_stays_on_circle() {
        // u = ω × r with ω = (0,0,1): circles of constant radius, period 2π.
        let mut s = AnalyticSampler {
            f: |p: Vec3, _t| Vec3::new(-p.y, p.x, 0.0),
        };
        let seed = Vec3::new(1.0, 0.0, 0.0);
        let r = trace_pathline(&mut s, seed, 0.0, 2.0 * std::f64::consts::PI, &PathlineConfig::default());
        assert_eq!(r.status, TraceStatus::ReachedEndTime);
        // Radius preserved along the whole path.
        for p in &r.line.points {
            let rad = ((p[0] * p[0] + p[1] * p[1]) as f64).sqrt();
            assert!((rad - 1.0).abs() < 1e-4, "radius {rad}");
        }
        // One full revolution: back to the seed.
        let last = r.line.points.last().unwrap();
        assert!((last[0] as f64 - 1.0).abs() < 1e-3);
        assert!((last[1] as f64).abs() < 1e-3);
    }

    #[test]
    fn adaptive_control_rejects_large_steps() {
        // A stiff oscillator forces step rejection at the default h_init.
        let mut s = AnalyticSampler {
            f: |p: Vec3, t: f64| Vec3::new((40.0 * t).cos() * 10.0, -p.y * 0.1, 0.0),
        };
        let cfg = PathlineConfig {
            h_init: 0.2,
            tol: 1e-8,
            ..PathlineConfig::default()
        };
        let r = trace_pathline(&mut s, Vec3::ZERO, 0.0, 1.0, &cfg);
        assert_eq!(r.status, TraceStatus::ReachedEndTime);
        assert!(r.steps_rejected > 0, "controller never adapted");
    }

    #[test]
    fn leaving_the_domain_ends_the_trace() {
        let mut s = AnalyticSampler {
            f: |_p, _t| Vec3::new(1.0, 0.0, 0.0),
        };
        // Wrap the sampler to cut the domain at x = 0.5.
        struct Bounded<F: Fn(Vec3, f64) -> Vec3>(AnalyticSampler<F>);
        impl<F: Fn(Vec3, f64) -> Vec3> FieldSampler for Bounded<F> {
            fn velocity(&mut self, p: Vec3, t: f64) -> Option<Vec3> {
                if p.x > 0.5 {
                    None
                } else {
                    self.0.velocity(p, t)
                }
            }
        }
        let mut bounded = Bounded(AnalyticSampler {
            f: |_p, _t| Vec3::new(1.0, 0.0, 0.0),
        });
        let _ = &mut s;
        let r = trace_pathline(&mut bounded, Vec3::ZERO, 0.0, 10.0, &PathlineConfig::default());
        assert_eq!(r.status, TraceStatus::LeftDomain);
        let last = r.line.points.last().unwrap();
        assert!(last[0] <= 0.6, "stopped near the boundary: {}", last[0]);
        assert!(r.line.len() > 1, "partial path retained");
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut s = AnalyticSampler {
            f: |_p, _t| Vec3::new(1e-12, 0.0, 0.0),
        };
        let cfg = PathlineConfig {
            h_init: 1e-6,
            h_max: 1e-6,
            max_steps: 10,
            ..PathlineConfig::default()
        };
        let r = trace_pathline(&mut s, Vec3::ZERO, 0.0, 1.0, &cfg);
        assert_eq!(r.status, TraceStatus::StepLimit);
        assert!(r.steps_accepted <= 10);
    }

    #[test]
    fn multiblock_sampler_traces_the_test_vortex() {
        let ds = Arc::new(test_cube(12, 4));
        let topo = Arc::new(topology_of(&ds, 1e-9));
        let mut cache: HashMap<BlockStepId, SharedBlockData> = HashMap::new();
        let ds2 = ds.clone();
        let fetch = move |id: BlockStepId| {
            Some(
                cache
                    .entry(id)
                    .or_insert_with(|| Arc::new(ds2.generate(id)))
                    .clone(),
            )
        };
        let mut sampler = MultiBlockSampler::new(fetch, topo, ds.spec.n_steps, ds.spec.dt);
        // Seed inside the vortex: rotates about the z axis.
        let seed = Vec3::new(0.3, 0.0, 0.0);
        let t1 = ds.spec.dt * 3.0;
        let cfg = PathlineConfig {
            h_init: ds.spec.dt / 10.0,
            tol: 1e-7,
            ..PathlineConfig::default()
        };
        let r = trace_pathline(&mut sampler, seed, 0.0, t1, &cfg);
        assert_eq!(r.status, TraceStatus::ReachedEndTime);
        assert!(r.line.len() > 3);
        // Radius approximately conserved in the steady vortex (modest
        // tolerance: trilinear interpolation is not exactly divergence
        // free).
        let last = r.line.points.last().unwrap();
        let rad = ((last[0] * last[0] + last[1] * last[1]) as f64).sqrt();
        assert!((rad - 0.3).abs() < 0.05, "radius {rad}");
    }

    #[test]
    fn adjacent_level_scheme_matches_velocity_interp_for_steady_flow() {
        // The test cube flow is steady → both schemes agree.
        let ds = Arc::new(test_cube(10, 3));
        let topo = Arc::new(topology_of(&ds, 1e-9));
        let make_sampler = || {
            let ds2 = ds.clone();
            let mut cache: HashMap<BlockStepId, SharedBlockData> = HashMap::new();
            MultiBlockSampler::new(
                move |id: BlockStepId| {
                    Some(
                        cache
                            .entry(id)
                            .or_insert_with(|| Arc::new(ds2.generate(id)))
                            .clone(),
                    )
                },
                topo.clone(),
                ds.spec.n_steps,
                ds.spec.dt,
            )
        };
        let seed = Vec3::new(0.25, 0.1, -0.2);
        let t1 = ds.spec.dt * 2.0;
        let mut cfg = PathlineConfig {
            h_init: ds.spec.dt / 8.0,
            ..PathlineConfig::default()
        };
        let a = trace_pathline(&mut make_sampler(), seed, 0.0, t1, &cfg);
        cfg.scheme = TimeScheme::AdjacentLevels;
        let b = trace_pathline(&mut make_sampler(), seed, 0.0, t1, &cfg);
        assert_eq!(a.status, TraceStatus::ReachedEndTime);
        assert_eq!(b.status, TraceStatus::ReachedEndTime);
        let pa = a.line.points.last().unwrap();
        let pb = b.line.points.last().unwrap();
        for i in 0..3 {
            assert!((pa[i] - pb[i]).abs() < 1e-4, "axis {i}: {} vs {}", pa[i], pb[i]);
        }
    }

    #[test]
    fn sampler_requests_blocks_through_the_fetcher() {
        // The fetch log is the workload the Markov prefetcher learns from.
        let ds = Arc::new(test_cube(10, 4));
        let topo = Arc::new(topology_of(&ds, 1e-9));
        let log = Arc::new(parking_lot_stub::Mutex::new(Vec::new()));
        let ds2 = ds.clone();
        let log2 = log.clone();
        let mut cache: HashMap<BlockStepId, SharedBlockData> = HashMap::new();
        let fetch = move |id: BlockStepId| {
            log2.lock().push(id);
            Some(
                cache
                    .entry(id)
                    .or_insert_with(|| Arc::new(ds2.generate(id)))
                    .clone(),
            )
        };
        let mut sampler = MultiBlockSampler::new(fetch, topo, ds.spec.n_steps, ds.spec.dt);
        let cfg = PathlineConfig {
            h_init: ds.spec.dt / 4.0,
            ..PathlineConfig::default()
        };
        let _ = trace_pathline(&mut sampler, Vec3::new(0.2, 0.0, 0.0), 0.0, ds.spec.dt * 2.5, &cfg);
        let requests = log.lock().clone();
        assert!(!requests.is_empty());
        // The trace walks forward through the time levels overall (the
        // step-doubling controller re-evaluates earlier levels within one
        // step, so per-request monotonicity does not hold — but the trace
        // must start at level 0 and reach past it).
        let steps: Vec<u32> = requests.iter().map(|r| r.step).collect();
        assert_eq!(*steps.first().unwrap(), 0);
        assert!(*steps.iter().max().unwrap() >= 2, "reached later time levels");
    }

    #[test]
    fn steady_sampler_freezes_time() {
        // A field that grows with t; frozen at t=1 it is constant.
        let inner = AnalyticSampler {
            f: |_p: Vec3, t: f64| Vec3::new(t, 0.0, 0.0),
        };
        let mut s = SteadySampler::new(inner, 1.0);
        assert_eq!(s.velocity(Vec3::ZERO, 99.0), Some(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(s.velocity(Vec3::ZERO, -5.0), Some(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(s.level_alpha(12.0), 0.0);
    }

    #[test]
    fn streamline_of_rotation_is_a_circle() {
        let inner = AnalyticSampler {
            f: |p: Vec3, _t| Vec3::new(-p.y, p.x, 0.0),
        };
        let mut s = SteadySampler::new(inner, 0.0);
        let r = trace_pathline(
            &mut s,
            Vec3::new(0.5, 0.0, 0.0),
            0.0,
            std::f64::consts::PI, // half revolution
            &PathlineConfig::default(),
        );
        assert_eq!(r.status, TraceStatus::ReachedEndTime);
        let last = r.line.points.last().unwrap();
        assert!((last[0] as f64 + 0.5).abs() < 1e-3, "x = {}", last[0]);
        assert!((last[1] as f64).abs() < 1e-3);
    }

    #[test]
    fn streakline_of_uniform_flow_is_a_straight_segment() {
        // u = (1,0,0): a particle released at t_r sits at x = (t1 - t_r).
        let mut s = AnalyticSampler {
            f: |_p, _t| Vec3::new(1.0, 0.0, 0.0),
        };
        let line = trace_streakline(
            &mut s,
            Vec3::ZERO,
            0.0,
            1.0,
            5,
            &PathlineConfig::default(),
        );
        assert_eq!(line.len(), 5);
        // Ordered latest-release first: x grows along the line.
        for (n, p) in line.points.iter().enumerate() {
            let t_r = line.times[n] as f64;
            assert!((p[0] as f64 - (1.0 - t_r)).abs() < 1e-6, "point {n}: {p:?}");
            assert!((p[1] as f64).abs() < 1e-9);
        }
        let xs: Vec<f32> = line.points.iter().map(|p| p[0]).collect();
        assert!(xs.windows(2).all(|w| w[1] > w[0]), "monotone: {xs:?}");
    }

    #[test]
    fn streakline_drops_escaping_particles() {
        struct Bounded;
        impl FieldSampler for Bounded {
            fn velocity(&mut self, p: Vec3, _t: f64) -> Option<Vec3> {
                if p.x > 0.5 {
                    None
                } else {
                    Some(Vec3::new(1.0, 0.0, 0.0))
                }
            }
        }
        let line = trace_streakline(
            &mut Bounded,
            Vec3::ZERO,
            0.0,
            1.0,
            8,
            &PathlineConfig::default(),
        );
        // Early releases left the domain (x would exceed 0.5) and are
        // dropped; late releases survive.
        assert!(!line.is_empty());
        assert!(line.len() < 8);
        for p in &line.points {
            assert!(p[0] <= 0.6);
        }
    }

    /// Minimal std-based stand-in so the test above doesn't add a
    /// dependency on parking_lot to this crate.
    mod parking_lot_stub {
        pub struct Mutex<T>(std::sync::Mutex<T>);
        impl<T> Mutex<T> {
            pub fn new(v: T) -> Self {
                Mutex(std::sync::Mutex::new(v))
            }
            pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
                self.0.lock().unwrap()
            }
        }
    }
}
