//! λ₂ vortex-region extraction (Jeong & Hussain; paper §6.3, §7.2).
//!
//! The velocity-gradient tensor on a curvilinear grid is computed with
//! the chain rule: central differences in computational (index) space
//! give `∂x/∂ξ` and `∂u/∂ξ`; inverting the geometric Jacobian yields
//! `∇u = (∂u/∂ξ)(∂x/∂ξ)⁻¹`. λ₂ is the middle eigenvalue of `S² + Ω²`.
//!
//! Two paths mirror the paper's two commands:
//!
//! * [`lambda2_field`] computes the **complete** scalar field first (the
//!   `VortexDataMan` approach) — the result can then be isosurfaced with
//!   any extractor;
//! * [`Lambda2Streamer`] processes cells one by one, computing λ₂ values
//!   lazily per grid point (memoized), collecting active cells into a
//!   list and flushing triangulated batches — the `StreamedVortex`
//!   approach that avoids materializing the full field before first
//!   results. When a [`BrickTree`] over a previously memoized λ₂ field is
//!   available (derived-field cache hit), the streamer skips whole
//!   inactive bricks; without one it conservatively computes on first
//!   touch as before.

use crate::bricktree::BrickTree;
use crate::eigen::lambda2_of_gradient;
use crate::mesh::TriangleSoup;
use crate::tetra::contour_cell;
use vira_grid::field::{BlockData, ScalarField};
use vira_grid::math::{Mat3, Vec3};

/// A value differentiable by the index stencil: subtraction, scaling by
/// `f64`, and an additive zero for degenerate (single-point) axes.
pub trait StencilValue:
    Copy + std::ops::Sub<Output = Self> + std::ops::Mul<f64, Output = Self>
{
    const ZERO: Self;
}

impl StencilValue for f64 {
    const ZERO: Self = 0.0;
}

impl StencilValue for Vec3 {
    const ZERO: Self = Vec3::ZERO;
}

/// Central-difference derivative stencil along one index axis.
#[inline]
fn index_derivative<T: StencilValue, F: Fn(usize) -> T>(n: usize, idx: usize, sample: F) -> T {
    if n < 2 {
        // Degenerate axis: no variation.
        return T::ZERO;
    }
    if idx == 0 {
        sample(1) - sample(0)
    } else if idx == n - 1 {
        sample(n - 1) - sample(n - 2)
    } else {
        (sample(idx + 1) - sample(idx - 1)) * 0.5
    }
}

/// Assembles `∇u` from the six index-space derivatives via the chain
/// rule: `∇u = (∂u/∂ξ)(∂x/∂ξ)⁻¹`. `None` where the geometric Jacobian is
/// singular.
pub fn gradient_from_derivatives(
    dx_di: Vec3,
    dx_dj: Vec3,
    dx_dk: Vec3,
    du_di: Vec3,
    du_dj: Vec3,
    du_dk: Vec3,
) -> Option<Mat3> {
    let jac = Mat3::from_cols(dx_di, dx_dj, dx_dk);
    let jac_inv = jac.inverse()?;
    let du_dxi = Mat3::from_cols(du_di, du_dj, du_dk);
    Some(du_dxi.mul_mat(&jac_inv))
}

/// Velocity-gradient tensor `∇u` at grid point `(i, j, k)`, or `None`
/// where the geometric Jacobian is singular (collapsed cells).
pub fn velocity_gradient(data: &BlockData, i: usize, j: usize, k: usize) -> Option<Mat3> {
    let d = data.dims();
    // ∂x/∂ξ columns and ∂u/∂ξ columns for ξ = (i, j, k) directions.
    let dx_di = index_derivative(d.ni, i, |ii| data.grid.point(ii, j, k));
    let dx_dj = index_derivative(d.nj, j, |jj| data.grid.point(i, jj, k));
    let dx_dk = index_derivative(d.nk, k, |kk| data.grid.point(i, j, kk));
    let du_di = index_derivative(d.ni, i, |ii| data.velocity.at(ii, j, k));
    let du_dj = index_derivative(d.nj, j, |jj| data.velocity.at(i, jj, k));
    let du_dk = index_derivative(d.nk, k, |kk| data.velocity.at(i, j, kk));
    gradient_from_derivatives(dx_di, dx_dj, dx_dk, du_di, du_dj, du_dk)
}

/// λ₂ at one grid point (`+∞` where the metric is singular, so the point
/// never reads as a vortex).
pub fn lambda2_at(data: &BlockData, i: usize, j: usize, k: usize) -> f64 {
    velocity_gradient(data, i, j, k)
        .map(|g| lambda2_of_gradient(&g))
        .unwrap_or(f64::INFINITY)
}

/// Computes the complete λ₂ scalar field of a block.
pub fn lambda2_field(data: &BlockData) -> ScalarField {
    let d = data.dims();
    ScalarField::from_fn(d, |i, j, k| lambda2_at(data, i, j, k))
}

/// Statistics of one streamed λ₂ pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lambda2Stats {
    pub cells_visited: usize,
    pub active_cells: usize,
    pub triangles: usize,
    /// λ₂ point evaluations actually performed (≤ number of points; the
    /// memo avoids recomputation across neighbouring cells).
    pub point_evals: usize,
    /// Cells never examined thanks to bricktree pruning.
    pub cells_skipped: usize,
    /// Finest-level bricks skipped whole.
    pub bricks_skipped: usize,
}

/// Cell-by-cell streamed λ₂ extraction with lazy, memoized point
/// evaluation. `threshold` is the λ₂ iso level (≈ 0, slightly negative in
/// practice); triangles are flushed to `sink` every `batch_triangles`.
pub struct Lambda2Streamer<'a> {
    data: &'a BlockData,
    /// Bricktree over an already-materialized λ₂ field (derived-field
    /// cache hit). `None` → no pruning; λ₂ is computed on first touch.
    tree: Option<&'a BrickTree>,
    /// Memoized λ₂ point values; NaN = not yet computed.
    memo: Vec<f64>,
    stats: Lambda2Stats,
}

impl<'a> Lambda2Streamer<'a> {
    pub fn new(data: &'a BlockData) -> Self {
        Lambda2Streamer {
            data,
            tree: None,
            memo: vec![f64::NAN; data.dims().n_points()],
            stats: Lambda2Stats::default(),
        }
    }

    /// A streamer that prunes with `tree` — a bricktree built over the
    /// memoized λ₂ field of this very block (see
    /// `viracocha::derived::DerivedFieldCache::peek_tree`). Pruning with a
    /// tree from a different field would silently drop triangles, so the
    /// dims are asserted.
    pub fn with_tree(data: &'a BlockData, tree: &'a BrickTree) -> Self {
        assert!(tree.matches(data.dims()), "bricktree dims mismatch");
        let mut s = Lambda2Streamer::new(data);
        s.tree = Some(tree);
        s
    }

    fn value_at(&mut self, i: usize, j: usize, k: usize) -> f64 {
        let idx = self.data.dims().point_index(i, j, k);
        let v = self.memo[idx];
        if !v.is_nan() {
            return v;
        }
        let v = lambda2_at(self.data, i, j, k);
        self.stats.point_evals += 1;
        self.memo[idx] = v;
        v
    }

    fn process_cell(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
        threshold: f64,
        batch_triangles: usize,
        pending: &mut TriangleSoup,
        sink: &mut impl FnMut(TriangleSoup),
    ) {
        self.stats.cells_visited += 1;
        // λ₂ at the eight corners, computed lazily.
        let idxs = [
            (i, j, k),
            (i + 1, j, k),
            (i, j + 1, k),
            (i + 1, j + 1, k),
            (i, j, k + 1),
            (i + 1, j, k + 1),
            (i, j + 1, k + 1),
            (i + 1, j + 1, k + 1),
        ];
        let mut scalars = [0.0; 8];
        for (n, &(a, b, c)) in idxs.iter().enumerate() {
            scalars[n] = self.value_at(a, b, c);
        }
        let (lo, hi) = scalars
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &s| {
                (l.min(s), h.max(s))
            });
        if !(hi > threshold && lo <= threshold) {
            return;
        }
        self.stats.active_cells += 1;
        let corners = self.data.grid.cell_corners(i, j, k);
        self.stats.triangles += contour_cell(&corners, &scalars, threshold, pending);
        if pending.n_triangles() >= batch_triangles {
            sink(std::mem::take(pending));
        }
    }

    /// Runs the full pass. Vortex boundaries are extracted as the
    /// iso-surface λ₂ = `threshold`. With a bricktree, whole inactive
    /// bricks are skipped (in storage order, so output is byte-identical
    /// to the unpruned pass).
    pub fn run(
        mut self,
        threshold: f64,
        batch_triangles: usize,
        mut sink: impl FnMut(TriangleSoup),
    ) -> Lambda2Stats {
        let mut pending = TriangleSoup::new();
        let pruned = match self.tree {
            Some(tree) => tree.scan_candidates(threshold, |i, j, k| {
                self.process_cell(i, j, k, threshold, batch_triangles, &mut pending, &mut sink)
            }),
            None => {
                for (i, j, k) in self.data.dims().cells() {
                    self.process_cell(i, j, k, threshold, batch_triangles, &mut pending, &mut sink);
                }
                Default::default()
            }
        };
        self.stats.cells_skipped = pruned.cells_skipped;
        self.stats.bricks_skipped = pruned.bricks_skipped;
        if !pending.is_empty() {
            sink(pending);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockStepId;
    use vira_grid::synth::test_cube;

    fn vortex_block(res: usize) -> BlockData {
        test_cube(res, 1).generate(BlockStepId::new(0, 0))
    }

    #[test]
    fn gradient_of_linear_field_is_exact() {
        // u = (2x, -y, 3z) on a uniform grid → ∇u = diag(2, -1, 3).
        let mut data = vortex_block(6);
        let pts = data.grid.points.clone();
        data.velocity = vira_grid::field::VectorField::new(
            data.dims(),
            pts.iter()
                .map(|p| Vec3::new(2.0 * p.x, -p.y, 3.0 * p.z))
                .collect(),
        );
        for &(i, j, k) in &[(2, 3, 1), (0, 0, 0), (5, 5, 5)] {
            let g = velocity_gradient(&data, i, j, k).unwrap();
            for r in 0..3 {
                for c in 0..3 {
                    let expect = [[2.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, 3.0]][r][c];
                    assert!(
                        (g.m[r][c] - expect).abs() < 1e-9,
                        "∇u[{r}][{c}] = {}",
                        g.m[r][c]
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_axis_derivative_is_zero() {
        assert_eq!(index_derivative(1, 0, |_| 42.0), 0.0);
        let v = index_derivative(1, 0, |_| Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(v, Vec3::ZERO);
    }

    #[test]
    fn lamb_oseen_core_has_negative_lambda2() {
        // The test-cube dataset is a Lamb–Oseen vortex along z through the
        // origin with core radius 0.4: λ₂ < 0 near the axis, ≥ 0 far away.
        let data = vortex_block(17);
        let f = lambda2_field(&data);
        let d = data.dims();
        let mid = d.ni / 2;
        let center = f.at(mid, mid, mid);
        assert!(center < 0.0, "core λ₂ = {center}");
        let corner = f.at(0, 0, 0);
        assert!(corner > center, "corner λ₂ {corner} vs core {center}");
    }

    #[test]
    fn streamer_matches_full_field_extraction() {
        let data = vortex_block(13);
        let field = lambda2_field(&data);
        let (full, full_stats) = crate::iso::extract_isosurface(&data.grid, &field, -0.05);
        let mut streamed = TriangleSoup::new();
        let stats = Lambda2Streamer::new(&data).run(-0.05, 64, |b| streamed.extend_from(&b));
        assert_eq!(stats.triangles, full_stats.triangles);
        assert_eq!(stats.active_cells, full_stats.active_cells);
        assert_eq!(streamed, full);
        assert!(stats.triangles > 0, "vortex tube must produce a surface");
    }

    #[test]
    fn streamer_with_tree_matches_unpruned_streamer() {
        let data = vortex_block(13);
        let field = lambda2_field(&data);
        let tree = BrickTree::build(&field);
        let mut plain = TriangleSoup::new();
        let plain_stats = Lambda2Streamer::new(&data).run(-0.05, 64, |b| plain.extend_from(&b));
        let mut pruned = TriangleSoup::new();
        let pruned_stats =
            Lambda2Streamer::with_tree(&data, &tree).run(-0.05, 64, |b| pruned.extend_from(&b));
        assert_eq!(pruned, plain, "pruning changed vortex geometry");
        assert_eq!(pruned_stats.triangles, plain_stats.triangles);
        assert_eq!(pruned_stats.active_cells, plain_stats.active_cells);
        assert_eq!(
            pruned_stats.cells_visited + pruned_stats.cells_skipped,
            data.dims().n_cells()
        );
        assert!(
            pruned_stats.cells_skipped > 0,
            "vortex tube is localized; some bricks must be skipped"
        );
        // Pruning also avoids λ₂ evaluations, not just range checks.
        assert!(pruned_stats.point_evals < plain_stats.point_evals);
    }

    #[test]
    fn streamer_memo_avoids_recomputation() {
        let data = vortex_block(9);
        let mut sink = |_b: TriangleSoup| {};
        let stats = Lambda2Streamer::new(&data).run(-0.05, usize::MAX, &mut sink);
        // Every point is evaluated at most once.
        assert!(stats.point_evals <= data.dims().n_points());
        // All cells visited.
        assert_eq!(stats.cells_visited, data.dims().n_cells());
    }

    #[test]
    fn vortex_tube_is_roughly_cylindrical() {
        let data = vortex_block(17);
        let mut soup = TriangleSoup::new();
        Lambda2Streamer::new(&data).run(-0.05, usize::MAX, |b| soup.extend_from(&b));
        // Vertices cluster around the z axis: x² + y² roughly constant,
        // well inside the domain.
        assert!(soup.n_triangles() > 20);
        for v in &soup.positions {
            let r = ((v[0] * v[0] + v[1] * v[1]) as f64).sqrt();
            assert!(r < 0.95, "vortex boundary inside the cube, r = {r}");
        }
    }
}
