//! λ₂ vortex-region extraction (Jeong & Hussain; paper §6.3, §7.2).
//!
//! The velocity-gradient tensor on a curvilinear grid is computed with
//! the chain rule: central differences in computational (index) space
//! give `∂x/∂ξ` and `∂u/∂ξ`; inverting the geometric Jacobian yields
//! `∇u = (∂u/∂ξ)(∂x/∂ξ)⁻¹`. λ₂ is the middle eigenvalue of `S² + Ω²`.
//!
//! Two paths mirror the paper's two commands:
//!
//! * [`lambda2_field`] computes the **complete** scalar field first (the
//!   `VortexDataMan` approach) — the result can then be isosurfaced with
//!   any extractor;
//! * [`Lambda2Streamer`] processes cells one by one, computing λ₂ values
//!   lazily per grid point (memoized), collecting active cells into a
//!   list and flushing triangulated batches — the `StreamedVortex`
//!   approach that avoids materializing the full field before first
//!   results. When a [`BrickTree`] over a previously memoized λ₂ field is
//!   available (derived-field cache hit), the streamer skips whole
//!   inactive bricks; without one it conservatively computes on first
//!   touch as before.

use crate::bricktree::BrickTree;
use crate::eigen::lambda2_of_gradient;
use crate::mesh::TriangleSoup;
use crate::tetra::contour_cell;
use vira_grid::field::{BlockData, ScalarField, ScalarFieldSoA, VectorFieldSoA};
use vira_grid::lanes;
use vira_grid::math::{Mat3, Vec3};

/// A value differentiable by the index stencil: subtraction, scaling by
/// `f64`, and an additive zero for degenerate (single-point) axes.
pub trait StencilValue:
    Copy + std::ops::Sub<Output = Self> + std::ops::Mul<f64, Output = Self>
{
    const ZERO: Self;
}

impl StencilValue for f64 {
    const ZERO: Self = 0.0;
}

impl StencilValue for Vec3 {
    const ZERO: Self = Vec3::ZERO;
}

/// Central-difference derivative stencil along one index axis.
#[inline]
fn index_derivative<T: StencilValue, F: Fn(usize) -> T>(n: usize, idx: usize, sample: F) -> T {
    if n < 2 {
        // Degenerate axis: no variation.
        return T::ZERO;
    }
    if idx == 0 {
        sample(1) - sample(0)
    } else if idx == n - 1 {
        sample(n - 1) - sample(n - 2)
    } else {
        (sample(idx + 1) - sample(idx - 1)) * 0.5
    }
}

/// Assembles `∇u` from the six index-space derivatives via the chain
/// rule: `∇u = (∂u/∂ξ)(∂x/∂ξ)⁻¹`. `None` where the geometric Jacobian is
/// singular.
pub fn gradient_from_derivatives(
    dx_di: Vec3,
    dx_dj: Vec3,
    dx_dk: Vec3,
    du_di: Vec3,
    du_dj: Vec3,
    du_dk: Vec3,
) -> Option<Mat3> {
    let jac = Mat3::from_cols(dx_di, dx_dj, dx_dk);
    let jac_inv = jac.inverse()?;
    let du_dxi = Mat3::from_cols(du_di, du_dj, du_dk);
    Some(du_dxi.mul_mat(&jac_inv))
}

/// λ₂ from the six index-space derivatives, branch-free: the
/// singular-Jacobian case is folded into a final value select instead of
/// an early return, and every float operation is shared with (and
/// ordered exactly as in) [`gradient_from_derivatives`] +
/// [`lambda2_of_gradient`] — so a lane evaluation inside the SoA row
/// kernel is bit-identical to the scalar [`lambda2_at`] path. With a
/// singular Jacobian the unconditional `1/det` produces non-finite
/// intermediates; they are discarded by the select, never observed.
#[inline(always)]
pub fn lambda2_element(
    dx_di: Vec3,
    dx_dj: Vec3,
    dx_dk: Vec3,
    du_di: Vec3,
    du_dj: Vec3,
    du_dk: Vec3,
) -> f64 {
    let jac = Mat3::from_cols(dx_di, dx_dj, dx_dk);
    let d = jac.det();
    let jac_inv = jac.scaled_adjugate(1.0 / d);
    let g = Mat3::from_cols(du_di, du_dj, du_dk).mul_mat(&jac_inv);
    let l2 = lambda2_of_gradient(&g);
    if d.abs() < 1e-300 {
        f64::INFINITY
    } else {
        l2
    }
}

/// Velocity-gradient tensor `∇u` at grid point `(i, j, k)`, or `None`
/// where the geometric Jacobian is singular (collapsed cells).
pub fn velocity_gradient(data: &BlockData, i: usize, j: usize, k: usize) -> Option<Mat3> {
    let d = data.dims();
    // ∂x/∂ξ columns and ∂u/∂ξ columns for ξ = (i, j, k) directions.
    let dx_di = index_derivative(d.ni, i, |ii| data.grid.point(ii, j, k));
    let dx_dj = index_derivative(d.nj, j, |jj| data.grid.point(i, jj, k));
    let dx_dk = index_derivative(d.nk, k, |kk| data.grid.point(i, j, kk));
    let du_di = index_derivative(d.ni, i, |ii| data.velocity.at(ii, j, k));
    let du_dj = index_derivative(d.nj, j, |jj| data.velocity.at(i, jj, k));
    let du_dk = index_derivative(d.nk, k, |kk| data.velocity.at(i, j, kk));
    gradient_from_derivatives(dx_di, dx_dj, dx_dk, du_di, du_dj, du_dk)
}

/// λ₂ at one grid point (`+∞` where the metric is singular, so the point
/// never reads as a vortex).
pub fn lambda2_at(data: &BlockData, i: usize, j: usize, k: usize) -> f64 {
    velocity_gradient(data, i, j, k)
        .map(|g| lambda2_of_gradient(&g))
        .unwrap_or(f64::INFINITY)
}

/// Computes the complete λ₂ scalar field of a block.
///
/// Routed through the SoA row kernel ([`lambda2_field_soa`]); output is
/// bit-identical to the retained point-at-a-time oracle
/// ([`lambda2_field_oracle`]).
pub fn lambda2_field(data: &BlockData) -> ScalarField {
    lambda2_field_soa(data).into()
}

/// The pre-SoA λ₂ field computation, retained verbatim as the test
/// oracle (and the AoS side of the `lambda2` micro-benches): one
/// [`lambda2_at`] evaluation per grid point, each re-deriving its six
/// stencil samples through indexed AoS accesses.
pub fn lambda2_field_oracle(data: &BlockData) -> ScalarField {
    let d = data.dims();
    ScalarField::from_fn(d, |i, j, k| lambda2_at(data, i, j, k))
}

/// Vectorized λ₂: splits geometry and velocity into planar
/// structure-of-arrays buffers, then walks the block row by row. All six
/// index-space derivatives of a row are produced by branch-free
/// elementwise stencil loops over contiguous component rows, and the
/// per-point tensor pipeline runs as **staged row kernels**
/// ([`Lambda2RowKernel`]): Jacobian inversion → velocity gradient,
/// `S² + Ω²`, eigen invariants, the fixed-iteration Chebyshev solve, and
/// the final selects each get their own simple innermost loop over the
/// row. One fused per-point loop would nest the Newton iteration inside
/// the row loop — a shape the autovectorizer refuses; the staged loops
/// are each straight-line and lane-lowerable. Every per-element
/// expression is transcribed operation for operation from the scalar
/// [`lambda2_at`] path, which keeps the result bit-identical to the
/// oracle.
pub fn lambda2_field_soa(data: &BlockData) -> ScalarFieldSoA {
    let d = data.dims();
    let geo = VectorFieldSoA::from_vec3s(d, &data.grid.points);
    let vel = VectorFieldSoA::from_vec3s(d, &data.velocity.values);
    let n = d.n_points();
    let mut values = vec![0.0; n];

    // Per-row derivative buffers: [source plane][direction] with source
    // planes (gx, gy, gz, vx, vy, vz) and directions (i, j, k).
    let ni = d.ni;
    let mut deriv: Vec<Vec<f64>> = (0..18).map(|_| vec![0.0; ni]).collect();
    let mut kernel = Lambda2RowKernel::new(ni);

    for k in 0..d.nk {
        for j in 0..d.nj {
            let planes = [
                (&geo.xs, 0),
                (&geo.ys, 1),
                (&geo.zs, 2),
                (&vel.xs, 3),
                (&vel.ys, 4),
                (&vel.zs, 5),
            ];
            for (plane, s) in planes {
                let base = d.point_index(0, j, k);
                let row = &plane[base..base + ni];
                stencil_along_row(row, &mut deriv[s * 3]);
                stencil_across_rows(plane, d, j, k, Axis::J, &mut deriv[s * 3 + 1]);
                stencil_across_rows(plane, d, j, k, Axis::K, &mut deriv[s * 3 + 2]);
            }
            let out_base = d.point_index(0, j, k);
            let out = &mut values[out_base..out_base + ni];
            // Pin every derivative row to length `ni` up front: indexed
            // accesses below then carry no bounds-check branches, which
            // would otherwise block lane lowering of the stage loops.
            let mut rows: [&[f64]; 18] = [&[]; 18];
            for (row, buf) in rows.iter_mut().zip(deriv.iter()) {
                *row = &buf[..ni];
            }
            kernel.compute(&rows, out);
        }
    }
    // 18 stencil rows + 5 kernel stage loops per grid row.
    lanes::record_chunks(23 * (d.nj * d.nk) as u64 * lanes::chunks_for(ni));
    ScalarFieldSoA::new(d, values)
}

/// Reusable row workspace of the staged λ₂ kernel — one `ni`-long buffer
/// per intermediate quantity, allocated once per block and reused for
/// every row.
///
/// Why stages instead of one per-point loop: the middle-eigenvalue solve
/// contains a fixed-count Newton iteration, and a loop nested inside the
/// row loop keeps LLVM's loop vectorizer away from the whole body. Split
/// into five branch-free elementwise loops, each is an innermost loop of
/// mul/add/sqrt/div/min/max the autovectorizer lowers to lanes.
///
/// Bit-identity contract: every expression below is transcribed
/// operation for operation (same literals, same association) from
/// `Mat3::det` / `Mat3::scaled_adjugate` / `Mat3::mul_mat` /
/// `Mat3::symmetric_part` / `Mat3::antisymmetric_part` /
/// `symmetric_middle_eigenvalue` / `chebyshev_middle_root` as invoked by
/// the scalar [`lambda2_element`] — the unit and property tests assert
/// the per-point equality bit for bit.
struct Lambda2RowKernel {
    /// Velocity-gradient entries `G = (∂u/∂ξ)(∂x/∂ξ)⁻¹`, row-major.
    g: [Vec<f64>; 9],
    /// Geometric Jacobian determinant (for the singularity select).
    det: Vec<f64>,
    /// `M = S² + Ω²`: diagonal + upper triangle
    /// (`m00, m01, m02, m11, m12, m22` — all the eigensolve reads).
    mm: [Vec<f64>; 6],
    /// Off-diagonal magnitude `p1` of `M`.
    p1: Vec<f64>,
    /// `q = tr(M)/3`.
    q: Vec<f64>,
    /// `p = ‖M − qI‖/√6`.
    p: Vec<f64>,
    /// Normalized half-determinant `r ∈ [−1, 1]`.
    r: Vec<f64>,
    /// Middle of the diagonal — the exact `p1 == 0` path.
    diag_mid: Vec<f64>,
    /// Chebyshev middle root of `r`.
    u: Vec<f64>,
}

impl Lambda2RowKernel {
    fn new(ni: usize) -> Self {
        Lambda2RowKernel {
            g: std::array::from_fn(|_| vec![0.0; ni]),
            det: vec![0.0; ni],
            mm: std::array::from_fn(|_| vec![0.0; ni]),
            p1: vec![0.0; ni],
            q: vec![0.0; ni],
            p: vec![0.0; ni],
            r: vec![0.0; ni],
            diag_mid: vec![0.0; ni],
            u: vec![0.0; ni],
        }
    }

    /// λ₂ of one grid row from its 18 index-space derivative rows
    /// (layout: `rows[s * 3 + dir]`, sources gx, gy, gz, vx, vy, vz and
    /// directions i, j, k).
    fn compute(&mut self, rows: &[&[f64]; 18], out: &mut [f64]) {
        let ni = out.len();
        // Stage 1: Jacobian determinant, scaled adjugate, and
        // G = (∂u/∂ξ) · J⁻¹. J's row r is the (x, y, z)[r] component of
        // the three direction derivatives (Mat3::from_cols).
        {
            let [r0, r1, r2, r3, r4, r5, r6, r7, r8, r9, r10, r11, r12, r13, r14, r15, r16, r17] =
                std::array::from_fn::<_, 18, _>(|s| &rows[s][..ni]);
            let [g0, g1, g2, g3, g4, g5, g6, g7, g8] = &mut self.g;
            let (g0, g1, g2) = (&mut g0[..ni], &mut g1[..ni], &mut g2[..ni]);
            let (g3, g4, g5) = (&mut g3[..ni], &mut g4[..ni], &mut g5[..ni]);
            let (g6, g7, g8) = (&mut g6[..ni], &mut g7[..ni], &mut g8[..ni]);
            let det = &mut self.det[..ni];
            for p in 0..ni {
                let (j00, j01, j02) = (r0[p], r1[p], r2[p]);
                let (j10, j11, j12) = (r3[p], r4[p], r5[p]);
                let (j20, j21, j22) = (r6[p], r7[p], r8[p]);
                let dj = j00 * (j11 * j22 - j12 * j21) - j01 * (j10 * j22 - j12 * j20)
                    + j02 * (j10 * j21 - j11 * j20);
                // Unconditional reciprocal: singular rows produce
                // non-finite G entries that stage 5 discards, exactly as
                // lambda2_element does.
                let inv_d = 1.0 / dj;
                let a00 = (j11 * j22 - j12 * j21) * inv_d;
                let a01 = (j02 * j21 - j01 * j22) * inv_d;
                let a02 = (j01 * j12 - j02 * j11) * inv_d;
                let a10 = (j12 * j20 - j10 * j22) * inv_d;
                let a11 = (j00 * j22 - j02 * j20) * inv_d;
                let a12 = (j02 * j10 - j00 * j12) * inv_d;
                let a20 = (j10 * j21 - j11 * j20) * inv_d;
                let a21 = (j01 * j20 - j00 * j21) * inv_d;
                let a22 = (j00 * j11 - j01 * j10) * inv_d;
                let (u00, u01, u02) = (r9[p], r10[p], r11[p]);
                let (u10, u11, u12) = (r12[p], r13[p], r14[p]);
                let (u20, u21, u22) = (r15[p], r16[p], r17[p]);
                g0[p] = u00 * a00 + u01 * a10 + u02 * a20;
                g1[p] = u00 * a01 + u01 * a11 + u02 * a21;
                g2[p] = u00 * a02 + u01 * a12 + u02 * a22;
                g3[p] = u10 * a00 + u11 * a10 + u12 * a20;
                g4[p] = u10 * a01 + u11 * a11 + u12 * a21;
                g5[p] = u10 * a02 + u11 * a12 + u12 * a22;
                g6[p] = u20 * a00 + u21 * a10 + u22 * a20;
                g7[p] = u20 * a01 + u21 * a11 + u22 * a21;
                g8[p] = u20 * a02 + u21 * a12 + u22 * a22;
                det[p] = dj;
            }
        }
        // Stage 2: M = S² + Ω² with S = (G + Gᵀ)/2, Ω = (G − Gᵀ)/2.
        // Entry expressions follow symmetric_part / antisymmetric_part /
        // mul_mat / add_mat exactly; only the six entries the eigensolve
        // reads are materialized.
        {
            let [g0, g1, g2, g3, g4, g5, g6, g7, g8] = &self.g;
            let (g0, g1, g2) = (&g0[..ni], &g1[..ni], &g2[..ni]);
            let (g3, g4, g5) = (&g3[..ni], &g4[..ni], &g5[..ni]);
            let (g6, g7, g8) = (&g6[..ni], &g7[..ni], &g8[..ni]);
            let [m0, m1, m2, m3, m4, m5] = &mut self.mm;
            let (m0, m1, m2) = (&mut m0[..ni], &mut m1[..ni], &mut m2[..ni]);
            let (m3, m4, m5) = (&mut m3[..ni], &mut m4[..ni], &mut m5[..ni]);
            for p in 0..ni {
                let (g00, g01, g02) = (g0[p], g1[p], g2[p]);
                let (g10, g11, g12) = (g3[p], g4[p], g5[p]);
                let (g20, g21, g22) = (g6[p], g7[p], g8[p]);
                let s00 = 0.5 * (g00 + g00);
                let s01 = 0.5 * (g01 + g10);
                let s02 = 0.5 * (g02 + g20);
                let s10 = 0.5 * (g10 + g01);
                let s11 = 0.5 * (g11 + g11);
                let s12 = 0.5 * (g12 + g21);
                let s20 = 0.5 * (g20 + g02);
                let s21 = 0.5 * (g21 + g12);
                let s22 = 0.5 * (g22 + g22);
                let o00 = 0.5 * (g00 - g00);
                let o01 = 0.5 * (g01 - g10);
                let o02 = 0.5 * (g02 - g20);
                let o10 = 0.5 * (g10 - g01);
                let o11 = 0.5 * (g11 - g11);
                let o12 = 0.5 * (g12 - g21);
                let o20 = 0.5 * (g20 - g02);
                let o21 = 0.5 * (g21 - g12);
                let o22 = 0.5 * (g22 - g22);
                m0[p] = (s00 * s00 + s01 * s10 + s02 * s20) + (o00 * o00 + o01 * o10 + o02 * o20);
                m1[p] = (s00 * s01 + s01 * s11 + s02 * s21) + (o00 * o01 + o01 * o11 + o02 * o21);
                m2[p] = (s00 * s02 + s01 * s12 + s02 * s22) + (o00 * o02 + o01 * o12 + o02 * o22);
                m3[p] = (s10 * s01 + s11 * s11 + s12 * s21) + (o10 * o01 + o11 * o11 + o12 * o21);
                m4[p] = (s10 * s02 + s11 * s12 + s12 * s22) + (o10 * o02 + o11 * o12 + o12 * o22);
                m5[p] = (s20 * s02 + s21 * s12 + s22 * s22) + (o20 * o02 + o21 * o12 + o22 * o22);
            }
        }
        // Stage 3: eigen invariants of M, exactly as
        // symmetric_middle_eigenvalue computes them.
        {
            let [m0, m1, m2, m3, m4, m5] = &self.mm;
            let (m0, m1, m2) = (&m0[..ni], &m1[..ni], &m2[..ni]);
            let (m3, m4, m5) = (&m3[..ni], &m4[..ni], &m5[..ni]);
            let p1r = &mut self.p1[..ni];
            let qr = &mut self.q[..ni];
            let pr = &mut self.p[..ni];
            let rr = &mut self.r[..ni];
            let dmr = &mut self.diag_mid[..ni];
            for i in 0..ni {
                let (m00, m01, m02) = (m0[i], m1[i], m2[i]);
                let (m11, m12, m22) = (m3[i], m4[i], m5[i]);
                let p1 = m01 * m01 + m02 * m02 + m12 * m12;
                let q = (m00 + m11 + m22) / 3.0;
                let d0 = m00 - q;
                let d1 = m11 - q;
                let d2 = m22 - q;
                let p2 = d0 * d0 + d1 * d1 + d2 * d2 + 2.0 * p1;
                let p = (p2 / 6.0).sqrt();
                let inv_p = 1.0 / p;
                let b00 = d0 * inv_p;
                let b11 = d1 * inv_p;
                let b22 = d2 * inv_p;
                let b01 = m01 * inv_p;
                let b02 = m02 * inv_p;
                let b12 = m12 * inv_p;
                let det_b = b00 * (b11 * b22 - b12 * b12) - b01 * (b01 * b22 - b12 * b02)
                    + b02 * (b01 * b12 - b11 * b02);
                p1r[i] = p1;
                qr[i] = q;
                pr[i] = p;
                rr[i] = (det_b / 2.0).clamp(-1.0, 1.0);
                dmr[i] = m00.min(m11).max(m00.max(m11).min(m22));
            }
        }
        // Stage 4: the Chebyshev middle-root solve — the fixed-count
        // Newton iteration of chebyshev_middle_root, verbatim. Isolated
        // in its own loop so the 0..5 iteration unrolls and the row loop
        // vectorizes (this stage is why the kernel is staged at all).
        {
            let rr = &self.r[..ni];
            let ur = &mut self.u[..ni];
            for i in 0..ni {
                let r = rr[i];
                let a = r.abs();
                let eps = 1.0 - a;
                let d0 = (eps / 6.0).sqrt();
                let d1 = (eps / (6.0 - 4.0 * d0)).sqrt();
                let mut v = (a / 3.0).max(0.5 - d1);
                for _ in 0..5 {
                    let h = 3.0 * v - 4.0 * v * v * v - a;
                    let hp = 3.0 - 12.0 * v * v;
                    v = (v - h / hp.max(1e-12)).clamp(0.0, 0.5);
                }
                ur[i] = if r >= 0.0 { -v } else { v };
            }
        }
        // Stage 5: assemble the eigenvalue and fold the degenerate cases
        // in as value selects — same order as symmetric_middle_eigenvalue
        // and lambda2_element.
        {
            let p1r = &self.p1[..ni];
            let qr = &self.q[..ni];
            let pr = &self.p[..ni];
            let dmr = &self.diag_mid[..ni];
            let ur = &self.u[..ni];
            let det = &self.det[..ni];
            for i in 0..ni {
                let mid = qr[i] + 2.0 * pr[i] * ur[i];
                let l2 = if p1r[i] == 0.0 {
                    dmr[i]
                } else if pr[i] < 1e-300 {
                    qr[i]
                } else {
                    mid
                };
                out[i] = if det[i].abs() < 1e-300 {
                    f64::INFINITY
                } else {
                    l2
                };
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Axis {
    J,
    K,
}

/// Central-difference stencil along the contiguous `i` axis of one row:
/// branch-free interior loop, forward/backward differences at the two
/// ends. Matches [`index_derivative`] term for term.
fn stencil_along_row(src: &[f64], out: &mut [f64]) {
    let n = src.len();
    if n < 2 {
        out[..n].fill(0.0);
        return;
    }
    out[0] = src[1] - src[0];
    for p in 1..n - 1 {
        out[p] = (src[p + 1] - src[p - 1]) * 0.5;
    }
    out[n - 1] = src[n - 1] - src[n - 2];
}

/// Derivative of a whole row along `j` or `k`: the stencil case is
/// decided once per row, then applied elementwise over two contiguous
/// neighbour rows. Matches [`index_derivative`] term for term.
fn stencil_across_rows(
    plane: &[f64],
    d: vira_grid::block::BlockDims,
    j: usize,
    k: usize,
    axis: Axis,
    out: &mut [f64],
) {
    let ni = d.ni;
    let (idx, n_axis) = match axis {
        Axis::J => (j, d.nj),
        Axis::K => (k, d.nk),
    };
    if n_axis < 2 {
        out[..ni].fill(0.0);
        return;
    }
    let row = |jj: usize, kk: usize| -> &[f64] {
        let base = d.point_index(0, jj, kk);
        &plane[base..base + ni]
    };
    let at = |v: usize| match axis {
        Axis::J => row(v, k),
        Axis::K => row(j, v),
    };
    if idx == 0 {
        let (a, b) = (at(1), at(0));
        for p in 0..ni {
            out[p] = a[p] - b[p];
        }
    } else if idx == n_axis - 1 {
        let (a, b) = (at(n_axis - 1), at(n_axis - 2));
        for p in 0..ni {
            out[p] = a[p] - b[p];
        }
    } else {
        let (a, b) = (at(idx + 1), at(idx - 1));
        for p in 0..ni {
            out[p] = (a[p] - b[p]) * 0.5;
        }
    }
}

/// Statistics of one streamed λ₂ pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lambda2Stats {
    pub cells_visited: usize,
    pub active_cells: usize,
    pub triangles: usize,
    /// λ₂ point evaluations actually performed (≤ number of points; the
    /// memo avoids recomputation across neighbouring cells).
    pub point_evals: usize,
    /// Cells never examined thanks to bricktree pruning.
    pub cells_skipped: usize,
    /// Finest-level bricks skipped whole.
    pub bricks_skipped: usize,
}

/// Cell-by-cell streamed λ₂ extraction with lazy, memoized point
/// evaluation. `threshold` is the λ₂ iso level (≈ 0, slightly negative in
/// practice); triangles are flushed to `sink` every `batch_triangles`.
pub struct Lambda2Streamer<'a> {
    data: &'a BlockData,
    /// Bricktree over an already-materialized λ₂ field (derived-field
    /// cache hit). `None` → no pruning; λ₂ is computed on first touch.
    tree: Option<&'a BrickTree>,
    /// Memoized λ₂ point values; NaN = not yet computed.
    memo: Vec<f64>,
    stats: Lambda2Stats,
}

impl<'a> Lambda2Streamer<'a> {
    pub fn new(data: &'a BlockData) -> Self {
        Lambda2Streamer {
            data,
            tree: None,
            memo: vec![f64::NAN; data.dims().n_points()],
            stats: Lambda2Stats::default(),
        }
    }

    /// A streamer that prunes with `tree` — a bricktree built over the
    /// memoized λ₂ field of this very block (see
    /// `viracocha::derived::DerivedFieldCache::peek_tree`). Pruning with a
    /// tree from a different field would silently drop triangles, so the
    /// dims are asserted.
    pub fn with_tree(data: &'a BlockData, tree: &'a BrickTree) -> Self {
        assert!(tree.matches(data.dims()), "bricktree dims mismatch");
        let mut s = Lambda2Streamer::new(data);
        s.tree = Some(tree);
        s
    }

    fn value_at(&mut self, i: usize, j: usize, k: usize) -> f64 {
        let idx = self.data.dims().point_index(i, j, k);
        let v = self.memo[idx];
        if !v.is_nan() {
            return v;
        }
        let v = lambda2_at(self.data, i, j, k);
        self.stats.point_evals += 1;
        self.memo[idx] = v;
        v
    }

    fn process_cell(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
        threshold: f64,
        batch_triangles: usize,
        pending: &mut TriangleSoup,
        sink: &mut impl FnMut(TriangleSoup),
    ) {
        self.stats.cells_visited += 1;
        // λ₂ at the eight corners, computed lazily.
        let idxs = [
            (i, j, k),
            (i + 1, j, k),
            (i, j + 1, k),
            (i + 1, j + 1, k),
            (i, j, k + 1),
            (i + 1, j, k + 1),
            (i, j + 1, k + 1),
            (i + 1, j + 1, k + 1),
        ];
        let mut scalars = [0.0; 8];
        for (n, &(a, b, c)) in idxs.iter().enumerate() {
            scalars[n] = self.value_at(a, b, c);
        }
        let (lo, hi) = scalars
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &s| {
                (l.min(s), h.max(s))
            });
        if !(hi > threshold && lo <= threshold) {
            return;
        }
        self.stats.active_cells += 1;
        let corners = self.data.grid.cell_corners(i, j, k);
        self.stats.triangles += contour_cell(&corners, &scalars, threshold, pending);
        if pending.n_triangles() >= batch_triangles {
            sink(std::mem::take(pending));
        }
    }

    /// Runs the full pass. Vortex boundaries are extracted as the
    /// iso-surface λ₂ = `threshold`. With a bricktree, whole inactive
    /// bricks are skipped (in storage order, so output is byte-identical
    /// to the unpruned pass).
    pub fn run(
        mut self,
        threshold: f64,
        batch_triangles: usize,
        mut sink: impl FnMut(TriangleSoup),
    ) -> Lambda2Stats {
        let mut pending = TriangleSoup::new();
        let pruned = match self.tree {
            Some(tree) => tree.scan_candidates(threshold, |i, j, k| {
                self.process_cell(i, j, k, threshold, batch_triangles, &mut pending, &mut sink)
            }),
            None => {
                for (i, j, k) in self.data.dims().cells() {
                    self.process_cell(i, j, k, threshold, batch_triangles, &mut pending, &mut sink);
                }
                Default::default()
            }
        };
        self.stats.cells_skipped = pruned.cells_skipped;
        self.stats.bricks_skipped = pruned.bricks_skipped;
        if !pending.is_empty() {
            sink(pending);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockStepId;
    use vira_grid::synth::test_cube;

    fn vortex_block(res: usize) -> BlockData {
        test_cube(res, 1).generate(BlockStepId::new(0, 0))
    }

    #[test]
    fn gradient_of_linear_field_is_exact() {
        // u = (2x, -y, 3z) on a uniform grid → ∇u = diag(2, -1, 3).
        let mut data = vortex_block(6);
        let pts = data.grid.points.clone();
        data.velocity = vira_grid::field::VectorField::new(
            data.dims(),
            pts.iter()
                .map(|p| Vec3::new(2.0 * p.x, -p.y, 3.0 * p.z))
                .collect(),
        );
        for &(i, j, k) in &[(2, 3, 1), (0, 0, 0), (5, 5, 5)] {
            let g = velocity_gradient(&data, i, j, k).unwrap();
            for r in 0..3 {
                for c in 0..3 {
                    let expect = [[2.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, 3.0]][r][c];
                    assert!(
                        (g.m[r][c] - expect).abs() < 1e-9,
                        "∇u[{r}][{c}] = {}",
                        g.m[r][c]
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_axis_derivative_is_zero() {
        assert_eq!(index_derivative(1, 0, |_| 42.0), 0.0);
        let v = index_derivative(1, 0, |_| Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(v, Vec3::ZERO);
    }

    #[test]
    fn lamb_oseen_core_has_negative_lambda2() {
        // The test-cube dataset is a Lamb–Oseen vortex along z through the
        // origin with core radius 0.4: λ₂ < 0 near the axis, ≥ 0 far away.
        let data = vortex_block(17);
        let f = lambda2_field(&data);
        let d = data.dims();
        let mid = d.ni / 2;
        let center = f.at(mid, mid, mid);
        assert!(center < 0.0, "core λ₂ = {center}");
        let corner = f.at(0, 0, 0);
        assert!(corner > center, "corner λ₂ {corner} vs core {center}");
    }

    #[test]
    fn soa_field_bit_identical_to_oracle() {
        // Cube blocks, ragged dims, and degenerate (< 2 point) axes all
        // hit different stencil branches; all must match the oracle bit
        // for bit (including +inf at singular points).
        for data in [vortex_block(13), vortex_block(2)] {
            let fast = lambda2_field_soa(&data);
            let oracle = lambda2_field_oracle(&data);
            assert_eq!(fast.dims, oracle.dims);
            for (a, b) in fast.values.iter().zip(&oracle.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "λ₂ mismatch: {a} vs {b}");
            }
            assert_eq!(ScalarField::from(fast), lambda2_field(&data));
        }
    }

    #[test]
    fn soa_field_handles_degenerate_axes() {
        use vira_grid::block::BlockDims;
        use vira_grid::field::VectorField;
        use vira_grid::CurvilinearBlock;
        let dims = BlockDims::new(4, 1, 3);
        let grid = CurvilinearBlock::from_fn(0, dims, |i, j, k| {
            Vec3::new(i as f64, j as f64, k as f64)
        });
        let vel = VectorField::from_fn(dims, |i, _, k| Vec3::new(k as f64, i as f64, 0.0));
        let data = BlockData::new(vira_grid::block::BlockStepId::new(0, 0), grid, vel, 0.0);
        let fast = lambda2_field_soa(&data);
        let oracle = lambda2_field_oracle(&data);
        for (a, b) in fast.values.iter().zip(&oracle.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A collapsed j axis makes the Jacobian singular everywhere.
        assert!(fast.values.iter().all(|v| *v == f64::INFINITY));
    }

    #[test]
    fn streamer_matches_full_field_extraction() {
        let data = vortex_block(13);
        let field = lambda2_field(&data);
        let (full, full_stats) = crate::iso::extract_isosurface(&data.grid, &field, -0.05);
        let mut streamed = TriangleSoup::new();
        let stats = Lambda2Streamer::new(&data).run(-0.05, 64, |b| streamed.extend_from(&b));
        assert_eq!(stats.triangles, full_stats.triangles);
        assert_eq!(stats.active_cells, full_stats.active_cells);
        assert_eq!(streamed, full);
        assert!(stats.triangles > 0, "vortex tube must produce a surface");
    }

    #[test]
    fn streamer_with_tree_matches_unpruned_streamer() {
        let data = vortex_block(13);
        let field = lambda2_field(&data);
        let tree = BrickTree::build(&field);
        let mut plain = TriangleSoup::new();
        let plain_stats = Lambda2Streamer::new(&data).run(-0.05, 64, |b| plain.extend_from(&b));
        let mut pruned = TriangleSoup::new();
        let pruned_stats =
            Lambda2Streamer::with_tree(&data, &tree).run(-0.05, 64, |b| pruned.extend_from(&b));
        assert_eq!(pruned, plain, "pruning changed vortex geometry");
        assert_eq!(pruned_stats.triangles, plain_stats.triangles);
        assert_eq!(pruned_stats.active_cells, plain_stats.active_cells);
        assert_eq!(
            pruned_stats.cells_visited + pruned_stats.cells_skipped,
            data.dims().n_cells()
        );
        assert!(
            pruned_stats.cells_skipped > 0,
            "vortex tube is localized; some bricks must be skipped"
        );
        // Pruning also avoids λ₂ evaluations, not just range checks.
        assert!(pruned_stats.point_evals < plain_stats.point_evals);
    }

    #[test]
    fn streamer_memo_avoids_recomputation() {
        let data = vortex_block(9);
        let mut sink = |_b: TriangleSoup| {};
        let stats = Lambda2Streamer::new(&data).run(-0.05, usize::MAX, &mut sink);
        // Every point is evaluated at most once.
        assert!(stats.point_evals <= data.dims().n_points());
        // All cells visited.
        assert_eq!(stats.cells_visited, data.dims().n_cells());
    }

    #[test]
    fn vortex_tube_is_roughly_cylindrical() {
        let data = vortex_block(17);
        let mut soup = TriangleSoup::new();
        Lambda2Streamer::new(&data).run(-0.05, usize::MAX, |b| soup.extend_from(&b));
        // Vertices cluster around the z axis: x² + y² roughly constant,
        // well inside the domain.
        assert!(soup.n_triangles() > 20);
        for v in &soup.positions {
            let r = ((v[0] * v[0] + v[1] * v[1]) as f64).sqrt();
            assert!(r < 0.95, "vortex boundary inside the cube, r = {r}");
        }
    }
}
