//! Ghost-layer (halo) exchange across block interfaces.
//!
//! Derivative stencils degrade to one-sided differences at block faces,
//! so a λ₂ field computed block-by-block is discontinuous across
//! interfaces — visible as seams in the extracted vortex boundaries. A
//! **ghost layer** fixes this: for every face shared with a neighbour,
//! the neighbour's *second* point layer (position and velocity) is
//! attached to the block, and the boundary stencil becomes the same
//! central difference as in the interior.
//!
//! The assembly is pure data-plumbing over the interface-matching
//! machinery in `vira_grid::faces`; the framework's `VortexDataMan`
//! command activates it with the `ghosts` parameter, loading neighbour
//! blocks through the DMS like any other data item.

use crate::eigen::lambda2_of_gradient;
use crate::lambda2::gradient_from_derivatives;
use std::collections::HashMap;
use vira_grid::faces::{face_correspondence, face_dims, face_lattice_point, matching_interface, Face};
use vira_grid::field::{BlockData, ScalarField};
use vira_grid::math::Vec3;

/// One attached ghost layer: the neighbour's second point layer, indexed
/// by this block's face lattice (`a` fastest, as `face_points` orders
/// it).
#[derive(Debug, Clone)]
pub struct GhostLayer {
    pub positions: Vec<Vec3>,
    pub velocities: Vec<Vec3>,
}

/// A block plus the ghost layers of its face neighbours.
pub struct GhostedBlock<'a> {
    pub data: &'a BlockData,
    ghosts: HashMap<Face, GhostLayer>,
}

impl<'a> GhostedBlock<'a> {
    /// Assembles ghost layers from whichever `neighbors` actually share
    /// a full face with `data` (others are ignored). `tol` is the
    /// point-coincidence tolerance of the interface detection.
    pub fn assemble(data: &'a BlockData, neighbors: &[&BlockData], tol: f64) -> GhostedBlock<'a> {
        let mut ghosts = HashMap::new();
        for nb in neighbors {
            let Some(interface) = matching_interface(&data.grid, &nb.grid, tol) else {
                continue;
            };
            let Some(map) = face_correspondence(
                &data.grid,
                interface.face_a,
                &nb.grid,
                interface.face_b,
                tol.max(interface.max_mismatch * 2.0),
            ) else {
                continue;
            };
            let (n1, n2) = face_dims(&data.grid, interface.face_a);
            let (bn1, _) = face_dims(&nb.grid, interface.face_b);
            let mut positions = Vec::with_capacity(n1 * n2);
            let mut velocities = Vec::with_capacity(n1 * n2);
            for &b_lattice in map.iter().take(n1 * n2) {
                let (ba, bb) = (b_lattice % bn1, b_lattice / bn1);
                // Depth 1 = the neighbour's second layer behind the
                // shared face.
                let depth = 1.min(depth_available(&nb.grid, interface.face_b));
                let p_idx = face_lattice_point(&nb.grid, interface.face_b, ba, bb, depth);
                positions.push(nb.grid.points[p_idx]);
                velocities.push(nb.velocity.values[p_idx]);
            }
            ghosts.insert(
                interface.face_a,
                GhostLayer {
                    positions,
                    velocities,
                },
            );
        }
        GhostedBlock { data, ghosts }
    }

    /// Faces that received a ghost layer.
    pub fn ghosted_faces(&self) -> Vec<Face> {
        let mut v: Vec<Face> = self.ghosts.keys().copied().collect();
        v.sort_by_key(|f| *f as usize);
        v
    }

    /// Ghost sample `(position, velocity)` behind `face` at the face
    /// lattice coordinates of point `(i, j, k)`, when the face is
    /// ghosted and the point lies on it.
    fn ghost_behind(&self, face: Face, i: usize, j: usize, k: usize) -> Option<(Vec3, Vec3)> {
        let g = self.ghosts.get(&face)?;
        let d = self.data.dims();
        let (a, b) = match face {
            Face::IMin | Face::IMax => (j, k),
            Face::JMin | Face::JMax => (i, k),
            Face::KMin | Face::KMax => (i, j),
        };
        let (n1, _) = face_dims(&self.data.grid, face);
        let idx = b * n1 + a;
        debug_assert!(idx < g.positions.len());
        let _ = d;
        Some((g.positions[idx], g.velocities[idx]))
    }

    /// Index-space derivative along one axis at `(i, j, k)`, using the
    /// ghost layer for a central difference at ghosted faces.
    fn axis_derivative(
        &self,
        axis: usize,
        i: usize,
        j: usize,
        k: usize,
    ) -> (Vec3, Vec3) {
        let d = self.data.dims();
        let (n, idx, min_face, max_face) = match axis {
            0 => (d.ni, i, Face::IMin, Face::IMax),
            1 => (d.nj, j, Face::JMin, Face::JMax),
            _ => (d.nk, k, Face::KMin, Face::KMax),
        };
        let sample = |v: usize| -> (Vec3, Vec3) {
            let (ii, jj, kk) = match axis {
                0 => (v, j, k),
                1 => (i, v, k),
                _ => (i, j, v),
            };
            (
                self.data.grid.point(ii, jj, kk),
                self.data.velocity.at(ii, jj, kk),
            )
        };
        if n < 2 {
            return (Vec3::ZERO, Vec3::ZERO);
        }
        if idx == 0 {
            if let Some((gp, gv)) = self.ghost_behind(min_face, i, j, k) {
                // Central difference across the interface.
                let (p1, v1) = sample(1);
                return ((p1 - gp) * 0.5, (v1 - gv) * 0.5);
            }
            let (p1, v1) = sample(1);
            let (p0, v0) = sample(0);
            (p1 - p0, v1 - v0)
        } else if idx == n - 1 {
            if let Some((gp, gv)) = self.ghost_behind(max_face, i, j, k) {
                let (p0, v0) = sample(n - 2);
                return ((gp - p0) * 0.5, (gv - v0) * 0.5);
            }
            let (p1, v1) = sample(n - 1);
            let (p0, v0) = sample(n - 2);
            (p1 - p0, v1 - v0)
        } else {
            let (p1, v1) = sample(idx + 1);
            let (p0, v0) = sample(idx - 1);
            ((p1 - p0) * 0.5, (v1 - v0) * 0.5)
        }
    }

    /// λ₂ at one grid point with ghost-aware stencils.
    pub fn lambda2_at(&self, i: usize, j: usize, k: usize) -> f64 {
        let (dx_di, du_di) = self.axis_derivative(0, i, j, k);
        let (dx_dj, du_dj) = self.axis_derivative(1, i, j, k);
        let (dx_dk, du_dk) = self.axis_derivative(2, i, j, k);
        gradient_from_derivatives(dx_di, dx_dj, dx_dk, du_di, du_dj, du_dk)
            .map(|g| lambda2_of_gradient(&g))
            .unwrap_or(f64::INFINITY)
    }

    /// The full λ₂ field with ghost-aware boundaries.
    pub fn lambda2_field(&self) -> ScalarField {
        ScalarField::from_fn(self.data.dims(), |i, j, k| self.lambda2_at(i, j, k))
    }
}

fn depth_available(grid: &vira_grid::CurvilinearBlock, face: Face) -> usize {
    let d = grid.dims;
    let n = match face {
        Face::IMin | Face::IMax => d.ni,
        Face::JMin | Face::JMax => d.nj,
        Face::KMin | Face::KMax => d.nk,
    };
    n.saturating_sub(1).min(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambda2::lambda2_field;
    use vira_grid::block::{BlockDims, BlockStepId, CurvilinearBlock};
    use vira_grid::field::VectorField;
    use vira_grid::synth::{self, AnalyticFlow};

    /// Two abutting Cartesian blocks sampling the same analytic vortex,
    /// plus the same domain as a single merged block for reference.
    fn split_domain(n: usize) -> (BlockData, BlockData, BlockData) {
        let flow = synth::LambOseenVortex::new(
            vira_grid::math::Vec3::new(0.0, 0.0, 0.0),
            vira_grid::math::Vec3::new(0.0, 0.0, 1.0),
            1.0,
            0.5,
        );
        let make = |id: u32, x0: f64, x1: f64, nx: usize| -> BlockData {
            let dims = BlockDims::new(nx, n, n);
            let grid = CurvilinearBlock::from_fn(id, dims, |i, j, k| {
                vira_grid::math::Vec3::new(
                    x0 + (x1 - x0) * i as f64 / (nx - 1) as f64,
                    2.0 * j as f64 / (n - 1) as f64 - 1.0,
                    2.0 * k as f64 / (n - 1) as f64 - 1.0,
                )
            });
            let vel = VectorField::new(
                dims,
                grid.points.iter().map(|&p| flow.velocity(p, 0.0)).collect(),
            );
            BlockData::new(BlockStepId::new(id, 0), grid, vel, 0.0)
        };
        // Left [-1, 0], right [0, 1], merged [-1, 1] with the shared
        // plane at x = 0.
        let left = make(0, -1.0, 0.0, n);
        let right = make(1, 0.0, 1.0, n);
        let merged = make(2, -1.0, 1.0, 2 * n - 1);
        (left, right, merged)
    }

    #[test]
    fn assemble_finds_the_shared_face() {
        let (left, right, _) = split_domain(7);
        let gb = GhostedBlock::assemble(&left, &[&right], 1e-9);
        assert_eq!(gb.ghosted_faces(), vec![Face::IMax]);
        let gb2 = GhostedBlock::assemble(&right, &[&left], 1e-9);
        assert_eq!(gb2.ghosted_faces(), vec![Face::IMin]);
    }

    #[test]
    fn unrelated_blocks_attach_nothing() {
        let (left, _, _) = split_domain(5);
        let far = synth::test_cube(5, 1).generate(BlockStepId::new(0, 0));
        // test_cube spans [-1,1]³ and left spans x ∈ [-1,0]: same j/k
        // lattice sizes but faces don't coincide... except they might at
        // x=-1/x=... use an offset block to be sure.
        let gb = GhostedBlock::assemble(&left, &[], 1e-9);
        assert!(gb.ghosted_faces().is_empty());
        let _ = far;
    }

    #[test]
    fn ghosted_interface_matches_the_merged_reference() {
        let n = 9;
        let (left, right, merged) = split_domain(n);
        let reference = lambda2_field(&merged);
        let gb_left = GhostedBlock::assemble(&left, &[&right], 1e-9);
        let ghosted = gb_left.lambda2_field();
        let plain = lambda2_field(&left);
        // Compare along the shared plane (left block's i = n-1 ↔ merged
        // block's i = n-1).
        let mut worst_ghosted = 0.0f64;
        let mut worst_plain = 0.0f64;
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                let r = reference.at(n - 1, j, k);
                worst_ghosted = worst_ghosted.max((ghosted.at(n - 1, j, k) - r).abs());
                worst_plain = worst_plain.max((plain.at(n - 1, j, k) - r).abs());
            }
        }
        assert!(
            worst_ghosted < 1e-9,
            "ghosted boundary must equal interior stencils: {worst_ghosted}"
        );
        assert!(
            worst_plain > worst_ghosted * 1e3,
            "one-sided stencils are visibly off ({worst_plain}) while ghosts are exact"
        );
    }

    #[test]
    fn both_sides_agree_on_the_interface() {
        let n = 9;
        let (left, right, _) = split_domain(n);
        let gl = GhostedBlock::assemble(&left, &[&right], 1e-9);
        let gr = GhostedBlock::assemble(&right, &[&left], 1e-9);
        let fl = gl.lambda2_field();
        let fr = gr.lambda2_field();
        for k in 0..n {
            for j in 0..n {
                let a = fl.at(n - 1, j, k);
                let b = fr.at(0, j, k);
                assert!(
                    (a - b).abs() < 1e-9,
                    "interface continuity at (j={j}, k={k}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn engine_sector_interfaces_get_ghosts() {
        let ds = synth::engine(5);
        let a = ds.generate(BlockStepId::new(0, 0));
        let b = ds.generate(BlockStepId::new(1, 0));
        let c = ds.generate(BlockStepId::new(22, 0));
        let gb = GhostedBlock::assemble(&a, &[&b, &c], 1e-9);
        // Block 0 touches block 1 and block 22 (the ring wraps).
        assert_eq!(gb.ghosted_faces().len(), 2);
        let f = gb.lambda2_field();
        assert!(f.values.iter().all(|v| v.is_finite()));
    }
}
