//! Scoped intra-worker parallelism for per-block extraction.
//!
//! A worker rank owns a list of blocks per step; [`scoped_map`] fans the
//! per-block work out over a small pool of scoped OS threads (std-only,
//! matching the workspace's no-external-deps style) and returns the
//! results **in item order**, so callers that merge results sequentially
//! stay byte-identical to a single-threaded pass no matter how the pool
//! interleaved the work. The calling thread's observability context is
//! re-installed on every pool thread, so spans opened inside the worker
//! function keep their parent linkage in the trace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item concurrently on up to `threads` scoped
/// threads and returns the results in item order.
///
/// `threads <= 1` (or a single item) runs inline on the calling thread —
/// the exact sequential code path, with no pool, no atomics and no
/// context reinstall. Work is distributed dynamically (an atomic cursor),
/// which balances uneven block costs; determinism comes from the ordered
/// result slots, not the schedule. A panic in `f` propagates after all
/// threads have been joined (no detached work).
pub fn scoped_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let ctx = vira_obs::current_ctx();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| {
                let _ctx = vira_obs::install_ctx(ctx);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled before scope exit")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_item_order() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 4, 8] {
            let out = scoped_map(threads, &items, |i, &v| {
                // Stagger finish order to exercise out-of-order slots.
                if v % 7 == 0 {
                    std::thread::yield_now();
                }
                (i, v * 2)
            });
            let expect: Vec<(usize, usize)> = items.iter().map(|&v| (v, v * 2)).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        let out = scoped_map(1, &[(); 4], |i, _| {
            assert_eq!(std::thread::current().id(), tid);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = scoped_map(8, &[10, 20], |_, &v| v + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn empty_items_yield_empty_results() {
        let out: Vec<u32> = scoped_map(4, &[] as &[u8], |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn obs_ctx_propagates_to_pool_threads() {
        let ctx = vira_obs::TraceCtx {
            trace_id: 77,
            parent_span_id: 123,
        };
        let _g = vira_obs::install_ctx(ctx);
        let seen = scoped_map(4, &[(); 16], |_, _| vira_obs::current_ctx());
        assert!(seen.iter().all(|c| *c == ctx));
    }
}
