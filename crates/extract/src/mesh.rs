//! Triangle geometry produced by the extraction algorithms and its wire
//! encoding — the payload of streamed result packets.
//!
//! Geometry is transmitted as `f32` (display precision); computation
//! happens in `f64`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vira_grid::math::{Aabb, Vec3};

/// A bag of triangles: 9 `f32` per triangle (three vertices), no
/// connectivity. The visualization client concatenates soups from many
/// partial packets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TriangleSoup {
    /// Vertex positions, three consecutive entries per triangle.
    pub positions: Vec<[f32; 3]>,
}

impl TriangleSoup {
    pub fn new() -> Self {
        TriangleSoup::default()
    }

    pub fn with_capacity(n_triangles: usize) -> Self {
        TriangleSoup {
            positions: Vec::with_capacity(3 * n_triangles),
        }
    }

    #[inline]
    pub fn n_triangles(&self) -> usize {
        self.positions.len() / 3
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Appends one triangle given `f64` vertices.
    #[inline]
    pub fn push_tri(&mut self, a: Vec3, b: Vec3, c: Vec3) {
        for v in [a, b, c] {
            self.positions.push([v.x as f32, v.y as f32, v.z as f32]);
        }
    }

    /// Appends all triangles of another soup.
    pub fn extend_from(&mut self, other: &TriangleSoup) {
        self.positions.extend_from_slice(&other.positions);
    }

    /// Splits off the first `n` triangles into a new soup (fewer if not
    /// that many are available).
    pub fn drain_front(&mut self, n: usize) -> TriangleSoup {
        let take = (3 * n).min(self.positions.len());
        let rest = self.positions.split_off(take);
        TriangleSoup {
            positions: std::mem::replace(&mut self.positions, rest),
        }
    }

    /// Bounding box of all vertices.
    pub fn bbox(&self) -> Aabb {
        Aabb::from_points(
            self.positions
                .iter()
                .map(|p| Vec3::new(p[0] as f64, p[1] as f64, p[2] as f64)),
        )
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        let mut a = 0.0;
        for t in self.positions.chunks_exact(3) {
            let p0 = Vec3::new(t[0][0] as f64, t[0][1] as f64, t[0][2] as f64);
            let p1 = Vec3::new(t[1][0] as f64, t[1][1] as f64, t[1][2] as f64);
            let p2 = Vec3::new(t[2][0] as f64, t[2][1] as f64, t[2][2] as f64);
            a += 0.5 * (p1 - p0).cross(p2 - p0).norm();
        }
        a
    }

    /// True if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.positions
            .iter()
            .all(|p| p.iter().all(|c| c.is_finite()))
    }

    /// Wire encoding: `u32` triangle count, then `9 × f32` per triangle,
    /// little-endian. The vertex block is appended in bulk
    /// ([`append_payload`](Self::append_payload)), not float by float.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + self.positions.len() * 12);
        buf.put_u32_le(self.n_triangles() as u32);
        self.append_payload(&mut buf);
        buf.freeze()
    }

    /// Appends the raw `9 × f32` little-endian vertex block (no count
    /// prefix) to `buf` — the bulk body shared by
    /// [`to_bytes`](Self::to_bytes) and the master-side partial-result
    /// merge, which concatenates vertex blocks from many packets without
    /// re-encoding.
    pub fn append_payload(&self, buf: &mut BytesMut) {
        #[cfg(target_endian = "little")]
        {
            // SAFETY: `[f32; 3]` is 12 bytes with no padding, and the Vec
            // stores them contiguously; on a little-endian target the
            // in-memory representation already is the wire format.
            let raw = unsafe {
                std::slice::from_raw_parts(
                    self.positions.as_ptr() as *const u8,
                    self.positions.len() * std::mem::size_of::<[f32; 3]>(),
                )
            };
            buf.extend_from_slice(raw);
        }
        #[cfg(not(target_endian = "little"))]
        for p in &self.positions {
            buf.put_f32_le(p[0]);
            buf.put_f32_le(p[1]);
            buf.put_f32_le(p[2]);
        }
    }

    /// Inverse of [`to_bytes`](Self::to_bytes). `None` on malformed input
    /// (short prefix, or body length inconsistent with the count).
    pub fn from_bytes(mut b: Bytes) -> Option<TriangleSoup> {
        if b.remaining() < 4 {
            return None;
        }
        let n = b.get_u32_le() as usize;
        if b.remaining() != n.checked_mul(36)? {
            return None;
        }
        // Decode in 12-byte vertex chunks instead of per-float gets.
        let mut positions = Vec::with_capacity(3 * n);
        for v in b.chunks_exact(12) {
            positions.push([
                f32::from_le_bytes([v[0], v[1], v[2], v[3]]),
                f32::from_le_bytes([v[4], v[5], v[6], v[7]]),
                f32::from_le_bytes([v[8], v[9], v[10], v[11]]),
            ]);
        }
        Some(TriangleSoup { positions })
    }
}

/// Validates a wire-encoded soup without decoding it: returns the
/// triangle count when `payload` is structurally sound (count prefix
/// consistent with the body length). The master-side merge uses this to
/// splice vertex blocks from partial packets without a decode round-trip.
pub fn payload_triangle_count(payload: &[u8]) -> Option<usize> {
    if payload.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
    (payload.len() - 4 == n.checked_mul(36)?).then_some(n)
}

/// A traced particle path: positions with their solution times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    pub points: Vec<[f32; 3]>,
    pub times: Vec<f32>,
}

impl Polyline {
    pub fn push(&mut self, p: Vec3, t: f64) {
        self.points.push([p.x as f32, p.y as f32, p.z as f32]);
        self.times.push(t as f32);
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total arc length.
    pub fn arc_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let d = [
                    (w[1][0] - w[0][0]) as f64,
                    (w[1][1] - w[0][1]) as f64,
                    (w[1][2] - w[0][2]) as f64,
                ];
                (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
            })
            .sum()
    }

    /// Wire encoding: `u32` point count, then `4 × f32` (xyz + t) per
    /// point, little-endian.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + self.points.len() * 16);
        buf.put_u32_le(self.len() as u32);
        for (p, &t) in self.points.iter().zip(&self.times) {
            buf.put_f32_le(p[0]);
            buf.put_f32_le(p[1]);
            buf.put_f32_le(p[2]);
            buf.put_f32_le(t);
        }
        buf.freeze()
    }

    pub fn from_bytes(mut b: Bytes) -> Option<Polyline> {
        if b.remaining() < 4 {
            return None;
        }
        let n = b.get_u32_le() as usize;
        if b.remaining() != n * 16 {
            return None;
        }
        let mut line = Polyline::default();
        for _ in 0..n {
            let x = b.get_f32_le();
            let y = b.get_f32_le();
            let z = b.get_f32_le();
            let t = b.get_f32_le();
            line.points.push([x, y, z]);
            line.times.push(t);
        }
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_soup() -> TriangleSoup {
        let mut s = TriangleSoup::new();
        s.push_tri(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        s.push_tri(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(2.0, 0.0, 1.0),
            Vec3::new(0.0, 2.0, 1.0),
        );
        s
    }

    #[test]
    fn soup_counts_and_area() {
        let s = tri_soup();
        assert_eq!(s.n_triangles(), 2);
        assert!((s.area() - (0.5 + 2.0)).abs() < 1e-9);
        assert!(s.is_finite());
    }

    #[test]
    fn soup_bbox() {
        let b = tri_soup().bbox();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::new(2.0, 2.0, 1.0));
    }

    #[test]
    fn soup_roundtrip_bytes() {
        let s = tri_soup();
        let b = s.to_bytes();
        let back = TriangleSoup::from_bytes(b).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn bulk_encoding_matches_per_float_reference() {
        let s = tri_soup();
        let mut reference = BytesMut::new();
        reference.put_u32_le(s.n_triangles() as u32);
        for p in &s.positions {
            reference.put_f32_le(p[0]);
            reference.put_f32_le(p[1]);
            reference.put_f32_le(p[2]);
        }
        assert_eq!(s.to_bytes(), reference.freeze());
    }

    #[test]
    fn append_payload_is_body_of_to_bytes() {
        let s = tri_soup();
        let mut body = BytesMut::new();
        s.append_payload(&mut body);
        assert_eq!(&s.to_bytes()[4..], &body[..]);
    }

    #[test]
    fn payload_triangle_count_validates() {
        let s = tri_soup();
        let b = s.to_bytes();
        assert_eq!(payload_triangle_count(&b), Some(2));
        assert_eq!(payload_triangle_count(&TriangleSoup::new().to_bytes()), Some(0));
        assert_eq!(payload_triangle_count(b"xy"), None);
        assert_eq!(payload_triangle_count(&b[..b.len() - 1]), None);
        // Count prefix inconsistent with body length.
        let mut bad = b.to_vec();
        bad[0] = 9;
        assert_eq!(payload_triangle_count(&bad), None);
    }

    #[test]
    fn soup_rejects_malformed_bytes() {
        assert!(TriangleSoup::from_bytes(Bytes::from_static(b"xy")).is_none());
        let mut good = tri_soup().to_bytes().to_vec();
        good.pop();
        assert!(TriangleSoup::from_bytes(Bytes::from(good)).is_none());
    }

    #[test]
    fn empty_soup_roundtrip() {
        let s = TriangleSoup::new();
        let back = TriangleSoup::from_bytes(s.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn drain_front_splits() {
        let mut s = tri_soup();
        let first = s.drain_front(1);
        assert_eq!(first.n_triangles(), 1);
        assert_eq!(s.n_triangles(), 1);
        let rest = s.drain_front(10);
        assert_eq!(rest.n_triangles(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = tri_soup();
        let b = tri_soup();
        a.extend_from(&b);
        assert_eq!(a.n_triangles(), 4);
    }

    #[test]
    fn polyline_roundtrip_and_length() {
        let mut l = Polyline::default();
        l.push(Vec3::ZERO, 0.0);
        l.push(Vec3::new(3.0, 4.0, 0.0), 0.1);
        l.push(Vec3::new(3.0, 4.0, 12.0), 0.2);
        assert_eq!(l.len(), 3);
        assert!((l.arc_length() - 17.0).abs() < 1e-6);
        let back = Polyline::from_bytes(l.to_bytes()).unwrap();
        assert_eq!(back, l);
        assert!(Polyline::from_bytes(Bytes::from_static(b"zz")).is_none());
    }
}
