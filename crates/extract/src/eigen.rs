//! Eigenvalues of symmetric 3×3 matrices, needed by the λ₂ vortex
//! criterion (eigenvalues of `S² + Ω²`, which is symmetric).
//!
//! Uses the analytic (trigonometric) method: exact for the 3×3 symmetric
//! case, allocation-free, and orders of magnitude faster than iterative
//! schemes — this sits in the innermost loop of vortex extraction.

use vira_grid::math::Mat3;

/// Eigenvalues of a symmetric 3×3 matrix, sorted **descending**
/// (`λ1 ≥ λ2 ≥ λ3`). Only the lower/upper triangle symmetry is assumed;
/// the strictly-antisymmetric part of the input is ignored.
pub fn symmetric_eigenvalues(a: &Mat3) -> [f64; 3] {
    let m = &a.m;
    // Off-diagonal magnitude.
    let p1 = m[0][1] * m[0][1] + m[0][2] * m[0][2] + m[1][2] * m[1][2];
    if p1 == 0.0 {
        // Already diagonal.
        let mut e = [m[0][0], m[1][1], m[2][2]];
        e.sort_by(|x, y| y.partial_cmp(x).expect("diagonal entries must not be NaN"));
        return e;
    }
    let q = a.trace() / 3.0;
    let d0 = m[0][0] - q;
    let d1 = m[1][1] - q;
    let d2 = m[2][2] - q;
    let p2 = d0 * d0 + d1 * d1 + d2 * d2 + 2.0 * p1;
    let p = (p2 / 6.0).sqrt();
    if p < 1e-300 {
        return [q, q, q];
    }
    // B = (A - qI) / p
    let inv_p = 1.0 / p;
    let b = Mat3 {
        m: [
            [d0 * inv_p, m[0][1] * inv_p, m[0][2] * inv_p],
            [m[1][0] * inv_p, d1 * inv_p, m[1][2] * inv_p],
            [m[2][0] * inv_p, m[2][1] * inv_p, d2 * inv_p],
        ],
    };
    let r = (b.det() / 2.0).clamp(-1.0, 1.0);
    let phi = r.acos() / 3.0;
    let e1 = q + 2.0 * p * phi.cos();
    let e3 = q + 2.0 * p * (phi + 2.0 * std::f64::consts::FRAC_PI_3 * 2.0).cos();
    let e2 = 3.0 * q - e1 - e3;
    // By construction e1 >= e2 >= e3 for exact arithmetic; enforce under
    // rounding.
    let mut e = [e1, e2, e3];
    e.sort_by(|x, y| y.partial_cmp(x).expect("eigenvalues must not be NaN"));
    e
}

/// Middle root `u ∈ [−1/2, 1/2]` of the Chebyshev cubic `4u³ − 3u = r`
/// for `r ∈ [−1, 1]` — i.e. `cos(acos(r)/3 + 4π/3)` — computed with
/// plain arithmetic only (no libm trig).
///
/// This is the inner solve of the middle-eigenvalue path. The cubic has
/// three real roots (casus irreducibilis: no real-radical closed form),
/// so the classic route is `acos` + `cos`; those scalar libm calls were
/// measured at ~2/3 of the whole λ₂ field cost and cannot be processed
/// in lanes. Instead: exploit oddness (`u(−r) = −u(|r|)`-signed), seed
/// from the larger of the interior tangent `a/3` and a two-step
/// square-root expansion around the `a → 1` double root, then apply a
/// **fixed** number of guarded Newton steps. The operation sequence is
/// branch-free (comparisons select values, never control flow) and
/// identical for every input, so the autovectorizer can lower it across
/// lanes and a lane evaluation is bit-identical to a scalar one.
///
/// Accuracy: ~1e-15 absolute in the interior, degrading to ~1e-8 at the
/// double-root endpoints `r = ±1` — matching the trigonometric method,
/// which also loses digits exactly there.
#[inline(always)]
pub fn chebyshev_middle_root(r: f64) -> f64 {
    let a = r.abs();
    // Solve 3v − 4v³ = a for v ∈ [0, 1/2] (v = sin(asin(a)/3)).
    //
    // Seed: h(v) = 3v − 4v³ − a is increasing and concave on [0, 1/2],
    // so a Newton step from either side cannot cross to another root;
    // `a/3` starts below the root, the endpoint expansion
    // v ≈ 1/2 − √(ε/(6 − 4√(ε/6))) starts (barely) above it, and the
    // larger of the two is always the closer.
    let eps = 1.0 - a;
    let d0 = (eps / 6.0).sqrt();
    let d1 = (eps / (6.0 - 4.0 * d0)).sqrt();
    let mut v = (a / 3.0).max(0.5 - d1);
    // Fixed-count guarded Newton: quadratic from a ≲3e-2 seed error in
    // the interior; near the endpoint the slope guard keeps the
    // degenerate h' ≈ 0 step finite and the clamp keeps v in range.
    for _ in 0..5 {
        let h = 3.0 * v - 4.0 * v * v * v - a;
        let hp = 3.0 - 12.0 * v * v;
        v = (v - h / hp.max(1e-12)).clamp(0.0, 0.5);
    }
    if r >= 0.0 {
        -v
    } else {
        v
    }
}

/// Middle eigenvalue of a symmetric 3×3 matrix, branch-free.
///
/// Same invariant reduction as [`symmetric_eigenvalues`] (`q = tr/3`,
/// `p = ‖A − qI‖/√6`, `r = det((A − qI)/p)/2`), but only the middle
/// root is extracted, via [`chebyshev_middle_root`] instead of
/// `acos`/`cos`. Degenerate cases (diagonal input, `p ≈ 0`) are folded
/// in as value selects so the function stays a single straight-line
/// operation sequence — the shape the λ₂ SoA row kernel relies on for
/// lane execution, and scalar callers get bit-identical values.
#[inline(always)]
pub fn symmetric_middle_eigenvalue(a: &Mat3) -> f64 {
    let m = &a.m;
    let p1 = m[0][1] * m[0][1] + m[0][2] * m[0][2] + m[1][2] * m[1][2];
    let q = a.trace() / 3.0;
    let d0 = m[0][0] - q;
    let d1 = m[1][1] - q;
    let d2 = m[2][2] - q;
    let p2 = d0 * d0 + d1 * d1 + d2 * d2 + 2.0 * p1;
    let p = (p2 / 6.0).sqrt();
    // det(B)/2 for B = (A − qI)/p. p may be zero here; the division
    // then yields non-finite lanes that the final selects discard.
    let inv_p = 1.0 / p;
    let b00 = d0 * inv_p;
    let b11 = d1 * inv_p;
    let b22 = d2 * inv_p;
    let b01 = m[0][1] * inv_p;
    let b02 = m[0][2] * inv_p;
    let b12 = m[1][2] * inv_p;
    let det_b = b00 * (b11 * b22 - b12 * b12) - b01 * (b01 * b22 - b12 * b02)
        + b02 * (b01 * b12 - b11 * b02);
    let r = (det_b / 2.0).clamp(-1.0, 1.0);
    let mid = q + 2.0 * p * chebyshev_middle_root(r);
    // Middle of the diagonal, exact — the p1 == 0 early path of
    // symmetric_eigenvalues, expressed as selects.
    let (e0, e1, e2) = (m[0][0], m[1][1], m[2][2]);
    let diag_mid = e0.min(e1).max(e0.max(e1).min(e2));
    if p1 == 0.0 {
        diag_mid
    } else if p < 1e-300 {
        q
    } else {
        mid
    }
}

/// The λ₂ value of a velocity-gradient tensor `J = ∇u`: the middle
/// eigenvalue of `S² + Ω²` with `S = (J + Jᵀ)/2`, `Ω = (J − Jᵀ)/2`
/// (Jeong & Hussain). Vortex regions are where λ₂ < 0.
pub fn lambda2_of_gradient(j: &Mat3) -> f64 {
    let s = j.symmetric_part();
    let o = j.antisymmetric_part();
    let m = s.mul_mat(&s).add_mat(&o.mul_mat(&o));
    symmetric_middle_eigenvalue(&m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::math::Vec3;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Mat3::from_rows(
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        );
        assert_eq!(symmetric_eigenvalues(&a), [3.0, 2.0, -1.0]);
    }

    #[test]
    fn known_symmetric_matrix() {
        // A = [[2,1,0],[1,2,0],[0,0,3]] has eigenvalues 3, 3, 1.
        let a = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.0),
            Vec3::new(1.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
        );
        let e = symmetric_eigenvalues(&a);
        // The double root sits at the acos boundary (r = ±1), where the
        // trigonometric method loses a few digits — 1e-7 relative is the
        // realistic accuracy there.
        assert!(close(e[0], 3.0, 1e-7));
        assert!(close(e[1], 3.0, 1e-7));
        assert!(close(e[2], 1.0, 1e-7));
    }

    #[test]
    fn invariants_match_trace_and_det() {
        let a = Mat3::from_rows(
            Vec3::new(4.0, -2.0, 0.5),
            Vec3::new(-2.0, 1.0, 3.0),
            Vec3::new(0.5, 3.0, -2.0),
        );
        let e = symmetric_eigenvalues(&a);
        assert!(close(e[0] + e[1] + e[2], a.trace(), 1e-10));
        assert!(close(e[0] * e[1] * e[2], a.det(), 1e-9));
        assert!(e[0] >= e[1] && e[1] >= e[2]);
    }

    #[test]
    fn multiple_of_identity() {
        let mut a = Mat3::IDENTITY;
        for i in 0..3 {
            a.m[i][i] = 2.5;
        }
        assert_eq!(symmetric_eigenvalues(&a), [2.5, 2.5, 2.5]);
    }

    #[test]
    fn pure_rotation_gradient_has_negative_lambda2() {
        // Solid-body rotation about z: u = (-ωy, ωx, 0).
        // J = [[0, -ω, 0], [ω, 0, 0], [0,0,0]]; S = 0, Ω = J.
        // Ω² has eigenvalues {-ω², -ω², 0} → λ₂ = -ω² < 0: a vortex.
        let w = 2.0;
        let j = Mat3::from_rows(
            Vec3::new(0.0, -w, 0.0),
            Vec3::new(w, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
        );
        let l2 = lambda2_of_gradient(&j);
        assert!(close(l2, -w * w, 1e-12), "λ₂ = {l2}");
    }

    #[test]
    fn chebyshev_root_matches_trig_across_range() {
        // Sweep r densely, including the double-root endpoints where
        // both methods degrade; the arithmetic solver must track the
        // trigonometric reference tightly in the interior and to ~1e-8
        // at the ends.
        for step in 0..=2000 {
            let r = -1.0 + step as f64 / 1000.0;
            let reference = (r.acos() / 3.0 + 4.0 * std::f64::consts::FRAC_PI_3).cos();
            let got = chebyshev_middle_root(r);
            let tol = if (1.0 - r.abs()) < 1e-3 { 1e-7 } else { 1e-12 };
            assert!(
                (got - reference).abs() < tol,
                "r = {r}: {got} vs {reference}"
            );
            assert!((-0.5..=0.5).contains(&got));
        }
        assert_eq!(chebyshev_middle_root(1.0), -0.5);
        assert_eq!(chebyshev_middle_root(-1.0), 0.5);
    }

    #[test]
    fn middle_eigenvalue_matches_full_solve() {
        let cases = [
            Mat3::from_rows(
                Vec3::new(4.0, -2.0, 0.5),
                Vec3::new(-2.0, 1.0, 3.0),
                Vec3::new(0.5, 3.0, -2.0),
            ),
            Mat3::from_rows(
                Vec3::new(2.0, 1.0, 0.0),
                Vec3::new(1.0, 2.0, 0.0),
                Vec3::new(0.0, 0.0, 3.0),
            ),
            Mat3::from_rows(
                Vec3::new(1e-8, 2e-9, 0.0),
                Vec3::new(2e-9, -3e-8, 1e-9),
                Vec3::new(0.0, 1e-9, 5e-8),
            ),
        ];
        for a in &cases {
            let full = symmetric_eigenvalues(a)[1];
            let mid = symmetric_middle_eigenvalue(a);
            assert!(
                close(mid, full, 1e-7),
                "middle {mid} vs full solve {full}"
            );
        }
        // Diagonal and scalar matrices take the exact select paths.
        let diag = Mat3::from_rows(
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        );
        assert_eq!(symmetric_middle_eigenvalue(&diag), 2.0);
        let mut ident = Mat3::IDENTITY;
        for i in 0..3 {
            ident.m[i][i] = 2.5;
        }
        assert_eq!(symmetric_middle_eigenvalue(&ident), 2.5);
        assert_eq!(symmetric_middle_eigenvalue(&Mat3::ZERO), 0.0);
    }

    #[test]
    fn pure_shear_has_nonnegative_lambda2() {
        // Plane strain: u = (ax, -ay, 0) — no rotation, no vortex.
        let a = 1.5;
        let j = Mat3::from_rows(
            Vec3::new(a, 0.0, 0.0),
            Vec3::new(0.0, -a, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
        );
        let l2 = lambda2_of_gradient(&j);
        assert!(l2 >= -1e-12, "λ₂ = {l2} should be non-negative");
    }
}
