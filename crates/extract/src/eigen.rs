//! Eigenvalues of symmetric 3×3 matrices, needed by the λ₂ vortex
//! criterion (eigenvalues of `S² + Ω²`, which is symmetric).
//!
//! Uses the analytic (trigonometric) method: exact for the 3×3 symmetric
//! case, allocation-free, and orders of magnitude faster than iterative
//! schemes — this sits in the innermost loop of vortex extraction.

use vira_grid::math::Mat3;

/// Eigenvalues of a symmetric 3×3 matrix, sorted **descending**
/// (`λ1 ≥ λ2 ≥ λ3`). Only the lower/upper triangle symmetry is assumed;
/// the strictly-antisymmetric part of the input is ignored.
pub fn symmetric_eigenvalues(a: &Mat3) -> [f64; 3] {
    let m = &a.m;
    // Off-diagonal magnitude.
    let p1 = m[0][1] * m[0][1] + m[0][2] * m[0][2] + m[1][2] * m[1][2];
    if p1 == 0.0 {
        // Already diagonal.
        let mut e = [m[0][0], m[1][1], m[2][2]];
        e.sort_by(|x, y| y.partial_cmp(x).expect("diagonal entries must not be NaN"));
        return e;
    }
    let q = a.trace() / 3.0;
    let d0 = m[0][0] - q;
    let d1 = m[1][1] - q;
    let d2 = m[2][2] - q;
    let p2 = d0 * d0 + d1 * d1 + d2 * d2 + 2.0 * p1;
    let p = (p2 / 6.0).sqrt();
    if p < 1e-300 {
        return [q, q, q];
    }
    // B = (A - qI) / p
    let inv_p = 1.0 / p;
    let b = Mat3 {
        m: [
            [d0 * inv_p, m[0][1] * inv_p, m[0][2] * inv_p],
            [m[1][0] * inv_p, d1 * inv_p, m[1][2] * inv_p],
            [m[2][0] * inv_p, m[2][1] * inv_p, d2 * inv_p],
        ],
    };
    let r = (b.det() / 2.0).clamp(-1.0, 1.0);
    let phi = r.acos() / 3.0;
    let e1 = q + 2.0 * p * phi.cos();
    let e3 = q + 2.0 * p * (phi + 2.0 * std::f64::consts::FRAC_PI_3 * 2.0).cos();
    let e2 = 3.0 * q - e1 - e3;
    // By construction e1 >= e2 >= e3 for exact arithmetic; enforce under
    // rounding.
    let mut e = [e1, e2, e3];
    e.sort_by(|x, y| y.partial_cmp(x).expect("eigenvalues must not be NaN"));
    e
}

/// The λ₂ value of a velocity-gradient tensor `J = ∇u`: the middle
/// eigenvalue of `S² + Ω²` with `S = (J + Jᵀ)/2`, `Ω = (J − Jᵀ)/2`
/// (Jeong & Hussain). Vortex regions are where λ₂ < 0.
pub fn lambda2_of_gradient(j: &Mat3) -> f64 {
    let s = j.symmetric_part();
    let o = j.antisymmetric_part();
    let m = s.mul_mat(&s).add_mat(&o.mul_mat(&o));
    symmetric_eigenvalues(&m)[1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::math::Vec3;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Mat3::from_rows(
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        );
        assert_eq!(symmetric_eigenvalues(&a), [3.0, 2.0, -1.0]);
    }

    #[test]
    fn known_symmetric_matrix() {
        // A = [[2,1,0],[1,2,0],[0,0,3]] has eigenvalues 3, 3, 1.
        let a = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.0),
            Vec3::new(1.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
        );
        let e = symmetric_eigenvalues(&a);
        // The double root sits at the acos boundary (r = ±1), where the
        // trigonometric method loses a few digits — 1e-7 relative is the
        // realistic accuracy there.
        assert!(close(e[0], 3.0, 1e-7));
        assert!(close(e[1], 3.0, 1e-7));
        assert!(close(e[2], 1.0, 1e-7));
    }

    #[test]
    fn invariants_match_trace_and_det() {
        let a = Mat3::from_rows(
            Vec3::new(4.0, -2.0, 0.5),
            Vec3::new(-2.0, 1.0, 3.0),
            Vec3::new(0.5, 3.0, -2.0),
        );
        let e = symmetric_eigenvalues(&a);
        assert!(close(e[0] + e[1] + e[2], a.trace(), 1e-10));
        assert!(close(e[0] * e[1] * e[2], a.det(), 1e-9));
        assert!(e[0] >= e[1] && e[1] >= e[2]);
    }

    #[test]
    fn multiple_of_identity() {
        let mut a = Mat3::IDENTITY;
        for i in 0..3 {
            a.m[i][i] = 2.5;
        }
        assert_eq!(symmetric_eigenvalues(&a), [2.5, 2.5, 2.5]);
    }

    #[test]
    fn pure_rotation_gradient_has_negative_lambda2() {
        // Solid-body rotation about z: u = (-ωy, ωx, 0).
        // J = [[0, -ω, 0], [ω, 0, 0], [0,0,0]]; S = 0, Ω = J.
        // Ω² has eigenvalues {-ω², -ω², 0} → λ₂ = -ω² < 0: a vortex.
        let w = 2.0;
        let j = Mat3::from_rows(
            Vec3::new(0.0, -w, 0.0),
            Vec3::new(w, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
        );
        let l2 = lambda2_of_gradient(&j);
        assert!(close(l2, -w * w, 1e-12), "λ₂ = {l2}");
    }

    #[test]
    fn pure_shear_has_nonnegative_lambda2() {
        // Plane strain: u = (ax, -ay, 0) — no rotation, no vortex.
        let a = 1.5;
        let j = Mat3::from_rows(
            Vec3::new(a, 0.0, 0.0),
            Vec3::new(0.0, -a, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
        );
        let l2 = lambda2_of_gradient(&j);
        assert!(l2 >= -1e-12, "λ₂ = {l2} should be non-negative");
    }
}
