//! The visualization-client stand-in.
//!
//! In production this would be ViSTA FlowLib: a VR application that
//! receives streamed geometry, assembles it just in time for the next
//! rendering loop, and displays it. The stand-in performs everything but
//! the rendering — packet assembly, validation, and precise timing of
//! *when* geometry became available, which is the latency measurement of
//! the paper's Figures 8 and 12.

use crate::protocol::{
    decode_event, decode_polylines, encode_request, ClientRequest, CommandParams, EventHeader,
    JobId, JobReport, PayloadKind, ProtocolError,
};
use bytes::Bytes;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use vira_comm::link::ClientSide;
use vira_comm::transport::CommError;
use vira_extract::mesh::{Polyline, TriangleSoup};
use vira_obs as obs;

// Streaming metrics (client side of the paper's Fig. 8/12 latency path).
static PACKETS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static STREAM_BYTES: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static STREAM_ITEMS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_COLLECTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static FIRST_RESULT_NS: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
static DUP_DROPPED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static BUSY_REJECTIONS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static TTFG_COHORTS: OnceLock<Vec<Arc<obs::Histogram>>> = OnceLock::new();

/// Session-cohort fan-out for the per-cohort TTFG histograms. Sessions
/// hash onto a fixed small set of cohorts so the load plane gets
/// per-session-class tail latency without a per-session metric family
/// (ten thousand sessions would blow up the registry and the OBSD1
/// deltas). Mirrors the scheduler's `sched_job_latency_cohort*_ns`.
pub const SESSION_COHORTS: u64 = 4;

/// Records one submit-to-first-geometry latency: the cluster-wide
/// histogram plus the session's cohort histogram.
fn record_first_result(session: u64, elapsed: Duration) {
    obs::histogram_cached(&FIRST_RESULT_NS, "vista_first_result_ns").record_duration(elapsed);
    let cohorts = TTFG_COHORTS.get_or_init(|| {
        (0..SESSION_COHORTS)
            .map(|k| obs::histogram(&format!("vista_ttfg_cohort{k}_ns")))
            .collect()
    });
    cohorts[(session % SESSION_COHORTS) as usize].record_duration(elapsed);
}

/// A submission to the back-end.
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    pub command: String,
    pub dataset: String,
    pub params: CommandParams,
    pub workers: usize,
}

/// Arrival record of one streamed packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    pub seq: u32,
    pub from_worker: usize,
    /// Wall time since submission.
    pub elapsed: Duration,
    pub n_items: u32,
    /// Cumulative items (triangles/polylines) after this packet.
    pub cumulative_items: u64,
}

/// One progress report from a worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressRecord {
    pub from_worker: usize,
    /// Wall time since submission.
    pub elapsed: Duration,
    pub fraction: f32,
}

/// The assembled outcome of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub job: JobId,
    pub triangles: TriangleSoup,
    pub polylines: Vec<Polyline>,
    /// Streamed-packet arrival series (empty for non-streamed commands).
    pub packets: Vec<PacketRecord>,
    /// Per-worker progress reports in arrival order.
    pub progress: Vec<ProgressRecord>,
    /// Wall time from submission until the *first* geometry arrived —
    /// the latency criterion. For non-streamed commands this equals
    /// `total_wall`.
    pub first_result_wall: Option<Duration>,
    /// Wall time from submission to the final event.
    pub total_wall: Duration,
    pub report: JobReport,
    /// True when the job terminated with a `Cancelled` event instead of
    /// a `Final`; geometry assembled from partials that arrived before
    /// the cancel is kept.
    pub cancelled: bool,
}

/// Why the back-end rejected a submission before queueing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission-control backpressure: the global queue or the session's
    /// quota is full *right now*. Resubmitting after `retry_after_ms`
    /// (the scheduler's hint, when present) is expected to succeed.
    Busy {
        message: String,
        retry_after_ms: Option<u64>,
        /// Scheduler queue depth at rejection time, for client-side
        /// backoff scaling.
        queue_depth: Option<u64>,
    },
    /// Permanent refusal (unknown command, unregistered dataset,
    /// shutdown): resubmitting the same job cannot succeed.
    Refused(String),
}

impl RejectReason {
    /// Classifies a wire rejection. Frames carrying either busy field
    /// are admission sheds; bare-string frames (validation refusals, and
    /// everything from schedulers predating admission control) are
    /// permanent.
    pub fn from_wire(
        reason: String,
        retry_after_ms: Option<u64>,
        queue_depth: Option<u64>,
    ) -> RejectReason {
        if retry_after_ms.is_some() || queue_depth.is_some() {
            RejectReason::Busy {
                message: reason,
                retry_after_ms,
                queue_depth,
            }
        } else {
            RejectReason::Refused(reason)
        }
    }

    /// The human-readable reason string from the wire.
    pub fn message(&self) -> &str {
        match self {
            RejectReason::Busy { message, .. } => message,
            RejectReason::Refused(message) => message,
        }
    }

    /// The scheduler's resubmit hint, on busy rejections that carry one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            RejectReason::Busy { retry_after_ms, .. } => *retry_after_ms,
            RejectReason::Refused(_) => None,
        }
    }

    /// True for transient admission-control sheds (worth resubmitting).
    pub fn is_busy(&self) -> bool {
        matches!(self, RejectReason::Busy { .. })
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Busy {
                message,
                retry_after_ms,
                ..
            } => match retry_after_ms {
                Some(ms) => write!(f, "{message} (busy, retry after {ms} ms)"),
                None => write!(f, "{message} (busy)"),
            },
            RejectReason::Refused(message) => write!(f, "{message}"),
        }
    }
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    Comm(CommError),
    Protocol(ProtocolError),
    Rejected(RejectReason),
    JobFailed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Comm(e) => write!(f, "link error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected(r) => write!(f, "job rejected: {r}"),
            ClientError::JobFailed(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<CommError> for ClientError {
    fn from(e: CommError) -> Self {
        ClientError::Comm(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The ViSTA FlowLib stand-in.
pub struct VistaClient {
    link: ClientSide,
    next_job: JobId,
    /// Session id stamped on submissions; the scheduler round-robins
    /// dispatch credit across sessions.
    session: u64,
    /// Events of jobs other than the one currently being collected
    /// (concurrent jobs finish in any order).
    buffered: std::collections::VecDeque<(EventHeader, Bytes)>,
    /// Causal trace context and submit instant per in-flight job; the
    /// context is stamped on the Submit frame so every back-end span
    /// of the job links to the same trace. Entries are removed when
    /// the job is collected.
    traces: std::collections::HashMap<JobId, (obs::TraceCtx, Instant)>,
}

impl VistaClient {
    pub fn new(link: ClientSide) -> Self {
        VistaClient {
            link,
            next_job: 1,
            session: 0,
            buffered: std::collections::VecDeque::new(),
            traces: std::collections::HashMap::new(),
        }
    }

    /// Sets the session id stamped on subsequent submissions. Multiple
    /// VR sessions sharing one back-end pick distinct ids so the
    /// scheduler's fair-share credit treats them separately.
    pub fn set_session(&mut self, session: u64) {
        self.session = session;
    }

    pub fn session(&self) -> u64 {
        self.session
    }

    /// The next event for `job`: buffered first, then fresh from the
    /// link (buffering events of other jobs).
    fn next_event_for(&mut self, job: JobId) -> Result<(EventHeader, Bytes), ClientError> {
        if let Some(pos) = self.buffered.iter().position(|(h, _)| h.job() == job) {
            return Ok(self.buffered.remove(pos).expect("position just found"));
        }
        loop {
            let frame = self.link.next_event()?;
            let (header, payload) = decode_event(frame)?;
            if header.job() == job {
                return Ok((header, payload));
            }
            self.buffered.push_back((header, payload));
        }
    }

    /// Submits a command and blocks until its final result, assembling
    /// all streamed partials on the way.
    pub fn run(&mut self, spec: &SubmitSpec) -> Result<JobOutcome, ClientError> {
        let job = self.submit(spec)?;
        self.collect(job)
    }

    /// Like [`run`](Self::run), but honours admission-control
    /// backpressure: a `Busy` rejection is resubmitted (as a fresh job)
    /// after sleeping the scheduler's `retry_after_ms` hint, up to
    /// `max_retries` resubmissions. Permanent refusals and every other
    /// error return immediately; exhausting the budget returns the last
    /// `Busy` rejection.
    pub fn run_with_retry(
        &mut self,
        spec: &SubmitSpec,
        max_retries: u32,
    ) -> Result<JobOutcome, ClientError> {
        let mut resubmits = 0;
        loop {
            match self.run(spec) {
                Err(ClientError::Rejected(r)) if r.is_busy() && resubmits < max_retries => {
                    resubmits += 1;
                    std::thread::sleep(Duration::from_millis(r.retry_after_ms().unwrap_or(1)));
                }
                other => return other,
            }
        }
    }

    /// Sends the submit request; returns the job id for later
    /// collection.
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<JobId, ClientError> {
        let job = self.next_job;
        self.next_job += 1;
        let ctx = obs::TraceCtx::mint();
        self.traces.insert(job, (ctx, Instant::now()));
        let req = ClientRequest::Submit {
            job,
            command: spec.command.clone(),
            dataset: spec.dataset.clone(),
            params: spec.params.clone(),
            workers: spec.workers,
            session: self.session,
            trace_id: ctx.trace_id,
            parent_span_id: ctx.parent_span_id,
        };
        self.link.request(encode_request(&req))?;
        Ok(job)
    }

    /// The causal trace context minted for an in-flight job (None once
    /// the job has been collected) — lets harnesses pair a job's
    /// outcome with its `flight-<trace_id>.jsonl` recording.
    pub fn trace_ctx(&self, job: JobId) -> Option<obs::TraceCtx> {
        self.traces.get(&job).map(|(ctx, _)| *ctx)
    }

    /// Requests cancellation of a running job.
    pub fn cancel(&mut self, job: JobId) -> Result<(), ClientError> {
        self.link
            .request(encode_request(&ClientRequest::Cancel { job }))?;
        Ok(())
    }

    /// Acknowledges streamed partials up to `up_to_seq` so the
    /// back-end can trim its resend buffer.
    pub fn ack(&mut self, job: JobId, up_to_seq: u32) -> Result<(), ClientError> {
        self.link
            .request(encode_request(&ClientRequest::Ack { job, up_to_seq }))?;
        Ok(())
    }

    /// Asks the back-end to resend every un-acked frame of `job`
    /// (after a reconnect that may have lost streamed partials); then
    /// collect the job again. Duplicate partials that did arrive the
    /// first time are dropped by sequence number in [`collect`].
    pub fn resume(&mut self, job: JobId) -> Result<(), ClientError> {
        self.link
            .request(encode_request(&ClientRequest::Resume { job }))?;
        Ok(())
    }

    /// Asks the back-end to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.link
            .request(encode_request(&ClientRequest::Shutdown))?;
        Ok(())
    }

    /// Blocks until `job` finishes, assembling partial packets. Events
    /// belonging to other jobs are not expected in the single-outstanding
    /// usage pattern and are skipped.
    pub fn collect(&mut self, job: JobId) -> Result<JobOutcome, ClientError> {
        self.collect_inner(job, None)
    }

    /// Like [`collect`](Self::collect), but sends a
    /// [`ClientRequest::Cancel`] once `after_packets` streamed partials
    /// have arrived, then keeps collecting until the terminal event —
    /// the interactive-steering pattern of aborting a long extraction
    /// mid-stream. The returned outcome has `cancelled == true` when
    /// the back-end honored the cancel before finishing.
    pub fn collect_cancelling_after(
        &mut self,
        job: JobId,
        after_packets: usize,
    ) -> Result<JobOutcome, ClientError> {
        self.collect_inner(job, Some(after_packets))
    }

    fn collect_inner(
        &mut self,
        job: JobId,
        cancel_after: Option<usize>,
    ) -> Result<JobOutcome, ClientError> {
        let t0 = Instant::now();
        // Install the job's trace context so the collect span (and any
        // events fired while assembling) land in the job's flight
        // recording; time-to-first-triangle is measured from submit.
        let (ctx, submitted_at) = self.traces.remove(&job).unwrap_or((obs::current_ctx(), t0));
        let _ctx_guard = obs::install_ctx(ctx);
        let mut span = obs::span("vista.collect", "vista").arg("job", job);
        let mut triangles = TriangleSoup::new();
        let mut polylines: Vec<Polyline> = Vec::new();
        let mut packets = Vec::new();
        let mut progress = Vec::new();
        let mut first: Option<Duration> = None;
        let mut cumulative: u64 = 0;
        // Resent frames after a lossy reconnect may duplicate packets
        // that did make it through the first time; geometry must not
        // be ingested twice.
        let mut seen: std::collections::HashSet<(usize, u32)> = std::collections::HashSet::new();
        // Threshold for the mid-stream cancel, disarmed once sent.
        let mut cancel_at = cancel_after;
        loop {
            let (header, payload) = self.next_event_for(job)?;
            match header {
                EventHeader::JobAccepted { .. } => {}
                EventHeader::JobRejected {
                    reason,
                    retry_after_ms,
                    queue_depth,
                    ..
                } => {
                    let reason = RejectReason::from_wire(reason, retry_after_ms, queue_depth);
                    if reason.is_busy() {
                        obs::counter_cached(&BUSY_REJECTIONS, "vista_busy_rejections_total").inc();
                    }
                    return Err(ClientError::Rejected(reason));
                }
                EventHeader::Partial {
                    seq,
                    kind,
                    n_items,
                    from_worker,
                    ..
                } => {
                    if !seen.insert((from_worker, seq)) {
                        obs::counter_cached(&DUP_DROPPED, "vista_dup_dropped_total").inc();
                        continue;
                    }
                    let elapsed = t0.elapsed();
                    obs::counter_cached(&PACKETS, "vista_packets_total").inc();
                    obs::counter_cached(&STREAM_BYTES, "vista_stream_bytes_total")
                        .add(payload.len() as u64);
                    obs::counter_cached(&STREAM_ITEMS, "vista_stream_items_total")
                        .add(n_items as u64);
                    Self::ingest(kind, payload, &mut triangles, &mut polylines)?;
                    cumulative += n_items as u64;
                    if n_items > 0 && first.is_none() {
                        first = Some(elapsed);
                        record_first_result(self.session, elapsed);
                        // Time-to-first-triangle span, measured from
                        // submit — the critical-path analyzer reads it
                        // as the job's ttft.
                        obs::complete_span_ctx(
                            "vista.first_result",
                            "vista",
                            submitted_at,
                            Instant::now(),
                            ctx,
                            &[("job", obs::ArgValue::U64(job))],
                        );
                    }
                    packets.push(PacketRecord {
                        seq,
                        from_worker,
                        elapsed,
                        n_items,
                        cumulative_items: cumulative,
                    });
                    if cancel_at.is_some_and(|n| packets.len() >= n) {
                        cancel_at = None;
                        self.link
                            .request(encode_request(&ClientRequest::Cancel { job }))?;
                    }
                }
                EventHeader::Final {
                    kind,
                    n_items,
                    report,
                    ..
                } => {
                    let elapsed = t0.elapsed();
                    obs::counter_cached(&STREAM_BYTES, "vista_stream_bytes_total")
                        .add(payload.len() as u64);
                    Self::ingest(kind, payload, &mut triangles, &mut polylines)?;
                    if n_items > 0 && first.is_none() {
                        first = Some(elapsed);
                        record_first_result(self.session, elapsed);
                        // Time-to-first-triangle span, measured from
                        // submit — the critical-path analyzer reads it
                        // as the job's ttft.
                        obs::complete_span_ctx(
                            "vista.first_result",
                            "vista",
                            submitted_at,
                            Instant::now(),
                            ctx,
                            &[("job", obs::ArgValue::U64(job))],
                        );
                    }
                    obs::counter_cached(&JOBS_COLLECTED, "vista_jobs_collected_total").inc();
                    span.set_arg("packets", packets.len());
                    span.set_arg("items", cumulative + n_items as u64);
                    return Ok(JobOutcome {
                        job,
                        triangles,
                        polylines,
                        packets,
                        progress,
                        first_result_wall: first,
                        total_wall: elapsed,
                        report,
                        cancelled: false,
                    });
                }
                EventHeader::Error { message, .. } => {
                    return Err(ClientError::JobFailed(message));
                }
                EventHeader::Cancelled { report, .. } => {
                    // Terminal: the back-end confirms no more events for
                    // this job. Partials assembled so far stay valid.
                    obs::counter_cached(&JOBS_COLLECTED, "vista_jobs_collected_total").inc();
                    span.set_arg("packets", packets.len());
                    span.set_arg("cancelled", 1u64);
                    return Ok(JobOutcome {
                        job,
                        triangles,
                        polylines,
                        packets,
                        progress,
                        first_result_wall: first,
                        total_wall: t0.elapsed(),
                        report,
                        cancelled: true,
                    });
                }
                EventHeader::Progress {
                    from_worker,
                    fraction,
                    ..
                } => {
                    progress.push(ProgressRecord {
                        from_worker,
                        elapsed: t0.elapsed(),
                        fraction,
                    });
                }
            }
        }
    }

    fn ingest(
        kind: PayloadKind,
        payload: Bytes,
        triangles: &mut TriangleSoup,
        polylines: &mut Vec<Polyline>,
    ) -> Result<(), ClientError> {
        match kind {
            PayloadKind::Triangles => {
                let soup = TriangleSoup::from_bytes(payload).ok_or(ClientError::Protocol(
                    ProtocolError::Malformed("bad triangle payload".into()),
                ))?;
                triangles.extend_from(&soup);
            }
            PayloadKind::Polylines => {
                polylines.extend(decode_polylines(payload)?);
            }
            PayloadKind::None => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_request, encode_event, triangle_packet};
    use vira_comm::link::client_server_link;
    use vira_grid::math::Vec3;

    fn one_tri() -> TriangleSoup {
        let mut s = TriangleSoup::new();
        s.push_tri(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        s
    }

    /// A minimal fake back-end: accepts one job, streams two packets,
    /// finishes.
    fn fake_backend(streamed: usize) -> (VistaClient, std::thread::JoinHandle<()>) {
        let (client_side, server_side) = client_server_link();
        let handle = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            server_side
                .emit(encode_event(
                    &EventHeader::JobAccepted { job, workers: 1 },
                    Bytes::new(),
                ))
                .unwrap();
            for seq in 0..streamed as u32 {
                server_side
                    .emit(triangle_packet(job, seq, 0, &one_tri()))
                    .unwrap();
            }
            server_side
                .emit(encode_event(
                    &EventHeader::Final {
                        job,
                        kind: PayloadKind::None,
                        n_items: 0,
                        report: JobReport {
                            triangles: streamed as u64,
                            total_runtime_s: 1.0,
                            ..JobReport::default()
                        },
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        (VistaClient::new(client_side), handle)
    }

    fn spec() -> SubmitSpec {
        SubmitSpec {
            command: "ViewerIso".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 0.5),
            workers: 2,
        }
    }

    #[test]
    fn streamed_job_assembles_packets() {
        let (mut client, h) = fake_backend(3);
        let out = client.run(&spec()).unwrap();
        h.join().unwrap();
        assert_eq!(out.triangles.n_triangles(), 3);
        assert_eq!(out.packets.len(), 3);
        assert!(out.first_result_wall.is_some());
        assert!(out.first_result_wall.unwrap() <= out.total_wall);
        assert_eq!(out.packets.last().unwrap().cumulative_items, 3);
        assert_eq!(out.report.triangles, 3);
    }

    #[test]
    fn unstreamed_job_has_no_packets() {
        let (mut client, h) = fake_backend(0);
        let out = client.run(&spec()).unwrap();
        h.join().unwrap();
        assert!(out.packets.is_empty());
        assert!(out.first_result_wall.is_none());
        assert!(out.triangles.is_empty());
    }

    #[test]
    fn rejection_is_an_error() {
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            server_side
                .emit(encode_event(
                    &EventHeader::JobRejected {
                        job,
                        reason: "unknown command".into(),
                        retry_after_ms: None,
                        queue_depth: None,
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        match client.run(&spec()) {
            Err(ClientError::Rejected(r)) => {
                // A bare-reason frame (validation refusal, or any frame
                // from a scheduler predating admission control) is a
                // permanent refusal, never a busy shed.
                assert_eq!(r, RejectReason::Refused("unknown command".into()));
                assert!(!r.is_busy());
                assert_eq!(r.message(), "unknown command");
                assert_eq!(r.retry_after_ms(), None);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn busy_rejection_is_structured() {
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            server_side
                .emit(encode_event(
                    &EventHeader::JobRejected {
                        job,
                        reason: "busy: queue full".into(),
                        retry_after_ms: Some(40),
                        queue_depth: Some(16),
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        match client.run(&spec()) {
            Err(ClientError::Rejected(r)) => {
                assert!(r.is_busy());
                assert_eq!(r.retry_after_ms(), Some(40));
                assert_eq!(r.message(), "busy: queue full");
                assert!(r.to_string().contains("retry after 40 ms"));
            }
            other => panic!("expected busy rejection, got {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn run_with_retry_resubmits_after_a_busy_shed() {
        // First submit is shed with a 1 ms hint; the resubmission (a
        // fresh job id) is accepted and finishes.
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job: first, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            server_side
                .emit(encode_event(
                    &EventHeader::JobRejected {
                        job: first,
                        reason: "busy: queue full".into(),
                        retry_after_ms: Some(1),
                        queue_depth: Some(8),
                    },
                    Bytes::new(),
                ))
                .unwrap();
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job: second, .. } = decode_request(frame).unwrap() else {
                panic!("expected resubmit");
            };
            assert_eq!(second, first + 1, "resubmission is a fresh job");
            server_side
                .emit(encode_event(
                    &EventHeader::Final {
                        job: second,
                        kind: PayloadKind::None,
                        n_items: 0,
                        report: JobReport::default(),
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        let out = client.run_with_retry(&spec(), 3).unwrap();
        h.join().unwrap();
        assert_eq!(out.job, 2);

        // A permanent refusal is never retried, even with budget left.
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            server_side
                .emit(encode_event(
                    &EventHeader::JobRejected {
                        job,
                        reason: "unknown command".into(),
                        retry_after_ms: None,
                        queue_depth: None,
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        match client.run_with_retry(&spec(), 3) {
            Err(ClientError::Rejected(r)) => assert!(!r.is_busy()),
            other => panic!("expected refusal, got {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn backend_error_event_fails_the_job() {
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            server_side
                .emit(encode_event(
                    &EventHeader::Error {
                        job,
                        message: "dataset missing".into(),
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        assert!(matches!(
            client.run(&spec()),
            Err(ClientError::JobFailed(_))
        ));
        h.join().unwrap();
    }

    #[test]
    fn progress_events_are_recorded() {
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            for (w, f) in [(1usize, 0.5f32), (2, 0.25), (1, 1.0)] {
                server_side
                    .emit(encode_event(
                        &EventHeader::Progress {
                            job,
                            from_worker: w,
                            fraction: f,
                        },
                        Bytes::new(),
                    ))
                    .unwrap();
            }
            server_side
                .emit(encode_event(
                    &EventHeader::Final {
                        job,
                        kind: PayloadKind::None,
                        n_items: 0,
                        report: JobReport::default(),
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        let out = client.run(&spec()).unwrap();
        h.join().unwrap();
        assert_eq!(out.progress.len(), 3);
        assert_eq!(out.progress[0].from_worker, 1);
        assert_eq!(out.progress[0].fraction, 0.5);
        assert_eq!(out.progress[2].fraction, 1.0);
    }

    #[test]
    fn duplicate_partials_are_dropped() {
        // A resend after a lossy reconnect delivers some packets
        // twice; the client must ingest each (worker, seq) once.
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            for seq in [0u32, 1, 0, 1, 2, 2] {
                server_side
                    .emit(triangle_packet(job, seq, 0, &one_tri()))
                    .unwrap();
            }
            server_side
                .emit(encode_event(
                    &EventHeader::Final {
                        job,
                        kind: PayloadKind::None,
                        n_items: 0,
                        report: JobReport::default(),
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        let out = client.run(&spec()).unwrap();
        h.join().unwrap();
        assert_eq!(out.triangles.n_triangles(), 3, "each seq ingested once");
        assert_eq!(out.packets.len(), 3);
        let seqs: Vec<u32> = out.packets.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn cancelled_final_keeps_streamed_geometry() {
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            for seq in 0..2u32 {
                server_side
                    .emit(triangle_packet(job, seq, 0, &one_tri()))
                    .unwrap();
            }
            // The client cancels after the second packet; confirm the
            // request arrives, then terminate with Cancelled.
            let frame = server_side.next_request().unwrap();
            match decode_request(frame).unwrap() {
                ClientRequest::Cancel { job: j } => assert_eq!(j, job),
                other => panic!("expected cancel, got {other:?}"),
            }
            server_side
                .emit(encode_event(
                    &EventHeader::Cancelled {
                        job,
                        report: JobReport {
                            triangles: 2,
                            ..JobReport::default()
                        },
                    },
                    Bytes::new(),
                ))
                .unwrap();
        });
        let mut client = VistaClient::new(client_side);
        let job = client.submit(&spec()).unwrap();
        let out = client.collect_cancelling_after(job, 2).unwrap();
        h.join().unwrap();
        assert!(out.cancelled);
        assert_eq!(out.triangles.n_triangles(), 2, "pre-cancel partials kept");
        assert_eq!(out.packets.len(), 2);
        assert_eq!(out.report.triangles, 2);
    }

    #[test]
    fn job_ids_increment() {
        let (client_side, _server_side) = client_server_link();
        let mut client = VistaClient::new(client_side);
        let a = client.submit(&spec()).unwrap();
        let b = client.submit(&spec()).unwrap();
        assert_eq!(b, a + 1);
    }

    #[test]
    fn session_id_is_stamped_on_submissions() {
        let (client_side, server_side) = client_server_link();
        let mut client = VistaClient::new(client_side);
        assert_eq!(client.session(), 0, "default session");
        client.set_session(42);
        client.submit(&spec()).unwrap();
        let frame = server_side.next_request().unwrap();
        match decode_request(frame).unwrap() {
            ClientRequest::Submit { session, .. } => assert_eq!(session, 42),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn trace_context_is_minted_and_stamped_on_submissions() {
        let (client_side, server_side) = client_server_link();
        let mut client = VistaClient::new(client_side);
        let job = client.submit(&spec()).unwrap();
        let ctx = client.trace_ctx(job).unwrap();
        assert!(ctx.trace_id != 0 && ctx.parent_span_id != 0);
        let frame = server_side.next_request().unwrap();
        match decode_request(frame).unwrap() {
            ClientRequest::Submit {
                trace_id,
                parent_span_id,
                ..
            } => {
                assert_eq!(trace_id, ctx.trace_id);
                assert_eq!(parent_span_id, ctx.parent_span_id);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        // Every submission gets a fresh trace.
        let job2 = client.submit(&spec()).unwrap();
        assert_ne!(client.trace_ctx(job2).unwrap().trace_id, ctx.trace_id);
    }

    #[test]
    fn dropped_backend_is_a_comm_error() {
        let (client_side, server_side) = client_server_link();
        drop(server_side);
        let mut client = VistaClient::new(client_side);
        assert!(matches!(client.run(&spec()), Err(ClientError::Comm(_))));
    }
}
