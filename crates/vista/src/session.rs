//! Session recording: a serializable log of everything a visualization
//! session asked the back-end to do and what came back — the artifact an
//! exploration session leaves behind for later analysis (which commands
//! were tried, how long each took, how the caches behaved over time).
//!
//! Also home of [`StreamSession`], the back-end's per-job resend buffer
//! that lets a client survive mid-stream frame loss: every emitted
//! frame is kept until the client acknowledges it, and a
//! [`Resume`](crate::protocol::ClientRequest::Resume) replays whatever
//! is still un-acked, byte-identical.

use crate::client::JobOutcome;
use crate::protocol::{CommandParams, JobId, JobReport};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use vira_obs as obs;

static RESENDS: OnceLock<Arc<obs::Counter>> = OnceLock::new();

/// Per-job resend buffer on the scheduler side of the client link.
///
/// The link itself is reliable in-process, but a real deployment (and
/// the fault-injected test harness) can lose frames between back-end
/// and viewer. The session keeps every streamed frame until it is
/// acknowledged; on a resume request the un-acked tail — plus the
/// final event, if the job already finished — is replayed verbatim.
#[derive(Debug, Default)]
pub struct StreamSession {
    job: JobId,
    /// Un-acked partial frames by sequence number (fully encoded, so
    /// a resend is byte-identical to the original transmission).
    unacked: BTreeMap<u32, Bytes>,
    /// The final event frame, kept until the session is dropped (a
    /// resume after job completion must still deliver it).
    final_frame: Option<Bytes>,
    next_seq: u32,
}

impl StreamSession {
    pub fn new(job: JobId) -> StreamSession {
        StreamSession {
            job,
            ..StreamSession::default()
        }
    }

    pub fn job(&self) -> JobId {
        self.job
    }

    /// Allocates the next partial sequence number.
    pub fn next_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Records a streamed partial frame for possible resend.
    pub fn record_partial(&mut self, seq: u32, frame: Bytes) {
        self.unacked.insert(seq, frame);
    }

    /// Records the final event frame for possible resend.
    pub fn record_final(&mut self, frame: Bytes) {
        self.final_frame = Some(frame);
    }

    /// Drops every partial with `seq <= up_to_seq` from the buffer.
    pub fn ack(&mut self, up_to_seq: u32) {
        self.unacked.retain(|&seq, _| seq > up_to_seq);
    }

    /// Un-acked partial frames currently buffered.
    pub fn unacked(&self) -> usize {
        self.unacked.len()
    }

    /// Whether the final event has been recorded.
    pub fn finished(&self) -> bool {
        self.final_frame.is_some()
    }

    /// The frames to replay on a resume: un-acked partials in
    /// sequence order, then the final event if the job finished.
    /// Each returned frame counts as a resend.
    pub fn resend_frames(&self) -> Vec<Bytes> {
        let mut out: Vec<Bytes> = self.unacked.values().cloned().collect();
        if let Some(f) = &self.final_frame {
            out.push(f.clone());
        }
        obs::counter_cached(&RESENDS, "vista_resend_total").add(out.len() as u64);
        out
    }
}

/// One completed job, reduced to its measurable facts (geometry is
/// summarized, not stored).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    pub job: JobId,
    pub command: String,
    pub dataset: String,
    pub params: CommandParams,
    pub workers: usize,
    pub report: JobReport,
    /// Wall seconds from submission to the final event.
    pub wall_s: f64,
    /// Wall seconds until the first streamed geometry (None when nothing
    /// streamed).
    pub first_result_wall_s: Option<f64>,
    pub triangles: u64,
    pub polylines: u64,
    pub packets: u64,
}

impl SessionRecord {
    /// Builds a record from a submission and its outcome.
    pub fn from_outcome(
        command: &str,
        dataset: &str,
        params: &CommandParams,
        workers: usize,
        outcome: &JobOutcome,
    ) -> SessionRecord {
        SessionRecord {
            job: outcome.job,
            command: command.to_string(),
            dataset: dataset.to_string(),
            params: params.clone(),
            workers,
            report: outcome.report,
            wall_s: outcome.total_wall.as_secs_f64(),
            first_result_wall_s: outcome.first_result_wall.map(|d| d.as_secs_f64()),
            triangles: outcome.triangles.n_triangles() as u64,
            polylines: outcome.polylines.len() as u64,
            packets: outcome.packets.len() as u64,
        }
    }
}

/// An append-only session log with aggregate statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionLog {
    pub records: Vec<SessionRecord>,
}

/// Aggregates computed over a session log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    pub jobs: usize,
    pub total_modeled_s: f64,
    pub total_wall_s: f64,
    pub total_triangles: u64,
    pub total_polylines: u64,
    /// Cache hit rate over all demand requests of the session.
    pub cache_hit_rate: f64,
    /// Jobs per command name, sorted by name.
    pub by_command: Vec<(String, usize)>,
}

impl SessionLog {
    pub fn new() -> SessionLog {
        SessionLog::default()
    }

    pub fn push(&mut self, r: SessionRecord) {
        self.records.push(r);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Aggregate statistics over the whole session.
    pub fn summary(&self) -> SessionSummary {
        let mut by_command = std::collections::BTreeMap::<String, usize>::new();
        let mut hits = 0u64;
        let mut demands = 0u64;
        let mut s = SessionSummary {
            jobs: self.records.len(),
            total_modeled_s: 0.0,
            total_wall_s: 0.0,
            total_triangles: 0,
            total_polylines: 0,
            cache_hit_rate: 0.0,
            by_command: Vec::new(),
        };
        for r in &self.records {
            s.total_modeled_s += r.report.total_runtime_s;
            s.total_wall_s += r.wall_s;
            s.total_triangles += r.triangles;
            s.total_polylines += r.polylines;
            hits += r.report.cache_hits;
            demands += r.report.demand_requests;
            *by_command.entry(r.command.clone()).or_insert(0) += 1;
        }
        if demands > 0 {
            s.cache_hit_rate = hits as f64 / demands as f64;
        }
        s.by_command = by_command.into_iter().collect();
        s
    }

    /// Writes the log as pretty JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reads a log written by [`save`](Self::save).
    pub fn load(path: &Path) -> io::Result<SessionLog> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{SubmitSpec, VistaClient};
    use crate::protocol::{
        decode_request, encode_event, triangle_packet, ClientRequest, EventHeader, PayloadKind,
    };
    use vira_comm::link::client_server_link;
    use vira_extract::mesh::TriangleSoup;
    use vira_grid::math::Vec3;

    fn one_tri() -> TriangleSoup {
        let mut s = TriangleSoup::new();
        s.push_tri(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        s
    }

    #[test]
    fn stream_session_acks_trim_the_buffer() {
        let mut sess = StreamSession::new(7);
        for _ in 0..3 {
            let seq = sess.next_seq();
            sess.record_partial(seq, triangle_packet(7, seq, 0, &one_tri()));
        }
        assert_eq!(sess.unacked(), 3);
        sess.ack(1);
        assert_eq!(sess.unacked(), 1);
        assert!(!sess.finished());
        // Acks are idempotent and may arrive out of date.
        sess.ack(0);
        assert_eq!(sess.unacked(), 1);
        sess.ack(2);
        assert_eq!(sess.unacked(), 0);
    }

    #[test]
    fn resend_replays_unacked_tail_then_final() {
        let mut sess = StreamSession::new(3);
        let mut frames = Vec::new();
        for _ in 0..3 {
            let seq = sess.next_seq();
            let f = triangle_packet(3, seq, 0, &one_tri());
            sess.record_partial(seq, f.clone());
            frames.push(f);
        }
        let fin = encode_event(
            &EventHeader::Final {
                job: 3,
                kind: PayloadKind::None,
                n_items: 0,
                report: JobReport::default(),
            },
            Bytes::new(),
        );
        sess.record_final(fin.clone());
        assert!(sess.finished());
        sess.ack(0);
        let resend = sess.resend_frames();
        // seq 1, seq 2, then the final frame — byte-identical.
        assert_eq!(resend, vec![frames[1].clone(), frames[2].clone(), fin]);
    }

    #[test]
    fn lossy_stream_recovers_on_resume() {
        // The back-end streams three packets but only packets 0 and 2
        // reach the client, and the final event is lost too. A resume
        // replays the full un-acked buffer; the client's duplicate
        // filter keeps the geometry correct.
        let (client_side, server_side) = client_server_link();
        let h = std::thread::spawn(move || {
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Submit { job, .. } = decode_request(frame).unwrap() else {
                panic!("expected submit");
            };
            let mut sess = StreamSession::new(job);
            for i in 0..3u32 {
                let seq = sess.next_seq();
                let f = triangle_packet(job, seq, 0, &one_tri());
                sess.record_partial(seq, f.clone());
                if i != 1 {
                    server_side.emit(f).unwrap(); // packet 1 is "lost"
                }
            }
            sess.record_final(encode_event(
                &EventHeader::Final {
                    job,
                    kind: PayloadKind::None,
                    n_items: 0,
                    report: JobReport::default(),
                },
                Bytes::new(),
            )); // final frame "lost" too: recorded, never emitted
            let frame = server_side.next_request().unwrap();
            let ClientRequest::Resume { job: j } = decode_request(frame).unwrap() else {
                panic!("expected resume");
            };
            assert_eq!(j, job);
            for f in sess.resend_frames() {
                server_side.emit(f).unwrap();
            }
        });
        let mut client = VistaClient::new(client_side);
        let spec = SubmitSpec {
            command: "ViewerIso".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 0.5),
            workers: 1,
        };
        let job = client.submit(&spec).unwrap();
        client.resume(job).unwrap();
        let out = client.collect(job).unwrap();
        h.join().unwrap();
        assert_eq!(out.triangles.n_triangles(), 3, "no loss, no double-count");
        let mut seqs: Vec<u32> = out.packets.iter().map(|p| p.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    fn record(command: &str, modeled: f64, hits: u64, demands: u64) -> SessionRecord {
        SessionRecord {
            job: 1,
            command: command.into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 15.0),
            workers: 4,
            report: JobReport {
                total_runtime_s: modeled,
                cache_hits: hits,
                demand_requests: demands,
                triangles: 100,
                ..JobReport::default()
            },
            wall_s: modeled * 0.05,
            first_result_wall_s: None,
            triangles: 100,
            polylines: 0,
            packets: 0,
        }
    }

    #[test]
    fn summary_aggregates() {
        let mut log = SessionLog::new();
        log.push(record("IsoDataMan", 10.0, 0, 10));
        log.push(record("IsoDataMan", 5.0, 10, 10));
        log.push(record("VortexDataMan", 20.0, 10, 10));
        let s = log.summary();
        assert_eq!(s.jobs, 3);
        assert!((s.total_modeled_s - 35.0).abs() < 1e-12);
        assert_eq!(s.total_triangles, 300);
        assert!((s.cache_hit_rate - 20.0 / 30.0).abs() < 1e-12);
        assert_eq!(
            s.by_command,
            vec![("IsoDataMan".to_string(), 2), ("VortexDataMan".to_string(), 1)]
        );
    }

    #[test]
    fn empty_log_summary() {
        let s = SessionLog::new().summary();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut log = SessionLog::new();
        log.push(record("IsoDataMan", 1.0, 1, 2));
        let path = std::env::temp_dir().join(format!("vira_session_{}.json", std::process::id()));
        log.save(&path).unwrap();
        let back = SessionLog::load(&path).unwrap();
        assert_eq!(back, log);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_malformed() {
        let path = std::env::temp_dir().join(format!("vira_badsession_{}.json", std::process::id()));
        std::fs::write(&path, b"not json").unwrap();
        assert!(SessionLog::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
