//! Session recording: a serializable log of everything a visualization
//! session asked the back-end to do and what came back — the artifact an
//! exploration session leaves behind for later analysis (which commands
//! were tried, how long each took, how the caches behaved over time).

use crate::client::JobOutcome;
use crate::protocol::{CommandParams, JobId, JobReport};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One completed job, reduced to its measurable facts (geometry is
/// summarized, not stored).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    pub job: JobId,
    pub command: String,
    pub dataset: String,
    pub params: CommandParams,
    pub workers: usize,
    pub report: JobReport,
    /// Wall seconds from submission to the final event.
    pub wall_s: f64,
    /// Wall seconds until the first streamed geometry (None when nothing
    /// streamed).
    pub first_result_wall_s: Option<f64>,
    pub triangles: u64,
    pub polylines: u64,
    pub packets: u64,
}

impl SessionRecord {
    /// Builds a record from a submission and its outcome.
    pub fn from_outcome(
        command: &str,
        dataset: &str,
        params: &CommandParams,
        workers: usize,
        outcome: &JobOutcome,
    ) -> SessionRecord {
        SessionRecord {
            job: outcome.job,
            command: command.to_string(),
            dataset: dataset.to_string(),
            params: params.clone(),
            workers,
            report: outcome.report,
            wall_s: outcome.total_wall.as_secs_f64(),
            first_result_wall_s: outcome.first_result_wall.map(|d| d.as_secs_f64()),
            triangles: outcome.triangles.n_triangles() as u64,
            polylines: outcome.polylines.len() as u64,
            packets: outcome.packets.len() as u64,
        }
    }
}

/// An append-only session log with aggregate statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionLog {
    pub records: Vec<SessionRecord>,
}

/// Aggregates computed over a session log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    pub jobs: usize,
    pub total_modeled_s: f64,
    pub total_wall_s: f64,
    pub total_triangles: u64,
    pub total_polylines: u64,
    /// Cache hit rate over all demand requests of the session.
    pub cache_hit_rate: f64,
    /// Jobs per command name, sorted by name.
    pub by_command: Vec<(String, usize)>,
}

impl SessionLog {
    pub fn new() -> SessionLog {
        SessionLog::default()
    }

    pub fn push(&mut self, r: SessionRecord) {
        self.records.push(r);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Aggregate statistics over the whole session.
    pub fn summary(&self) -> SessionSummary {
        let mut by_command = std::collections::BTreeMap::<String, usize>::new();
        let mut hits = 0u64;
        let mut demands = 0u64;
        let mut s = SessionSummary {
            jobs: self.records.len(),
            total_modeled_s: 0.0,
            total_wall_s: 0.0,
            total_triangles: 0,
            total_polylines: 0,
            cache_hit_rate: 0.0,
            by_command: Vec::new(),
        };
        for r in &self.records {
            s.total_modeled_s += r.report.total_runtime_s;
            s.total_wall_s += r.wall_s;
            s.total_triangles += r.triangles;
            s.total_polylines += r.polylines;
            hits += r.report.cache_hits;
            demands += r.report.demand_requests;
            *by_command.entry(r.command.clone()).or_insert(0) += 1;
        }
        if demands > 0 {
            s.cache_hit_rate = hits as f64 / demands as f64;
        }
        s.by_command = by_command.into_iter().collect();
        s
    }

    /// Writes the log as pretty JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reads a log written by [`save`](Self::save).
    pub fn load(path: &Path) -> io::Result<SessionLog> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(command: &str, modeled: f64, hits: u64, demands: u64) -> SessionRecord {
        SessionRecord {
            job: 1,
            command: command.into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 15.0),
            workers: 4,
            report: JobReport {
                total_runtime_s: modeled,
                cache_hits: hits,
                demand_requests: demands,
                triangles: 100,
                ..JobReport::default()
            },
            wall_s: modeled * 0.05,
            first_result_wall_s: None,
            triangles: 100,
            polylines: 0,
            packets: 0,
        }
    }

    #[test]
    fn summary_aggregates() {
        let mut log = SessionLog::new();
        log.push(record("IsoDataMan", 10.0, 0, 10));
        log.push(record("IsoDataMan", 5.0, 10, 10));
        log.push(record("VortexDataMan", 20.0, 10, 10));
        let s = log.summary();
        assert_eq!(s.jobs, 3);
        assert!((s.total_modeled_s - 35.0).abs() < 1e-12);
        assert_eq!(s.total_triangles, 300);
        assert!((s.cache_hit_rate - 20.0 / 30.0).abs() < 1e-12);
        assert_eq!(
            s.by_command,
            vec![("IsoDataMan".to_string(), 2), ("VortexDataMan".to_string(), 1)]
        );
    }

    #[test]
    fn empty_log_summary() {
        let s = SessionLog::new().summary();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut log = SessionLog::new();
        log.push(record("IsoDataMan", 1.0, 1, 2));
        let path = std::env::temp_dir().join(format!("vira_session_{}.json", std::process::id()));
        log.save(&path).unwrap();
        let back = SessionLog::load(&path).unwrap();
        assert_eq!(back, log);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_malformed() {
        let path = std::env::temp_dir().join(format!("vira_badsession_{}.json", std::process::id()));
        std::fs::write(&path, b"not json").unwrap();
        assert!(SessionLog::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
