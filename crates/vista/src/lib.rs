//! # vira-vista
//!
//! The visualization-side of the Viracocha reproduction: a stand-in for
//! ViSTA FlowLib (the VR front-end of the paper) plus the wire protocol
//! it speaks with the scheduler.
//!
//! * [`protocol`] — framed request/event encoding over the byte link
//!   (submissions, streamed partial-result packets, final reports).
//! * [`client`] — [`client::VistaClient`]: submits commands, assembles
//!   streamed geometry just in time, and records *when* geometry became
//!   available — the latency measurements of the paper's Figures 8
//!   and 12.
//!
//! Everything except actual rendering is implemented; the outcome of a
//! job carries the assembled triangle soup / polylines, the packet
//! arrival series (Figures 4/5 proxy), and the back-end's modeled-time
//! report.

pub mod client;
pub mod protocol;
pub mod session;

pub use client::{
    ClientError, JobOutcome, PacketRecord, ProgressRecord, RejectReason, SubmitSpec, VistaClient,
};
pub use protocol::{
    decode_event, decode_polylines, decode_request, encode_event, encode_polylines, encode_request,
    triangle_packet, ClientRequest, CommandParams, EventHeader, JobId, JobReport, PayloadKind,
    ProtocolError,
};
pub use session::{SessionLog, SessionRecord, SessionSummary, StreamSession};
