//! Wire protocol between the visualization client (ViSTA FlowLib) and the
//! Viracocha scheduler.
//!
//! In the paper this link is TCP/IP; here it is the framed byte link of
//! `vira-comm`. Frames carry a JSON header (small control data) followed
//! by an optional binary payload (bulk geometry):
//!
//! ```text
//! u32 header_len (LE) | header JSON | payload bytes
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use vira_extract::mesh::{Polyline, TriangleSoup};

/// Client-assigned job identifier.
pub type JobId = u64;

/// Loosely typed command parameters (iso value, viewpoint, seeds, …).
/// Kept as string pairs on the wire; see the typed accessors.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CommandParams(pub Vec<(String, String)>);

impl CommandParams {
    pub fn new() -> Self {
        CommandParams::default()
    }

    pub fn set(mut self, key: &str, value: impl ToString) -> Self {
        self.0.retain(|(k, _)| k != key);
        self.0.push((key.to_string(), value.to_string()));
        self
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.parse().ok()
    }

    /// A vector parameter encoded as "x,y,z".
    pub fn get_vec3(&self, key: &str) -> Option<[f64; 3]> {
        let s = self.get(key)?;
        let mut it = s.split(',').map(|p| p.trim().parse::<f64>());
        let x = it.next()?.ok()?;
        let y = it.next()?.ok()?;
        let z = it.next()?.ok()?;
        Some([x, y, z])
    }

    pub fn set_vec3(self, key: &str, v: [f64; 3]) -> Self {
        self.set(key, format!("{},{},{}", v[0], v[1], v[2]))
    }
}

/// Requests from the client to the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientRequest {
    /// Run a registered command on a dataset.
    Submit {
        job: JobId,
        /// Registered command name (e.g. "IsoDataMan").
        command: String,
        dataset: String,
        params: CommandParams,
        /// Requested work-group size.
        workers: usize,
        /// Client session the job belongs to; the scheduler round-robins
        /// dispatch credit across sessions (absent in frames from older
        /// peers → session 0).
        #[serde(default)]
        session: u64,
        /// Causal trace context minted by the client at submit time:
        /// the job's trace id and the client-side root span every
        /// back-end span of this job descends from. `0` means "no
        /// trace" (older clients, or tracing disabled).
        #[serde(default)]
        trace_id: u64,
        #[serde(default)]
        parent_span_id: u64,
    },
    /// Abort a running job ("meaningless extraction processes can be
    /// discarded immediately", §5).
    Cancel { job: JobId },
    /// Client acknowledges streamed partials for a job up to (and
    /// including) `up_to_seq`; the back-end may drop them from its
    /// resend buffer.
    Ack { job: JobId, up_to_seq: u32 },
    /// Client reconnected mid-stream and asks for every un-acked
    /// frame of the job (and its final event, if already produced)
    /// to be sent again.
    Resume { job: JobId },
    /// Orderly shutdown of the back-end.
    Shutdown,
}

/// What a result payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadKind {
    Triangles,
    Polylines,
    /// No geometry (empty result or control-only event).
    None,
}

/// Modeled-time job accounting shipped with the final event. Flat struct
/// so the client library stays decoupled from the back-end crates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct JobReport {
    /// Modeled wall-clock runtime of the job (submission → final merge).
    pub total_runtime_s: f64,
    /// Summed modeled time per category across workers.
    pub read_s: f64,
    pub compute_s: f64,
    pub send_s: f64,
    /// Modeled seconds the job spent queued at the scheduler before its
    /// *first* dispatch (absent in frames from older peers → 0).
    #[serde(default)]
    pub queue_wait_s: f64,
    /// Modeled seconds spent re-queued between dispatch attempts after a
    /// rank died — separate from `queue_wait_s` so requeued jobs do not
    /// inflate the pre-dispatch wait (absent in older frames → 0).
    #[serde(default)]
    pub requeue_wait_s: f64,
    /// Modeled seconds the master worker spent gathering and merging the
    /// group's partials.
    #[serde(default)]
    pub merge_s: f64,
    /// DMS counters summed across the group's proxies.
    pub demand_requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub prefetch_issued: u64,
    pub prefetch_hits: u64,
    /// Geometry totals.
    pub triangles: u64,
    pub polylines: u64,
    /// Extraction cells skipped by bricktree pruning, summed across the
    /// work group (absent in frames from older peers → 0).
    #[serde(default)]
    pub cells_skipped: u64,
    /// Finest-level bricks skipped whole.
    #[serde(default)]
    pub bricks_skipped: u64,
    /// Modeled seconds spent inside intra-worker parallel extraction
    /// sections, summed across the group (absent in frames from older
    /// peers → 0; 0 on fully serial runs).
    #[serde(default)]
    pub extract_par_s: f64,
    /// Maximum per-worker extraction thread count of the group (absent
    /// in frames from older peers → 0; 1 = all workers ran serially).
    #[serde(default)]
    pub extract_threads: u32,
    /// Command retransmissions the scheduler issued for this job
    /// (absent in frames from older peers → 0).
    #[serde(default)]
    pub retries: u64,
    /// Set when the job was requeued onto a smaller work group after
    /// a rank died; the result is complete but was computed with
    /// degraded parallelism.
    #[serde(default)]
    pub degraded: bool,
}

/// Events from the scheduler to the client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventHeader {
    JobAccepted {
        job: JobId,
        workers: usize,
    },
    JobRejected {
        job: JobId,
        reason: String,
        /// Admission-control busy rejection: resubmit after roughly this
        /// many milliseconds. Absent on permanent refusals (unknown
        /// command, unregistered dataset, shutdown) and in frames from
        /// older schedulers → `None`.
        #[serde(default)]
        retry_after_ms: Option<u64>,
        /// Scheduler queue depth at the moment of a busy rejection, so
        /// clients can scale their own backoff. Absent alongside
        /// `retry_after_ms`.
        #[serde(default)]
        queue_depth: Option<u64>,
    },
    /// A streamed partial result; the payload follows in the same frame.
    Partial {
        job: JobId,
        seq: u32,
        kind: PayloadKind,
        /// Triangles or polylines in this packet.
        n_items: u32,
        /// Rank of the worker that produced the packet.
        from_worker: usize,
    },
    /// The final result (payload may be empty if everything was
    /// streamed).
    Final {
        job: JobId,
        kind: PayloadKind,
        n_items: u32,
        report: JobReport,
    },
    Error {
        job: JobId,
        message: String,
    },
    /// The job was cancelled (client request) and will produce no more
    /// events. Replaces `Final` for cancelled jobs — whether the job
    /// was still queued or already running when the cancel arrived, the
    /// client sees exactly one terminal `Cancelled` event. Geometry
    /// already streamed as partials stays valid; any payload a late
    /// DONE carried is discarded.
    Cancelled {
        job: JobId,
        report: JobReport,
    },
    /// Computation progress of one worker (the paper's §9 suggestion of
    /// a progress indicator in the virtual environment).
    Progress {
        job: JobId,
        from_worker: usize,
        /// Fraction of this worker's share completed, in `[0, 1]`.
        fraction: f32,
    },
}

impl EventHeader {
    pub fn job(&self) -> JobId {
        match self {
            EventHeader::JobAccepted { job, .. }
            | EventHeader::JobRejected { job, .. }
            | EventHeader::Partial { job, .. }
            | EventHeader::Final { job, .. }
            | EventHeader::Error { job, .. }
            | EventHeader::Cancelled { job, .. }
            | EventHeader::Progress { job, .. } => *job,
        }
    }
}

/// Protocol encode/decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Malformed(s) => write!(f, "malformed frame: {s}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn encode_frame<T: Serialize>(header: &T, payload: &Bytes) -> Bytes {
    let json = serde_json::to_vec(header).expect("protocol headers always serialize");
    let mut buf = BytesMut::with_capacity(4 + json.len() + payload.len());
    buf.put_u32_le(json.len() as u32);
    buf.put_slice(&json);
    buf.put_slice(payload);
    buf.freeze()
}

fn decode_frame<T: for<'de> Deserialize<'de>>(
    mut frame: Bytes,
) -> Result<(T, Bytes), ProtocolError> {
    if frame.remaining() < 4 {
        return Err(ProtocolError::Malformed(
            "frame shorter than header length".into(),
        ));
    }
    let len = frame.get_u32_le() as usize;
    if frame.remaining() < len {
        return Err(ProtocolError::Malformed("truncated header".into()));
    }
    let json = frame.split_to(len);
    let header = serde_json::from_slice(&json)
        .map_err(|e| ProtocolError::Malformed(format!("bad header JSON: {e}")))?;
    Ok((header, frame))
}

/// Encodes a request frame (requests carry no binary payload).
pub fn encode_request(req: &ClientRequest) -> Bytes {
    encode_frame(req, &Bytes::new())
}

/// Decodes a request frame.
pub fn decode_request(frame: Bytes) -> Result<ClientRequest, ProtocolError> {
    decode_frame(frame).map(|(h, _)| h)
}

/// Encodes an event frame with its binary payload.
pub fn encode_event(header: &EventHeader, payload: Bytes) -> Bytes {
    encode_frame(header, &payload)
}

/// Decodes an event frame into header + payload.
pub fn decode_event(frame: Bytes) -> Result<(EventHeader, Bytes), ProtocolError> {
    decode_frame(frame)
}

/// Encodes a list of polylines: `u32` count, then each polyline's own
/// encoding prefixed by its byte length.
pub fn encode_polylines(lines: &[Polyline]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(lines.len() as u32);
    for l in lines {
        let b = l.to_bytes();
        buf.put_u32_le(b.len() as u32);
        buf.put_slice(&b);
    }
    buf.freeze()
}

/// Inverse of [`encode_polylines`].
pub fn decode_polylines(mut b: Bytes) -> Result<Vec<Polyline>, ProtocolError> {
    if b.remaining() < 4 {
        return Err(ProtocolError::Malformed("missing polyline count".into()));
    }
    let n = b.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if b.remaining() < 4 {
            return Err(ProtocolError::Malformed("missing polyline length".into()));
        }
        let len = b.get_u32_le() as usize;
        if b.remaining() < len {
            return Err(ProtocolError::Malformed("truncated polyline".into()));
        }
        let chunk = b.split_to(len);
        let line = Polyline::from_bytes(chunk)
            .ok_or_else(|| ProtocolError::Malformed("bad polyline body".into()))?;
        out.push(line);
    }
    Ok(out)
}

/// Convenience: a partial-triangles event frame.
pub fn triangle_packet(job: JobId, seq: u32, from_worker: usize, soup: &TriangleSoup) -> Bytes {
    encode_event(
        &EventHeader::Partial {
            job,
            seq,
            kind: PayloadKind::Triangles,
            n_items: soup.n_triangles() as u32,
            from_worker,
        },
        soup.to_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::math::Vec3;

    #[test]
    fn request_roundtrip() {
        let req = ClientRequest::Submit {
            job: 7,
            command: "IsoDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new()
                .set("iso", 0.5)
                .set_vec3("viewpoint", [1.0, 2.0, 3.0]),
            workers: 8,
            session: 3,
            trace_id: 0xabcd,
            parent_span_id: 12,
        };
        let back = decode_request(encode_request(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn submit_without_trace_context_decodes_as_untraced() {
        // Submits from clients predating causal tracing must still
        // decode; the context fields are #[serde(default)].
        let req = ClientRequest::Submit {
            job: 11,
            command: "IsoDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new(),
            workers: 2,
            session: 0,
            trace_id: 77,
            parent_span_id: 8,
        };
        let mut v = serde_json::to_value(&req).unwrap();
        let obj = v
            .as_object_mut()
            .unwrap()
            .get_mut("Submit")
            .unwrap()
            .as_object_mut()
            .unwrap();
        obj.remove("trace_id");
        obj.remove("parent_span_id");
        let back: ClientRequest = serde_json::from_value(v).unwrap();
        match back {
            ClientRequest::Submit {
                job,
                trace_id,
                parent_span_id,
                ..
            } => {
                assert_eq!(job, 11);
                assert_eq!(trace_id, 0);
                assert_eq!(parent_span_id, 0);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn submit_without_session_decodes_as_session_zero() {
        // Submits from clients predating per-session fair share must
        // still decode; the field is #[serde(default)].
        let req = ClientRequest::Submit {
            job: 9,
            command: "IsoDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new(),
            workers: 2,
            session: 5,
            trace_id: 0,
            parent_span_id: 0,
        };
        let mut v = serde_json::to_value(&req).unwrap();
        v.as_object_mut()
            .unwrap()
            .get_mut("Submit")
            .unwrap()
            .as_object_mut()
            .unwrap()
            .remove("session");
        let back: ClientRequest = serde_json::from_value(v).unwrap();
        match back {
            ClientRequest::Submit { job, session, .. } => {
                assert_eq!(job, 9);
                assert_eq!(session, 0);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn rejection_without_busy_fields_decodes_as_permanent_refusal() {
        // JobRejected frames from schedulers predating admission
        // control carry only the bare reason string; the busy fields
        // are #[serde(default)] and must come back `None`.
        let ev = EventHeader::JobRejected {
            job: 3,
            reason: "unknown command 'Nope'".into(),
            retry_after_ms: Some(25),
            queue_depth: Some(7),
        };
        let mut v = serde_json::to_value(&ev).unwrap();
        let obj = v
            .as_object_mut()
            .unwrap()
            .get_mut("JobRejected")
            .unwrap()
            .as_object_mut()
            .unwrap();
        obj.remove("retry_after_ms");
        obj.remove("queue_depth");
        let back: EventHeader = serde_json::from_value(v).unwrap();
        match back {
            EventHeader::JobRejected {
                job,
                reason,
                retry_after_ms,
                queue_depth,
            } => {
                assert_eq!(job, 3);
                assert_eq!(reason, "unknown command 'Nope'");
                assert_eq!(retry_after_ms, None);
                assert_eq!(queue_depth, None);
            }
            other => panic!("wrong header {other:?}"),
        }
    }

    #[test]
    fn busy_rejection_roundtrips_through_event_frame() {
        let ev = EventHeader::JobRejected {
            job: 12,
            reason: "busy: queue full".into(),
            retry_after_ms: Some(100),
            queue_depth: Some(64),
        };
        let frame = encode_event(&ev, Bytes::new());
        let (h, payload) = decode_event(frame).unwrap();
        assert!(payload.is_empty());
        assert_eq!(h, ev);
        assert_eq!(h.job(), 12);
    }

    #[test]
    fn params_typed_accessors() {
        let p = CommandParams::new()
            .set("iso", 0.25)
            .set("batch", 500)
            .set_vec3("viewpoint", [0.0, -1.5, 2.0]);
        assert_eq!(p.get_f64("iso"), Some(0.25));
        assert_eq!(p.get_usize("batch"), Some(500));
        assert_eq!(p.get_vec3("viewpoint"), Some([0.0, -1.5, 2.0]));
        assert_eq!(p.get("missing"), None);
        assert_eq!(p.get_f64("viewpoint"), None, "not a scalar");
        // set() replaces.
        let p = p.set("iso", 0.3);
        assert_eq!(p.get_f64("iso"), Some(0.3));
    }

    #[test]
    fn event_roundtrip_with_payload() {
        let mut soup = TriangleSoup::new();
        soup.push_tri(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let frame = triangle_packet(3, 11, 2, &soup);
        let (header, payload) = decode_event(frame).unwrap();
        match header {
            EventHeader::Partial {
                job,
                seq,
                kind,
                n_items,
                from_worker,
            } => {
                assert_eq!((job, seq, n_items, from_worker), (3, 11, 1, 2));
                assert_eq!(kind, PayloadKind::Triangles);
            }
            other => panic!("wrong header {other:?}"),
        }
        assert_eq!(TriangleSoup::from_bytes(payload).unwrap(), soup);
    }

    #[test]
    fn final_event_carries_report() {
        let report = JobReport {
            total_runtime_s: 12.5,
            read_s: 3.0,
            compute_s: 9.0,
            send_s: 0.5,
            queue_wait_s: 0.75,
            merge_s: 0.125,
            triangles: 1234,
            ..JobReport::default()
        };
        let frame = encode_event(
            &EventHeader::Final {
                job: 1,
                kind: PayloadKind::None,
                n_items: 0,
                report,
            },
            Bytes::new(),
        );
        let (h, payload) = decode_event(frame).unwrap();
        assert!(payload.is_empty());
        match h {
            EventHeader::Final { report: r, .. } => assert_eq!(r, report),
            other => panic!("wrong header {other:?}"),
        }
    }

    #[test]
    fn report_without_stage_timings_decodes_with_zero_defaults() {
        // Final events from schedulers predating the per-stage timing
        // fields must still decode; the new fields are #[serde(default)].
        let report = JobReport {
            total_runtime_s: 2.0,
            read_s: 1.0,
            queue_wait_s: 0.5,
            merge_s: 0.25,
            triangles: 10,
            ..JobReport::default()
        };
        let mut v = serde_json::to_value(report).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("queue_wait_s");
        obj.remove("merge_s");
        let back: JobReport = serde_json::from_value(v).unwrap();
        assert_eq!(back.queue_wait_s, 0.0);
        assert_eq!(back.merge_s, 0.0);
        assert_eq!(back.total_runtime_s, 2.0);
        assert_eq!(back.triangles, 10);
    }

    #[test]
    fn report_roundtrips_through_event_frame_with_stage_timings() {
        let report = JobReport {
            total_runtime_s: 5.0,
            read_s: 1.0,
            compute_s: 2.0,
            send_s: 0.5,
            queue_wait_s: 1.25,
            requeue_wait_s: 0.375,
            merge_s: 0.25,
            demand_requests: 9,
            cache_hits: 6,
            cache_misses: 3,
            prefetch_issued: 4,
            prefetch_hits: 2,
            triangles: 77,
            polylines: 0,
            cells_skipped: 1000,
            bricks_skipped: 12,
            extract_par_s: 0.0625,
            extract_threads: 4,
            retries: 2,
            degraded: true,
        };
        let frame = encode_event(
            &EventHeader::Final {
                job: 5,
                kind: PayloadKind::Triangles,
                n_items: 77,
                report,
            },
            Bytes::new(),
        );
        let (h, _) = decode_event(frame).unwrap();
        match h {
            EventHeader::Final { report: r, .. } => {
                assert_eq!(r, report);
                assert_eq!(r.queue_wait_s, 1.25);
                assert_eq!(r.merge_s, 0.25);
            }
            other => panic!("wrong header {other:?}"),
        }
    }

    #[test]
    fn ack_and_resume_roundtrip() {
        for req in [
            ClientRequest::Ack {
                job: 4,
                up_to_seq: 17,
            },
            ClientRequest::Resume { job: 4 },
        ] {
            assert_eq!(decode_request(encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn report_without_resilience_fields_decodes_with_defaults() {
        // Final events from schedulers predating retry/requeue
        // accounting must still decode.
        let report = JobReport {
            total_runtime_s: 2.0,
            retries: 3,
            degraded: true,
            ..JobReport::default()
        };
        let mut v = serde_json::to_value(report).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("retries");
        obj.remove("degraded");
        let back: JobReport = serde_json::from_value(v).unwrap();
        assert_eq!(back.retries, 0);
        assert!(!back.degraded);
        assert_eq!(back.total_runtime_s, 2.0);
    }

    #[test]
    fn report_without_extract_fields_decodes_with_zero_defaults() {
        // Finals from schedulers predating intra-worker parallel
        // extraction must still decode.
        let report = JobReport {
            total_runtime_s: 2.0,
            extract_par_s: 0.5,
            extract_threads: 8,
            ..JobReport::default()
        };
        let mut v = serde_json::to_value(report).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("extract_par_s");
        obj.remove("extract_threads");
        let back: JobReport = serde_json::from_value(v).unwrap();
        assert_eq!(back.extract_par_s, 0.0);
        assert_eq!(back.extract_threads, 0, "absent thread count means unknown");
        assert_eq!(back.total_runtime_s, 2.0);
    }

    #[test]
    fn report_without_requeue_wait_decodes_with_zero_default() {
        // Finals from schedulers predating split queue/requeue wait
        // accounting must still decode.
        let report = JobReport {
            queue_wait_s: 0.5,
            requeue_wait_s: 1.5,
            ..JobReport::default()
        };
        let mut v = serde_json::to_value(report).unwrap();
        v.as_object_mut().unwrap().remove("requeue_wait_s");
        let back: JobReport = serde_json::from_value(v).unwrap();
        assert_eq!(back.requeue_wait_s, 0.0);
        assert_eq!(back.queue_wait_s, 0.5);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(decode_request(Bytes::from_static(b"xx")).is_err());
        assert!(decode_event(Bytes::from_static(b"\xFF\xFF\xFF\xFF")).is_err());
        let mut bad = encode_request(&ClientRequest::Shutdown).to_vec();
        bad[4] = b'!';
        assert!(decode_request(Bytes::from(bad)).is_err());
    }

    #[test]
    fn polyline_list_roundtrip() {
        let mut a = Polyline::default();
        a.push(Vec3::ZERO, 0.0);
        a.push(Vec3::new(1.0, 0.0, 0.0), 0.5);
        let mut b = Polyline::default();
        b.push(Vec3::new(0.0, 2.0, 0.0), 0.1);
        let lines = vec![a, b, Polyline::default()];
        let back = decode_polylines(encode_polylines(&lines)).unwrap();
        assert_eq!(back, lines);
        assert!(decode_polylines(Bytes::from_static(b"z")).is_err());
    }

    #[test]
    fn cancelled_event_roundtrip() {
        let report = JobReport {
            total_runtime_s: 1.5,
            triangles: 40,
            ..JobReport::default()
        };
        let frame = encode_event(&EventHeader::Cancelled { job: 8, report }, Bytes::new());
        let (h, payload) = decode_event(frame).unwrap();
        assert!(payload.is_empty());
        match h {
            EventHeader::Cancelled { job, report: r } => {
                assert_eq!(job, 8);
                assert_eq!(r, report);
            }
            other => panic!("wrong header {other:?}"),
        }
        assert_eq!(h.job(), 8);
    }

    #[test]
    fn header_job_accessor() {
        let h = EventHeader::Error {
            job: 42,
            message: "boom".into(),
        };
        assert_eq!(h.job(), 42);
    }
}
