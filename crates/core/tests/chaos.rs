//! Chaos matrix: end-to-end isosurface extraction under seeded,
//! replayable fault plans (see `vira_comm::fault`).
//!
//! Every plan derives from one seed — `CHAOS_SEED` in the environment
//! overrides the default, and CI runs the matrix under several fixed
//! seeds plus one run-id-derived seed per build. The invariants hold
//! for *any* seed:
//!
//! * plans without a kill must reproduce the fault-free result
//!   byte-identically (canonical rank-order merge + retransmission),
//! * a killed worker degrades the job onto the survivors but still
//!   completes it,
//! * the `JobReport` retry/degraded accounting matches the global
//!   vira-obs counters and the plan's own injection stats.
//!
//! Tests share the process-global obs registry, so they serialize on a
//! mutex and compare counter *deltas*.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use vira_grid::synth::test_cube;
use vira_storage::source::SynthSource;
use vira_vista::{CommandParams, JobOutcome, SubmitSpec, VistaClient};
use viracocha::{
    FaultPlan, FaultStatsSnapshot, LinkFaults, ResilienceConfig, Viracocha, ViracochaConfig,
};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another chaos test failed.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The matrix seed: `CHAOS_SEED` from the environment, or a fixed
/// default. Printed so a failing CI run can be replayed locally.
fn chaos_seed() -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .map(|s| s.parse().expect("CHAOS_SEED must be a u64"))
        .unwrap_or(0x00C0_FFEE);
    eprintln!("chaos seed: {seed}");
    seed
}

/// Aggressive timeouts so recovery happens within test time; the
/// defaults in `ResilienceConfig` are tuned never to trip instead.
///
/// `CHAOS_SCHED=fifo` in the environment reruns the whole matrix under
/// the legacy strict-FIFO/lowest-rank dispatcher (backfill, locality
/// and fair share all off); anything else keeps the defaults (all on).
/// Printed so a failing CI run can be replayed locally.
fn chaos_config(n_workers: usize) -> ViracochaConfig {
    let mut cfg = ViracochaConfig::for_tests(n_workers);
    let sched_mode = std::env::var("CHAOS_SCHED").unwrap_or_else(|_| "backfill".into());
    eprintln!("chaos sched policy: {sched_mode}");
    // EXTRACT_THREADS (picked up by ExtractConfig::default) reruns the
    // matrix with intra-worker parallel extraction; printed for replay.
    eprintln!("chaos extract threads: {}", cfg.extract.threads);
    if sched_mode == "fifo" {
        cfg.sched.backfill = false;
        cfg.sched.locality = false;
        cfg.sched.fair_share = false;
    }
    cfg.resilience = ResilienceConfig {
        dispatch_timeout: Duration::from_millis(150),
        backoff_factor: 1.5,
        max_retransmits: 2,
        // Long enough for ~20 ping rounds: on a lossy link the probe
        // must not convict a live rank just because pings got dropped.
        probe_timeout: Duration::from_millis(500),
        // Far beyond dead-rank detection (~1 s) so a stuck gather never
        // races the requeue path with a timeout error.
        gather_timeout: Duration::from_secs(10),
        max_attempts: 3,
    };
    cfg
}

fn iso_spec(workers: usize) -> SubmitSpec {
    SubmitSpec {
        command: "IsoDataMan".into(),
        dataset: "TestCube".into(),
        params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
        workers,
    }
}

/// Runs `n_jobs` sequential iso extractions on one backend, optionally
/// behind a fault plan. Panics if any job fails — surviving the plan is
/// the point.
fn run_jobs(
    n_workers: usize,
    plan: Option<FaultPlan>,
    n_jobs: usize,
) -> (Vec<JobOutcome>, Option<FaultStatsSnapshot>) {
    let cfg = chaos_config(n_workers);
    let (backend, link) = match plan {
        Some(p) => Viracocha::launch_with_faults(cfg, p),
        None => Viracocha::launch(cfg),
    };
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(test_cube(10, 4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let outs: Vec<JobOutcome> = (0..n_jobs)
        .map(|i| {
            client
                .run(&iso_spec(n_workers))
                .unwrap_or_else(|e| panic!("job {i} did not survive the plan: {e:?}"))
        })
        .collect();
    let stats = backend.fault_stats().map(|s| s.snapshot());
    client.shutdown().expect("shutdown");
    backend.join();
    (outs, stats)
}

/// The scheduler/fault counters the matrix checks, read from the
/// global obs registry.
#[derive(Clone, Copy)]
struct Counters {
    retries: u64,
    requeues: u64,
    dead_ranks: u64,
    failed: u64,
    injected: u64,
}

fn counters() -> Counters {
    let c = |name: &str| vira_obs::counter(name).get();
    Counters {
        retries: c("sched_retries_total"),
        requeues: c("sched_requeues_total"),
        dead_ranks: c("sched_dead_ranks_total"),
        failed: c("sched_jobs_failed_total"),
        injected: c("fault_injected_total"),
    }
}

/// Exact byte-level view of a triangle soup's vertices (plain `==` on
/// `f32` would conflate `-0.0` with `0.0`).
fn vertex_bits(out: &JobOutcome) -> Vec<[u32; 3]> {
    out.triangles
        .positions
        .iter()
        .map(|p| [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()])
        .collect()
}

fn sorted_bits(out: &JobOutcome) -> Vec<[u32; 3]> {
    let mut v = vertex_bits(out);
    v.sort_unstable();
    v
}

#[test]
fn drop_only_plan_recovers_byte_identical() {
    let _g = serial();
    let seed = chaos_seed();
    let (clean, _) = run_jobs(2, None, 1);
    let before = counters();
    let plan = FaultPlan::new(seed).with_default(LinkFaults {
        drop_p: 0.3,
        ..Default::default()
    });
    let (outs, stats) = run_jobs(2, Some(plan), 3);
    let after = counters();
    let stats = stats.expect("faulty launch exposes stats");
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(
            vertex_bits(out),
            vertex_bits(&clean[0]),
            "job {i}: non-kill plan must reproduce the fault-free bytes"
        );
        assert!(!out.report.degraded, "job {i}: drops never degrade");
    }
    let report_retries: u64 = outs.iter().map(|o| o.report.retries).sum();
    assert_eq!(
        after.retries - before.retries,
        report_retries,
        "per-job retry accounting must match sched_retries_total"
    );
    assert_eq!(
        after.injected - before.injected,
        stats.injected,
        "plan-local stats mirror fault_injected_total"
    );
    assert_eq!(after.dead_ranks, before.dead_ranks, "nobody died");
    assert_eq!(after.failed, before.failed, "every job completed");
}

#[test]
fn delay_only_plan_is_transparent() {
    let _g = serial();
    let seed = chaos_seed();
    let (clean, _) = run_jobs(2, None, 1);
    let before = counters();
    let plan = FaultPlan::new(seed).with_default(LinkFaults {
        delay_p: 0.6,
        delay_max: Duration::from_millis(3),
        ..Default::default()
    });
    let (outs, stats) = run_jobs(2, Some(plan), 2);
    let after = counters();
    let stats = stats.expect("faulty launch exposes stats");
    for out in &outs {
        assert_eq!(vertex_bits(out), vertex_bits(&clean[0]));
        assert!(!out.report.degraded);
    }
    // Millisecond delays stay far below the 150 ms dispatch timeout.
    assert_eq!(after.requeues, before.requeues);
    assert_eq!(after.dead_ranks, before.dead_ranks);
    assert_eq!(after.injected - before.injected, stats.injected);
    assert_eq!(stats.injected, stats.delayed, "delay-only plan");
}

#[test]
fn killed_worker_degrades_the_job_but_completes_it() {
    let _g = serial();
    let seed = chaos_seed();
    let (clean, _) = run_jobs(2, None, 1);
    let before = counters();
    // Rank 2 loses every outbound message from the start: its partial
    // never reaches the master, the probe convicts it, and the job
    // reruns on rank 1 alone.
    let plan = FaultPlan::new(seed).with_kill(2, 0);
    let (outs, stats) = run_jobs(2, Some(plan), 2);
    let after = counters();
    let stats = stats.expect("faulty launch exposes stats");

    let first = &outs[0];
    assert_eq!(
        sorted_bits(first),
        sorted_bits(&clean[0]),
        "degraded group computes the same surface (different merge order)"
    );
    assert!(first.report.degraded, "requeue must be visible to the client");
    assert!(first.report.retries >= 1, "retransmits precede the probe");

    // The backend keeps serving after the death: the next job goes
    // straight to the survivor and is *not* degraded.
    let second = &outs[1];
    assert_eq!(sorted_bits(second), sorted_bits(&clean[0]));
    assert!(!second.report.degraded);

    assert_eq!(stats.killed_ranks, 1);
    assert_eq!(after.dead_ranks - before.dead_ranks, 1);
    assert_eq!(after.requeues - before.requeues, 1);
    assert_eq!(after.failed, before.failed, "no job was abandoned");
    let report_retries: u64 = outs.iter().map(|o| o.report.retries).sum();
    assert_eq!(after.retries - before.retries, report_retries);
}

#[test]
fn kitchen_sink_plan_recovers_byte_identical() {
    let _g = serial();
    let seed = chaos_seed();
    let (clean, _) = run_jobs(2, None, 1);
    let before = counters();
    let plan = FaultPlan::new(seed).with_default(LinkFaults {
        drop_p: 0.15,
        dup_p: 0.15,
        delay_p: 0.2,
        delay_max: Duration::from_millis(1),
        reorder_p: 0.15,
        truncate_p: 0.08,
        corrupt_p: 0.08,
    });
    let (outs, stats) = run_jobs(2, Some(plan), 3);
    let after = counters();
    let stats = stats.expect("faulty launch exposes stats");
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(
            vertex_bits(out),
            vertex_bits(&clean[0]),
            "job {i}: truncation/corruption must be caught by checksums, \
             never silently merged"
        );
        assert!(!out.report.degraded);
    }
    let report_retries: u64 = outs.iter().map(|o| o.report.retries).sum();
    assert_eq!(after.retries - before.retries, report_retries);
    assert_eq!(after.injected - before.injected, stats.injected);
    assert_eq!(after.dead_ranks, before.dead_ranks);
    assert_eq!(after.failed, before.failed);
}

#[test]
fn inert_plan_behaves_like_a_clean_launch() {
    let _g = serial();
    let (clean, _) = run_jobs(2, None, 1);
    let (outs, stats) = run_jobs(2, Some(FaultPlan::new(1)), 1);
    let stats = stats.expect("faulty launch exposes stats");
    assert_eq!(vertex_bits(&outs[0]), vertex_bits(&clean[0]));
    assert_eq!(stats, FaultStatsSnapshot::default(), "nothing injected");
    assert_eq!(outs[0].report.retries, 0);
    assert!(!outs[0].report.degraded);
}
