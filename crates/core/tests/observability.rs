//! Acceptance test for the observability layer: a single traced run
//! must produce a valid Chrome trace, a valid JSONL event log, and
//! metrics consistent with the `JobReport` the client received.
//!
//! The tracer, metrics registry and event log are process-global, so
//! this file holds exactly one test — integration-test binaries run in
//! their own process, which keeps the drain/snapshot windows exact.

use std::sync::Arc;
use vira_dms::proxy::ProxyConfig;
use vira_grid::synth::test_cube;
use vira_obs::{export, ArgValue, SpanRecord};
use vira_storage::source::SynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

fn span_arg_u64(rec: &SpanRecord, key: &str) -> Option<u64> {
    rec.args().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::U64(n) => Some(n),
        _ => None,
    })
}

#[test]
fn traced_run_artifacts_are_valid_and_consistent() {
    vira_obs::set_stderr_echo(false);
    vira_obs::set_enabled(true);
    // Discard anything recorded before the run under test.
    let _ = vira_obs::drain();
    let _ = vira_obs::drain_events();
    let before = vira_obs::snapshot();

    let mut cfg = ViracochaConfig::for_tests(2);
    cfg.proxy = ProxyConfig {
        prefetcher: "none".into(),
        ..ProxyConfig::default()
    };
    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(test_cube(10, 4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let out = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
            workers: 2,
        })
        .unwrap();
    client.shutdown().unwrap();
    backend.join();

    vira_obs::info(
        "test",
        "traced run finished",
        &[("triangles", out.report.triangles.into())],
    );

    let delta = vira_obs::snapshot().delta(&before);
    let dump = vira_obs::drain();
    let (events, dropped_events) = vira_obs::drain_events();

    // --- metrics ↔ JobReport consistency --------------------------------
    let c = |name: &str| delta.counter(name).unwrap_or(0);
    assert_eq!(c("dms_demand_requests_total"), out.report.demand_requests);
    assert_eq!(
        c("dms_l1_hits_total") + c("dms_l2_hits_total"),
        out.report.cache_hits
    );
    assert_eq!(c("dms_misses_total"), out.report.cache_misses);
    assert_eq!(c("dms_prefetch_issued_total"), out.report.prefetch_issued);
    assert_eq!(c("dms_prefetch_hits_total"), out.report.prefetch_hits);
    assert_eq!(c("sched_jobs_submitted_total"), 1);
    assert_eq!(c("sched_jobs_dispatched_total"), 1);
    assert_eq!(c("sched_jobs_done_total"), 1);
    assert_eq!(c("sched_jobs_failed_total"), 0);
    // Every miss is served by exactly one load strategy.
    assert_eq!(
        c("dms_loads_fileserver_total") + c("dms_loads_replica_total") + c("dms_loads_peer_total"),
        out.report.cache_misses
    );
    assert!(out.report.cache_misses > 0, "cold run must miss");

    // --- span taxonomy ↔ JobReport ---------------------------------------
    assert_eq!(dump.dropped(), 0, "rings must not wrap in a tiny run");
    let spans: Vec<&SpanRecord> = dump.threads.iter().flat_map(|t| t.spans.iter()).collect();
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count() as u64;
    assert_eq!(count("sched.queued"), 1);
    assert_eq!(count("sched.dispatch"), 1);
    assert_eq!(count("sched.job"), 1);
    assert!(count("worker.job") >= 1, "at least the master runs the job");
    assert_eq!(count("worker.merge"), 1);
    assert_eq!(count("vista.collect"), 1);
    assert!(count("grid.generate") >= 1, "cold misses synthesize blocks");
    // One dms.request and one extract.block span per processed item.
    assert_eq!(count("dms.request"), out.report.demand_requests);
    assert_eq!(count("extract.block"), out.report.demand_requests);
    // Per-block triangle and pruning args must add up to the report.
    let arg_sum = |key: &str| -> u64 {
        spans
            .iter()
            .filter(|s| s.name == "extract.block")
            .map(|s| span_arg_u64(s, key).expect("extract.block carries the arg"))
            .sum()
    };
    assert_eq!(arg_sum("triangles"), out.report.triangles);
    assert_eq!(arg_sum("cells_skipped"), out.report.cells_skipped);
    assert_eq!(arg_sum("bricks_skipped"), out.report.bricks_skipped);

    // --- artifacts on disk ------------------------------------------------
    let dir = std::env::temp_dir().join(format!("vira_obs_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary =
        export::write_artifacts(&dir, &dump, &events, dropped_events, &delta).unwrap();
    assert_eq!(summary.spans, spans.len());
    assert_eq!(summary.events, events.len());
    assert_eq!(summary.dropped_spans, 0);
    assert_eq!(summary.dropped_events, 0);
    assert!(summary.events >= 1, "the test's own info event is recorded");

    // The files must re-validate when read back, not just pre-write.
    let trace_text = std::fs::read_to_string(&summary.trace_path).unwrap();
    assert_eq!(
        export::validate_chrome_trace(&trace_text).unwrap(),
        spans.len()
    );
    let jsonl_text = std::fs::read_to_string(&summary.events_path).unwrap();
    assert_eq!(
        export::validate_events_jsonl(&jsonl_text).unwrap(),
        events.len()
    );
    let prom = std::fs::read_to_string(&summary.metrics_path).unwrap();
    assert!(prom.contains(&format!(
        "dms_demand_requests_total {}\n",
        out.report.demand_requests
    )));
    assert!(prom.contains("sched_jobs_done_total 1\n"));
    let _ = std::fs::remove_dir_all(&dir);
}
