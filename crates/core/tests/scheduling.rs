//! End-to-end tests of the dispatch policies (backfill, aging,
//! locality, per-session fair share) and of the queue-wait accounting
//! bugfixes.
//!
//! All ordering assertions compare per-job `queue_wait_s` values and
//! scheduler counter deltas — never wall-clock sleeps against absolute
//! thresholds — so they stay deterministic on slow machines. Tests
//! share the process-global obs registry and therefore serialize on a
//! mutex and compare counter *deltas*.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use vira_grid::synth::{self, test_cube};
use vira_storage::source::SynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{
    FaultPlan, ResilienceConfig, SchedulerConfig, Viracocha, ViracochaConfig,
};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Clone, Copy)]
struct SchedCounters {
    backfills: u64,
    locality_hits: u64,
    aged: u64,
    failed: u64,
}

fn counters() -> SchedCounters {
    let c = |name: &str| vira_obs::counter(name).get();
    SchedCounters {
        backfills: c("sched_backfills_total"),
        locality_hits: c("sched_locality_hits_total"),
        aged: c("sched_starvation_aged_total"),
        failed: c("sched_jobs_failed_total"),
    }
}

/// A dilated backend with both a long-running dataset (Engine) and a
/// tiny one (TestCube) registered, so one submission mix can contain
/// blocked heads and backfillable small jobs.
fn launch(n_workers: usize, tweak: impl FnOnce(&mut SchedulerConfig)) -> (Viracocha, VistaClient) {
    let mut cfg = ViracochaConfig::for_tests(n_workers);
    cfg.dilation = 0.02;
    tweak(&mut cfg.sched);
    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(synth::engine(4)))),
        false,
    );
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(test_cube(6, 2)))),
        false,
    );
    (backend, VistaClient::new(link))
}

/// A long dilated job: all Engine steps on `workers` ranks.
fn long_spec(workers: usize) -> SubmitSpec {
    SubmitSpec {
        command: "IsoDataMan".into(),
        dataset: "Engine".into(),
        params: CommandParams::new().set("iso", 15.0).set("n_steps", 8),
        workers,
    }
}

/// A tiny job: one TestCube step.
fn tiny_spec(workers: usize) -> SubmitSpec {
    SubmitSpec {
        command: "IsoDataMan".into(),
        dataset: "TestCube".into(),
        params: CommandParams::new().set("iso", 0.15).set("n_steps", 1),
        workers,
    }
}

fn fifo(s: &mut SchedulerConfig) {
    s.backfill = false;
    s.locality = false;
    s.fair_share = false;
}

#[test]
fn backfill_dispatches_a_small_job_past_a_blocked_head() {
    let _g = serial();
    // 3 workers: j1 takes 2 of them for a long time, j2 wants all 3 and
    // blocks the queue head, j3 needs only the one free rank.
    let before = counters();
    let (backend, mut client) = launch(3, |_| {});
    let j1 = client.submit(&long_spec(2)).unwrap();
    let j2 = client.submit(&tiny_spec(3)).unwrap();
    let j3 = client.submit(&tiny_spec(1)).unwrap();
    let o1 = client.collect(j1).unwrap();
    let o2 = client.collect(j2).unwrap();
    let o3 = client.collect(j3).unwrap();
    // With backfill, j3 jumps the blocked j2 and starts immediately:
    // its queue wait is (almost) zero while j2 waits out all of j1.
    assert!(
        o3.report.queue_wait_s < o2.report.queue_wait_s,
        "backfilled j3 must dispatch before the blocked head j2 \
         (j3 waited {:.3}s, j2 waited {:.3}s)",
        o3.report.queue_wait_s,
        o2.report.queue_wait_s
    );
    assert!(o1.triangles.n_triangles() > 0);
    // Re-run the long job: its blocks are now resident on the two ranks
    // that just computed it, so locality-aware placement scores > 0.
    let o4 = client.run(&long_spec(2)).unwrap();
    assert!(o4.triangles.n_triangles() > 0);
    client.shutdown().unwrap();
    backend.join();
    let after = counters();
    assert!(
        after.backfills - before.backfills >= 1,
        "the j3 overtake must be counted in sched_backfills_total"
    );
    assert!(
        after.locality_hits - before.locality_hits >= 1,
        "the warm re-run must be counted in sched_locality_hits_total"
    );
}

#[test]
fn fifo_mode_keeps_the_small_job_behind_the_blocked_head() {
    let _g = serial();
    let before = counters();
    let (backend, mut client) = launch(3, fifo);
    let j1 = client.submit(&long_spec(2)).unwrap();
    let j2 = client.submit(&tiny_spec(3)).unwrap();
    let j3 = client.submit(&tiny_spec(1)).unwrap();
    let _o1 = client.collect(j1).unwrap();
    let o2 = client.collect(j2).unwrap();
    let o3 = client.collect(j3).unwrap();
    // Strict FIFO: j3 dispatches only after j2 ran, so it waits longer.
    assert!(
        o3.report.queue_wait_s > o2.report.queue_wait_s,
        "FIFO must hold j3 behind j2 (j3 waited {:.3}s, j2 waited {:.3}s)",
        o3.report.queue_wait_s,
        o2.report.queue_wait_s
    );
    client.shutdown().unwrap();
    backend.join();
    let after = counters();
    assert_eq!(
        after.backfills - before.backfills,
        0,
        "no overtakes in FIFO mode"
    );
}

#[test]
fn aged_head_blocks_further_backfill_and_then_runs() {
    let _g = serial();
    let before = counters();
    // 2 workers, aging bound 2: j1 holds one rank for a long time; j2
    // (2 workers) blocks the head; j3 and j4 backfill past it — the
    // second overtake ages j2 to the bound — and j5 must then wait
    // behind j2 even though it would fit the free rank.
    let (backend, mut client) = launch(2, |s| {
        s.max_skipped_dispatches = 2;
        s.fair_share = false;
        s.locality = false;
    });
    let j1 = client.submit(&long_spec(1)).unwrap();
    let j2 = client.submit(&tiny_spec(2)).unwrap();
    let j3 = client.submit(&tiny_spec(1)).unwrap();
    let j4 = client.submit(&tiny_spec(1)).unwrap();
    let j5 = client.submit(&tiny_spec(1)).unwrap();
    let _o1 = client.collect(j1).unwrap();
    let o2 = client.collect(j2).unwrap();
    let o3 = client.collect(j3).unwrap();
    let o4 = client.collect(j4).unwrap();
    let o5 = client.collect(j5).unwrap();
    client.shutdown().unwrap();
    backend.join();
    let after = counters();
    assert_eq!(
        after.backfills - before.backfills,
        2,
        "exactly j3 and j4 may overtake before the bound trips"
    );
    assert_eq!(
        after.aged - before.aged,
        1,
        "j2 reaches the aging bound exactly once"
    );
    // The overtakers barely waited; j5 was held until after the aged j2
    // finally dispatched and ran.
    assert!(o3.report.queue_wait_s < o2.report.queue_wait_s);
    assert!(o4.report.queue_wait_s < o2.report.queue_wait_s);
    assert!(
        o5.report.queue_wait_s > o2.report.queue_wait_s,
        "j5 must not overtake the aged head (j5 waited {:.3}s, j2 waited {:.3}s)",
        o5.report.queue_wait_s,
        o2.report.queue_wait_s
    );
}

#[test]
fn fair_share_round_robins_dispatch_across_sessions() {
    let _g = serial();
    // One worker, two sessions: session 0 submits three jobs, then
    // session 7 submits three. Round-robin credit interleaves them —
    // b1 runs before a2, b2 before a3 — instead of draining session 0
    // first.
    let (backend, mut client) = launch(1, |s| {
        s.locality = false;
    });
    client.set_session(0);
    let a1 = client.submit(&tiny_spec(1)).unwrap();
    let a2 = client.submit(&tiny_spec(1)).unwrap();
    let a3 = client.submit(&tiny_spec(1)).unwrap();
    client.set_session(7);
    let b1 = client.submit(&tiny_spec(1)).unwrap();
    let b2 = client.submit(&tiny_spec(1)).unwrap();
    let b3 = client.submit(&tiny_spec(1)).unwrap();
    let oa: Vec<_> = [a1, a2, a3]
        .iter()
        .map(|&j| client.collect(j).unwrap())
        .collect();
    let ob: Vec<_> = [b1, b2, b3]
        .iter()
        .map(|&j| client.collect(j).unwrap())
        .collect();
    client.shutdown().unwrap();
    backend.join();
    // Dispatch order a1, b1, a2, b2, a3, b3 shows up as strictly
    // interleaved queue waits.
    assert!(
        ob[0].report.queue_wait_s < oa[1].report.queue_wait_s,
        "b1 must run before a2 (b1 waited {:.3}s, a2 waited {:.3}s)",
        ob[0].report.queue_wait_s,
        oa[1].report.queue_wait_s
    );
    assert!(
        ob[1].report.queue_wait_s < oa[2].report.queue_wait_s,
        "b2 must run before a3 (b2 waited {:.3}s, a3 waited {:.3}s)",
        ob[1].report.queue_wait_s,
        oa[2].report.queue_wait_s
    );
}

#[test]
fn fifo_mode_drains_the_first_session_before_the_second() {
    let _g = serial();
    let (backend, mut client) = launch(1, fifo);
    client.set_session(0);
    let a1 = client.submit(&tiny_spec(1)).unwrap();
    let a2 = client.submit(&tiny_spec(1)).unwrap();
    client.set_session(7);
    let b1 = client.submit(&tiny_spec(1)).unwrap();
    let _oa1 = client.collect(a1).unwrap();
    let oa2 = client.collect(a2).unwrap();
    let ob1 = client.collect(b1).unwrap();
    client.shutdown().unwrap();
    backend.join();
    assert!(
        ob1.report.queue_wait_s > oa2.report.queue_wait_s,
        "without fair share, session 7 waits out all of session 0"
    );
}

#[test]
fn requeued_job_reports_per_attempt_waits_not_recovery_time() {
    let _g = serial();
    // Rank 2 is dead from the start: the job retransmits, probes,
    // convicts, and reruns degraded on rank 1. The fix under test:
    // `queue_wait_s` must cover only the wait before the *first*
    // dispatch, and the (tiny) re-wait of the second attempt goes to
    // `requeue_wait_s` — the old accounting folded the whole recovery
    // (retransmit backoffs + probe, most of the job's wall time) into
    // `queue_wait_s`.
    let mut cfg = ViracochaConfig::for_tests(2);
    cfg.resilience = ResilienceConfig {
        dispatch_timeout: Duration::from_millis(150),
        backoff_factor: 1.5,
        max_retransmits: 2,
        probe_timeout: Duration::from_millis(500),
        gather_timeout: Duration::from_secs(10),
        max_attempts: 3,
    };
    let (backend, link) = Viracocha::launch_with_faults(cfg, FaultPlan::new(7).with_kill(2, 0));
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(test_cube(10, 4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let out = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
            workers: 2,
        })
        .unwrap();
    client.shutdown().unwrap();
    backend.join();
    assert!(out.report.degraded, "the dead rank degrades the job");
    let wall = out.total_wall.as_secs_f64();
    assert!(
        wall > 0.4,
        "recovery spans retransmit backoffs and a probe ({wall:.3}s)"
    );
    // Both waits are real queue time only — milliseconds, nowhere near
    // the recovery window the old code reported.
    assert!(
        out.report.queue_wait_s < 0.25,
        "queue_wait_s must not absorb the failed attempt ({:.3}s)",
        out.report.queue_wait_s
    );
    assert!(
        out.report.requeue_wait_s < 0.25,
        "requeue_wait_s is the re-queue wait alone ({:.3}s)",
        out.report.requeue_wait_s
    );
}

#[test]
fn client_disconnect_fails_queued_jobs_instead_of_dropping_them() {
    let _g = serial();
    let before = counters();
    let (backend, mut client) = launch(1, |_| {});
    let _j1 = client.submit(&long_spec(1)).unwrap();
    let _j2 = client.submit(&tiny_spec(1)).unwrap();
    // Give the scheduler time to dispatch j1 (j2 stays queued), then
    // vanish without a shutdown handshake.
    std::thread::sleep(Duration::from_millis(150));
    drop(client);
    backend.join();
    let after = counters();
    assert_eq!(
        after.failed - before.failed,
        1,
        "the queued j2 must be recorded as failed on disconnect, \
         the running j1 drains normally"
    );
}
