//! Property tests for the layer-2 wire codecs under hostile input:
//! whatever a faulty transport hands `decode_*`, it must either
//! decode faithfully or return `None` — never panic, and never return
//! a frame whose payload no longer matches its checksum.

use bytes::Bytes;
use proptest::prelude::*;
use vira_core::wire::{
    decode_command, decode_done, decode_partial, encode_command, encode_done, encode_partial,
    CommandMsg, DoneHeader, PartialHeader,
};
use vira_dms::stats::DmsStatsSnapshot;
use vira_vista::protocol::{CommandParams, PayloadKind};

fn sample_command(job: u64, attempt: u32) -> CommandMsg {
    CommandMsg {
        job,
        command: "ViewerIso".into(),
        dataset: "Engine".into(),
        params: CommandParams::new().set("iso", 0.4),
        group: vec![0, 1, 2],
        attempt,
        check: 0,
        trace_id: job.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        parent_span_id: attempt as u64 + 1,
    }
}

fn sample_partial(job: u64, payload_len: usize) -> (PartialHeader, Bytes) {
    let h = PartialHeader {
        job,
        kind: PayloadKind::Triangles,
        n_items: 3,
        read_s: 0.5,
        compute_s: 1.5,
        send_s: 0.25,
        dms: DmsStatsSnapshot::default(),
        cells_skipped: 11,
        bricks_skipped: 2,
        extract_par_s: 0.75,
        extract_threads: 2,
        attempt: 1,
        payload_crc: 0,
        residency: Default::default(),
        error: None,
        trace_id: job | 1,
        parent_span_id: job >> 1,
    };
    let payload: Vec<u8> = (0..payload_len).map(|i| (i * 7 + 13) as u8).collect();
    (h, Bytes::from(payload))
}

proptest! {
    /// Truncating an encoded frame anywhere must be detected: either
    /// the framing/JSON no longer parses, or the payload checksum
    /// catches the shortened body. A truncated frame must never
    /// decode as if it were intact.
    #[test]
    fn truncated_partial_frames_are_rejected(
        job in 0u64..1000,
        payload_len in 1usize..128,
        cut in 0usize..1000,
    ) {
        let (h, payload) = sample_partial(job, payload_len);
        let frame = encode_partial(&h, payload);
        prop_assume!(cut < frame.len());
        let truncated = frame.slice(..cut);
        prop_assert!(decode_partial(truncated).is_none());
    }

    #[test]
    fn truncated_done_frames_are_rejected(
        job in 0u64..1000,
        payload_len in 1usize..128,
        cut in 0usize..1000,
    ) {
        let (p, payload) = sample_partial(job, payload_len);
        let h = DoneHeader {
            job: p.job,
            kind: p.kind,
            n_items: p.n_items,
            read_s: p.read_s,
            compute_s: p.compute_s,
            send_s: p.send_s,
            merge_s: 0.125,
            dms: p.dms,
            cells_skipped: p.cells_skipped,
            bricks_skipped: p.bricks_skipped,
            extract_par_s: p.extract_par_s,
            extract_threads: p.extract_threads,
            attempt: p.attempt,
            payload_crc: 0,
            residency: Vec::new(),
            error: None,
            trace_id: p.trace_id,
            parent_span_id: p.parent_span_id,
        };
        let frame = encode_done(&h, payload);
        prop_assume!(cut < frame.len());
        prop_assert!(decode_done(frame.slice(..cut)).is_none());
    }

    /// A truncated command either fails to decode or — when the cut
    /// happens to land on a still-valid JSON document, which the
    /// length prefix prevents — never yields altered fields.
    #[test]
    fn truncated_command_frames_are_rejected(
        job in 0u64..1000,
        attempt in 0u32..8,
        cut in 0usize..1000,
    ) {
        let frame = encode_command(&sample_command(job, attempt));
        prop_assume!(cut < frame.len());
        prop_assert!(decode_command(frame.slice(..cut)).is_none());
    }

    /// Any single bit flip anywhere in a framed partial must not
    /// panic, and must not surface a frame whose payload fails its
    /// checksum. (A flip confined to redundant JSON whitespace can
    /// legitimately still decode; a flip in the binary body cannot.)
    #[test]
    fn bitflipped_partial_frames_never_misdecode(
        job in 0u64..1000,
        payload_len in 1usize..128,
        byte in 0usize..4096,
        bit in 0u8..8,
    ) {
        let (h, payload) = sample_partial(job, payload_len);
        let frame = encode_partial(&h, payload);
        prop_assume!(byte < frame.len());
        let mut bytes = frame.to_vec();
        bytes[byte] ^= 1 << bit;
        let body_start = frame.len() - payload_len;
        match decode_partial(Bytes::from(bytes)) {
            None => {} // rejected: always acceptable
            Some((h2, p2)) => {
                // Whatever survived must be internally consistent (a
                // flip that knocked out the crc *field name* leaves it
                // 0 = unchecked — but then the body was untouched)…
                if h2.payload_crc != 0 {
                    prop_assert_eq!(h2.payload_crc, vira_core::wire::fnv1a(&p2));
                }
                // …and a flip inside the binary body is always caught.
                prop_assert!(byte < body_start);
            }
        }
    }

    /// Trace context rides every frame type loss-free: whatever
    /// (trace_id, parent_span_id) pair the sender stamps comes back
    /// from the decoder bit-identical.
    #[test]
    fn trace_context_roundtrips_on_all_frame_types(
        job in 0u64..1000,
        trace_id in any::<u64>(),
        parent in any::<u64>(),
    ) {
        let mut cmd = sample_command(job, 0);
        cmd.trace_id = trace_id;
        cmd.parent_span_id = parent;
        let got = decode_command(encode_command(&cmd)).unwrap();
        prop_assert_eq!(got.trace_id, trace_id);
        prop_assert_eq!(got.parent_span_id, parent);

        let (mut ph, payload) = sample_partial(job, 16);
        ph.trace_id = trace_id;
        ph.parent_span_id = parent;
        let (got, _) = decode_partial(encode_partial(&ph, payload.clone())).unwrap();
        prop_assert_eq!(got.trace_id, trace_id);
        prop_assert_eq!(got.parent_span_id, parent);

        let dh = DoneHeader {
            job,
            kind: PayloadKind::Triangles,
            n_items: 1,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            merge_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: Vec::new(),
            error: None,
            trace_id,
            parent_span_id: parent,
        };
        let (got, _) = decode_done(encode_done(&dh, payload)).unwrap();
        prop_assert_eq!(got.trace_id, trace_id);
        prop_assert_eq!(got.parent_span_id, parent);
    }

    /// Mixed-version compatibility: the command integrity check covers
    /// the semantic fields only, so a frame differing solely in trace
    /// context still verifies on an old scheduler (which recomputes the
    /// check without knowing the trace fields exist), and an old
    /// writer's frame — the trace keys stripped from the JSON — still
    /// decodes on a new reader with both fields defaulting to zero.
    #[test]
    fn trace_fields_never_affect_command_verification(
        job in 0u64..1000,
        attempt in 0u32..8,
        trace_id in any::<u64>(),
        parent in any::<u64>(),
    ) {
        let untraced = {
            let mut c = sample_command(job, attempt);
            c.trace_id = 0;
            c.parent_span_id = 0;
            c
        };
        let mut traced = untraced.clone();
        traced.trace_id = trace_id;
        traced.parent_span_id = parent;
        // Both variants pass decode-time verification…
        let a = decode_command(encode_command(&untraced)).unwrap();
        let b = decode_command(encode_command(&traced)).unwrap();
        // …and carry the same integrity check: trace fields are
        // invisible to old peers' recomputation.
        prop_assert_eq!(a.check, b.check);
        prop_assert_eq!(a.job, b.job);
        prop_assert_eq!(a.params, b.params);
        // Old-writer simulation: drop the trace keys from the message
        // JSON; a new reader defaults both fields to zero.
        let mut val: serde_json::Value = serde_json::to_value(&traced).unwrap();
        let obj = val.as_object_mut().unwrap();
        obj.remove("trace_id");
        obj.remove("parent_span_id");
        let old: CommandMsg = serde_json::from_value(val).unwrap();
        prop_assert_eq!(old.trace_id, 0);
        prop_assert_eq!(old.parent_span_id, 0);
        prop_assert_eq!(old.job, traced.job);
    }

    /// Same for commands: a flip either breaks the JSON, trips the
    /// integrity check, or hit a redundant byte leaving every field
    /// intact. It must never produce a command with changed fields.
    #[test]
    fn bitflipped_command_frames_never_misdecode(
        job in 0u64..1000,
        attempt in 0u32..8,
        byte in 0usize..4096,
        bit in 0u8..8,
    ) {
        let msg = sample_command(job, attempt);
        let frame = encode_command(&msg);
        prop_assume!(byte < frame.len());
        let mut bytes = frame.to_vec();
        bytes[byte] ^= 1 << bit;
        if let Some(got) = decode_command(Bytes::from(bytes)) {
            prop_assert_eq!(got.job, msg.job);
            prop_assert_eq!(got.command, msg.command);
            prop_assert_eq!(got.dataset, msg.dataset);
            prop_assert_eq!(got.params, msg.params);
            prop_assert_eq!(got.group, msg.group);
            prop_assert_eq!(got.attempt, msg.attempt);
        }
    }
}
