//! Acceptance test for the live telemetry plane: a multi-rank run with
//! injected latency must produce a `telemetry.json` snapshot whose
//! cross-rank quantiles agree with values recomputed from the flight
//! recorder within log2-bucket error, and a violated SLO must fire a
//! burn-rate alert through the event log.
//!
//! The metrics registry, tracer and event log are process-global, so
//! the end-to-end check is a single test; the property tests below only
//! build local histograms and can run alongside it.

use proptest::prelude::*;
use std::sync::Arc;
use vira_grid::synth::test_cube;
use vira_obs::{HistogramSnapshot, MetricsDelta, SparseHist};
use vira_storage::source::SynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

/// Exact quantile with the same rank rule the histogram upper bound
/// uses: the `max(1, ceil(q·n))`-th smallest sample.
fn exact_quantile(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
    samples[rank.min(samples.len()) - 1]
}

/// `ub` must enclose `exact` within one log2 bucket on either side
/// (the span/histogram pair measure the same interval microseconds
/// apart, so boundary crossings are possible but never more).
fn within_bucket_error(ub: u64, exact: u64) -> bool {
    let (ub, exact) = (ub as f64, exact.max(1) as f64);
    ub >= exact * 0.5 && ub <= exact * 2.5
}

#[test]
fn live_snapshot_matches_flight_recorder_and_fires_slo() {
    vira_obs::set_stderr_echo(false);
    vira_obs::set_enabled(true);
    // Discard anything recorded before the run under test.
    let _ = vira_obs::drain();
    let _ = vira_obs::drain_events();

    let dir = std::env::temp_dir().join(format!("vira-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut cfg = ViracochaConfig::for_tests(3);
    // A little dilation injects real latency, so job runtimes land in
    // non-trivial histogram buckets and heartbeats fire mid-run.
    cfg.dilation = 0.02;
    cfg.telemetry.out_dir = Some(dir.clone());
    cfg.telemetry.heartbeat_interval = std::time::Duration::from_millis(20);
    cfg.telemetry.write_interval = std::time::Duration::from_millis(40);
    // Impossible 1 ns latency objective: every job violates it, so the
    // burn-rate alert must fire.
    cfg.telemetry.job_latency_slo_ns = 1;

    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(test_cube(10, 4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    for _ in 0..3 {
        client
            .run(&SubmitSpec {
                command: "IsoDataMan".into(),
                dataset: "TestCube".into(),
                params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
                workers: 3,
            })
            .unwrap();
    }
    // Idle across several heartbeat and write intervals so periodic
    // ticks (not just the final one) ship deltas and evaluate SLOs.
    std::thread::sleep(std::time::Duration::from_millis(150));

    // The violated SLO must have raised the alert counter and emitted a
    // structured event before shutdown.
    assert!(
        vira_obs::snapshot()
            .counter("slo_alerts_total")
            .unwrap_or(0)
            >= 1,
        "burn-rate alert counter never incremented"
    );
    let (events, _) = vira_obs::drain_events();
    let alert = events
        .iter()
        .find(|e| e.target == "slo" && e.message.contains("burn-rate alert"))
        .expect("slo alert event in the log");
    assert!(
        alert
            .fields
            .iter()
            .any(|(k, v)| k == "slo"
                && matches!(v, vira_obs::Field::Str(s) if s == "job_latency_p99")),
        "alert names the violated SLO: {:?}",
        alert.fields
    );

    client.shutdown().unwrap();
    backend.join();

    // Flight recordings are the independent ground truth.
    vira_obs::export_all(&dir).unwrap();

    let text = std::fs::read_to_string(dir.join("telemetry.json")).unwrap();
    let snap = vira_obs::json::parse(&text).unwrap();
    assert_eq!(snap.get("v").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(snap.get("final").and_then(|v| v.as_bool()), Some(true));

    let counters = snap
        .get("cluster")
        .and_then(|c| c.get("counters"))
        .expect("cluster counters");
    let c = |name: &str| counters.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
    assert!(c("obs_heartbeats_total") >= 1, "{text}");
    assert!(c("obs_deltas_shipped_total") >= 1, "{text}");
    assert_eq!(c("sched_jobs_done_total"), 3, "{text}");
    assert_eq!(c("sched_jobs_failed_total"), 0, "{text}");

    // Every worker rank is present and alive in the final snapshot.
    let ranks = snap.get("ranks").and_then(|r| r.as_arr()).expect("ranks");
    assert_eq!(ranks.len(), 3);
    assert!(ranks
        .iter()
        .all(|r| r.get("alive").and_then(|v| v.as_bool()) == Some(true)));

    // The firing SLO shows up in the snapshot the way obs-validate
    // checks it: named row with burn rates and the firing marker.
    let slos = snap.get("slo").and_then(|s| s.as_arr()).expect("slo rows");
    let lat = slos
        .iter()
        .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("job_latency_p99"))
        .expect("job_latency_p99 row");
    assert_eq!(lat.get("firing").and_then(|v| v.as_bool()), Some(true));
    assert!(lat.get("fast_burn").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0);
    assert!(lat.get("slow_burn").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0);

    // Recompute the latency distributions from the flight recorder and
    // compare against the snapshot's cross-rank quantiles.
    let mut job_ns: Vec<u64> = Vec::new();
    let mut ttfg_ns: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("flight-") || !name.ends_with(".jsonl") {
            continue;
        }
        let t = std::fs::read_to_string(entry.path()).unwrap();
        for span in vira_obs::parse_flight_spans(&t).unwrap() {
            match span.name.as_str() {
                "sched.job" => job_ns.push(span.dur_ns),
                "vista.first_result" => ttfg_ns.push(span.dur_ns),
                _ => {}
            }
        }
    }
    assert_eq!(job_ns.len(), 3, "one sched.job span per job");
    assert!(!ttfg_ns.is_empty(), "first-geometry spans recorded");

    let quant = |hist: &str, q: &str| {
        snap.get("cluster")
            .and_then(|c| c.get("quantiles"))
            .and_then(|qs| qs.get(hist))
            .and_then(|h| h.get(q))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let job_exact = exact_quantile(&mut job_ns, 0.99);
    let job_ub = quant("sched_job_runtime_ns", "p99_ub");
    assert!(
        within_bucket_error(job_ub, job_exact),
        "job p99 ub {job_ub} vs flight-recorder exact {job_exact}"
    );
    let ttfg_exact = exact_quantile(&mut ttfg_ns, 0.99);
    let ttfg_ub = quant("vista_first_result_ns", "p99_ub");
    assert!(
        within_bucket_error(ttfg_ub, ttfg_exact),
        "ttfg p99 ub {ttfg_ub} vs flight-recorder exact {ttfg_exact}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Folds samples into the 64-bucket log2 layout without touching the
/// process-global registry.
fn local_hist(samples: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for &v in samples {
        h.buckets[vira_obs::Histogram::bucket_index(v)] += 1;
        h.count += 1;
        h.sum = h.sum.wrapping_add(v);
    }
    h
}

proptest! {
    /// Satellite check: log2-histogram quantile upper bounds are sound
    /// (never below the exact quantile) and tight (within one bucket,
    /// i.e. a factor of two) for p50, p99 and p999.
    #[test]
    fn quantile_upper_bounds_are_sound_and_bucket_tight(
        samples in prop::collection::vec(0u64..(1 << 48), 1..300),
    ) {
        let h = local_hist(&samples);
        let mut sorted = samples.clone();
        for &q in &[0.50, 0.99, 0.999] {
            let exact = exact_quantile(&mut sorted, q);
            let ub = h.quantile_upper_bound(q);
            prop_assert!(ub > exact, "ub {ub} not above exact {exact} at q={q}");
            prop_assert!(
                ub <= 2 * exact.max(1),
                "ub {ub} beyond one bucket of exact {exact} at q={q}"
            );
        }
    }

    /// Merging per-rank sparse deltas through the tsdb is lossless: the
    /// cross-rank merged histogram equals a direct fold of all samples,
    /// so cluster quantiles come from the real distribution.
    #[test]
    fn tsdb_merged_histogram_equals_direct_fold(
        a in prop::collection::vec(0u64..(1 << 48), 0..100),
        b in prop::collection::vec(0u64..(1 << 48), 0..100),
    ) {
        let mut db = vira_obs::Tsdb::new(vira_obs::TsdbConfig::default());
        for (rank, samples) in [(1u64, &a), (2u64, &b)] {
            let delta = MetricsDelta {
                rank,
                seq: 1,
                t_ns: 1,
                histograms: vec![(
                    "sched_job_runtime_ns".into(),
                    SparseHist::from_snapshot(&local_hist(samples)),
                )],
                ..Default::default()
            };
            db.ingest(&delta, 1);
        }
        let merged = db.merged_histogram("sched_job_runtime_ns");
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = local_hist(&all);
        prop_assert_eq!(merged.count, direct.count);
        prop_assert_eq!(merged.sum, direct.sum);
        prop_assert_eq!(merged.buckets, direct.buckets);
    }
}
