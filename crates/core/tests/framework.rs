//! End-to-end tests of the Viracocha framework: client → scheduler →
//! work group → (streamed) results → client.

use std::sync::Arc;
use vira_dms::proxy::ProxyConfig;
use vira_grid::synth::{self, test_cube};
use vira_storage::source::SynthSource;
use vira_vista::{ClientError, CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

fn launch(n_workers: usize, prefetcher: &str) -> (Viracocha, VistaClient) {
    let mut cfg = ViracochaConfig::for_tests(n_workers);
    cfg.proxy = ProxyConfig {
        prefetcher: prefetcher.into(),
        ..ProxyConfig::default()
    };
    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(test_cube(10, 4)))),
        false,
    );
    (backend, VistaClient::new(link))
}

fn iso_spec(workers: usize) -> SubmitSpec {
    SubmitSpec {
        command: "IsoDataMan".into(),
        dataset: "TestCube".into(),
        params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
        workers,
    }
}

fn finish(backend: Viracocha, mut client: VistaClient) {
    client.shutdown().unwrap();
    backend.join();
}

#[test]
fn iso_dataman_returns_geometry() {
    let (backend, mut client) = launch(2, "none");
    let out = client.run(&iso_spec(2)).unwrap();
    assert!(out.triangles.n_triangles() > 0);
    assert!(out.triangles.is_finite());
    assert_eq!(out.report.triangles, out.triangles.n_triangles() as u64);
    assert!(out.report.read_s > 0.0, "misses charge read time");
    assert!(out.report.compute_s > 0.0);
    finish(backend, client);
}

#[test]
fn simple_iso_matches_dataman_geometry() {
    // The data path must not change the result.
    let (backend, mut client) = launch(2, "none");
    let mut spec = iso_spec(2);
    let with_dms = client.run(&spec).unwrap();
    spec.command = "SimpleIso".into();
    let without = client.run(&spec).unwrap();
    assert_eq!(
        with_dms.triangles.n_triangles(),
        without.triangles.n_triangles()
    );
    // Triangle sets are equal up to merge order; compare sorted vertex
    // bags.
    let mut a = with_dms.triangles.positions.clone();
    let mut b = without.triangles.positions.clone();
    let key = |p: &[f32; 3]| (p[0].to_bits(), p[1].to_bits(), p[2].to_bits());
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a, b);
    finish(backend, client);
}

#[test]
fn result_is_independent_of_worker_count() {
    let (backend, mut client) = launch(4, "none");
    let one = client.run(&iso_spec(1)).unwrap();
    let four = client.run(&iso_spec(4)).unwrap();
    assert_eq!(one.triangles.n_triangles(), four.triangles.n_triangles());
    let mut a = one.triangles.positions.clone();
    let mut b = four.triangles.positions.clone();
    let key = |p: &[f32; 3]| (p[0].to_bits(), p[1].to_bits(), p[2].to_bits());
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a, b);
    finish(backend, client);
}

#[test]
fn parallel_extraction_is_byte_identical_to_serial() {
    // The intra-worker parallel block path must be invisible in the
    // output: same triangles, in the same order, regardless of the
    // extraction thread count. (TriangleSoup equality implies identical
    // wire bytes — the payload encoding is a pure function of the soup.)
    let run_with = |threads: usize| {
        let mut cfg = ViracochaConfig::for_tests(1);
        cfg.proxy = ProxyConfig {
            prefetcher: "none".into(),
            ..ProxyConfig::default()
        };
        cfg.extract.threads = threads;
        let (backend, link) = Viracocha::launch(cfg);
        backend.register_dataset(
            Arc::new(SynthSource::new(Arc::new(test_cube(10, 4)))),
            false,
        );
        let mut client = VistaClient::new(link);
        let out = client
            .run(&SubmitSpec {
                command: "IsoDataMan".into(),
                dataset: "TestCube".into(),
                params: CommandParams::new().set("iso", 0.15).set("n_steps", 4),
                workers: 1,
            })
            .unwrap();
        finish(backend, client);
        out
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert!(serial.triangles.n_triangles() > 0);
    assert_eq!(
        serial.triangles, parallel.triangles,
        "exact order, exact bits"
    );
    // The report says which path ran: 4 items on this worker, so the
    // full 4-thread fan-out engages; the serial run never enters the
    // parallel section.
    assert_eq!(serial.report.extract_threads, 1);
    assert_eq!(parallel.report.extract_threads, 4);
    assert_eq!(serial.report.extract_par_s, 0.0);
    assert!(parallel.report.extract_par_s > 0.0);
}

#[test]
fn second_run_is_served_from_cache() {
    let (backend, mut client) = launch(2, "none");
    let cold = client.run(&iso_spec(2)).unwrap();
    let warm = client.run(&iso_spec(2)).unwrap();
    assert!(cold.report.cache_misses > 0);
    assert_eq!(warm.report.cache_misses, 0, "fully cached");
    assert!(warm.report.cache_hits > 0);
    assert!(warm.report.read_s < cold.report.read_s);
    finish(backend, client);
}

#[test]
fn viewer_iso_streams_packets() {
    let (backend, mut client) = launch(2, "obl");
    let out = client
        .run(&SubmitSpec {
            command: "ViewerIso".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("iso", 0.15)
                .set("n_steps", 2)
                .set("batch", 50)
                .set_vec3("viewpoint", [3.0, 0.0, 0.0]),
            workers: 2,
        })
        .unwrap();
    assert!(!out.packets.is_empty(), "ViewerIso must stream");
    assert!(out.triangles.n_triangles() > 0);
    assert!(out.first_result_wall.is_some());
    // Packet sequence numbers from one worker are strictly increasing.
    for w in 0..=2 {
        let seqs: Vec<u32> = out
            .packets
            .iter()
            .filter(|p| p.from_worker == w)
            .map(|p| p.seq)
            .collect();
        assert!(seqs.windows(2).all(|x| x[1] > x[0]), "worker {w}: {seqs:?}");
    }
    finish(backend, client);
}

#[test]
fn viewer_iso_total_matches_plain_iso() {
    // Streaming reorders delivery but must not change the surface.
    let (backend, mut client) = launch(2, "none");
    let plain = client.run(&iso_spec(2)).unwrap();
    let streamed = client
        .run(&SubmitSpec {
            command: "ViewerIso".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("iso", 0.15)
                .set("n_steps", 2)
                .set("batch", 64)
                .set_vec3("viewpoint", [0.0, 5.0, 0.0]),
            workers: 2,
        })
        .unwrap();
    assert_eq!(
        plain.triangles.n_triangles(),
        streamed.triangles.n_triangles()
    );
    finish(backend, client);
}

#[test]
fn vortex_commands_find_the_test_vortex() {
    let (backend, mut client) = launch(2, "none");
    for cmd in ["SimpleVortex", "VortexDataMan"] {
        let out = client
            .run(&SubmitSpec {
                command: cmd.into(),
                dataset: "TestCube".into(),
                params: CommandParams::new()
                    .set("threshold", -0.05)
                    .set("n_steps", 1),
                workers: 2,
            })
            .unwrap();
        assert!(
            out.triangles.n_triangles() > 0,
            "{cmd} found no vortex surface"
        );
    }
    finish(backend, client);
}

#[test]
fn streamed_vortex_streams_and_matches() {
    let (backend, mut client) = launch(2, "none");
    let plain = client
        .run(&SubmitSpec {
            command: "VortexDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("threshold", -0.05)
                .set("n_steps", 1),
            workers: 2,
        })
        .unwrap();
    let streamed = client
        .run(&SubmitSpec {
            command: "StreamedVortex".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("threshold", -0.05)
                .set("n_steps", 1)
                .set("batch", 16),
            workers: 2,
        })
        .unwrap();
    assert!(!streamed.packets.is_empty());
    assert_eq!(
        plain.triangles.n_triangles(),
        streamed.triangles.n_triangles()
    );
    finish(backend, client);
}

#[test]
fn pathlines_produce_polylines() {
    let (backend, mut client) = launch(2, "none");
    for cmd in ["SimplePathlines", "PathlinesDataMan"] {
        let out = client
            .run(&SubmitSpec {
                command: cmd.into(),
                dataset: "TestCube".into(),
                params: CommandParams::new().set("n_seeds", 4).set("rngseed", 7),
                workers: 2,
            })
            .unwrap();
        assert!(!out.polylines.is_empty(), "{cmd} returned no polylines");
        for line in &out.polylines {
            assert!(line.len() >= 2);
            assert!(line.times.windows(2).all(|w| w[1] > w[0]), "times increase");
        }
        assert_eq!(out.report.polylines, out.polylines.len() as u64);
    }
    finish(backend, client);
}

#[test]
fn pathlines_deterministic_across_variants() {
    let (backend, mut client) = launch(2, "none");
    let mk = |cmd: &str| SubmitSpec {
        command: cmd.into(),
        dataset: "TestCube".into(),
        params: CommandParams::new().set("n_seeds", 3).set("rngseed", 11),
        workers: 1,
    };
    let a = client.run(&mk("SimplePathlines")).unwrap();
    let b = client.run(&mk("PathlinesDataMan")).unwrap();
    assert_eq!(a.polylines.len(), b.polylines.len());
    for (x, y) in a.polylines.iter().zip(&b.polylines) {
        assert_eq!(x, y, "same seeds → identical traces");
    }
    finish(backend, client);
}

#[test]
fn progressive_iso_streams_levels() {
    let (backend, mut client) = launch(1, "none");
    let out = client
        .run(&SubmitSpec {
            command: "ProgressiveIso".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("iso", 0.15)
                .set("n_steps", 1)
                .set("levels", 3)
                .set("batch", 1000),
            workers: 1,
        })
        .unwrap();
    assert!(out.packets.len() >= 2, "one packet per non-empty level");
    // Levels grow: later packets carry at least as many triangles as the
    // base level.
    let first = out.packets.first().unwrap().n_items;
    let max = out.packets.iter().map(|p| p.n_items).max().unwrap();
    assert!(max >= first);
    finish(backend, client);
}

#[test]
fn collective_iso_works_and_costs_more_without_parallel_fs() {
    let (backend, mut client) = launch(2, "none");
    let collective = client
        .run(&SubmitSpec {
            command: "CollectiveIso".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
            workers: 2,
        })
        .unwrap();
    // Cached from the collective run: the plain command reuses the items.
    let plain = client.run(&iso_spec(2)).unwrap();
    assert_eq!(
        collective.triangles.n_triangles(),
        plain.triangles.n_triangles()
    );
    assert!(
        collective.report.read_s > 0.0,
        "collective reads charge time"
    );
    finish(backend, client);
}

#[test]
fn unknown_command_is_rejected() {
    let (backend, mut client) = launch(1, "none");
    let err = client
        .run(&SubmitSpec {
            command: "Nope".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new(),
            workers: 1,
        })
        .unwrap_err();
    assert!(matches!(err, ClientError::Rejected(_)));
    finish(backend, client);
}

#[test]
fn unknown_dataset_is_rejected() {
    let (backend, mut client) = launch(1, "none");
    let err = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "Mystery".into(),
            params: CommandParams::new().set("iso", 0.1),
            workers: 1,
        })
        .unwrap_err();
    assert!(matches!(err, ClientError::Rejected(_)));
    finish(backend, client);
}

#[test]
fn missing_parameter_fails_the_job() {
    let (backend, mut client) = launch(1, "none");
    let err = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new(), // no "iso"
            workers: 1,
        })
        .unwrap_err();
    assert!(matches!(err, ClientError::JobFailed(_)));
    finish(backend, client);
}

#[test]
fn worker_count_is_clamped() {
    let (backend, mut client) = launch(2, "none");
    let out = client.run(&iso_spec(64)).unwrap();
    assert!(out.triangles.n_triangles() > 0);
    finish(backend, client);
}

#[test]
fn sequential_jobs_reuse_the_backend() {
    let (backend, mut client) = launch(2, "none");
    for _ in 0..5 {
        let out = client.run(&iso_spec(2)).unwrap();
        assert!(out.triangles.n_triangles() > 0);
    }
    finish(backend, client);
}

#[test]
fn concurrent_jobs_on_disjoint_groups() {
    let (backend, mut client) = launch(4, "none");
    // Two 2-worker jobs submitted back to back run concurrently.
    let j1 = client.submit(&iso_spec(2)).unwrap();
    let j2 = client.submit(&iso_spec(2)).unwrap();
    // Collect in submission order; both must complete.
    let o1 = client.collect(j1).unwrap();
    let o2 = client.collect(j2).unwrap();
    assert_eq!(o1.triangles.n_triangles(), o2.triangles.n_triangles());
    finish(backend, client);
}

#[test]
fn queued_job_runs_after_workers_free_up() {
    let (backend, mut client) = launch(2, "none");
    // Second job needs both workers → waits for the first.
    let j1 = client.submit(&iso_spec(2)).unwrap();
    let j2 = client.submit(&iso_spec(2)).unwrap();
    let o1 = client.collect(j1).unwrap();
    let o2 = client.collect(j2).unwrap();
    assert!(o1.triangles.n_triangles() > 0);
    assert!(o2.triangles.n_triangles() > 0);
    finish(backend, client);
}

#[test]
fn cancel_of_queued_job_returns_empty_final() {
    let (backend, mut client) = launch(1, "none");
    let j1 = client.submit(&iso_spec(1)).unwrap();
    let j2 = client.submit(&iso_spec(1)).unwrap(); // queued behind j1
    client.cancel(j2).unwrap();
    let o1 = client.collect(j1).unwrap();
    assert!(o1.triangles.n_triangles() > 0);
    let o2 = client.collect(j2).unwrap();
    assert_eq!(o2.triangles.n_triangles(), 0, "cancelled before start");
    finish(backend, client);
}

/// Regression: cancelling a job that is still *queued* must not leave
/// its id behind in the shared cancel set — the job never dispatches,
/// so nothing would ever clean the entry up, and the set would grow
/// forever in a long interactive session.
#[test]
fn cancel_of_queued_job_leaves_no_cancel_set_residue() {
    let (backend, mut client) = launch(1, "none");
    let j1 = client.submit(&iso_spec(1)).unwrap();
    let j2 = client.submit(&iso_spec(1)).unwrap(); // queued behind j1
    client.cancel(j2).unwrap();
    let o1 = client.collect(j1).unwrap();
    assert!(o1.triangles.n_triangles() > 0);
    let o2 = client.collect(j2).unwrap();
    assert!(
        o2.cancelled,
        "a queued-job cancel ends in a Cancelled final"
    );
    assert!(
        backend.cancel_set().read().is_empty(),
        "queue-position cancels never dispatch, so the cancel set must stay empty"
    );
    finish(backend, client);
}

#[test]
fn engine_dataset_runs_through_the_framework() {
    // A scaled-down Engine: 23 blocks, multi-block distribution across 3
    // workers.
    let mut cfg = ViracochaConfig::for_tests(3);
    cfg.proxy.prefetcher = "none".into();
    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(synth::engine(5)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let out = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 15.0).set("n_steps", 1),
            workers: 3,
        })
        .unwrap();
    assert!(out.triangles.n_triangles() > 0, "engine intake isosurface");
    finish(backend, client);
}

#[test]
fn report_accounts_costs_per_category() {
    let (backend, mut client) = launch(2, "obl");
    let out = client.run(&iso_spec(2)).unwrap();
    // Send time includes at least the worker partial + final merges.
    assert!(out.report.send_s > 0.0);
    // Demand requests = items processed.
    assert_eq!(out.report.demand_requests, 2); // 1 block × 2 steps... per worker
    finish(backend, client);
}

#[test]
fn streamlines_trace_the_frozen_field() {
    let (backend, mut client) = launch(2, "none");
    let out = client
        .run(&SubmitSpec {
            command: "Streamlines".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("n_seeds", 4)
                .set("rngseed", 5)
                .set("step", 1)
                .set("t_span", 0.05),
            workers: 2,
        })
        .unwrap();
    assert!(!out.polylines.is_empty());
    // The test vortex rotates about z: streamlines conserve radius.
    for line in &out.polylines {
        let first = line.points.first().unwrap();
        let last = line.points.last().unwrap();
        let r0 = ((first[0] * first[0] + first[1] * first[1]) as f64).sqrt();
        let r1 = ((last[0] * last[0] + last[1] * last[1]) as f64).sqrt();
        assert!((r0 - r1).abs() < 0.05, "radius drifted: {r0} → {r1}");
    }
    finish(backend, client);
}

#[test]
fn streaklines_return_release_ordered_points() {
    let (backend, mut client) = launch(2, "none");
    let out = client
        .run(&SubmitSpec {
            command: "Streaklines".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("n_seeds", 3)
                .set("rngseed", 9)
                .set("releases", 6),
            workers: 2,
        })
        .unwrap();
    assert!(!out.polylines.is_empty());
    for line in &out.polylines {
        assert!(line.len() >= 2);
        // Stored times are release times, latest release first →
        // strictly decreasing along the line.
        assert!(
            line.times.windows(2).all(|w| w[1] < w[0]),
            "release times: {:?}",
            line.times
        );
    }
    finish(backend, client);
}

#[test]
fn progress_events_reach_the_client() {
    let (backend, mut client) = launch(2, "none");
    let out = client.run(&iso_spec(2)).unwrap();
    assert!(!out.progress.is_empty(), "iso commands report progress");
    // Per worker, fractions are non-decreasing and end at 1.0.
    for w in 1..=2usize {
        let fr: Vec<f32> = out
            .progress
            .iter()
            .filter(|p| p.from_worker == w)
            .map(|p| p.fraction)
            .collect();
        if fr.is_empty() {
            continue; // a worker with no assigned items reports nothing
        }
        assert!(fr.windows(2).all(|x| x[1] >= x[0]), "worker {w}: {fr:?}");
        assert!((fr.last().unwrap() - 1.0).abs() < 1e-6);
    }
    finish(backend, client);
}

#[test]
fn cancel_of_running_job_returns_early() {
    // A dilated backend so the job takes real wall time to churn through
    // its items; cancel lands mid-run and the command stops early.
    let mut cfg = ViracochaConfig::for_tests(1);
    cfg.dilation = 0.02;
    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(synth::engine(4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    // Full run for reference.
    let full = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 15.0).set("n_steps", 8),
            workers: 1,
        })
        .unwrap();
    // Cold rerun (cleared caches) that gets cancelled shortly after
    // submission.
    client
        .run(&SubmitSpec {
            command: "ClearCache".into(),
            dataset: "Engine".into(),
            params: CommandParams::new(),
            workers: 1,
        })
        .unwrap();
    let job = client
        .submit(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 15.0).set("n_steps", 8),
            workers: 1,
        })
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(60));
    client.cancel(job).unwrap();
    let out = client.collect(job).unwrap();
    assert!(
        out.triangles.n_triangles() < full.triangles.n_triangles(),
        "cancelled run produced {} of {} triangles",
        out.triangles.n_triangles(),
        full.triangles.n_triangles()
    );
    finish(backend, client);
}

#[test]
fn progress_fraction_capped_at_one() {
    // ClearCache / commands never report > 1.0 even with rounding games.
    let (backend, mut client) = launch(2, "none");
    let out = client.run(&iso_spec(2)).unwrap();
    for p in &out.progress {
        assert!((0.0..=1.0).contains(&p.fraction));
    }
    finish(backend, client);
}

#[test]
fn derived_field_cache_preserves_geometry_and_saves_compute() {
    let (backend, mut client) = launch(2, "none");
    let spec = |threshold: f64, cached: bool| SubmitSpec {
        command: "VortexDataMan".into(),
        dataset: "TestCube".into(),
        params: CommandParams::new()
            .set("threshold", threshold)
            .set("n_steps", 2)
            .set("cache_fields", if cached { "true" } else { "false" }),
        workers: 2,
    };
    // Identical geometry either way.
    let plain = client.run(&spec(-0.05, false)).unwrap();
    let cached_first = client.run(&spec(-0.05, true)).unwrap();
    assert_eq!(
        plain.triangles.n_triangles(),
        cached_first.triangles.n_triangles()
    );
    // Threshold tweak on the memoized field: far less modeled compute.
    let tweak = client.run(&spec(-0.08, true)).unwrap();
    assert!(
        tweak.report.compute_s < cached_first.report.compute_s / 2.0,
        "memoized sweep {} vs first {}",
        tweak.report.compute_s,
        cached_first.report.compute_s
    );
    assert!(tweak.triangles.n_triangles() > 0);
    // A sweep threshold outside the memoized block range skips whole
    // blocks via the range memoized next to the bricktree — no geometry,
    // every cell accounted as skipped.
    let out_of_range = client.run(&spec(1e9, true)).unwrap();
    assert_eq!(out_of_range.triangles.n_triangles(), 0);
    assert!(out_of_range.report.cells_skipped > 0);
    finish(backend, client);
}

#[test]
fn scheduler_survives_malformed_frames() {
    let (backend, link) = Viracocha::launch(ViracochaConfig::for_tests(1));
    backend.register_dataset(Arc::new(SynthSource::new(Arc::new(test_cube(8, 2)))), false);
    // Raw garbage straight onto the link: the scheduler must ignore it.
    link.request(bytes::Bytes::from_static(b"\xde\xad\xbe\xef garbage"))
        .unwrap();
    link.request(bytes::Bytes::new()).unwrap();
    let mut client = VistaClient::new(link);
    let out = client.run(&iso_spec(1)).unwrap();
    assert!(out.triangles.n_triangles() > 0, "backend still works");
    // And a malformed frame *after* real traffic doesn't break shutdown.
    finish(backend, client);
}

#[test]
fn shutdown_rejects_new_submissions_but_drains_running_jobs() {
    let mut cfg = ViracochaConfig::for_tests(1);
    cfg.dilation = 0.02;
    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(synth::engine(4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let job = client
        .submit(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 15.0).set("n_steps", 4),
            workers: 1,
        })
        .unwrap();
    // Shutdown while the job runs; then try to submit another. The late
    // submission either reaches the scheduler (and is rejected) or finds
    // the link already closed — both are acceptable.
    client.shutdown().unwrap();
    let late = client.submit(&SubmitSpec {
        command: "IsoDataMan".into(),
        dataset: "Engine".into(),
        params: CommandParams::new().set("iso", 15.0),
        workers: 1,
    });
    // The first job either ran to completion (dispatched before the
    // shutdown landed) or was rejected from the queue — never dropped
    // silently.
    match client.collect(job) {
        Ok(out) => assert!(out.triangles.n_triangles() > 0),
        Err(ClientError::Rejected(reason)) => assert!(reason.message().contains("shutting down")),
        Err(other) => panic!("job dropped silently: {other:?}"),
    }
    match late {
        Ok(job2) => assert!(matches!(
            client.collect(job2),
            Err(ClientError::Rejected(_)) | Err(ClientError::Comm(_))
        )),
        Err(ClientError::Comm(_)) => {}
        Err(other) => panic!("unexpected submit error: {other:?}"),
    }
    backend.join();
}

#[test]
fn ghosted_vortex_extraction_runs_and_differs_at_boundaries() {
    // Engine: 23 sector blocks whose interfaces host the swirl core.
    let (backend, link) = Viracocha::launch(ViracochaConfig::for_tests(2));
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(synth::engine(6)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let spec = |ghosts: bool| SubmitSpec {
        command: "VortexDataMan".into(),
        dataset: "Engine".into(),
        params: CommandParams::new()
            .set("threshold", -2.0e4)
            .set("n_steps", 1)
            .set("ghosts", if ghosts { "true" } else { "false" }),
        workers: 2,
    };
    let plain = client.run(&spec(false)).unwrap();
    let ghosted = client.run(&spec(true)).unwrap();
    assert!(plain.triangles.n_triangles() > 0);
    assert!(ghosted.triangles.n_triangles() > 0);
    // One-sided vs centered boundary stencils produce (slightly)
    // different surfaces near interfaces.
    assert_ne!(
        plain.triangles.n_triangles(),
        ghosted.triangles.n_triangles(),
        "ghost stencils must change boundary values"
    );
    // The ghosted surface is watertight at block interfaces: welding the
    // whole soup leaves no boundary edges except at the physical domain
    // boundary (cylinder walls/ends). Compare defect counts instead of
    // absolutes: ghosts must not *increase* them.
    let d_plain = vira_extract::weld(&plain.triangles, 1e-7).edge_defects();
    let d_ghost = vira_extract::weld(&ghosted.triangles, 1e-7).edge_defects();
    assert!(
        d_ghost.boundary_edges <= d_plain.boundary_edges,
        "ghosted: {d_ghost:?} vs plain: {d_plain:?}"
    );
    finish(backend, client);
}
