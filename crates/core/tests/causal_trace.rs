//! Acceptance test for distributed causal tracing: a traced run must
//! produce a per-job flight recording whose critical-path attribution
//! tiles the job's wall time and agrees with the `JobReport` the
//! client received over the wire.
//!
//! The tracer, metrics registry and event log are process-global, so
//! this file holds exactly one test — integration-test binaries run in
//! their own process, which keeps the drain/export windows exact.

use std::sync::Arc;
use vira_dms::proxy::ProxyConfig;
use vira_grid::synth::test_cube;
use vira_storage::source::SynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

#[test]
fn causal_trace_attribution_matches_job_report() {
    vira_obs::set_stderr_echo(false);
    vira_obs::set_enabled(true);
    // Discard anything recorded before the run under test.
    let _ = vira_obs::drain();
    let _ = vira_obs::drain_events();
    vira_obs::reset_clock_offsets();

    let mut cfg = ViracochaConfig::for_tests(2);
    cfg.proxy = ProxyConfig {
        prefetcher: "none".into(),
        ..ProxyConfig::default()
    };
    let (backend, link) = Viracocha::launch(cfg);
    backend.register_dataset(
        Arc::new(SynthSource::new(Arc::new(test_cube(10, 4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let job = client
        .submit(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
            workers: 2,
        })
        .unwrap();
    let ctx = client.trace_ctx(job).expect("submit mints a trace context");
    assert_ne!(ctx.trace_id, 0, "minted trace ids are never the sentinel");
    let out = client.collect(job).unwrap();
    client.shutdown().unwrap();
    backend.join();

    // --- artifacts: flight recording exists for this job's trace ---------
    let dir = std::env::temp_dir().join(format!("vira_causal_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary = vira_obs::export_all(&dir).unwrap();
    assert!(
        summary.flights >= 1,
        "the traced job must produce a flight recording"
    );

    // The Chrome trace binds the cross-thread span tree with flow
    // events and passes the flow self-check.
    let trace_text = std::fs::read_to_string(dir.join("trace.json")).unwrap();
    let flows = vira_obs::validate_chrome_trace_flows(&trace_text).unwrap();
    assert!(flows >= 1, "cross-thread parent links must emit flow pairs");

    // --- critical-path attribution ----------------------------------------
    let rows = vira_obs::analyze_dir(&dir).unwrap();
    let row = rows
        .iter()
        .find(|r| r.trace_id == ctx.trace_id)
        .expect("analyzer yields a row for the submitted trace");
    assert_eq!(row.job, job);

    // The stage attribution must tile the wall clock: everything the
    // scheduler and workers did, plus the explicit gather/finalize
    // remainders, covers ≥95% of submit→done and never exceeds it by
    // more than clock-alignment noise (5%).
    assert!(
        row.coverage >= 0.95,
        "attribution covers {:.1}% of wall time",
        row.coverage * 100.0
    );
    assert!(
        (row.attributed_ns() as f64) <= row.wall_ns as f64 * 1.05,
        "attribution must not overshoot the wall clock"
    );
    assert!(row.merge_ns > 0, "the master's merge phase is attributed");
    // ttft brackets the scheduler-side wall interval on both ends
    // (client submit precedes enqueue; delivery follows job end), so
    // it may exceed wall by frame transit — but only by that much.
    assert!(
        row.ttft_ns > 0 && row.ttft_ns as f64 <= row.wall_ns as f64 * 1.05 + 10e6,
        "time-to-first-triangle ({} ns) tracks the job window ({} ns)",
        row.ttft_ns,
        row.wall_ns
    );

    // --- cross-check against the wire-reported JobReport ------------------
    // Both sides measure the same intervals from the same monotonic
    // clock (dilation 0 ⇒ modeled == wall), so they must agree within
    // a small absolute grace plus a relative band.
    let tol = |reported: f64| 0.010 + reported.abs() * 0.25;
    let queue_s = row.queue_wait_ns as f64 / 1e9;
    assert!(
        (queue_s - out.report.queue_wait_s).abs() <= tol(out.report.queue_wait_s),
        "flight queue wait {queue_s:.6}s vs report {:.6}s",
        out.report.queue_wait_s
    );
    let merge_s = row.merge_ns as f64 / 1e9;
    assert!(
        (merge_s - out.report.merge_s).abs() <= tol(out.report.merge_s),
        "flight merge {merge_s:.6}s vs report {:.6}s",
        out.report.merge_s
    );

    let _ = std::fs::remove_dir_all(&dir);
}
