//! Cross-process deployment harness: `vira serve` + N `vira worker`
//! OS processes over a Unix socket in a tempdir.
//!
//! Every scale and resilience claim pinned by the in-process suites is
//! re-pinned here against the real socket transport: byte-identical
//! geometry, graceful SHUTDOWN, `--spawn-local`, and — via the
//! `VIRA_TEST_ABORT` crash hooks in `worker.rs` — a worker process
//! dying mid-job, recovered by the existing retransmit → probe →
//! dead-rank → requeue path instead of a panic or a hang.
//!
//! The tests run serially (shared CPU budget; each one spawns four
//! processes) and each uses its own socket path, so a crashed test
//! never wedges the next.

#![cfg(unix)]

use bytes::Bytes;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, MutexGuard};
use vira_extract::mesh::TriangleSoup;
use vira_grid::synth::test_cube;
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, JobOutcome, SubmitSpec, VistaClient};
use viracocha::{Viracocha, ViracochaConfig};

/// Path of the `vira` binary under test, provided by cargo.
const VIRA: &str = env!("CARGO_BIN_EXE_vira");
const RES: usize = 8;
const RANKS: usize = 3;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another multiproc test failed.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A per-test scratch directory (socket, soup files, fault plans),
/// removed on drop. No tempfile crate: unique by pid + test name.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("vira-mp-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create tempdir");
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn unix_addr(sock: &Path) -> String {
    format!("unix:{}", sock.display())
}

/// Spawns `vira serve` on `sock` with the standard cube/iso job spec
/// plus `extra` flags. Stdout is piped for RESULT-line scraping.
fn spawn_serve(sock: &Path, extra: &[&str]) -> Child {
    let mut cmd = Command::new(VIRA);
    cmd.args([
        "serve",
        "--listen",
        &unix_addr(sock),
        "--ranks",
        &RANKS.to_string(),
        "--dataset",
        "cube",
        "--res",
        &RES.to_string(),
        "--command",
        "IsoDataMan",
        "--param",
        "iso=0.15",
        "--param",
        "n_steps=2",
        "--accept-timeout-ms",
        "60000",
    ]);
    cmd.args(extra);
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    cmd.spawn().expect("spawn vira serve")
}

/// Spawns one `vira worker` and blocks until its handshake line
/// reports the assigned rank — rank ids are assigned in connection
/// order, so sequential calls give the caller deterministic placement
/// (needed to aim a crash hook at the group master or a member).
fn spawn_worker_expect_rank(sock: &Path, env: Option<(&str, &str)>, want_rank: usize) -> Child {
    let mut cmd = Command::new(VIRA);
    cmd.args([
        "worker",
        "--connect",
        &unix_addr(sock),
        "--dataset",
        "cube",
        "--res",
        &RES.to_string(),
    ]);
    if let Some((k, v)) = env {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn vira worker");
    let out = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(out).lines();
    loop {
        let line = lines
            .next()
            .expect("worker closed stdout before joining")
            .expect("read worker stdout");
        if let Some(rest) = line.strip_prefix("joined as rank ") {
            let rank: usize = rest
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("unparsable join line: {line}"));
            assert_eq!(rank, want_rank, "workers must join in spawn order");
            break;
        }
    }
    // Keep draining in the background so the child never blocks on a
    // full pipe.
    std::thread::spawn(move || for _ in lines {});
    child
}

fn wait_ok(child: Child, who: &str) -> String {
    let out = child.wait_with_output().expect("wait for child");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(out.status.success(), "{who} failed; stdout:\n{stdout}");
    stdout
}

/// One serve RESULT line parsed into (ok, triangles, degraded, retries).
fn parse_result(stdout: &str, job: usize) -> (bool, u64, bool, u64) {
    let tag = format!("RESULT job={job} ");
    let line = stdout
        .lines()
        .find(|l| l.starts_with(&tag))
        .unwrap_or_else(|| panic!("no RESULT line for job {job} in:\n{stdout}"));
    let get = |k: &str| {
        let prefix = format!("{k}=");
        line.split_whitespace()
            .find_map(|t| t.strip_prefix(&prefix).map(str::to_string))
    };
    (
        get("ok").as_deref() == Some("1"),
        get("triangles").and_then(|v| v.parse().ok()).unwrap_or(0),
        get("degraded").as_deref() == Some("1"),
        get("retries").and_then(|v| v.parse().ok()).unwrap_or(0),
    )
}

/// One key of one RESULT line (for fields outside the common 4-tuple).
fn parse_result_field(stdout: &str, job: usize, key: &str) -> Option<String> {
    let tag = format!("RESULT job={job} ");
    let line = stdout.lines().find(|l| l.starts_with(&tag))?;
    let prefix = format!("{key}=");
    line.split_whitespace()
        .find_map(|t| t.strip_prefix(&prefix).map(str::to_string))
}

/// The identical job through the historical in-process transport — the
/// baseline every socket run must match byte for byte.
fn in_process_outcome() -> JobOutcome {
    let mut config = ViracochaConfig::for_tests(RANKS);
    config.proxy.prefetcher = "obl".into();
    let (backend, link) = Viracocha::launch(config);
    backend.register_dataset(
        Arc::new(CachedSynthSource::new(Arc::new(test_cube(RES, 4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let out = client
        .run(&SubmitSpec {
            command: "IsoDataMan".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new().set("iso", 0.15).set("n_steps", 2),
            workers: RANKS,
        })
        .expect("in-process job");
    client.shutdown().expect("shutdown");
    backend.join();
    out
}

fn soup_from_file(path: &Path) -> TriangleSoup {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    TriangleSoup::from_bytes(Bytes::from(bytes)).expect("parse saved soup")
}

/// Exact bit-level vertex view, order-independent: a degraded requeue
/// runs on a different group split, so merge order may differ while
/// the geometry must not (mirror of `tests/chaos.rs::sorted_bits`).
fn sorted_bits(soup: &TriangleSoup) -> Vec<[u32; 3]> {
    let mut v: Vec<[u32; 3]> = soup
        .positions
        .iter()
        .map(|p| [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()])
        .collect();
    v.sort_unstable();
    v
}

/// Acceptance criterion: `vira serve` + 3 separate worker OS processes
/// over a Unix socket produce the same TriangleSoup, byte for byte, as
/// the in-process transport — and the whole world shuts down
/// gracefully (every process exits 0).
#[test]
fn socket_world_matches_in_process_byte_identically() {
    let _g = serial();
    let tmp = TempDir::new("bytes");
    let sock = tmp.path().join("hub.sock");
    let soup = tmp.path().join("soup");
    let serve = spawn_serve(
        &sock,
        &["--jobs", "1", "--save-soup", soup.to_str().unwrap()],
    );
    let workers: Vec<Child> = (1..=RANKS)
        .map(|r| spawn_worker_expect_rank(&sock, None, r))
        .collect();
    let stdout = wait_ok(serve, "vira serve");
    let (ok, tris, degraded, retries) = parse_result(&stdout, 0);
    assert!(ok && !degraded && retries == 0, "clean socket run:\n{stdout}");
    assert!(tris > 0, "the job must produce geometry:\n{stdout}");
    for w in workers {
        wait_ok(w, "vira worker"); // graceful SHUTDOWN reached them all
    }

    let baseline = in_process_outcome();
    assert_eq!(baseline.triangles.n_triangles() as u64, tris);
    let socket_soup = soup_from_file(&tmp.path().join("soup.0"));
    // Same group, same rank order, same merge: raw bytes must match,
    // not just the sorted view.
    assert_eq!(
        socket_soup.to_bytes(),
        baseline.triangles.to_bytes(),
        "socket transport changed the merged geometry"
    );
}

/// `--spawn-local` forks its own worker processes and still reaps
/// everything; back-to-back jobs on one session reuse the world.
#[test]
fn spawn_local_runs_multiple_jobs() {
    let _g = serial();
    let tmp = TempDir::new("spawnlocal");
    let sock = tmp.path().join("hub.sock");
    let serve = spawn_serve(&sock, &["--spawn-local", "--jobs", "2"]);
    let stdout = wait_ok(serve, "vira serve");
    let (ok0, tris0, deg0, _) = parse_result(&stdout, 0);
    let (ok1, tris1, deg1, _) = parse_result(&stdout, 1);
    assert!(ok0 && ok1, "both jobs complete:\n{stdout}");
    assert!(!deg0 && !deg1, "no degradation on a healthy world:\n{stdout}");
    assert_eq!(tris0, tris1, "identical jobs, identical geometry");
    assert!(tris0 > 0);
}

/// The socket chaos leg: a seeded lossy `FaultPlan` on the hub
/// transport *plus* an actual worker-process death mid-run. The
/// existing retransmit → probe → dead-rank → requeue path must recover
/// both jobs with geometry bit-identical to a clean in-process run.
#[test]
fn killed_worker_process_recovers_byte_identically() {
    let _g = serial();
    let tmp = TempDir::new("chaos");
    let sock = tmp.path().join("hub.sock");
    let soup = tmp.path().join("soup");
    let plan = tmp.path().join("chaos.plan");
    std::fs::write(&plan, "seed 7\nall drop 0.05 dup 0.02\n").expect("write plan");
    let serve = spawn_serve(
        &sock,
        &[
            "--jobs",
            "2",
            "--fast-resilience",
            "--fault-plan",
            plan.to_str().unwrap(),
            "--save-soup",
            soup.to_str().unwrap(),
        ],
    );
    let w1 = spawn_worker_expect_rank(&sock, None, 1);
    let w2 = spawn_worker_expect_rank(&sock, None, 2);
    // Rank 3 (a non-root group member) dies right after shipping its
    // first partial — from then on it is a silent, dead OS process.
    let w3 = spawn_worker_expect_rank(&sock, Some(("VIRA_TEST_ABORT", "after-partial")), 3);
    let stdout = wait_ok(serve, "vira serve");
    let (ok0, tris0, deg0, _) = parse_result(&stdout, 0);
    let (ok1, tris1, deg1, _) = parse_result(&stdout, 1);
    assert!(ok0 && ok1, "both jobs must complete:\n{stdout}");
    assert!(tris0 > 0 && tris1 > 0);
    assert!(
        deg0 ^ deg1,
        "exactly one job sees the death as a degraded requeue; the \
         other runs clean (before the kill, or on the shrunken \
         survivor pool):\n{stdout}"
    );
    let st3 = w3.wait_with_output().expect("wait for killed worker");
    assert!(!st3.status.success(), "rank 3 must have died abnormally");
    wait_ok(w1, "worker 1");
    wait_ok(w2, "worker 2");

    let base = sorted_bits(&in_process_outcome().triangles);
    for j in 0..2 {
        let got = sorted_bits(&soup_from_file(&tmp.path().join(format!("soup.{j}"))));
        assert_eq!(got, base, "job {j} geometry diverged under chaos");
    }
}

/// Regression (satellite fix): losing the *group master's* connection
/// between PARTIAL and DONE — the worst spot, the scheduler already
/// paid for the whole job — must map onto the liveness-probe/dead-rank
/// path and requeue on the survivors, not panic or hang the scheduler.
#[test]
fn master_death_between_partial_and_done_requeues_instead_of_hanging() {
    let _g = serial();
    let tmp = TempDir::new("masterdeath");
    let sock = tmp.path().join("hub.sock");
    let soup = tmp.path().join("soup");
    let serve = spawn_serve(
        &sock,
        &[
            "--jobs",
            "1",
            "--fast-resilience",
            "--save-soup",
            soup.to_str().unwrap(),
        ],
    );
    // Rank 1 is the group root: it gathers the partials, merges, and
    // dies just before sending JOB_DONE (SIGABRT ≙ SIGKILL for the
    // transport: the connection simply drops mid-job).
    let w1 = spawn_worker_expect_rank(&sock, Some(("VIRA_TEST_ABORT", "before-done")), 1);
    let w2 = spawn_worker_expect_rank(&sock, None, 2);
    let w3 = spawn_worker_expect_rank(&sock, None, 3);
    let stdout = wait_ok(serve, "vira serve");
    let (ok, tris, degraded, retries) = parse_result(&stdout, 0);
    assert!(ok, "the job must still complete:\n{stdout}");
    assert!(degraded, "recovery must be a degraded requeue:\n{stdout}");
    assert!(retries >= 1, "the dead master was retransmitted to first:\n{stdout}");
    assert!(tris > 0);
    let st1 = w1.wait_with_output().expect("wait for killed master");
    assert!(!st1.status.success(), "rank 1 must have died abnormally");
    wait_ok(w2, "worker 2");
    wait_ok(w3, "worker 3");

    let base = sorted_bits(&in_process_outcome().triangles);
    let got = sorted_bits(&soup_from_file(&tmp.path().join("soup.0")));
    assert_eq!(got, base, "requeued job geometry diverged");
}

/// Spawns a worker that *rejoins* a previously-convicted rank and
/// blocks until its handshake line confirms the claimed rank.
fn spawn_rejoin_worker(sock: &Path, claim_rank: usize) -> Child {
    let mut cmd = Command::new(VIRA);
    cmd.args([
        "worker",
        "--connect",
        &unix_addr(sock),
        "--dataset",
        "cube",
        "--res",
        &RES.to_string(),
        "--rejoin",
        &claim_rank.to_string(),
    ]);
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn rejoin worker");
    let out = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(out).lines();
    loop {
        let line = lines
            .next()
            .expect("rejoin worker closed stdout before joining")
            .expect("read rejoin worker stdout");
        if let Some(rest) = line.strip_prefix("rejoined as rank ") {
            let rank: usize = rest
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("unparsable rejoin line: {line}"));
            assert_eq!(rank, claim_rank, "hub must confirm the claimed rank");
            break;
        }
    }
    std::thread::spawn(move || for _ in lines {});
    child
}

/// In-process ProgressiveIso run — the uncancelled triangle count the
/// cross-process cancel leg must stay strictly below.
fn in_process_progressive_triangles() -> u64 {
    let mut config = ViracochaConfig::for_tests(RANKS);
    config.proxy.prefetcher = "obl".into();
    let (backend, link) = Viracocha::launch(config);
    backend.register_dataset(
        Arc::new(CachedSynthSource::new(Arc::new(test_cube(RES, 4)))),
        false,
    );
    let mut client = VistaClient::new(link);
    let out = client
        .run(&SubmitSpec {
            command: "ProgressiveIso".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new()
                .set("iso", 0.15)
                .set("n_steps", 4)
                .set("levels", 5),
            workers: RANKS,
        })
        .expect("in-process progressive job");
    client.shutdown().expect("shutdown");
    backend.join();
    out.triangles.n_triangles() as u64
}

/// Tentpole acceptance: a client-initiated cancel mid-stream crosses
/// the process boundary. `--cancel-after-packets 1` makes the serve
/// client fire `Cancel` after the first streamed partial; the
/// scheduler fans CANCEL frames to every worker process, whose socket
/// reader drops the job id into the rank-local cancel set so
/// `ctx.is_cancelled()` trips mid-extraction. Exactly one Cancelled
/// final comes back (`cancelled=1`, still `ok=1`) and the job's
/// geometry is truncated relative to an uncancelled run.
#[test]
fn cross_process_cancel_truncates_the_job() {
    let _g = serial();
    let tmp = TempDir::new("cancel");
    let sock = tmp.path().join("hub.sock");
    // ProgressiveIso with extra levels: a long, many-packet job, so
    // the cancel lands while plenty of extraction is still ahead.
    let serve = spawn_serve(
        &sock,
        &[
            "--spawn-local",
            "--jobs",
            "1",
            "--command",
            "ProgressiveIso",
            "--param",
            "n_steps=4",
            "--param",
            "levels=5",
            "--cancel-after-packets",
            "1",
        ],
    );
    let stdout = wait_ok(serve, "vira serve (cancel)");
    let (ok, tris, degraded, retries) = parse_result(&stdout, 0);
    assert!(ok, "a cancelled job still yields a final outcome:\n{stdout}");
    assert!(!degraded && retries == 0, "cancel is not a fault:\n{stdout}");
    assert_eq!(
        parse_result_field(&stdout, 0, "cancelled").as_deref(),
        Some("1"),
        "the final must be Cancelled:\n{stdout}"
    );
    assert_eq!(
        stdout.matches("RESULT job=0 ").count(),
        1,
        "exactly one final per cancelled job (no DONE after Cancelled):\n{stdout}"
    );
    let full = in_process_progressive_triangles();
    assert!(
        tris < full,
        "cancel must truncate extraction ({tris} streamed vs {full} uncancelled):\n{stdout}"
    );
}

/// Tentpole acceptance: kill → convict → restart → `--rejoin`. The
/// group master (rank 1) dies between PARTIAL and DONE, so job 0
/// deterministically convicts it (degraded requeue, retries ≥ 1, as
/// pinned by the master-death test above). During the `--pause-ms`
/// window a fresh OS process reclaims rank 1 via the REJOIN handshake;
/// the scheduler must *clear the conviction* — observable as
/// `sched_rejoins_total ≥ 1` in the exported metrics, which only
/// increments when a rank is removed from the dead set — and job 1
/// runs clean. The rejoined process then receives the final SHUTDOWN
/// like everyone else (exit 0).
#[test]
fn killed_worker_process_rejoins_and_serves_again() {
    let _g = serial();
    let tmp = TempDir::new("rejoin");
    let sock = tmp.path().join("hub.sock");
    let traces = tmp.path().join("traces");
    let mut serve = spawn_serve(
        &sock,
        &[
            "--jobs",
            "2",
            "--fast-resilience",
            "--pause-ms",
            "4000",
            "--trace-out",
            traces.to_str().unwrap(),
        ],
    );
    let w1 = spawn_worker_expect_rank(&sock, Some(("VIRA_TEST_ABORT", "before-done")), 1);
    let w2 = spawn_worker_expect_rank(&sock, None, 2);
    let w3 = spawn_worker_expect_rank(&sock, None, 3);

    // Scrape serve stdout incrementally: the rejoin has to happen
    // inside the pause between job 0 and job 1.
    let out = serve.stdout.take().expect("piped serve stdout");
    let mut lines = BufReader::new(out).lines();
    let mut collected: Vec<String> = Vec::new();
    loop {
        let line = lines
            .next()
            .expect("serve ended before job 0 finished")
            .expect("read serve stdout");
        let done = line.starts_with("RESULT job=0 ");
        collected.push(line);
        if done {
            break;
        }
    }
    let st1 = w1.wait_with_output().expect("wait for killed master");
    assert!(!st1.status.success(), "rank 1 must have died abnormally");

    // Restart rank 1: blocks until the hub's WELCOME confirms the
    // reclaimed rank, which also means the REJOIN event reached the
    // scheduler's inbox.
    let w1b = spawn_rejoin_worker(&sock, 1);

    for line in lines {
        collected.push(line.expect("read serve stdout"));
    }
    let status = serve.wait().expect("wait for serve");
    let stdout = collected.join("\n");
    assert!(status.success(), "serve failed:\n{stdout}");

    let (ok0, tris0, deg0, retries0) = parse_result(&stdout, 0);
    let (ok1, tris1, deg1, retries1) = parse_result(&stdout, 1);
    assert!(ok0 && ok1, "both jobs must complete:\n{stdout}");
    assert!(tris0 > 0 && tris1 > 0);
    assert!(
        deg0 && retries0 >= 1,
        "job 0 convicts the dead master (degraded requeue):\n{stdout}"
    );
    assert!(
        !deg1 && retries1 == 0,
        "job 1 runs clean on the rejoined world:\n{stdout}"
    );
    // The conviction was really lifted: sched_rejoins_total increments
    // only when the scheduler removes a rank from its dead set. (A
    // shrunken 2-worker world would also run job 1 clean — this is
    // what distinguishes an actual rejoin.)
    let prom = std::fs::read_to_string(traces.join("metrics.prom"))
        .expect("serve exported metrics.prom");
    let rejoins: u64 = prom
        .lines()
        .find_map(|l| l.strip_prefix("sched_rejoins_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no sched_rejoins_total sample in:\n{prom}"));
    assert!(rejoins >= 1, "scheduler never cleared the conviction:\n{prom}");
    wait_ok(w2, "worker 2");
    wait_ok(w3, "worker 3");
    wait_ok(w1b, "rejoined worker 1");
}

/// TCP works end to end too (the quickstart path for real remote
/// workers): one job over 127.0.0.1 with an OS-assigned port, workers
/// spawned by the server itself.
#[test]
fn tcp_spawn_local_roundtrip() {
    let _g = serial();
    let tmp = TempDir::new("tcp");
    let mut cmd = Command::new(VIRA);
    cmd.args([
        "serve",
        "--listen",
        "tcp:127.0.0.1:0",
        "--ranks",
        "2",
        "--dataset",
        "cube",
        "--res",
        &RES.to_string(),
        "--command",
        "IsoDataMan",
        "--param",
        "iso=0.15",
        "--param",
        "n_steps=2",
        "--spawn-local",
        "--jobs",
        "1",
        "--workers",
        "2",
    ]);
    cmd.current_dir(tmp.path());
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    let serve = cmd.spawn().expect("spawn vira serve");
    let stdout = wait_ok(serve, "vira serve (tcp)");
    let (ok, tris, degraded, _) = parse_result(&stdout, 0);
    assert!(ok && !degraded, "clean tcp run:\n{stdout}");
    assert!(tris > 0);
}
