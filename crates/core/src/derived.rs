//! Caching of **derived** data items.
//!
//! The DMS naming scheme deliberately distinguishes items by type and
//! parameters, not just by source file (§4): *"distinct data items may
//! be derived from the same file"*. The λ₂ workflow is the motivating
//! case — the scalar field is expensive to compute but independent of
//! the threshold, while the explorative loop (§1.1) keeps re-extracting
//! with new thresholds: *"in practice a value about zero is used … this
//! accurate adjustment depends on the data set."*
//!
//! [`DerivedFieldCache`] memoizes derived scalar fields per worker node,
//! keyed by the DMS item identity of `(dataset, type, block, step)`,
//! with LRU eviction under a byte budget. `VortexDataMan` uses it when
//! the `cache_fields` parameter is set; the `ablation_derived` bench
//! quantifies the effect on a threshold sweep.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use vira_extract::bricktree::BrickTree;
use vira_grid::block::BlockStepId;
use vira_grid::field::ScalarField;

/// Key of a derived field: which dataset, which derivation, which item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    dataset: String,
    kind: &'static str,
    id: BlockStepId,
}

struct Entry {
    field: Arc<ScalarField>,
    /// Min/max bricktree over `field`, built lazily on first pruning
    /// request. Its footprint (< 5% of the field, see
    /// `BrickTree::memory_bytes`) is not charged to the byte budget.
    tree: Option<Arc<BrickTree>>,
    /// Whole-block min/max of `field`, memoized on first request so a
    /// threshold sweep's block-level skip test never rescans the field.
    /// Harvested for free from the bricktree root when one exists.
    range: Option<(f64, f64)>,
    bytes: usize,
    last_use: u64,
}

/// A byte-bounded LRU cache of derived scalar fields (one per worker
/// node, shared across jobs like the data proxy's caches).
pub struct DerivedFieldCache {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    used_bytes: usize,
    capacity_bytes: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl DerivedFieldCache {
    pub fn new(capacity_bytes: usize) -> DerivedFieldCache {
        DerivedFieldCache {
            inner: Mutex::new(Inner {
                capacity_bytes,
                ..Inner::default()
            }),
        }
    }

    /// Returns the cached field or computes and caches it.
    pub fn get_or_compute(
        &self,
        dataset: &str,
        kind: &'static str,
        id: BlockStepId,
        compute: impl FnOnce() -> ScalarField,
    ) -> Arc<ScalarField> {
        let key = Key {
            dataset: dataset.to_string(),
            kind,
            id,
        };
        {
            let mut g = self.inner.lock();
            g.stamp += 1;
            let stamp = g.stamp;
            if g.map.contains_key(&key) {
                g.hits += 1;
                let e = g.map.get_mut(&key).expect("just checked");
                e.last_use = stamp;
                return e.field.clone();
            }
            g.misses += 1;
        }
        // Compute outside the lock: other items stay retrievable while
        // this (potentially long) derivation runs.
        let field = Arc::new(compute());
        let bytes = field.values.len() * std::mem::size_of::<f64>();
        let mut g = self.inner.lock();
        g.stamp += 1;
        let stamp = g.stamp;
        // Another thread may have computed the same key concurrently:
        // keep the existing entry, drop our duplicate.
        if g.map.contains_key(&key) {
            let e = g.map.get_mut(&key).expect("just checked");
            e.last_use = stamp;
            return e.field.clone();
        }
        while g.used_bytes + bytes > g.capacity_bytes && !g.map.is_empty() {
            let victim = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
                .expect("non-empty map");
            if let Some(e) = g.map.remove(&victim) {
                g.used_bytes -= e.bytes;
            }
        }
        g.used_bytes += bytes;
        g.map.insert(
            key,
            Entry {
                field: field.clone(),
                tree: None,
                range: None,
                bytes,
                last_use: stamp,
            },
        );
        field
    }

    /// Like [`get_or_compute`](Self::get_or_compute), but also returns
    /// the field's min/max bricktree, building and memoizing it on first
    /// request so a threshold sweep pays the tree construction once.
    pub fn get_or_compute_with_tree(
        &self,
        dataset: &str,
        kind: &'static str,
        id: BlockStepId,
        compute: impl FnOnce() -> ScalarField,
    ) -> (Arc<ScalarField>, Arc<BrickTree>) {
        let field = self.get_or_compute(dataset, kind, id, compute);
        let key = Key {
            dataset: dataset.to_string(),
            kind,
            id,
        };
        {
            let mut g = self.inner.lock();
            if let Some(e) = g.map.get_mut(&key) {
                if let Some(t) = &e.tree {
                    return (field, t.clone());
                }
            }
        }
        // Build outside the lock (one pass over the field). The field for
        // a given key is deterministic, so even if the entry was evicted
        // and recomputed concurrently the tree stays valid for `field`.
        let tree = Arc::new(BrickTree::build(&field));
        let mut g = self.inner.lock();
        if let Some(e) = g.map.get_mut(&key) {
            let t = e.tree.get_or_insert_with(|| tree.clone());
            return (field, t.clone());
        }
        (field, tree)
    }

    /// Bricktree for an already-cached field, or `None` when the field is
    /// not cached. Never computes a field: callers on the lazy streaming
    /// path use this to prune only when a memoized field is available and
    /// fall back to an unpruned scan otherwise.
    pub fn peek_tree(
        &self,
        dataset: &str,
        kind: &'static str,
        id: BlockStepId,
    ) -> Option<(Arc<ScalarField>, Arc<BrickTree>)> {
        let key = Key {
            dataset: dataset.to_string(),
            kind,
            id,
        };
        let field = {
            let mut g = self.inner.lock();
            g.stamp += 1;
            let stamp = g.stamp;
            let e = g.map.get_mut(&key)?;
            e.last_use = stamp;
            if let Some(t) = &e.tree {
                return Some((e.field.clone(), t.clone()));
            }
            e.field.clone()
        };
        let tree = Arc::new(BrickTree::build(&field));
        let mut g = self.inner.lock();
        if let Some(e) = g.map.get_mut(&key) {
            let t = e.tree.get_or_insert_with(|| tree.clone()).clone();
            return Some((field, t));
        }
        Some((field, tree))
    }

    /// Whole-block min/max of an already-cached field, or `None` when
    /// the field is not cached. Memoized next to the bricktree: a
    /// memoized bricktree's root range is reused for free, otherwise one
    /// lane-parallel scan ([`ScalarField::range`]) runs and its result
    /// sticks to the entry. Never computes a field — callers use this
    /// for the cheap block-level "can this threshold produce geometry at
    /// all?" test and fall back to extraction when unknown.
    pub fn range_of(
        &self,
        dataset: &str,
        kind: &'static str,
        id: BlockStepId,
    ) -> Option<(f64, f64)> {
        let key = Key {
            dataset: dataset.to_string(),
            kind,
            id,
        };
        let field = {
            let mut g = self.inner.lock();
            g.stamp += 1;
            let stamp = g.stamp;
            let e = g.map.get_mut(&key)?;
            e.last_use = stamp;
            if let Some(r) = e.range {
                return Some(r);
            }
            if let Some(t) = &e.tree {
                let r = t.root_range();
                e.range = Some(r);
                return Some(r);
            }
            e.field.clone()
        };
        // Scan outside the lock; a field for a given key is
        // deterministic, so a concurrent scan of the same key lands on
        // the same value.
        let r = field.range()?;
        let mut g = self.inner.lock();
        if let Some(e) = g.map.get_mut(&key) {
            e.range.get_or_insert(r);
        }
        Some(r)
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    /// Drops every cached field.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.map.clear();
        g.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_grid::block::BlockDims;

    fn field(v: f64) -> ScalarField {
        ScalarField::from_fn(BlockDims::new(4, 4, 4), |_, _, _| v)
    }

    fn bs(b: u32, s: u32) -> BlockStepId {
        BlockStepId::new(b, s)
    }

    #[test]
    fn second_lookup_hits_without_recompute() {
        let cache = DerivedFieldCache::new(1 << 20);
        let mut computes = 0;
        for _ in 0..3 {
            let f = cache.get_or_compute("Engine", "lambda2", bs(0, 0), || {
                computes += 1;
                field(1.0)
            });
            assert_eq!(f.values[0], 1.0);
        }
        assert_eq!(computes, 1);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn distinct_items_do_not_collide() {
        let cache = DerivedFieldCache::new(1 << 20);
        let a = cache.get_or_compute("Engine", "lambda2", bs(0, 0), || field(1.0));
        let b = cache.get_or_compute("Engine", "lambda2", bs(1, 0), || field(2.0));
        let c = cache.get_or_compute("Engine", "speed", bs(0, 0), || field(3.0));
        let d = cache.get_or_compute("Propfan", "lambda2", bs(0, 0), || field(4.0));
        assert_eq!(
            (a.values[0], b.values[0], c.values[0], d.values[0]),
            (1.0, 2.0, 3.0, 4.0)
        );
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        // Each 4³ field is 512 bytes; capacity for two.
        let cache = DerivedFieldCache::new(1100);
        cache.get_or_compute("E", "f", bs(0, 0), || field(0.0));
        cache.get_or_compute("E", "f", bs(1, 0), || field(1.0));
        // Touch item 0 so item 1 is the LRU victim.
        cache.get_or_compute("E", "f", bs(0, 0), || unreachable!("cached"));
        cache.get_or_compute("E", "f", bs(2, 0), || field(2.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.used_bytes() <= 1100);
        // Item 1 was evicted: recompute happens.
        let mut recomputed = false;
        cache.get_or_compute("E", "f", bs(1, 0), || {
            recomputed = true;
            field(1.0)
        });
        assert!(recomputed);
    }

    #[test]
    fn tree_is_memoized_alongside_the_field() {
        let cache = DerivedFieldCache::new(1 << 20);
        let (f, t1) = cache.get_or_compute_with_tree("E", "f", bs(0, 0), || field(2.0));
        assert_eq!(t1.root_range(), (2.0, 2.0));
        assert!(t1.matches(f.dims));
        let (_, t2) = cache.get_or_compute_with_tree("E", "f", bs(0, 0), || unreachable!());
        assert!(Arc::ptr_eq(&t1, &t2), "second lookup reuses the tree");
        // The tree does not count against the byte budget.
        assert_eq!(cache.used_bytes(), 4 * 4 * 4 * 8);
    }

    #[test]
    fn range_is_memoized_and_harvested_from_the_tree() {
        let cache = DerivedFieldCache::new(1 << 20);
        assert!(
            cache.range_of("E", "f", bs(0, 0)).is_none(),
            "range_of never computes a field"
        );
        cache.get_or_compute("E", "f", bs(0, 0), || field(2.5));
        assert_eq!(cache.range_of("E", "f", bs(0, 0)), Some((2.5, 2.5)));
        // Asking again serves the memoized value.
        assert_eq!(cache.range_of("E", "f", bs(0, 0)), Some((2.5, 2.5)));
        // With a bricktree present its root range is harvested for free.
        cache.get_or_compute_with_tree("E", "f", bs(1, 0), || field(7.0));
        assert_eq!(cache.range_of("E", "f", bs(1, 0)), Some((7.0, 7.0)));
    }

    #[test]
    fn peek_tree_never_computes_a_field() {
        let cache = DerivedFieldCache::new(1 << 20);
        assert!(cache.peek_tree("E", "f", bs(0, 0)).is_none());
        cache.get_or_compute("E", "f", bs(0, 0), || field(3.0));
        let (f, t) = cache
            .peek_tree("E", "f", bs(0, 0))
            .expect("field is cached");
        assert_eq!(f.values[0], 3.0);
        assert_eq!(t.root_range(), (3.0, 3.0));
        // peek builds and memoizes the tree; the with_tree path reuses it.
        let (_, t2) = cache.get_or_compute_with_tree("E", "f", bs(0, 0), || unreachable!());
        assert!(Arc::ptr_eq(&t, &t2));
    }

    #[test]
    fn eviction_drops_the_tree_with_its_field() {
        let cache = DerivedFieldCache::new(1100);
        cache.get_or_compute_with_tree("E", "f", bs(0, 0), || field(0.0));
        cache.get_or_compute("E", "f", bs(1, 0), || field(1.0));
        cache.get_or_compute("E", "f", bs(2, 0), || field(2.0));
        // Item 0 was the LRU victim: its tree is gone too.
        assert!(cache.peek_tree("E", "f", bs(0, 0)).is_none());
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = DerivedFieldCache::new(1 << 20);
        cache.get_or_compute("E", "f", bs(0, 0), || field(0.0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(DerivedFieldCache::new(1 << 20));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let f = cache.get_or_compute("E", "f", bs(i % 8, 0), || field((i % 8) as f64));
                    assert_eq!(f.values[0], (i % 8) as f64, "thread {t}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 200);
        assert!(misses >= 8);
    }
}
