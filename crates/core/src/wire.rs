//! Internal message encodings between scheduler, workers and master
//! workers (layer 2 traffic riding on the layer-1 transport).
//!
//! Same framing as the client protocol: `u32` JSON-header length, JSON
//! header, binary payload.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use vira_comm::transport::Rank;
use vira_dms::cache::ResidencyDigest;
use vira_dms::stats::DmsStatsSnapshot;
use vira_vista::protocol::{CommandParams, JobId, PayloadKind};

/// Scheduler → worker: run a command as part of a work group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandMsg {
    pub job: JobId,
    pub command: String,
    pub dataset: String,
    pub params: CommandParams,
    /// Ranks of the work group (sorted; the first is the master worker).
    pub group: Vec<Rank>,
    /// Dispatch attempt (0 on first dispatch, bumped on every requeue)
    /// so stale frames from an abandoned attempt can be told apart.
    #[serde(default)]
    pub attempt: u32,
    /// Integrity check over the other fields, filled in by
    /// [`encode_command`]. A command frame is pure JSON, so a flipped
    /// bit that still parses could silently change e.g. the iso value;
    /// the check catches that. `0` means "unchecked" (older peers).
    #[serde(default)]
    pub check: u32,
    /// Causal trace context: the submit's trace id and the scheduler
    /// dispatch span to parent worker spans under. `0` means "no
    /// trace" (tracing disabled, or frames from older peers). Both are
    /// deliberately excluded from [`command_check`] so checked frames
    /// stay verifiable across peers that do not know these fields.
    #[serde(default)]
    pub trace_id: u64,
    #[serde(default)]
    pub parent_span_id: u64,
}

/// Marker suffix a telemetry heartbeat PING carries after its 8-byte
/// nonce (`nonce(8) | b"OBS1"`, 12 bytes total). Workers that know the
/// marker append their pending metric delta to the pong; older workers
/// echo the payload untouched and answer with a classic pong.
pub const OBS_PING_SUFFIX: &[u8; 4] = b"OBS1";

/// True when a PING payload requests a telemetry delta in the pong.
pub fn is_obs_ping(payload: &[u8]) -> bool {
    payload.len() == 12 && &payload[8..] == OBS_PING_SUFFIX
}

/// Worker → master: this worker's share of the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialHeader {
    pub job: JobId,
    pub kind: PayloadKind,
    pub n_items: u32,
    /// Modeled seconds charged by this worker, per category.
    pub read_s: f64,
    pub compute_s: f64,
    pub send_s: f64,
    /// This worker's DMS counters for the job window.
    pub dms: DmsStatsSnapshot,
    /// Extraction cells skipped by bricktree pruning (E11/E15 reporting).
    #[serde(default)]
    pub cells_skipped: u64,
    /// Finest-level bricks skipped whole.
    #[serde(default)]
    pub bricks_skipped: u64,
    /// Modeled seconds this worker spent in the intra-worker parallel
    /// extraction section (absent in frames from older peers → 0).
    #[serde(default)]
    pub extract_par_s: f64,
    /// Extraction threads the worker used (`0` = unknown/older peer,
    /// `1` = serial path).
    #[serde(default)]
    pub extract_threads: u32,
    /// Dispatch attempt this partial answers (mirrors the command).
    #[serde(default)]
    pub attempt: u32,
    /// FNV-1a checksum of the binary payload, filled in by
    /// [`encode_partial`]; `0` means "unchecked" (older peers).
    #[serde(default)]
    pub payload_crc: u32,
    /// Fingerprint of this worker's DMS cache after the job, harvested
    /// by the master into the DONE frame for locality-aware placement
    /// (absent in frames from older peers → unknown).
    #[serde(default)]
    pub residency: ResidencyDigest,
    /// Causal trace context propagated from the command: the trace id
    /// and this worker's `worker.job` span, so the master (and the
    /// flight recorder) can bind the partial to its producer. `0`
    /// means "no trace" (older peers or tracing disabled).
    #[serde(default)]
    pub trace_id: u64,
    #[serde(default)]
    pub parent_span_id: u64,
    /// Piggybacked telemetry: this worker's metric delta in the
    /// `OBSD1` text codec (`vira_obs::ship`), harvested by the master
    /// into the DONE frame. Empty = none (older peers or nothing new).
    #[serde(default)]
    pub obs_delta: String,
    /// Set when the command failed on this worker.
    pub error: Option<String>,
}

/// Master → scheduler: the merged job result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoneHeader {
    pub job: JobId,
    pub kind: PayloadKind,
    pub n_items: u32,
    /// Aggregated worker accounting.
    pub read_s: f64,
    pub compute_s: f64,
    pub send_s: f64,
    /// Modeled seconds the master spent gathering and splicing the
    /// group's partials (absent in frames from older peers).
    #[serde(default)]
    pub merge_s: f64,
    pub dms: DmsStatsSnapshot,
    /// Summed bricktree pruning counters of the whole group.
    #[serde(default)]
    pub cells_skipped: u64,
    #[serde(default)]
    pub bricks_skipped: u64,
    /// Summed parallel-extraction seconds of the whole group (absent in
    /// frames from older peers → 0).
    #[serde(default)]
    pub extract_par_s: f64,
    /// Maximum extraction thread count any group member used (`0` =
    /// unknown/older peers, `1` = all serial).
    #[serde(default)]
    pub extract_threads: u32,
    /// Dispatch attempt this result answers (mirrors the command).
    #[serde(default)]
    pub attempt: u32,
    /// FNV-1a checksum of the binary payload, filled in by
    /// [`encode_done`]; `0` means "unchecked" (older peers).
    #[serde(default)]
    pub payload_crc: u32,
    /// Per-rank DMS cache fingerprints of the whole work group (the
    /// master's own plus those piggybacked on the partials), used by the
    /// scheduler to score future placements (absent in older frames →
    /// empty).
    #[serde(default)]
    pub residency: Vec<(Rank, ResidencyDigest)>,
    /// Causal trace context propagated from the command: the trace id
    /// and the master's `worker.job` span. `0` means "no trace"
    /// (older peers or tracing disabled).
    #[serde(default)]
    pub trace_id: u64,
    #[serde(default)]
    pub parent_span_id: u64,
    /// Piggybacked telemetry: the group's metric deltas (`OBSD1` text
    /// codec) — the master's own plus any harvested from the partials —
    /// keyed by producing rank, mirroring how `residency` rides DONE.
    /// Empty = none (older peers or nothing new).
    #[serde(default)]
    pub obs_deltas: Vec<(Rank, String)>,
    pub error: Option<String>,
}

/// FNV-1a over a byte slice, used both as the payload checksum on
/// framed messages and (over a canonical field encoding) as the
/// command integrity check. A value of `0` is reserved for
/// "unchecked", so a real hash of zero is nudged to `1` — a harmless
/// 2⁻³² bias for an error-detection (not cryptographic) code.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Canonical integrity check over every [`CommandMsg`] field except
/// `check` itself. Length-prefixed so field boundaries can't alias.
fn command_check(msg: &CommandMsg) -> u32 {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&msg.job.to_le_bytes());
    buf.extend_from_slice(&(msg.command.len() as u32).to_le_bytes());
    buf.extend_from_slice(msg.command.as_bytes());
    buf.extend_from_slice(&(msg.dataset.len() as u32).to_le_bytes());
    buf.extend_from_slice(msg.dataset.as_bytes());
    for (k, v) in &msg.params.0 {
        buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
        buf.extend_from_slice(k.as_bytes());
        buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        buf.extend_from_slice(v.as_bytes());
    }
    for &r in &msg.group {
        buf.extend_from_slice(&(r as u64).to_le_bytes());
    }
    buf.extend_from_slice(&msg.attempt.to_le_bytes());
    fnv1a(&buf)
}

fn encode<T: Serialize>(header: &T, payload: &Bytes) -> Bytes {
    let json = serde_json::to_vec(header).expect("wire headers always serialize");
    let mut buf = BytesMut::with_capacity(4 + json.len() + payload.len());
    buf.put_u32_le(json.len() as u32);
    buf.put_slice(&json);
    buf.put_slice(payload);
    buf.freeze()
}

fn decode<T: for<'de> Deserialize<'de>>(mut frame: Bytes) -> Option<(T, Bytes)> {
    if frame.remaining() < 4 {
        return None;
    }
    let len = frame.get_u32_le() as usize;
    if frame.remaining() < len {
        return None;
    }
    let json = frame.split_to(len);
    let header = serde_json::from_slice(&json).ok()?;
    Some((header, frame))
}

pub fn encode_command(msg: &CommandMsg) -> Bytes {
    let mut msg = msg.clone();
    msg.check = command_check(&msg);
    encode(&msg, &Bytes::new())
}

/// Rejects frames whose integrity check no longer matches the fields
/// (a corrupted-but-still-parseable command must not run with, say, a
/// silently altered iso value). `check == 0` frames are from older
/// peers and pass unchecked.
pub fn decode_command(frame: Bytes) -> Option<CommandMsg> {
    let (msg, _): (CommandMsg, _) = decode(frame)?;
    if msg.check != 0 && msg.check != command_check(&msg) {
        return None;
    }
    Some(msg)
}

pub fn encode_partial(header: &PartialHeader, payload: Bytes) -> Bytes {
    let mut header = header.clone();
    header.payload_crc = fnv1a(&payload);
    encode(&header, &payload)
}

/// Rejects frames whose binary payload fails its checksum (the JSON
/// header is already guarded by serde strictness; the payload is
/// where a flipped bit would otherwise slip through as bad geometry).
pub fn decode_partial(frame: Bytes) -> Option<(PartialHeader, Bytes)> {
    let (h, p): (PartialHeader, Bytes) = decode(frame)?;
    if h.payload_crc != 0 && h.payload_crc != fnv1a(&p) {
        return None;
    }
    Some((h, p))
}

pub fn encode_done(header: &DoneHeader, payload: Bytes) -> Bytes {
    let mut header = header.clone();
    header.payload_crc = fnv1a(&payload);
    encode(&header, &payload)
}

pub fn decode_done(frame: Bytes) -> Option<(DoneHeader, Bytes)> {
    let (h, p): (DoneHeader, Bytes) = decode(frame)?;
    if h.payload_crc != 0 && h.payload_crc != fnv1a(&p) {
        return None;
    }
    Some((h, p))
}

/// Scheduler → worker cancel notice: the bare job id, 8 bytes LE. Kept
/// deliberately tiny and JSON-free so the socket reader thread can
/// decode it inline without pulling a payload apart mid-stream.
pub fn encode_cancel(job: JobId) -> Bytes {
    Bytes::copy_from_slice(&job.to_le_bytes())
}

pub fn decode_cancel(payload: &[u8]) -> Option<JobId> {
    let bytes: [u8; 8] = payload.try_into().ok()?;
    Some(JobId::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_roundtrip() {
        assert_eq!(decode_cancel(&encode_cancel(0)), Some(0));
        assert_eq!(decode_cancel(&encode_cancel(u64::MAX)), Some(u64::MAX));
        assert_eq!(decode_cancel(&encode_cancel(42)), Some(42));
        assert_eq!(decode_cancel(b"short"), None, "truncated payload");
        assert_eq!(decode_cancel(&[0u8; 9]), None, "oversized payload");
    }

    #[test]
    fn command_roundtrip() {
        let msg = CommandMsg {
            job: 3,
            command: "ViewerIso".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 0.4),
            group: vec![1, 2, 5],
            attempt: 2,
            check: 0,
            trace_id: 0,
            parent_span_id: 0,
        };
        let got = decode_command(encode_command(&msg)).unwrap();
        assert_ne!(got.check, 0, "encode_command must fill in the check");
        let mut want = msg;
        want.check = got.check;
        assert_eq!(got, want);
    }

    #[test]
    fn tampered_command_fields_are_rejected() {
        // A bit flip that still parses as JSON must not yield a
        // command with silently altered fields.
        let msg = CommandMsg {
            job: 3,
            command: "ViewerIso".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 0.4),
            group: vec![1, 2, 5],
            attempt: 0,
            check: 0,
            trace_id: 0,
            parent_span_id: 0,
        };
        let frame = encode_command(&msg);
        let mut v: serde_json::Value = serde_json::from_slice(&frame[4..]).unwrap();
        v.as_object_mut().unwrap()["dataset"] = "Rotor".into();
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        assert!(decode_command(buf.freeze()).is_none());
    }

    #[test]
    fn partial_roundtrip_with_payload() {
        let h = PartialHeader {
            job: 1,
            kind: PayloadKind::Triangles,
            n_items: 2,
            read_s: 1.0,
            compute_s: 2.0,
            send_s: 0.1,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 120,
            bricks_skipped: 3,
            extract_par_s: 0.5,
            extract_threads: 4,
            attempt: 1,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 0,
            parent_span_id: 0,
            obs_delta: String::new(),
            error: None,
        };
        let payload = Bytes::from_static(b"geometry");
        let (h2, p2) = decode_partial(encode_partial(&h, payload.clone())).unwrap();
        assert_eq!(h2.payload_crc, fnv1a(&payload));
        let mut want = h;
        want.payload_crc = h2.payload_crc;
        assert_eq!(h2, want);
        assert_eq!(p2, payload);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let h = PartialHeader {
            job: 1,
            kind: PayloadKind::Triangles,
            n_items: 2,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 0,
            parent_span_id: 0,
            obs_delta: String::new(),
            error: None,
        };
        let frame = encode_partial(&h, Bytes::from_static(b"geometry"));
        let mut bytes = frame.to_vec();
        let last = bytes.len() - 1; // inside the binary payload
        bytes[last] ^= 0x10;
        assert!(decode_partial(Bytes::from(bytes)).is_none());
    }

    #[test]
    fn done_roundtrip_with_error() {
        let h = DoneHeader {
            job: 9,
            kind: PayloadKind::None,
            n_items: 0,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            merge_s: 0.25,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 0,
            parent_span_id: 0,
            obs_deltas: Vec::new(),
            error: Some("worker 3 failed".into()),
        };
        let (h2, p) = decode_done(encode_done(&h, Bytes::new())).unwrap();
        let mut want = h;
        want.payload_crc = h2.payload_crc;
        assert_eq!(h2, want);
        assert!(p.is_empty());
    }

    #[test]
    fn headers_without_counters_decode_with_zero_defaults() {
        // Frames from peers predating the pruning counters must still
        // decode (the fields are #[serde(default)]).
        let h = PartialHeader {
            job: 4,
            kind: PayloadKind::None,
            n_items: 0,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 7,
            bricks_skipped: 7,
            extract_par_s: 0.25,
            extract_threads: 2,
            attempt: 0,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 0,
            parent_span_id: 0,
            obs_delta: String::new(),
            error: None,
        };
        let mut v = serde_json::to_value(&h).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("cells_skipped");
        obj.remove("bricks_skipped");
        obj.remove("attempt");
        obj.remove("payload_crc");
        // Older peers also predate intra-worker parallel extraction.
        obj.remove("extract_par_s");
        obj.remove("extract_threads");
        // Older peers also predate the DMS fallback counter.
        v["dms"].as_object_mut().unwrap().remove("fallbacks");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (h2, _) = decode_partial(buf.freeze()).unwrap();
        assert_eq!(h2.cells_skipped, 0);
        assert_eq!(h2.bricks_skipped, 0);
        assert_eq!(h2.attempt, 0);
        assert_eq!(h2.payload_crc, 0, "absent crc means unchecked");
        assert_eq!(h2.dms.fallbacks, 0);
        assert_eq!(h2.extract_par_s, 0.0);
        assert_eq!(h2.extract_threads, 0, "absent thread count means unknown");
        assert_eq!(h2.job, 4);
    }

    #[test]
    fn done_header_without_merge_time_defaults_to_zero() {
        // Frames from masters predating the per-stage merge timing must
        // still decode.
        let h = DoneHeader {
            job: 11,
            kind: PayloadKind::Triangles,
            n_items: 5,
            read_s: 1.0,
            compute_s: 2.0,
            send_s: 0.5,
            merge_s: 0.125,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 0,
            parent_span_id: 0,
            obs_deltas: Vec::new(),
            error: None,
        };
        let mut v = serde_json::to_value(&h).unwrap();
        v.as_object_mut().unwrap().remove("merge_s");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (h2, _) = decode_done(buf.freeze()).unwrap();
        assert_eq!(h2.merge_s, 0.0);
        assert_eq!(h2.read_s, 1.0);
        assert_eq!(h2.job, 11);
    }

    #[test]
    fn commands_without_resilience_fields_decode_unchecked() {
        // Frames from peers predating attempt/check must still decode.
        let msg = CommandMsg {
            job: 8,
            command: "ViewerCut".into(),
            dataset: "Engine".into(),
            params: CommandParams::new(),
            group: vec![0, 1],
            attempt: 0,
            check: 0,
            trace_id: 0,
            parent_span_id: 0,
        };
        let frame = encode_command(&msg);
        let mut v: serde_json::Value = serde_json::from_slice(&frame[4..]).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("attempt");
        obj.remove("check");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let got = decode_command(buf.freeze()).unwrap();
        assert_eq!(got.attempt, 0);
        assert_eq!(got.check, 0);
        assert_eq!(got.job, 8);
    }

    #[test]
    fn done_header_residency_roundtrips() {
        let mut d1 = ResidencyDigest::empty();
        d1.insert(vira_dms::ItemId(17));
        let mut d2 = ResidencyDigest::empty();
        d2.insert(vira_dms::ItemId(900));
        let h = DoneHeader {
            job: 6,
            kind: PayloadKind::Triangles,
            n_items: 1,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            merge_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: vec![(1, d1.clone()), (2, d2.clone())],
            trace_id: 0,
            parent_span_id: 0,
            obs_deltas: Vec::new(),
            error: None,
        };
        let (h2, _) = decode_done(encode_done(&h, Bytes::new())).unwrap();
        assert_eq!(h2.residency, vec![(1, d1), (2, d2)]);
    }

    #[test]
    fn headers_without_residency_decode_with_empty_defaults() {
        // Frames from peers predating locality-aware placement carry no
        // residency fields; they must decode to the unknown digest /
        // empty list.
        let h = PartialHeader {
            job: 2,
            kind: PayloadKind::None,
            n_items: 0,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: ResidencyDigest::from_items([vira_dms::ItemId(3)]),
            trace_id: 0,
            parent_span_id: 0,
            obs_delta: String::new(),
            error: None,
        };
        let mut v = serde_json::to_value(&h).unwrap();
        v.as_object_mut().unwrap().remove("residency");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (h2, _) = decode_partial(buf.freeze()).unwrap();
        assert!(h2.residency.is_unknown());

        let d = DoneHeader {
            job: 2,
            kind: PayloadKind::None,
            n_items: 0,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            merge_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: vec![(1, ResidencyDigest::empty())],
            trace_id: 0,
            parent_span_id: 0,
            obs_deltas: Vec::new(),
            error: None,
        };
        let mut v = serde_json::to_value(&d).unwrap();
        v.as_object_mut().unwrap().remove("residency");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (d2, _) = decode_done(buf.freeze()).unwrap();
        assert!(d2.residency.is_empty());
    }

    #[test]
    fn traced_command_verifies_and_decodes_without_trace_fields() {
        // New writer -> new reader: the trace context rides along and
        // the integrity check (which excludes it) still verifies.
        let msg = CommandMsg {
            job: 12,
            command: "ViewerIso".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 0.4),
            group: vec![0, 1],
            attempt: 1,
            check: 0,
            trace_id: 0xfeed,
            parent_span_id: 77,
        };
        let frame = encode_command(&msg);
        let got = decode_command(frame.clone()).unwrap();
        assert_eq!(got.trace_id, 0xfeed);
        assert_eq!(got.parent_span_id, 77);
        assert_ne!(got.check, 0);
        // New writer -> old reader: an old peer's check computation
        // never saw the trace fields, so the check over the remaining
        // fields must be identical to an untraced frame's.
        let mut untraced = msg.clone();
        untraced.trace_id = 0;
        untraced.parent_span_id = 0;
        let old = decode_command(encode_command(&untraced)).unwrap();
        assert_eq!(
            old.check, got.check,
            "trace fields must not perturb the check"
        );
        // Old writer -> new reader: frames without the fields decode
        // to the zero (no-trace) context.
        let mut v: serde_json::Value = serde_json::from_slice(&frame[4..]).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("trace_id");
        obj.remove("parent_span_id");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let got = decode_command(buf.freeze()).unwrap();
        assert_eq!(got.trace_id, 0);
        assert_eq!(got.parent_span_id, 0);
        assert_eq!(got.job, 12);
    }

    #[test]
    fn partial_and_done_trace_fields_default_to_zero() {
        let h = DoneHeader {
            job: 5,
            kind: PayloadKind::Triangles,
            n_items: 1,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            merge_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 42,
            parent_span_id: 9,
            obs_deltas: Vec::new(),
            error: None,
        };
        let (h2, _) = decode_done(encode_done(&h, Bytes::new())).unwrap();
        assert_eq!((h2.trace_id, h2.parent_span_id), (42, 9));
        // Old-writer frames (fields absent) decode to the no-trace context.
        let mut v = serde_json::to_value(&h).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("trace_id");
        obj.remove("parent_span_id");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (h2, _) = decode_done(buf.freeze()).unwrap();
        assert_eq!((h2.trace_id, h2.parent_span_id), (0, 0));
    }

    #[test]
    fn obs_delta_fields_roundtrip_and_default_empty() {
        // New writer -> new reader: the piggybacked telemetry delta
        // rides the partial header verbatim.
        let mut h = PartialHeader {
            job: 7,
            kind: PayloadKind::Triangles,
            n_items: 1,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 0,
            parent_span_id: 0,
            obs_delta: "OBSD1 2 1 100\nc sched_jobs_done_total 3\n".into(),
            error: None,
        };
        let (h2, _) = decode_partial(encode_partial(&h, Bytes::new())).unwrap();
        assert_eq!(h2.obs_delta, h.obs_delta);
        // Old-writer frames (field absent) decode to an empty delta.
        h.payload_crc = h2.payload_crc;
        let mut v = serde_json::to_value(&h).unwrap();
        v.as_object_mut().unwrap().remove("obs_delta");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (h2, _) = decode_partial(buf.freeze()).unwrap();
        assert!(h2.obs_delta.is_empty());

        let mut d = DoneHeader {
            job: 7,
            kind: PayloadKind::Triangles,
            n_items: 1,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            merge_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            extract_par_s: 0.0,
            extract_threads: 0,
            attempt: 0,
            payload_crc: 0,
            residency: Default::default(),
            trace_id: 0,
            parent_span_id: 0,
            obs_deltas: vec![(1, "OBSD1 1 4 200\ng dms_cache_blocks 9\n".into())],
            error: None,
        };
        let (d2, _) = decode_done(encode_done(&d, Bytes::new())).unwrap();
        assert_eq!(d2.obs_deltas, d.obs_deltas);
        d.payload_crc = d2.payload_crc;
        let mut v = serde_json::to_value(&d).unwrap();
        v.as_object_mut().unwrap().remove("obs_deltas");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (d2, _) = decode_done(buf.freeze()).unwrap();
        assert!(d2.obs_deltas.is_empty());
    }

    #[test]
    fn malformed_frames_yield_none() {
        assert!(decode_command(Bytes::from_static(b"x")).is_none());
        assert!(decode_partial(Bytes::from_static(b"\x10\x00\x00\x00nope")).is_none());
    }
}
