//! Internal message encodings between scheduler, workers and master
//! workers (layer 2 traffic riding on the layer-1 transport).
//!
//! Same framing as the client protocol: `u32` JSON-header length, JSON
//! header, binary payload.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use vira_comm::transport::Rank;
use vira_dms::stats::DmsStatsSnapshot;
use vira_vista::protocol::{CommandParams, JobId, PayloadKind};

/// Scheduler → worker: run a command as part of a work group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandMsg {
    pub job: JobId,
    pub command: String,
    pub dataset: String,
    pub params: CommandParams,
    /// Ranks of the work group (sorted; the first is the master worker).
    pub group: Vec<Rank>,
}

/// Worker → master: this worker's share of the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialHeader {
    pub job: JobId,
    pub kind: PayloadKind,
    pub n_items: u32,
    /// Modeled seconds charged by this worker, per category.
    pub read_s: f64,
    pub compute_s: f64,
    pub send_s: f64,
    /// This worker's DMS counters for the job window.
    pub dms: DmsStatsSnapshot,
    /// Extraction cells skipped by bricktree pruning (E11/E15 reporting).
    #[serde(default)]
    pub cells_skipped: u64,
    /// Finest-level bricks skipped whole.
    #[serde(default)]
    pub bricks_skipped: u64,
    /// Set when the command failed on this worker.
    pub error: Option<String>,
}

/// Master → scheduler: the merged job result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoneHeader {
    pub job: JobId,
    pub kind: PayloadKind,
    pub n_items: u32,
    /// Aggregated worker accounting.
    pub read_s: f64,
    pub compute_s: f64,
    pub send_s: f64,
    /// Modeled seconds the master spent gathering and splicing the
    /// group's partials (absent in frames from older peers).
    #[serde(default)]
    pub merge_s: f64,
    pub dms: DmsStatsSnapshot,
    /// Summed bricktree pruning counters of the whole group.
    #[serde(default)]
    pub cells_skipped: u64,
    #[serde(default)]
    pub bricks_skipped: u64,
    pub error: Option<String>,
}

fn encode<T: Serialize>(header: &T, payload: &Bytes) -> Bytes {
    let json = serde_json::to_vec(header).expect("wire headers always serialize");
    let mut buf = BytesMut::with_capacity(4 + json.len() + payload.len());
    buf.put_u32_le(json.len() as u32);
    buf.put_slice(&json);
    buf.put_slice(payload);
    buf.freeze()
}

fn decode<T: for<'de> Deserialize<'de>>(mut frame: Bytes) -> Option<(T, Bytes)> {
    if frame.remaining() < 4 {
        return None;
    }
    let len = frame.get_u32_le() as usize;
    if frame.remaining() < len {
        return None;
    }
    let json = frame.split_to(len);
    let header = serde_json::from_slice(&json).ok()?;
    Some((header, frame))
}

pub fn encode_command(msg: &CommandMsg) -> Bytes {
    encode(msg, &Bytes::new())
}

pub fn decode_command(frame: Bytes) -> Option<CommandMsg> {
    decode(frame).map(|(h, _)| h)
}

pub fn encode_partial(header: &PartialHeader, payload: Bytes) -> Bytes {
    encode(header, &payload)
}

pub fn decode_partial(frame: Bytes) -> Option<(PartialHeader, Bytes)> {
    decode(frame)
}

pub fn encode_done(header: &DoneHeader, payload: Bytes) -> Bytes {
    encode(header, &payload)
}

pub fn decode_done(frame: Bytes) -> Option<(DoneHeader, Bytes)> {
    decode(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let msg = CommandMsg {
            job: 3,
            command: "ViewerIso".into(),
            dataset: "Engine".into(),
            params: CommandParams::new().set("iso", 0.4),
            group: vec![1, 2, 5],
        };
        assert_eq!(decode_command(encode_command(&msg)).unwrap(), msg);
    }

    #[test]
    fn partial_roundtrip_with_payload() {
        let h = PartialHeader {
            job: 1,
            kind: PayloadKind::Triangles,
            n_items: 2,
            read_s: 1.0,
            compute_s: 2.0,
            send_s: 0.1,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 120,
            bricks_skipped: 3,
            error: None,
        };
        let payload = Bytes::from_static(b"geometry");
        let (h2, p2) = decode_partial(encode_partial(&h, payload.clone())).unwrap();
        assert_eq!(h2, h);
        assert_eq!(p2, payload);
    }

    #[test]
    fn done_roundtrip_with_error() {
        let h = DoneHeader {
            job: 9,
            kind: PayloadKind::None,
            n_items: 0,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            merge_s: 0.25,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            error: Some("worker 3 failed".into()),
        };
        let (h2, p) = decode_done(encode_done(&h, Bytes::new())).unwrap();
        assert_eq!(h2, h);
        assert!(p.is_empty());
    }

    #[test]
    fn headers_without_counters_decode_with_zero_defaults() {
        // Frames from peers predating the pruning counters must still
        // decode (the fields are #[serde(default)]).
        let h = PartialHeader {
            job: 4,
            kind: PayloadKind::None,
            n_items: 0,
            read_s: 0.0,
            compute_s: 0.0,
            send_s: 0.0,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 7,
            bricks_skipped: 7,
            error: None,
        };
        let mut v = serde_json::to_value(&h).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("cells_skipped");
        obj.remove("bricks_skipped");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (h2, _) = decode_partial(buf.freeze()).unwrap();
        assert_eq!(h2.cells_skipped, 0);
        assert_eq!(h2.bricks_skipped, 0);
        assert_eq!(h2.job, 4);
    }

    #[test]
    fn done_header_without_merge_time_defaults_to_zero() {
        // Frames from masters predating the per-stage merge timing must
        // still decode.
        let h = DoneHeader {
            job: 11,
            kind: PayloadKind::Triangles,
            n_items: 5,
            read_s: 1.0,
            compute_s: 2.0,
            send_s: 0.5,
            merge_s: 0.125,
            dms: DmsStatsSnapshot::default(),
            cells_skipped: 0,
            bricks_skipped: 0,
            error: None,
        };
        let mut v = serde_json::to_value(&h).unwrap();
        v.as_object_mut().unwrap().remove("merge_s");
        let json = serde_json::to_vec(&v).unwrap();
        let mut buf = BytesMut::new();
        buf.put_u32_le(json.len() as u32);
        buf.put_slice(&json);
        let (h2, _) = decode_done(buf.freeze()).unwrap();
        assert_eq!(h2.merge_s, 0.0);
        assert_eq!(h2.read_s, 1.0);
        assert_eq!(h2.job, 11);
    }

    #[test]
    fn malformed_frames_yield_none() {
        assert!(decode_command(Bytes::from_static(b"x")).is_none());
        assert!(decode_partial(Bytes::from_static(b"\x10\x00\x00\x00nope")).is_none());
    }
}
