//! Framework configuration.

use std::time::Duration;
use vira_dms::proxy::ProxyConfig;
use vira_dms::server::ServerConfig;
use vira_storage::costmodel::ComputeCosts;

/// Retry/requeue tuning for the scheduler and the master workers.
///
/// The defaults are deliberately generous: on a healthy transport no
/// timeout ever fires, so fault-free runs behave exactly as before.
/// The chaos tests shrink these aggressively to drive recovery within
/// test time.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// How long the scheduler waits for a job's `JOB_DONE` before the
    /// first command retransmission.
    pub dispatch_timeout: Duration,
    /// Multiplier applied to the timeout after every retransmission.
    pub backoff_factor: f64,
    /// Retransmissions before the scheduler suspects a dead rank and
    /// probes the group.
    pub max_retransmits: u32,
    /// How long a probed rank has to answer `PING` with `PONG`.
    pub probe_timeout: Duration,
    /// Master-side backstop for a gather that never completes (lost
    /// partials are normally recovered by command retransmission).
    pub gather_timeout: Duration,
    /// Total dispatch attempts (first + requeues) before the job is
    /// failed back to the client.
    pub max_attempts: u32,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            dispatch_timeout: Duration::from_secs(5),
            backoff_factor: 2.0,
            max_retransmits: 4,
            probe_timeout: Duration::from_millis(200),
            gather_timeout: Duration::from_secs(60),
            max_attempts: 4,
        }
    }
}

/// Dispatch-policy tuning for the scheduler (backfill, locality-aware
/// placement, per-session fair share). All features default to on;
/// turning everything off recovers the strict-FIFO/lowest-rank
/// dispatcher of earlier releases.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Scan past a blocked queue head and dispatch any later job whose
    /// worker demand fits the currently free ranks.
    pub backfill: bool,
    /// Aging bound: once a queued job has been jumped this many times,
    /// nothing behind it may backfill until it dispatches. Keeps large
    /// jobs from starving behind a stream of small ones.
    pub max_skipped_dispatches: u32,
    /// Score candidate ranks by expected cached blocks (from the
    /// workers' piggybacked DMS residency digests) instead of always
    /// taking the lowest free ranks.
    pub locality: bool,
    /// Round-robin dispatch credit across client sessions instead of
    /// global FIFO.
    pub fair_share: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            backfill: true,
            max_skipped_dispatches: 8,
            locality: true,
            fair_share: true,
        }
    }
}

/// Intra-worker extraction parallelism (paper §6.2's "loop level"
/// below the block level).
///
/// Workers always *load* blocks serially — DMS traffic, cost metering
/// and cache accounting are order-sensitive — but with `threads > 1`
/// the pure extraction kernels run over the loaded blocks on a scoped
/// thread pool ([`vira_extract::scoped_map`]). Results are merged in
/// block order, so the produced payload is byte-identical to a serial
/// run regardless of the thread count.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Extraction threads per worker rank. `1` (the default) keeps the
    /// historical fully-serial path.
    pub threads: usize,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        // EXTRACT_THREADS is the ops-facing override (used by the
        // chaos-matrix CI leg); anything unparsable or zero falls back
        // to the serial path.
        let threads = std::env::var("EXTRACT_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        ExtractConfig { threads }
    }
}

/// Admission control and backpressure for the scheduler's job queue.
///
/// With admission off (the default) the queue is unbounded and every
/// valid submit is accepted — the historical behaviour. Turning it on
/// bounds the global queue and applies per-session quotas; a submit
/// that would exceed a bound is *shed* with a structured `Busy`
/// rejection carrying a `retry_after_ms` hint instead of growing the
/// queue without limit. Shedding early keeps admitted jobs' tail
/// latency bounded under overload — the load plane's core invariant.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Master switch; off restores unbounded queueing.
    pub enabled: bool,
    /// Bound on the number of queued (not yet dispatched) jobs across
    /// all sessions. Submits beyond it are shed (`sched_shed_total`).
    pub max_queue_depth: usize,
    /// Per-session bound on queued jobs. Submits beyond it are
    /// rejected with a quota `Busy` (`sched_quota_rejections_total`).
    pub max_session_queued: usize,
    /// Per-session bound on jobs concurrently running on workers.
    /// Counted together with that session's queued jobs at admission.
    pub max_session_running: usize,
    /// Base retry hint returned on a `Busy` rejection; the scheduler
    /// scales it with queue fullness so clients back off harder the
    /// deeper the overload.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            max_queue_depth: 1024,
            max_session_queued: 64,
            max_session_running: 8,
            retry_after_ms: 50,
        }
    }
}

/// Live-telemetry plane tuning: heartbeat-shipped metric deltas, the
/// scheduler's in-memory time-series store, SLO burn-rate evaluation
/// and the periodic `telemetry.json` snapshot that `vira top` reads.
///
/// Telemetry is on by default but writes nothing unless `out_dir` is
/// set (the `vira run --trace-out` directory); the delta harvest and
/// SLO engine still run so alerts land in the event log either way.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch; off restores the pre-telemetry scheduler loop
    /// (no heartbeats, no tsdb, no snapshots).
    pub enabled: bool,
    /// How often the scheduler fans out a telemetry heartbeat PING
    /// (each pong carries that rank's pending metric delta home).
    pub heartbeat_interval: Duration,
    /// How often SLOs are evaluated and `telemetry.json` rewritten.
    pub write_interval: Duration,
    /// Where `telemetry.json` goes; `None` disables snapshot writing.
    pub out_dir: Option<std::path::PathBuf>,
    /// `job_latency_p99` SLO threshold: a job is good when its total
    /// runtime stays at or below this (rounded up to the enclosing
    /// log2 histogram bucket).
    pub job_latency_slo_ns: u64,
    /// `ttfg_p99` SLO threshold on submit-to-first-geometry latency.
    pub ttfg_slo_ns: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            heartbeat_interval: Duration::from_millis(250),
            write_interval: Duration::from_millis(1000),
            out_dir: None,
            job_latency_slo_ns: 30_000_000_000,
            ttfg_slo_ns: 10_000_000_000,
        }
    }
}

/// Which layer-1 transport a deployment runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channels: scheduler and workers are threads of one
    /// process (the historical default, and still the test default).
    Local,
    /// TCP sockets: workers are separate processes, possibly on other
    /// hosts, connecting to the scheduler's listen address.
    Tcp,
    /// Unix-domain sockets: separate processes on one host.
    Unix,
}

/// Deployment transport selection — `local` in-process channels versus
/// real sockets (`vira serve` / `vira worker`). Layers 2 and 3 never
/// see the difference; this only steers which layer-1 implementation
/// the launcher assembles.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    pub kind: TransportKind,
    /// Listen/connect address for socket transports (`host:port` for
    /// TCP, a filesystem path for Unix). Unused for `Local`.
    pub addr: Option<String>,
    /// How long `vira serve` waits for all worker ranks to join.
    pub accept_timeout: Duration,
    /// How long `vira worker` retries connecting before giving up.
    pub connect_timeout: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            kind: TransportKind::Local,
            addr: None,
            accept_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(30),
        }
    }
}

impl TransportConfig {
    /// A socket transport config from a `--listen` / `--connect` style
    /// address: `tcp:host:port`, `unix:/path`, bare `host:port` (TCP)
    /// or a bare path (Unix).
    pub fn from_addr(addr: &str) -> Result<TransportConfig, String> {
        let kind = match vira_comm::SocketAddrSpec::parse(addr)? {
            vira_comm::SocketAddrSpec::Tcp(_) => TransportKind::Tcp,
            vira_comm::SocketAddrSpec::Unix(_) => TransportKind::Unix,
        };
        Ok(TransportConfig {
            kind,
            addr: Some(addr.to_string()),
            ..TransportConfig::default()
        })
    }

    /// The parsed socket address, when this is a socket transport.
    pub fn spec(&self) -> Option<vira_comm::SocketAddrSpec> {
        match self.kind {
            TransportKind::Local => None,
            _ => self
                .addr
                .as_deref()
                .and_then(|a| vira_comm::SocketAddrSpec::parse(a).ok()),
        }
    }
}

/// Configuration of one Viracocha back-end instance.
#[derive(Debug, Clone)]
pub struct ViracochaConfig {
    /// Number of worker processes (the scheduler is separate).
    pub n_workers: usize,
    /// Time dilation: wall seconds slept per modeled second. `0.0`
    /// disables sleeping (pure accounting — the unit-test mode).
    pub dilation: f64,
    /// Modeled per-cell / per-byte compute and transmission costs.
    pub costs: ComputeCosts,
    /// Per-node data-proxy configuration (caches, prefetcher).
    pub proxy: ProxyConfig,
    /// Data-server configuration (strategy selection, cooperative cache).
    pub server: ServerConfig,
    /// Retry/requeue behaviour under message loss and dead ranks.
    pub resilience: ResilienceConfig,
    /// Dispatch policy (backfill, locality placement, fair share).
    pub sched: SchedulerConfig,
    /// Admission control / backpressure (bounded queue, session quotas).
    pub admission: AdmissionConfig,
    /// Intra-worker parallel block extraction.
    pub extract: ExtractConfig,
    /// Live telemetry plane (heartbeat deltas, tsdb, SLOs, `vira top`).
    pub telemetry: TelemetryConfig,
    /// Deployment transport (in-process channels vs real sockets).
    pub transport: TransportConfig,
}

impl Default for ViracochaConfig {
    fn default() -> Self {
        ViracochaConfig {
            n_workers: 4,
            dilation: 0.0,
            costs: ComputeCosts::default(),
            proxy: ProxyConfig::default(),
            server: ServerConfig::default(),
            resilience: ResilienceConfig::default(),
            sched: SchedulerConfig::default(),
            admission: AdmissionConfig::default(),
            extract: ExtractConfig::default(),
            telemetry: TelemetryConfig::default(),
            transport: TransportConfig::default(),
        }
    }
}

impl ViracochaConfig {
    /// Convenience: a config for fast deterministic tests — no dilation,
    /// generous memory cache, no prefetching.
    pub fn for_tests(n_workers: usize) -> Self {
        ViracochaConfig {
            n_workers,
            dilation: 0.0,
            proxy: ProxyConfig {
                prefetcher: "none".into(),
                ..ProxyConfig::default()
            },
            ..ViracochaConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ViracochaConfig::default();
        assert!(c.n_workers >= 1);
        assert_eq!(c.dilation, 0.0);
        assert!(c.costs.iso_s_per_cell > 0.0);
    }

    #[test]
    fn test_config_disables_prefetching() {
        let c = ViracochaConfig::for_tests(2);
        assert_eq!(c.n_workers, 2);
        assert_eq!(c.proxy.prefetcher, "none");
    }

    #[test]
    fn scheduler_defaults_enable_all_policies() {
        let s = SchedulerConfig::default();
        assert!(s.backfill && s.locality && s.fair_share);
        assert!(
            s.max_skipped_dispatches >= 1,
            "aging bound must be finite and positive"
        );
    }

    #[test]
    fn extract_defaults_to_the_serial_path() {
        // Don't consult the env here — tests must be hermetic.
        let e = ExtractConfig { threads: 1 };
        assert_eq!(e.threads, 1);
        let c = ViracochaConfig {
            extract: e,
            ..ViracochaConfig::default()
        };
        assert!(c.extract.threads >= 1);
    }

    #[test]
    fn extract_threads_env_parsing_rules() {
        // Mirror of the Default impl's parse chain, exercised directly
        // so the test never mutates process-global env state.
        let parse = |v: &str| {
            v.trim()
                .parse::<usize>()
                .ok()
                .filter(|&t| t >= 1)
                .unwrap_or(1)
        };
        assert_eq!(parse("4"), 4);
        assert_eq!(parse(" 8 "), 8);
        assert_eq!(parse("0"), 1);
        assert_eq!(parse("banana"), 1);
        assert_eq!(parse(""), 1);
    }

    #[test]
    fn admission_defaults_to_unbounded_queueing() {
        let a = AdmissionConfig::default();
        assert!(!a.enabled, "admission must be opt-in for compatibility");
        assert!(a.max_queue_depth >= 1);
        assert!(a.max_session_queued >= 1);
        assert!(a.max_session_running >= 1);
        assert!(a.retry_after_ms > 0, "busy rejections must carry a hint");
        let c = ViracochaConfig::default();
        assert!(!c.admission.enabled);
    }

    #[test]
    fn telemetry_defaults_are_quiet_but_enabled() {
        let t = TelemetryConfig::default();
        assert!(t.enabled);
        assert!(t.out_dir.is_none(), "no snapshot files unless a dir is set");
        assert!(t.heartbeat_interval <= t.write_interval);
        assert!(t.job_latency_slo_ns > 0 && t.ttfg_slo_ns > 0);
    }

    #[test]
    fn transport_config_parses_socket_addrs() {
        let t = TransportConfig::from_addr("unix:/tmp/v.sock").unwrap();
        assert_eq!(t.kind, TransportKind::Unix);
        assert!(t.spec().is_some());
        let t = TransportConfig::from_addr("127.0.0.1:7700").unwrap();
        assert_eq!(t.kind, TransportKind::Tcp);
        assert!(TransportConfig::from_addr("unix:").is_err());
        let local = TransportConfig::default();
        assert_eq!(local.kind, TransportKind::Local);
        assert!(local.spec().is_none(), "local transport has no address");
    }

    #[test]
    fn resilience_defaults_never_trip_on_a_healthy_run() {
        // Sub-second jobs must stay far away from the first timeout.
        let r = ResilienceConfig::default();
        assert!(r.dispatch_timeout >= Duration::from_secs(1));
        assert!(r.gather_timeout >= r.dispatch_timeout);
        assert!(r.backoff_factor >= 1.0);
        assert!(r.max_attempts >= 1);
    }
}
