//! Framework configuration.

use vira_dms::proxy::ProxyConfig;
use vira_dms::server::ServerConfig;
use vira_storage::costmodel::ComputeCosts;

/// Configuration of one Viracocha back-end instance.
#[derive(Debug, Clone)]
pub struct ViracochaConfig {
    /// Number of worker processes (the scheduler is separate).
    pub n_workers: usize,
    /// Time dilation: wall seconds slept per modeled second. `0.0`
    /// disables sleeping (pure accounting — the unit-test mode).
    pub dilation: f64,
    /// Modeled per-cell / per-byte compute and transmission costs.
    pub costs: ComputeCosts,
    /// Per-node data-proxy configuration (caches, prefetcher).
    pub proxy: ProxyConfig,
    /// Data-server configuration (strategy selection, cooperative cache).
    pub server: ServerConfig,
}

impl Default for ViracochaConfig {
    fn default() -> Self {
        ViracochaConfig {
            n_workers: 4,
            dilation: 0.0,
            costs: ComputeCosts::default(),
            proxy: ProxyConfig::default(),
            server: ServerConfig::default(),
        }
    }
}

impl ViracochaConfig {
    /// Convenience: a config for fast deterministic tests — no dilation,
    /// generous memory cache, no prefetching.
    pub fn for_tests(n_workers: usize) -> Self {
        ViracochaConfig {
            n_workers,
            dilation: 0.0,
            proxy: ProxyConfig {
                prefetcher: "none".into(),
                ..ProxyConfig::default()
            },
            ..ViracochaConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ViracochaConfig::default();
        assert!(c.n_workers >= 1);
        assert_eq!(c.dilation, 0.0);
        assert!(c.costs.iso_s_per_cell > 0.0);
    }

    #[test]
    fn test_config_disables_prefetching() {
        let c = ViracochaConfig::for_tests(2);
        assert_eq!(c.n_workers, 2);
        assert_eq!(c.proxy.prefetcher, "none");
    }
}
