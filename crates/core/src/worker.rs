//! Worker processes (layer 2, paper §3).
//!
//! Each worker owns its data proxy (per-node caches persist **across**
//! jobs — the whole point of the DMS) and loops on scheduler commands:
//! execute the command, then either forward this worker's partial result
//! to the group's master worker, or — as the master — collect all
//! partials, merge them into one package, and hand the merged result to
//! the scheduler for delivery to the visualization client.

use crate::command::{encode_output, CancelSet, CommandOutput, CommandRegistry, JobCtx};
use crate::config::ViracochaConfig;
use crate::wire;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;
use vira_comm::collective::Group;
use vira_comm::endpoint::Endpoint;
use vira_comm::link::EventSender;
use vira_comm::transport::{tags, CommError, LocalEndpoint, Rank, Tag, Transport};
use vira_dms::proxy::{DataProxy, ProxyConfig};
use vira_dms::server::DataServer;
use vira_extract::mesh::payload_triangle_count;
use vira_storage::costmodel::{CostCategory, Meter, SharedChannel, SimClock};
use vira_vista::protocol::{JobId, PayloadKind};

/// Completed (job, attempt) response frames kept for retransmission.
/// When a duplicate `COMMAND` arrives — the scheduler's retry after a
/// lost frame — the worker resends the cached response instead of
/// recomputing the job.
const FRAME_CACHE_CAP: usize = 16;

/// Everything a worker thread needs at startup.
pub struct WorkerSetup<T: Transport = LocalEndpoint> {
    pub endpoint: Endpoint<T>,
    pub server: Arc<DataServer>,
    pub clock: Arc<SimClock>,
    pub registry: Arc<CommandRegistry>,
    pub config: ViracochaConfig,
    pub events: EventSender,
    pub cancels: CancelSet,
    /// The back-end's single serialized client uplink.
    pub uplink: Arc<SharedChannel>,
}

/// How one `run_job` invocation ended.
enum JobExit {
    /// The response frame was sent; kept for duplicate-command replay.
    Sent { dest: Rank, tag: Tag, frame: Bytes },
    /// A different command arrived mid-gather and takes over (the
    /// scheduler requeued this job, or dispatched a new one to us).
    Superseded(Box<wire::CommandMsg>),
    /// Shutdown (or a torn-down world) arrived mid-gather.
    Shutdown,
}

/// Crash hook for the multi-process harness: aborts this process at a
/// named point when `VIRA_TEST_ABORT` selects it. The variable is only
/// ever set on one spawned `vira worker` child by `tests/multiproc.rs`,
/// to pin down mid-job connection loss (e.g. between PARTIAL and DONE);
/// it is inert in-process because the whole back-end would die with it.
fn test_abort_point(point: &str) {
    if std::env::var("VIRA_TEST_ABORT").as_deref() == Ok(point) {
        eprintln!("[vira-test] aborting at point '{point}'");
        std::process::abort();
    }
}

/// Builds this node's proxy configuration (unique spill dir per rank).
fn proxy_config_for(rank: usize, base: &ProxyConfig) -> ProxyConfig {
    let mut cfg = base.clone();
    if let Some(l2) = cfg.l2.as_mut() {
        l2.spill_dir = l2.spill_dir.join(format!("node{rank}"));
    }
    cfg
}

/// The worker main loop. Returns when the scheduler sends `SHUTDOWN`.
pub fn worker_main<T: Transport>(setup: WorkerSetup<T>) {
    let WorkerSetup {
        mut endpoint,
        server,
        clock,
        registry,
        config,
        events,
        cancels,
        uplink,
    } = setup;
    let rank = endpoint.rank();
    let proxy = DataProxy::new(rank, server.clone(), proxy_config_for(rank, &config.proxy));
    // Derived-field memoization (λ₂ fields across threshold tweaks);
    // sized like the primary data cache.
    let derived = crate::derived::DerivedFieldCache::new(config.proxy.l1_capacity_bytes);
    // Responses of recently completed (job, attempt) pairs, replayed
    // when the scheduler retransmits a command whose answer was lost.
    let mut frame_cache: VecDeque<((JobId, u32), (Rank, Tag, Bytes))> = VecDeque::new();
    // A command that superseded an abandoned gather, to run next.
    let mut pending: Option<Box<wire::CommandMsg>> = None;

    loop {
        let cmd_msg = match pending.take() {
            Some(c) => *c,
            None => {
                let msg = match endpoint.recv_any() {
                    Ok(m) => m,
                    Err(_) => return, // world torn down
                };
                match msg.tag {
                    tags::SHUTDOWN => return,
                    tags::PING => {
                        // Liveness probe: echo the nonce back, with this
                        // node's cache-residency digest piggybacked so the
                        // scheduler can refresh its placement map for free.
                        // Telemetry probes additionally carry home a metric
                        // delta in the pong's trailer.
                        let _ = endpoint.send(
                            msg.from,
                            tags::PONG,
                            pong_reply(&msg.payload, &proxy, rank),
                        );
                        continue;
                    }
                    tags::COMMAND => {
                        let Some(c) = wire::decode_command(msg.payload) else {
                            continue;
                        };
                        c
                    }
                    tags::CANCEL => {
                        // A cancel notice arriving between jobs is stale
                        // by ordering: the per-peer FIFO guarantees the
                        // job's COMMAND preceded it, so the job already
                        // finished here. Inserting the id now would
                        // poison the rank-local cancel set forever.
                        // (Mid-job delivery is handled by the socket
                        // reader's frame tap / the shared in-process
                        // set, not this loop.)
                        continue;
                    }
                    _ => {
                        // Unexpected traffic (stale partials after
                        // errors or abandoned attempts): drop.
                        continue;
                    }
                }
            }
        };
        let key = (cmd_msg.job, cmd_msg.attempt);
        if let Some((_, (dest, tag, frame))) = frame_cache.iter().find(|(k, _)| *k == key) {
            // Duplicate command: our response got lost, resend it.
            let _ = endpoint.send(*dest, *tag, frame.clone());
            continue;
        }
        match run_job(
            &mut endpoint,
            &proxy,
            &derived,
            &server,
            &clock,
            &registry,
            &config,
            &events,
            &cancels,
            &uplink,
            cmd_msg,
        ) {
            JobExit::Sent { dest, tag, frame } => {
                if frame_cache.len() >= FRAME_CACHE_CAP {
                    frame_cache.pop_front();
                }
                frame_cache.push_back((key, (dest, tag, frame)));
            }
            JobExit::Superseded(c) => pending = Some(c),
            JobExit::Shutdown => return,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_job<T: Transport>(
    endpoint: &mut Endpoint<T>,
    proxy: &DataProxy,
    derived: &crate::derived::DerivedFieldCache,
    server: &Arc<DataServer>,
    clock: &Arc<SimClock>,
    registry: &Arc<CommandRegistry>,
    config: &ViracochaConfig,
    events: &EventSender,
    cancels: &CancelSet,
    uplink: &Arc<SharedChannel>,
    msg: wire::CommandMsg,
) -> JobExit {
    let rank = endpoint.rank();
    let group = Group::new(msg.group.clone());
    let meter = Meter::new();
    let dms_before = proxy.stats().snapshot();
    // Adopt the scheduler's trace context for the duration of the job:
    // every span opened on this thread (worker.job, extract.block,
    // dms.request, …) links back to the submitting client's trace.
    let _trace = vira_obs::install_ctx(vira_obs::TraceCtx {
        trace_id: msg.trace_id,
        parent_span_id: msg.parent_span_id,
    });
    let mut job_span = vira_obs::span("worker.job", "worker")
        .arg("job", msg.job)
        .arg("command", vira_obs::intern(&msg.command))
        .arg("rank", rank);
    // Responses carry the worker.job span as parent so the scheduler's
    // flight recorder can bind cross-rank edges even when only the wire
    // frames survive. When tracing is disabled this passes the incoming
    // context through unchanged.
    let reply_ctx = job_span.ctx_for_children();

    // Per-job context and execution.
    let (output, error) = match (
        registry.get(&msg.command),
        server.dataset_spec(&msg.dataset),
    ) {
        (Some(cmd), Some(spec)) => {
            let mut ctx = JobCtx {
                job: msg.job,
                dataset: msg.dataset.clone(),
                spec,
                params: msg.params.clone(),
                group: group.clone(),
                rank,
                proxy,
                derived,
                server: server.clone(),
                meter: meter.clone(),
                clock: clock.clone(),
                costs: config.costs,
                extract_threads: config.extract.threads,
                events: events.clone(),
                cancels: cancels.clone(),
                uplink: uplink.clone(),
                seq: 0,
            };
            match cmd.execute(&mut ctx) {
                Ok(out) => (out, None),
                Err(e) => (CommandOutput::default(), Some(e.to_string())),
            }
        }
        (None, _) => (
            CommandOutput::default(),
            Some(format!("unknown command '{}'", msg.command)),
        ),
        (_, None) => (
            CommandOutput::default(),
            Some(format!("dataset '{}' not registered", msg.dataset)),
        ),
    };

    // DMS counters attributable to this job on this node.
    let dms = proxy.stats().snapshot().delta(&dms_before);
    job_span.set_arg("items", output.n_items());

    let send_scale = |kind: PayloadKind| -> f64 {
        match kind {
            PayloadKind::Triangles => server
                .dataset_spec(&msg.dataset)
                .map(|spec| {
                    let actual = spec.block_dims.n_cells().max(1) as f64;
                    (spec.nominal_cells_per_item() as f64 / actual).max(1.0)
                })
                .unwrap_or(1.0),
            _ => 1.0,
        }
    };
    if rank != group.root() {
        // Ship the partial to the master worker; modeled cost of the
        // transfer is part of the job's Send share.
        let n = scaled_send_items(output.n_items() as usize, send_scale(output.kind()));
        charge_send(&meter, clock, config, n);
        let frame = encode_output(
            msg.job,
            msg.attempt,
            reply_ctx,
            &output,
            &meter,
            dms,
            proxy.residency_digest(),
            take_encoded_delta(rank),
            error,
        );
        let _ = endpoint.send(group.root(), tags::PARTIAL_RESULT, frame.clone());
        test_abort_point("after-partial");
        return JobExit::Sent {
            dest: group.root(),
            tag: tags::PARTIAL_RESULT,
            frame,
        };
    }

    let merge_started = Instant::now();
    let merge_span = vira_obs::span("worker.merge", "worker")
        .arg("job", msg.job)
        .arg("partials", group.len().saturating_sub(1));

    // Master worker: gather the other members' partials, keyed by
    // sender rank so retransmitted duplicates collapse, then merge in
    // canonical rank order (root's own share first) — the merged
    // payload is byte-identical no matter how lossy the transport was.
    let mut partials: BTreeMap<Rank, (wire::PartialHeader, Bytes)> = BTreeMap::new();
    let expected = group.len() - 1;
    let deadline = merge_started + config.resilience.gather_timeout;
    let mut first_error = error;
    while partials.len() < expected {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            first_error.get_or_insert_with(|| {
                format!(
                    "gather timed out with {}/{expected} partials",
                    partials.len()
                )
            });
            break;
        }
        let m = match endpoint.recv_any_timeout(left) {
            Ok(m) => m,
            Err(CommError::Timeout) => continue, // deadline check above
            Err(_) => return JobExit::Shutdown,  // world torn down
        };
        match m.tag {
            tags::PARTIAL_RESULT => {
                let Some((header, payload)) = wire::decode_partial(m.payload) else {
                    continue; // corrupt frame; retransmission recovers
                };
                if header.job != msg.job || header.attempt != msg.attempt {
                    continue; // stale partial from an abandoned attempt
                }
                if group.contains(m.from) && m.from != rank {
                    partials.entry(m.from).or_insert((header, payload));
                }
            }
            tags::PING => {
                let _ = endpoint.send(m.from, tags::PONG, pong_reply(&m.payload, proxy, rank));
            }
            tags::COMMAND => {
                let Some(c) = wire::decode_command(m.payload) else {
                    continue;
                };
                if c.job == msg.job && c.attempt == msg.attempt {
                    continue; // scheduler retransmit of this very job
                }
                // The scheduler moved on (requeue or new dispatch):
                // abandon this gather and serve the new command.
                return JobExit::Superseded(Box::new(c));
            }
            tags::CANCEL => {
                // The client cancelled the very job this master is
                // gathering: trip the rank-local set so cancellation
                // checks during the remaining gather/merge fire.
                // Notices for other (already finished) jobs are stale
                // and dropped.
                if wire::decode_cancel(&m.payload) == Some(msg.job) {
                    cancels.write().insert(msg.job);
                }
            }
            tags::SHUTDOWN => return JobExit::Shutdown,
            _ => {}
        }
    }

    // Triangle partials carry the same wire layout the merged package
    // uses, so the master splices their raw vertex blocks into one
    // growing buffer (count prefix patched at the end) instead of a
    // decode → copy → re-encode round-trip per partial.
    let mut tri_buf = BytesMut::with_capacity(4 + output.triangles.positions.len() * 12);
    tri_buf.put_u32_le(0); // triangle count, patched below
    output.triangles.append_payload(&mut tri_buf);
    let mut tri_count = output.triangles.n_triangles();
    let mut merged_polylines = output.polylines;
    let mut cells_skipped = output.cells_skipped;
    let mut bricks_skipped = output.bricks_skipped;
    let mut extract_par_s = output.extract_par_s;
    let mut extract_threads = output.extract_threads;
    let mut total_read = meter.total(CostCategory::Read);
    let mut total_compute = meter.total(CostCategory::Compute);
    let mut total_send = meter.total(CostCategory::Send);
    let mut total_dms = dms;
    // Per-rank residency digests riding the JOB_DONE back to the
    // scheduler: the master's own cache plus each partial's snapshot.
    let mut residency: Vec<(Rank, vira_dms::cache::ResidencyDigest)> =
        vec![(rank, proxy.residency_digest())];
    // Metric deltas riding the partials home: the master forwards them
    // (plus its own cut) in the JOB_DONE so the scheduler's time-series
    // store hears from every rank even between heartbeats.
    let mut obs_deltas: Vec<(Rank, String)> = Vec::new();
    let own_delta = take_encoded_delta(rank);
    if !own_delta.is_empty() {
        obs_deltas.push((rank, own_delta));
    }
    for (from, (header, payload)) in partials {
        residency.push((from, header.residency));
        if !header.obs_delta.is_empty() {
            obs_deltas.push((from, header.obs_delta.clone()));
        }
        total_read += header.read_s;
        total_compute += header.compute_s;
        total_send += header.send_s;
        total_dms = total_dms.merge(&header.dms);
        cells_skipped += header.cells_skipped;
        bricks_skipped += header.bricks_skipped;
        extract_par_s += header.extract_par_s;
        extract_threads = extract_threads.max(header.extract_threads);
        if let Some(e) = header.error {
            first_error.get_or_insert(e);
        }
        match header.kind {
            PayloadKind::Triangles => {
                // Validate the frame, then splice its vertex block
                // verbatim (everything past the count prefix).
                if let Some(n) = payload_triangle_count(&payload) {
                    tri_count += n;
                    tri_buf.extend_from_slice(&payload[4..]);
                }
            }
            PayloadKind::Polylines => {
                if let Ok(lines) = vira_vista::protocol::decode_polylines(payload) {
                    merged_polylines.extend(lines);
                }
            }
            PayloadKind::None => {}
        }
    }

    // Merged kind and item count mirror `CommandOutput::kind`/`n_items`
    // (polylines win over triangles).
    let kind = if !merged_polylines.is_empty() {
        PayloadKind::Polylines
    } else if tri_count > 0 {
        PayloadKind::Triangles
    } else {
        PayloadKind::None
    };
    let n_items = match kind {
        PayloadKind::Polylines => merged_polylines.len() as u32,
        _ => tri_count as u32,
    };

    // The master transmits the merged package over the client uplink;
    // charge its send cost (including queueing behind streamed packets).
    let n = scaled_send_items(n_items as usize, send_scale(kind));
    let modeled = config.costs.send_latency_s + n as f64 * config.costs.send_s_per_triangle;
    let booked = if clock.dilation() > 0.0 {
        let delay_wall = uplink.reserve(modeled * clock.dilation());
        delay_wall / clock.dilation()
    } else {
        modeled
    };
    meter.charge(clock, CostCategory::Send, booked);
    total_send += booked;

    let payload = match kind {
        PayloadKind::Triangles => {
            tri_buf[..4].copy_from_slice(&(tri_count as u32).to_le_bytes());
            tri_buf.freeze()
        }
        PayloadKind::Polylines => vira_vista::protocol::encode_polylines(&merged_polylines),
        PayloadKind::None => Bytes::new(),
    };
    drop(merge_span);
    let merge_s = clock.wall_to_modeled(merge_started.elapsed());
    let done = wire::DoneHeader {
        job: msg.job,
        kind,
        n_items,
        read_s: total_read,
        compute_s: total_compute,
        send_s: total_send,
        merge_s,
        dms: total_dms,
        cells_skipped,
        bricks_skipped,
        extract_par_s,
        extract_threads,
        attempt: msg.attempt,
        payload_crc: 0, // filled in by encode_done
        residency,
        obs_deltas,
        error: first_error,
        trace_id: reply_ctx.trace_id,
        parent_span_id: reply_ctx.parent_span_id,
    };
    let frame = wire::encode_done(&done, payload);
    test_abort_point("before-done");
    let _ = endpoint.send(0, tags::JOB_DONE, frame.clone());
    JobExit::Sent {
        dest: 0,
        tag: tags::JOB_DONE,
        frame,
    }
}

fn charge_send(meter: &Meter, clock: &SimClock, config: &ViracochaConfig, n_items: usize) {
    let t = config.costs.send_latency_s + n_items as f64 * config.costs.send_s_per_triangle;
    meter.charge(clock, CostCategory::Send, t);
}

/// Applies the nominal-size send scale to an item count without the
/// float-truncation bug the two former inline sites shared: `3 items ×
/// scale 1.0` could come back as 2 when the product landed at
/// 2.9999999999. Rounds to nearest and never shrinks below the real
/// item count (the scale is ≥ 1.0 by construction).
fn scaled_send_items(n_items: usize, scale: f64) -> usize {
    if n_items == 0 {
        return 0;
    }
    ((n_items as f64 * scale).round() as usize).max(n_items)
}

/// Encodes this rank's pending metric delta for the wire, or the empty
/// string when nothing interesting changed since the last cut.
fn take_encoded_delta(rank: usize) -> String {
    vira_obs::take_delta(rank as u64)
        .map(|d| vira_obs::ship::encode(&d))
        .unwrap_or_default()
}

/// Builds the PONG for a probe. Plain liveness pings get the classic
/// `echo | digest | clock` payload; telemetry probes (`OBS1` suffix,
/// see [`wire::is_obs_ping`]) additionally carry this rank's pending
/// metric delta and a 4-byte LE blob-length trailer, so the scheduler's
/// time-series store is fed by the heartbeat it already pays for.
fn pong_reply(ping: &Bytes, proxy: &DataProxy, rank: usize) -> Bytes {
    let base = pong_payload(ping, &proxy.residency_digest());
    if !wire::is_obs_ping(ping) {
        return base;
    }
    let blob = take_encoded_delta(rank);
    if blob.is_empty() {
        return base; // nothing to ship; classic pong
    }
    append_delta_trailer(&base, &blob)
}

/// Appends `blob | blob_len(4 LE)` after an existing pong payload.
fn append_delta_trailer(base: &Bytes, blob: &str) -> Bytes {
    let mut buf = BytesMut::with_capacity(base.len() + blob.len() + 4);
    buf.extend_from_slice(base);
    buf.extend_from_slice(blob.as_bytes());
    buf.put_u32_le(blob.len() as u32);
    buf.freeze()
}

/// PONG payload: the probe nonce echoed verbatim, followed by this
/// node's serialized cache-residency digest, followed by the node's
/// monotonic clock reading (8 bytes LE, nanoseconds since the obs
/// epoch). Old schedulers compared the whole payload against the nonce
/// and will simply re-probe; new schedulers prefix-match the nonce,
/// harvest the digest by its exact serialized length (0 or
/// `DIGEST_BITS / 8` bytes), and use the timestamp to estimate this
/// node's clock offset for flight-recorder alignment.
fn pong_payload(ping: &Bytes, digest: &vira_dms::cache::ResidencyDigest) -> Bytes {
    let tail = digest.to_bytes();
    let mut buf = BytesMut::with_capacity(ping.len() + tail.len() + 8);
    buf.extend_from_slice(ping);
    buf.extend_from_slice(&tail);
    buf.put_u64_le(vira_obs::now_ns());
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_dms::stats::DmsStatsSnapshot;

    #[test]
    fn job_window_uses_snapshot_delta() {
        // The per-job DMS window is `after.delta(&before)` — kept here as
        // a wire-level sanity check that worker accounting stays
        // elementwise and saturating.
        let a = DmsStatsSnapshot {
            demand_requests: 10,
            l1_hits: 4,
            ..DmsStatsSnapshot::default()
        };
        let b = DmsStatsSnapshot {
            demand_requests: 25,
            l1_hits: 5,
            misses: 3,
            ..a
        };
        let d = b.delta(&a);
        assert_eq!(d.demand_requests, 15);
        assert_eq!(d.l1_hits, 1);
        assert_eq!(d.misses, 3);
    }

    #[test]
    fn scaled_send_items_is_integer_safe() {
        // Zero stays zero (no latency-only phantom item).
        assert_eq!(scaled_send_items(0, 1.0), 0);
        assert_eq!(scaled_send_items(0, 7.5), 0);
        // An exact 1.0 scale is the identity — the old float-trunc
        // expression could return n-1 when the product representation
        // landed just below the integer.
        for n in [1usize, 3, 7, 1_000_000] {
            assert_eq!(scaled_send_items(n, 1.0), n);
        }
        // A product epsilon-under the integer rounds up, not down.
        assert_eq!(scaled_send_items(3, 1.0 - f64::EPSILON), 3);
        // Genuine up-scaling rounds to nearest…
        assert_eq!(scaled_send_items(10, 1.26), 13);
        assert_eq!(scaled_send_items(10, 1.24), 12);
        // …and is clamped to never report fewer than the real items.
        assert!(scaled_send_items(123_456, 1.0) >= 123_456);
    }

    #[test]
    fn pong_payload_prefixes_the_nonce_and_appends_digest_and_clock() {
        const FULL: usize = vira_dms::cache::DIGEST_BITS / 8;
        let nonce = Bytes::copy_from_slice(&42u64.to_le_bytes());
        let mut digest = vira_dms::cache::ResidencyDigest::empty();
        digest.insert(vira_dms::ItemId(9));
        let pong = pong_payload(&nonce, &digest);
        assert_eq!(pong.len(), 8 + FULL + 8, "nonce | digest | clock");
        assert_eq!(&pong[..8], nonce.as_ref());
        let tail = vira_dms::cache::ResidencyDigest::from_bytes(&pong[8..8 + FULL]).unwrap();
        assert!(tail.contains(vira_dms::ItemId(9)));
        // The trailing 8 bytes are a plausible monotonic clock reading.
        let before = vira_obs::now_ns();
        let pong2 = pong_payload(&nonce, &digest);
        let ts = u64::from_le_bytes(pong2[8 + FULL..].try_into().unwrap());
        assert!(ts >= before && ts <= vira_obs::now_ns());
        // An unknown digest serializes to nothing: nonce + clock only.
        let bare = pong_payload(&nonce, &vira_dms::cache::ResidencyDigest::default());
        assert_eq!(bare.len(), 16);
        assert_eq!(&bare[..8], nonce.as_ref());
    }

    #[test]
    fn proxy_config_spill_dirs_are_per_rank() {
        let base = ProxyConfig {
            l2: Some(vira_dms::proxy::L2Config {
                capacity_bytes: 1,
                policy: "lru".into(),
                spill_dir: std::path::PathBuf::from("/tmp/spill"),
            }),
            ..ProxyConfig::default()
        };
        let a = proxy_config_for(1, &base);
        let b = proxy_config_for(2, &base);
        assert_ne!(a.l2.unwrap().spill_dir, b.l2.unwrap().spill_dir);
    }
}
