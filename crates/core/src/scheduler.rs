//! The scheduler (layer 2, paper §3 / Figure 2).
//!
//! Receives commands from the visualization client over the client link,
//! forms work groups "as soon as enough processes are available",
//! dispatches the parallel task, and forwards the master worker's merged
//! package back to the client. Multiple jobs run concurrently on
//! disjoint work groups; submissions wait FIFO while workers are busy.

use crate::command::{CancelSet, CommandRegistry};
use crate::config::ResilienceConfig;
use crate::wire;
use bytes::Bytes;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use vira_obs as obs;
use vira_comm::endpoint::Endpoint;
use vira_comm::link::ServerSide;
use vira_comm::transport::{tags, CommError, LocalEndpoint, Rank, Transport};
use vira_dms::server::DataServer;
use vira_storage::costmodel::SimClock;
use vira_vista::protocol::{
    decode_request, encode_event, ClientRequest, EventHeader, JobId, JobReport, PayloadKind,
};

/// Final/error event frames kept for client resume requests.
const RECENT_FINALS_CAP: usize = 32;

/// A submission waiting for enough free workers. Requeued jobs return
/// here with `attempt` bumped and their retry accounting intact.
struct QueuedJob {
    job: JobId,
    command: String,
    dataset: String,
    params: vira_vista::protocol::CommandParams,
    workers: usize,
    submitted_at: Instant,
    /// Dispatch attempt (0 for the first dispatch).
    attempt: u32,
    /// Command retransmissions across all attempts so far.
    retries: u64,
    /// Set once the job was requeued onto a smaller group.
    degraded: bool,
}

struct RunningJob {
    group: Vec<Rank>,
    accepted_at: Instant,
    /// Modeled seconds the job waited in the FIFO queue before dispatch.
    queue_wait_s: f64,
    /// The submission, kept so the job can be requeued on a dead rank.
    q: QueuedJob,
    /// The encoded command frame, retransmitted on timeout.
    frame: Bytes,
    /// When the next retransmission (or probe) fires.
    deadline: Instant,
    /// Current timeout, grown by the backoff factor per retransmit.
    cur_timeout: Duration,
    retransmits: u32,
}

// Scheduler metrics (see DESIGN.md "Observability layer" for naming).
static JOBS_SUBMITTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_REJECTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_DISPATCHED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_DONE: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_FAILED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static IDLE_WAIT_NS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static QUEUE_WAIT_NS: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
static JOB_RUNTIME_NS: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
static RETRIES: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static REQUEUES: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static DEAD_RANKS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static RESENDS: OnceLock<Arc<obs::Counter>> = OnceLock::new();

/// Everything the scheduler thread needs.
pub struct SchedulerSetup<T: Transport = LocalEndpoint> {
    pub endpoint: Endpoint<T>,
    pub link: ServerSide,
    pub server: Arc<DataServer>,
    pub clock: Arc<SimClock>,
    pub registry: Arc<CommandRegistry>,
    pub cancels: CancelSet,
    pub n_workers: usize,
    pub resilience: ResilienceConfig,
}

/// The scheduler main loop; returns after a client `Shutdown` once all
/// running jobs have drained.
pub fn scheduler_main<T: Transport>(setup: SchedulerSetup<T>) {
    let SchedulerSetup {
        mut endpoint,
        link,
        server,
        clock,
        registry,
        cancels,
        n_workers,
        resilience,
    } = setup;
    let mut free: Vec<bool> = vec![true; n_workers + 1];
    free[0] = false; // rank 0 is the scheduler itself
    let mut queue: VecDeque<QueuedJob> = VecDeque::new();
    let mut running: HashMap<JobId, RunningJob> = HashMap::new();
    let mut shutting_down = false;
    // Ranks that failed a liveness probe: permanently excluded.
    let mut dead: HashSet<Rank> = HashSet::new();
    let mut probe_nonce: u64 = 0;
    // Final/error frames of recent jobs, replayed on client resume.
    let mut recent_finals: VecDeque<(JobId, Bytes)> = VecDeque::new();

    loop {
        let mut progressed = false;

        // 1. Client requests.
        loop {
            match link.try_next_request() {
                Ok(Some(frame)) => {
                    progressed = true;
                    match decode_request(frame) {
                        Ok(ClientRequest::Submit {
                            job,
                            command,
                            dataset,
                            params,
                            workers,
                        }) => {
                            if shutting_down {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: "back-end is shutting down".into(),
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            if registry.get(&command).is_none() {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: format!("unknown command '{command}'"),
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            if server.dataset_spec(&dataset).is_none() {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: format!("dataset '{dataset}' not registered"),
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            obs::counter_cached(&JOBS_SUBMITTED, "sched_jobs_submitted_total")
                                .inc();
                            queue.push_back(QueuedJob {
                                job,
                                command,
                                dataset,
                                params,
                                workers: workers.clamp(1, n_workers),
                                submitted_at: Instant::now(),
                                attempt: 0,
                                retries: 0,
                                degraded: false,
                            });
                        }
                        Ok(ClientRequest::Cancel { job }) => {
                            cancels.write().insert(job);
                            // A job still in the queue is dropped outright.
                            if let Some(pos) = queue.iter().position(|q| q.job == job) {
                                queue.remove(pos);
                                let _ = link.emit(encode_event(
                                    &EventHeader::Final {
                                        job,
                                        kind: PayloadKind::None,
                                        n_items: 0,
                                        report: JobReport::default(),
                                    },
                                    Bytes::new(),
                                ));
                            }
                        }
                        Ok(ClientRequest::Ack { .. }) => {
                            // Streamed partials flow worker → client
                            // directly ([`StreamSession`] covers the
                            // session-managed path); the scheduler has
                            // nothing buffered to trim.
                        }
                        Ok(ClientRequest::Resume { job }) => {
                            if let Some((_, frame)) =
                                recent_finals.iter().find(|(j, _)| *j == job)
                            {
                                obs::counter_cached(&RESENDS, "vista_resend_total").inc();
                                let _ = link.emit(frame.clone());
                            } else if !running.contains_key(&job)
                                && !queue.iter().any(|q| q.job == job)
                            {
                                let _ = link.emit(encode_event(
                                    &EventHeader::Error {
                                        job,
                                        message: "unknown job in resume".into(),
                                    },
                                    Bytes::new(),
                                ));
                            }
                            // Running/queued jobs need no action: the
                            // final event is still on its way.
                        }
                        Ok(ClientRequest::Shutdown) => {
                            shutting_down = true;
                            // Jobs still waiting for workers are rejected
                            // explicitly so their clients never hang.
                            for q in queue.drain(..) {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job: q.job,
                                        reason: "back-end is shutting down".into(),
                                    },
                                    Bytes::new(),
                                ));
                            }
                        }
                        Err(_) => { /* malformed request: ignore */ }
                    }
                }
                Ok(None) => break,
                Err(CommError::Disconnected) => {
                    // Client went away: treat as shutdown (nobody is
                    // listening for rejections anymore).
                    shutting_down = true;
                    queue.clear();
                    break;
                }
                Err(_) => break,
            }
        }

        // 2. Worker completions.
        while let Ok(Some(msg)) = endpoint.try_recv_any() {
            progressed = true;
            if msg.tag != tags::JOB_DONE {
                continue;
            }
            handle_job_done(
                msg.payload,
                &mut running,
                &mut free,
                &cancels,
                &clock,
                &link,
                &mut recent_finals,
            );
        }

        // 3. Dispatch: FIFO, as soon as enough live workers are free.
        // Requeued jobs shrink to the surviving worker count.
        while let Some(next) = queue.front() {
            let alive: usize = (1..=n_workers).filter(|r| !dead.contains(r)).count();
            if alive == 0 {
                let q = queue.pop_front().expect("front just checked");
                obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
                let frame = encode_event(
                    &EventHeader::Error {
                        job: q.job,
                        message: "no live workers left".into(),
                    },
                    Bytes::new(),
                );
                remember_final(&mut recent_finals, q.job, frame.clone());
                let _ = link.emit(frame);
                progressed = true;
                continue;
            }
            let want = next.workers.min(alive);
            let free_ranks: Vec<Rank> = (1..=n_workers)
                .filter(|&r| free[r] && !dead.contains(&r))
                .collect();
            if free_ranks.len() < want {
                break;
            }
            let q = queue.pop_front().expect("front just checked");
            let group: Vec<Rank> = free_ranks.into_iter().take(want).collect();
            for &r in &group {
                free[r] = false;
            }
            let dispatched_at = Instant::now();
            let queue_wait = dispatched_at.duration_since(q.submitted_at);
            obs::counter_cached(&JOBS_DISPATCHED, "sched_jobs_dispatched_total").inc();
            if q.attempt == 0 {
                obs::histogram_cached(&QUEUE_WAIT_NS, "sched_queue_wait_ns")
                    .record_duration(queue_wait);
                obs::complete_span(
                    "sched.queued",
                    "sched",
                    q.submitted_at,
                    dispatched_at,
                    &[
                        ("job", obs::ArgValue::U64(q.job)),
                        ("workers", obs::ArgValue::U64(q.workers as u64)),
                    ],
                );
            }
            let msg = wire::CommandMsg {
                job: q.job,
                command: q.command.clone(),
                dataset: q.dataset.clone(),
                params: q.params.clone(),
                group: group.clone(),
                attempt: q.attempt,
                check: 0,
            };
            let frame = wire::encode_command(&msg);
            {
                let _s = obs::span("sched.dispatch", "sched")
                    .arg("job", msg.job)
                    .arg("workers", group.len());
                for &r in &group {
                    let _ = endpoint.send(r, tags::COMMAND, frame.clone());
                }
            }
            if q.attempt == 0 {
                let _ = link.emit(encode_event(
                    &EventHeader::JobAccepted {
                        job: msg.job,
                        workers: group.len(),
                    },
                    Bytes::new(),
                ));
            }
            running.insert(
                msg.job,
                RunningJob {
                    group,
                    accepted_at: dispatched_at,
                    queue_wait_s: clock.wall_to_modeled(queue_wait),
                    q,
                    frame,
                    deadline: dispatched_at + resilience.dispatch_timeout,
                    cur_timeout: resilience.dispatch_timeout,
                    retransmits: 0,
                },
            );
            progressed = true;
        }

        // 4. Retransmit timed-out commands; once the retransmit budget
        // is spent, probe the group for dead ranks. The master worker
        // replays its cached response on a duplicate command, so a
        // retransmission recovers lost commands, lost partials and lost
        // completions uniformly.
        let now = Instant::now();
        let expired: Vec<JobId> = running
            .iter()
            .filter(|(_, r)| now >= r.deadline)
            .map(|(&j, _)| j)
            .collect();
        for job in expired {
            progressed = true;
            let run = running.get_mut(&job).expect("collected above");
            if run.retransmits < resilience.max_retransmits {
                run.retransmits += 1;
                run.q.retries += 1;
                obs::counter_cached(&RETRIES, "sched_retries_total").inc();
                run.cur_timeout = run.cur_timeout.mul_f64(resilience.backoff_factor);
                run.deadline = Instant::now() + run.cur_timeout;
                for &r in &run.group {
                    let _ = endpoint.send(r, tags::COMMAND, run.frame.clone());
                }
                continue;
            }
            // Probe: every rank of the group must echo the nonce within
            // the probe timeout. The nonce filters stale pongs from
            // earlier probes; unrelated frames arriving meanwhile are
            // buffered by the endpoint and handled next iteration.
            // Unanswered ranks are re-pinged every slice — on a lossy
            // link a single ping would regularly convict live ranks.
            probe_nonce += 1;
            let nonce = Bytes::copy_from_slice(&probe_nonce.to_le_bytes());
            let mut alive_ranks: HashSet<Rank> = HashSet::new();
            let probe_deadline = Instant::now() + resilience.probe_timeout;
            'probe: while alive_ranks.len() < run.group.len() {
                let round_start = Instant::now();
                if round_start >= probe_deadline {
                    break;
                }
                for &r in &run.group {
                    if !alive_ranks.contains(&r) {
                        let _ = endpoint.send(r, tags::PING, nonce.clone());
                    }
                }
                let slice_end =
                    (round_start + Duration::from_millis(25)).min(probe_deadline);
                loop {
                    let left = slice_end.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    match endpoint.recv_tag_timeout(tags::PONG, left) {
                        Ok(m)
                            if m.payload.as_ref() == nonce.as_ref()
                                && run.group.contains(&m.from) =>
                        {
                            alive_ranks.insert(m.from);
                            if alive_ranks.len() == run.group.len() {
                                break 'probe;
                            }
                        }
                        Ok(_) => {} // stale pong from an earlier probe
                        Err(_) => break,
                    }
                }
            }
            if alive_ranks.len() == run.group.len() {
                // Everyone answered: the job is slow, not stuck. Reset
                // the retransmit budget but keep the grown timeout.
                run.retransmits = 0;
                run.deadline = Instant::now() + run.cur_timeout;
                continue;
            }
            // Dead rank(s): exclude them permanently, free the
            // survivors and requeue the job at the queue front.
            let run = running.remove(&job).expect("present above");
            for &r in &run.group {
                if alive_ranks.contains(&r) {
                    free[r] = true;
                } else if dead.insert(r) {
                    free[r] = false;
                    obs::counter_cached(&DEAD_RANKS, "sched_dead_ranks_total").inc();
                }
            }
            cancels.write().remove(&job);
            let mut q = run.q;
            q.attempt += 1;
            q.degraded = true;
            let alive_total = (1..=n_workers).filter(|r| !dead.contains(r)).count();
            if q.attempt >= resilience.max_attempts || alive_total == 0 {
                obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
                let frame = encode_event(
                    &EventHeader::Error {
                        job,
                        message: format!(
                            "job abandoned after {} attempts ({} live workers)",
                            q.attempt, alive_total
                        ),
                    },
                    Bytes::new(),
                );
                remember_final(&mut recent_finals, job, frame.clone());
                let _ = link.emit(frame);
            } else {
                obs::counter_cached(&REQUEUES, "sched_requeues_total").inc();
                q.workers = q.workers.min(alive_total);
                queue.push_front(q);
            }
        }

        // 5. Exit once shut down and drained.
        if shutting_down && running.is_empty() {
            for r in 1..=n_workers {
                let _ = endpoint.send(r, tags::SHUTDOWN, Bytes::new());
            }
            return;
        }

        // 6. Idle wait: block briefly on worker traffic so the loop does
        // not spin. A completion arriving here is handled inline — the
        // former re-send-to-self path copied the payload and cost an
        // extra scheduler round-trip per result.
        if !progressed {
            let wait_started = Instant::now();
            let waited = endpoint.recv_tag_timeout(tags::JOB_DONE, Duration::from_micros(500));
            obs::counter_cached(&IDLE_WAIT_NS, "sched_idle_wait_ns_total")
                .add(wait_started.elapsed().as_nanos() as u64);
            match waited {
                Ok(m) => handle_job_done(
                    m.payload,
                    &mut running,
                    &mut free,
                    &cancels,
                    &clock,
                    &link,
                    &mut recent_finals,
                ),
                Err(CommError::Timeout) => {}
                Err(_) => return,
            }
        }
    }
}

/// Remembers a job's final (or error) event frame for client resume
/// requests, evicting the oldest entry past the cap.
fn remember_final(recent: &mut VecDeque<(JobId, Bytes)>, job: JobId, frame: Bytes) {
    recent.retain(|(j, _)| *j != job);
    if recent.len() >= RECENT_FINALS_CAP {
        recent.pop_front();
    }
    recent.push_back((job, frame));
}

/// Handles one `JOB_DONE` frame from a master worker: frees the group's
/// ranks, clears cancellation state and forwards the merged result (or
/// the error) to the visualization client. Completions from a
/// superseded attempt (the job was requeued meanwhile) are dropped
/// without touching the current dispatch.
#[allow(clippy::too_many_arguments)]
fn handle_job_done(
    frame: Bytes,
    running: &mut HashMap<JobId, RunningJob>,
    free: &mut [bool],
    cancels: &CancelSet,
    clock: &SimClock,
    link: &ServerSide,
    recent_finals: &mut VecDeque<(JobId, Bytes)>,
) {
    let Some((done, payload)) = wire::decode_done(frame) else {
        return;
    };
    let stale = match running.get(&done.job) {
        Some(run) => done.attempt != run.q.attempt,
        None => true,
    };
    if stale {
        return;
    }
    let Some(run) = running.remove(&done.job) else {
        return;
    };
    for &r in &run.group {
        free[r] = true;
    }
    cancels.write().remove(&done.job);
    let run_elapsed = run.accepted_at.elapsed();
    let total_runtime_s = clock.wall_to_modeled(run_elapsed);
    obs::complete_span(
        "sched.job",
        "sched",
        run.accepted_at,
        Instant::now(),
        &[
            ("job", obs::ArgValue::U64(done.job)),
            ("workers", obs::ArgValue::U64(run.group.len() as u64)),
            ("items", obs::ArgValue::U64(done.n_items as u64)),
        ],
    );
    obs::histogram_cached(&JOB_RUNTIME_NS, "sched_job_runtime_ns")
        .record_duration(run_elapsed);
    if let Some(err) = done.error {
        obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
        let frame = encode_event(
            &EventHeader::Error {
                job: done.job,
                message: err,
            },
            Bytes::new(),
        );
        remember_final(recent_finals, done.job, frame.clone());
        let _ = link.emit(frame);
        return;
    }
    obs::counter_cached(&JOBS_DONE, "sched_jobs_done_total").inc();
    let report = JobReport {
        total_runtime_s,
        read_s: done.read_s,
        compute_s: done.compute_s,
        send_s: done.send_s,
        queue_wait_s: run.queue_wait_s,
        merge_s: done.merge_s,
        demand_requests: done.dms.demand_requests,
        cache_hits: done.dms.l1_hits + done.dms.l2_hits,
        cache_misses: done.dms.misses,
        prefetch_issued: done.dms.prefetch_issued,
        prefetch_hits: done.dms.prefetch_hits,
        triangles: if done.kind == PayloadKind::Triangles {
            done.n_items as u64
        } else {
            0
        },
        polylines: if done.kind == PayloadKind::Polylines {
            done.n_items as u64
        } else {
            0
        },
        cells_skipped: done.cells_skipped,
        bricks_skipped: done.bricks_skipped,
        retries: run.q.retries,
        degraded: run.q.degraded,
    };
    let frame = encode_event(
        &EventHeader::Final {
            job: done.job,
            kind: done.kind,
            n_items: done.n_items,
            report,
        },
        payload,
    );
    remember_final(recent_finals, done.job, frame.clone());
    let _ = link.emit(frame);
}
