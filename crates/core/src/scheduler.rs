//! The scheduler (layer 2, paper §3 / Figure 2).
//!
//! Receives commands from the visualization client over the client link,
//! forms work groups "as soon as enough processes are available",
//! dispatches the parallel task, and forwards the master worker's merged
//! package back to the client. Multiple jobs run concurrently on
//! disjoint work groups; submissions wait FIFO while workers are busy.

use crate::command::{CancelSet, CommandRegistry};
use crate::wire;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use vira_obs as obs;
use vira_comm::endpoint::Endpoint;
use vira_comm::link::ServerSide;
use vira_comm::transport::{tags, CommError, LocalEndpoint, Rank};
use vira_dms::server::DataServer;
use vira_storage::costmodel::SimClock;
use vira_vista::protocol::{
    decode_request, encode_event, ClientRequest, EventHeader, JobId, JobReport, PayloadKind,
};

/// A submission waiting for enough free workers.
struct QueuedJob {
    job: JobId,
    command: String,
    dataset: String,
    params: vira_vista::protocol::CommandParams,
    workers: usize,
    submitted_at: Instant,
}

struct RunningJob {
    group: Vec<Rank>,
    accepted_at: Instant,
    /// Modeled seconds the job waited in the FIFO queue before dispatch.
    queue_wait_s: f64,
}

// Scheduler metrics (see DESIGN.md "Observability layer" for naming).
static JOBS_SUBMITTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_REJECTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_DISPATCHED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_DONE: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_FAILED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static IDLE_WAIT_NS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static QUEUE_WAIT_NS: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
static JOB_RUNTIME_NS: OnceLock<Arc<obs::Histogram>> = OnceLock::new();

/// Everything the scheduler thread needs.
pub struct SchedulerSetup {
    pub endpoint: Endpoint<LocalEndpoint>,
    pub link: ServerSide,
    pub server: Arc<DataServer>,
    pub clock: Arc<SimClock>,
    pub registry: Arc<CommandRegistry>,
    pub cancels: CancelSet,
    pub n_workers: usize,
}

/// The scheduler main loop; returns after a client `Shutdown` once all
/// running jobs have drained.
pub fn scheduler_main(setup: SchedulerSetup) {
    let SchedulerSetup {
        mut endpoint,
        link,
        server,
        clock,
        registry,
        cancels,
        n_workers,
    } = setup;
    let mut free: Vec<bool> = vec![true; n_workers + 1];
    free[0] = false; // rank 0 is the scheduler itself
    let mut queue: VecDeque<QueuedJob> = VecDeque::new();
    let mut running: HashMap<JobId, RunningJob> = HashMap::new();
    let mut shutting_down = false;

    loop {
        let mut progressed = false;

        // 1. Client requests.
        loop {
            match link.try_next_request() {
                Ok(Some(frame)) => {
                    progressed = true;
                    match decode_request(frame) {
                        Ok(ClientRequest::Submit {
                            job,
                            command,
                            dataset,
                            params,
                            workers,
                        }) => {
                            if shutting_down {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: "back-end is shutting down".into(),
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            if registry.get(&command).is_none() {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: format!("unknown command '{command}'"),
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            if server.dataset_spec(&dataset).is_none() {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: format!("dataset '{dataset}' not registered"),
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            obs::counter_cached(&JOBS_SUBMITTED, "sched_jobs_submitted_total")
                                .inc();
                            queue.push_back(QueuedJob {
                                job,
                                command,
                                dataset,
                                params,
                                workers: workers.clamp(1, n_workers),
                                submitted_at: Instant::now(),
                            });
                        }
                        Ok(ClientRequest::Cancel { job }) => {
                            cancels.write().insert(job);
                            // A job still in the queue is dropped outright.
                            if let Some(pos) = queue.iter().position(|q| q.job == job) {
                                queue.remove(pos);
                                let _ = link.emit(encode_event(
                                    &EventHeader::Final {
                                        job,
                                        kind: PayloadKind::None,
                                        n_items: 0,
                                        report: JobReport::default(),
                                    },
                                    Bytes::new(),
                                ));
                            }
                        }
                        Ok(ClientRequest::Shutdown) => {
                            shutting_down = true;
                            // Jobs still waiting for workers are rejected
                            // explicitly so their clients never hang.
                            for q in queue.drain(..) {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job: q.job,
                                        reason: "back-end is shutting down".into(),
                                    },
                                    Bytes::new(),
                                ));
                            }
                        }
                        Err(_) => { /* malformed request: ignore */ }
                    }
                }
                Ok(None) => break,
                Err(CommError::Disconnected) => {
                    // Client went away: treat as shutdown (nobody is
                    // listening for rejections anymore).
                    shutting_down = true;
                    queue.clear();
                    break;
                }
                Err(_) => break,
            }
        }

        // 2. Worker completions.
        while let Ok(Some(msg)) = endpoint.try_recv_any() {
            progressed = true;
            if msg.tag != tags::JOB_DONE {
                continue;
            }
            handle_job_done(msg.payload, &mut running, &mut free, &cancels, &clock, &link);
        }

        // 3. Dispatch: FIFO, as soon as enough workers are free.
        while let Some(next) = queue.front() {
            let free_ranks: Vec<Rank> = (1..=n_workers).filter(|&r| free[r]).collect();
            if free_ranks.len() < next.workers {
                break;
            }
            let q = queue.pop_front().expect("front just checked");
            let group: Vec<Rank> = free_ranks.into_iter().take(q.workers).collect();
            for &r in &group {
                free[r] = false;
            }
            let dispatched_at = Instant::now();
            let queue_wait = dispatched_at.duration_since(q.submitted_at);
            obs::counter_cached(&JOBS_DISPATCHED, "sched_jobs_dispatched_total").inc();
            obs::histogram_cached(&QUEUE_WAIT_NS, "sched_queue_wait_ns")
                .record_duration(queue_wait);
            obs::complete_span(
                "sched.queued",
                "sched",
                q.submitted_at,
                dispatched_at,
                &[
                    ("job", obs::ArgValue::U64(q.job)),
                    ("workers", obs::ArgValue::U64(q.workers as u64)),
                ],
            );
            let msg = wire::CommandMsg {
                job: q.job,
                command: q.command,
                dataset: q.dataset,
                params: q.params,
                group: group.clone(),
            };
            let frame = wire::encode_command(&msg);
            {
                let _s = obs::span("sched.dispatch", "sched")
                    .arg("job", msg.job)
                    .arg("workers", group.len());
                for &r in &group {
                    let _ = endpoint.send(r, tags::COMMAND, frame.clone());
                }
            }
            let _ = link.emit(encode_event(
                &EventHeader::JobAccepted {
                    job: msg.job,
                    workers: group.len(),
                },
                Bytes::new(),
            ));
            running.insert(
                msg.job,
                RunningJob {
                    group,
                    accepted_at: dispatched_at,
                    queue_wait_s: clock.wall_to_modeled(queue_wait),
                },
            );
            progressed = true;
        }

        // 4. Exit once shut down and drained.
        if shutting_down && running.is_empty() {
            for r in 1..=n_workers {
                let _ = endpoint.send(r, tags::SHUTDOWN, Bytes::new());
            }
            return;
        }

        // 5. Idle wait: block briefly on worker traffic so the loop does
        // not spin. A completion arriving here is handled inline — the
        // former re-send-to-self path copied the payload and cost an
        // extra scheduler round-trip per result.
        if !progressed {
            let wait_started = Instant::now();
            let waited = endpoint.recv_tag_timeout(tags::JOB_DONE, Duration::from_micros(500));
            obs::counter_cached(&IDLE_WAIT_NS, "sched_idle_wait_ns_total")
                .add(wait_started.elapsed().as_nanos() as u64);
            match waited {
                Ok(m) => {
                    handle_job_done(m.payload, &mut running, &mut free, &cancels, &clock, &link)
                }
                Err(CommError::Timeout) => {}
                Err(_) => return,
            }
        }
    }
}

/// Handles one `JOB_DONE` frame from a master worker: frees the group's
/// ranks, clears cancellation state and forwards the merged result (or
/// the error) to the visualization client.
fn handle_job_done(
    frame: Bytes,
    running: &mut HashMap<JobId, RunningJob>,
    free: &mut [bool],
    cancels: &CancelSet,
    clock: &SimClock,
    link: &ServerSide,
) {
    let Some((done, payload)) = wire::decode_done(frame) else {
        return;
    };
    let Some(run) = running.remove(&done.job) else {
        return;
    };
    for &r in &run.group {
        free[r] = true;
    }
    cancels.write().remove(&done.job);
    let run_elapsed = run.accepted_at.elapsed();
    let total_runtime_s = clock.wall_to_modeled(run_elapsed);
    obs::complete_span(
        "sched.job",
        "sched",
        run.accepted_at,
        Instant::now(),
        &[
            ("job", obs::ArgValue::U64(done.job)),
            ("workers", obs::ArgValue::U64(run.group.len() as u64)),
            ("items", obs::ArgValue::U64(done.n_items as u64)),
        ],
    );
    obs::histogram_cached(&JOB_RUNTIME_NS, "sched_job_runtime_ns")
        .record_duration(run_elapsed);
    if let Some(err) = done.error {
        obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
        let _ = link.emit(encode_event(
            &EventHeader::Error {
                job: done.job,
                message: err,
            },
            Bytes::new(),
        ));
        return;
    }
    obs::counter_cached(&JOBS_DONE, "sched_jobs_done_total").inc();
    let report = JobReport {
        total_runtime_s,
        read_s: done.read_s,
        compute_s: done.compute_s,
        send_s: done.send_s,
        queue_wait_s: run.queue_wait_s,
        merge_s: done.merge_s,
        demand_requests: done.dms.demand_requests,
        cache_hits: done.dms.l1_hits + done.dms.l2_hits,
        cache_misses: done.dms.misses,
        prefetch_issued: done.dms.prefetch_issued,
        prefetch_hits: done.dms.prefetch_hits,
        triangles: if done.kind == PayloadKind::Triangles {
            done.n_items as u64
        } else {
            0
        },
        polylines: if done.kind == PayloadKind::Polylines {
            done.n_items as u64
        } else {
            0
        },
        cells_skipped: done.cells_skipped,
        bricks_skipped: done.bricks_skipped,
    };
    let _ = link.emit(encode_event(
        &EventHeader::Final {
            job: done.job,
            kind: done.kind,
            n_items: done.n_items,
            report,
        },
        payload,
    ));
}
