//! The scheduler (layer 2, paper §3 / Figure 2).
//!
//! Receives commands from the visualization client over the client link,
//! forms work groups "as soon as enough processes are available",
//! dispatches the parallel task, and forwards the master worker's merged
//! package back to the client. Multiple jobs run concurrently on
//! disjoint work groups.
//!
//! Dispatch order is FIFO-with-backfill: when the queue head does not
//! fit the free ranks, later jobs that do fit may overtake it, bounded
//! by an aging limit so large jobs cannot starve. Placement is
//! locality-aware — workers piggyback a compact DMS cache-residency
//! digest on their `JOB_DONE` and `PONG` frames, and the scheduler
//! scores candidate ranks by expected cached blocks instead of always
//! taking the lowest free ranks. Dispatch credit is round-robined
//! across client sessions (per-session fair share). All three policies
//! are individually switchable via [`SchedulerConfig`].

use crate::command::{CancelSet, CommandRegistry};
use crate::config::{AdmissionConfig, ResilienceConfig, SchedulerConfig, TelemetryConfig};
use crate::wire;
use bytes::Bytes;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use vira_comm::endpoint::Endpoint;
use vira_comm::link::ServerSide;
use vira_comm::transport::{tags, CommError, LocalEndpoint, Rank, Transport};
use vira_dms::cache::ResidencyDigest;
use vira_dms::server::DataServer;
use vira_dms::{ItemId, ItemName, NameResolver};
use vira_grid::block::BlockStepId;
use vira_obs as obs;
use vira_storage::costmodel::SimClock;
use vira_vista::protocol::{
    decode_request, encode_event, ClientRequest, EventHeader, JobId, JobReport, PayloadKind,
};

/// Final/error event frames kept for client resume requests.
const RECENT_FINALS_CAP: usize = 32;

/// A submission waiting for enough free workers. Requeued jobs return
/// here with `attempt` bumped and their retry accounting intact.
struct QueuedJob {
    job: JobId,
    command: String,
    dataset: String,
    params: vira_vista::protocol::CommandParams,
    workers: usize,
    submitted_at: Instant,
    /// When the job last entered the queue; reset on requeue, so each
    /// attempt's wait is measured from its own enqueue — not from the
    /// original submission (which would silently fold the previous
    /// attempt's dispatch and timeout time into `queue_wait_s`).
    enqueued_at: Instant,
    /// Client session the submission belongs to (fair-share key).
    session: u64,
    /// Dispatch attempt (0 for the first dispatch).
    attempt: u32,
    /// Command retransmissions across all attempts so far.
    retries: u64,
    /// Set once the job was requeued onto a smaller group.
    degraded: bool,
    /// Wall-clock wait before the *first* dispatch.
    first_wait: Duration,
    /// Accumulated wall-clock waits of requeued attempts (attempt > 0).
    requeue_wait: Duration,
    /// How many times a backfilled job has overtaken this one.
    skipped: u32,
    /// Causal trace context from the Submit frame (zero for untraced
    /// clients); every scheduler/worker span of the job links under it.
    ctx: obs::TraceCtx,
}

struct RunningJob {
    group: Vec<Rank>,
    accepted_at: Instant,
    /// Modeled seconds the job waited in the queue before its *first*
    /// dispatch.
    queue_wait_s: f64,
    /// Modeled seconds spent re-waiting in the queue across requeued
    /// attempts (0 unless the job was requeued).
    requeue_wait_s: f64,
    /// The submission, kept so the job can be requeued on a dead rank.
    q: QueuedJob,
    /// The encoded command frame, retransmitted on timeout.
    frame: Bytes,
    /// When the next retransmission (or probe) fires.
    deadline: Instant,
    /// Current timeout, grown by the backoff factor per retransmit.
    cur_timeout: Duration,
    retransmits: u32,
}

// Scheduler metrics (see DESIGN.md "Observability layer" for naming).
static JOBS_SUBMITTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_REJECTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_DISPATCHED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_DONE: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_FAILED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOBS_CANCELLED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static REJOINS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static IDLE_WAIT_NS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static QUEUE_WAIT_NS: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
static JOB_RUNTIME_NS: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
static RETRIES: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static REQUEUES: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static DEAD_RANKS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static RESENDS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static BACKFILLS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static LOCALITY_HITS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static STARVATION_AGED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static HEARTBEATS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static QUEUE_DEPTH: OnceLock<Arc<obs::Gauge>> = OnceLock::new();
static RUNNING_JOBS: OnceLock<Arc<obs::Gauge>> = OnceLock::new();
// Admission-control metrics (load plane; see DESIGN.md "Load plane &
// admission control").
static ADMITTED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static SHED: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static QUOTA_REJECTIONS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static QUEUE_HIGH_WATERMARK: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static JOB_LATENCY_COHORTS: OnceLock<Vec<Arc<obs::Histogram>>> = OnceLock::new();

/// Session-cohort fan-out for the per-cohort job-latency histograms.
/// Sessions hash onto a fixed small set of cohorts so the load plane
/// gets per-session-class tail latency without a per-session metric
/// family (ten thousand sessions would blow up the registry and every
/// OBSD1 delta). Mirrors the client's `vista_ttfg_cohort*_ns`.
const SESSION_COHORTS: u64 = 4;

/// The log2 latency histogram for `session`'s cohort.
fn job_latency_cohort(session: u64) -> Arc<obs::Histogram> {
    let cohorts = JOB_LATENCY_COHORTS.get_or_init(|| {
        (0..SESSION_COHORTS)
            .map(|k| obs::histogram(&format!("sched_job_latency_cohort{k}_ns")))
            .collect()
    });
    cohorts[(session % SESSION_COHORTS) as usize].clone()
}

/// Everything the scheduler thread needs.
pub struct SchedulerSetup<T: Transport = LocalEndpoint> {
    pub endpoint: Endpoint<T>,
    pub link: ServerSide,
    pub server: Arc<DataServer>,
    pub clock: Arc<SimClock>,
    pub registry: Arc<CommandRegistry>,
    pub cancels: CancelSet,
    pub n_workers: usize,
    pub resilience: ResilienceConfig,
    pub sched: SchedulerConfig,
    pub admission: AdmissionConfig,
    pub telemetry: TelemetryConfig,
}

/// The scheduler main loop; returns after a client `Shutdown` once all
/// running jobs have drained.
pub fn scheduler_main<T: Transport>(setup: SchedulerSetup<T>) {
    let SchedulerSetup {
        mut endpoint,
        link,
        server,
        clock,
        registry,
        cancels,
        n_workers,
        resilience,
        sched,
        admission,
        telemetry,
    } = setup;
    let mut free: Vec<bool> = vec![true; n_workers + 1];
    free[0] = false; // rank 0 is the scheduler itself
    let mut queue: VecDeque<QueuedJob> = VecDeque::new();
    let mut running: HashMap<JobId, RunningJob> = HashMap::new();
    let mut shutting_down = false;
    // Ranks that failed a liveness probe: permanently excluded.
    let mut dead: HashSet<Rank> = HashSet::new();
    let mut probe_nonce: u64 = 0;
    // Final/error frames of recent jobs, replayed on client resume.
    let mut recent_finals: VecDeque<(JobId, Bytes)> = VecDeque::new();
    // Last known per-rank cache-residency digest, harvested from
    // JOB_DONE and PONG frames; drives locality-aware placement.
    let mut residency: HashMap<Rank, ResidencyDigest> = HashMap::new();
    // Session served by the most recent dispatch (fair-share cursor).
    let mut last_session: Option<u64> = None;
    // Scheduler-side resolver: translates a job's (dataset, block, step)
    // footprint into the item ids the digests are keyed by.
    let resolver = NameResolver::new(server.names().clone());
    // Telemetry plane: central time-series store fed by the workers'
    // heartbeat-shipped metric deltas, and the SLO burn-rate engine
    // evaluated on every snapshot write.
    let mut tsdb = obs::Tsdb::new(obs::TsdbConfig::default());
    let mut slo_engine = obs::SloEngine::new(obs::default_specs(
        telemetry.job_latency_slo_ns,
        telemetry.ttfg_slo_ns,
    ));
    let mut last_heartbeat = Instant::now();
    let mut last_write = Instant::now();
    // Deepest queue this run has seen; `note_queue_depth` keeps the
    // monotone high-watermark counter in sync with it.
    let mut queue_high_watermark: usize = 0;

    loop {
        let mut progressed = false;

        // 1. Client requests.
        loop {
            match link.try_next_request() {
                Ok(Some(frame)) => {
                    progressed = true;
                    match decode_request(frame) {
                        Ok(ClientRequest::Submit {
                            job,
                            command,
                            dataset,
                            params,
                            workers,
                            session,
                            trace_id,
                            parent_span_id,
                        }) => {
                            if shutting_down {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: "back-end is shutting down".into(),
                                        retry_after_ms: None,
                                        queue_depth: None,
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            if registry.get(&command).is_none() {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: format!("unknown command '{command}'"),
                                        retry_after_ms: None,
                                        queue_depth: None,
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            if server.dataset_spec(&dataset).is_none() {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason: format!("dataset '{dataset}' not registered"),
                                        retry_after_ms: None,
                                        queue_depth: None,
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            // Admission control: shed instead of growing
                            // the queue without bound. Sheds are *not*
                            // validation rejects — they carry the retry
                            // hint and count against sched_shed_total so
                            // offered = admitted + shed (+ rejected).
                            if let Some(verdict) =
                                admission_verdict(&admission, &queue, &running, session)
                            {
                                let depth = queue.len();
                                obs::counter_cached(&SHED, "sched_shed_total").inc();
                                let reason = match verdict {
                                    AdmissionReject::QueueFull => {
                                        "busy: scheduler queue is full".to_string()
                                    }
                                    AdmissionReject::SessionQuota => {
                                        obs::counter_cached(
                                            &QUOTA_REJECTIONS,
                                            "sched_quota_rejections_total",
                                        )
                                        .inc();
                                        format!("busy: session {session} is over its quota")
                                    }
                                };
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job,
                                        reason,
                                        retry_after_ms: Some(busy_retry_hint(&admission, depth)),
                                        queue_depth: Some(depth as u64),
                                    },
                                    Bytes::new(),
                                ));
                                continue;
                            }
                            obs::counter_cached(&JOBS_SUBMITTED, "sched_jobs_submitted_total")
                                .inc();
                            obs::counter_cached(&ADMITTED, "sched_admitted_total").inc();
                            let now = Instant::now();
                            queue.push_back(QueuedJob {
                                job,
                                command,
                                dataset,
                                params,
                                workers: workers.clamp(1, n_workers),
                                submitted_at: now,
                                enqueued_at: now,
                                session,
                                attempt: 0,
                                retries: 0,
                                degraded: false,
                                first_wait: Duration::ZERO,
                                requeue_wait: Duration::ZERO,
                                skipped: 0,
                                ctx: obs::TraceCtx {
                                    trace_id,
                                    parent_span_id,
                                },
                            });
                            note_queue_depth(queue.len(), &mut queue_high_watermark);
                        }
                        Ok(ClientRequest::Cancel { job }) => {
                            match cancel_disposition(job, &queue, &running) {
                                CancelDisposition::Queued(pos) => {
                                    // A job still in the queue is dropped
                                    // outright. It will never reach
                                    // handle_job_done, so nothing may enter
                                    // the cancel set here — an entry for a
                                    // dequeued job would live forever.
                                    queue.remove(pos);
                                    note_queue_depth(queue.len(), &mut queue_high_watermark);
                                    obs::counter_cached(
                                        &JOBS_CANCELLED,
                                        "sched_jobs_cancelled_total",
                                    )
                                    .inc();
                                    let frame = encode_event(
                                        &EventHeader::Cancelled {
                                            job,
                                            report: JobReport::default(),
                                        },
                                        Bytes::new(),
                                    );
                                    remember_final(&mut recent_finals, job, frame.clone());
                                    let _ = link.emit(frame);
                                }
                                CancelDisposition::Running(group) => {
                                    // Trip the job's cancel flag everywhere:
                                    // the shared-set insert covers in-process
                                    // workers, the CANCEL fan-out reaches
                                    // each remote rank's process-local set
                                    // mid-extraction. The entry is cleared
                                    // when the (early) DONE arrives.
                                    cancels.write().insert(job);
                                    let notice = wire::encode_cancel(job);
                                    for r in group {
                                        let _ = endpoint.send(r, tags::CANCEL, notice.clone());
                                    }
                                }
                                CancelDisposition::Unknown => {
                                    // Cancel of a finished (or never-known)
                                    // job: idempotent no-op. The client
                                    // already has — or will never get — a
                                    // terminal event.
                                }
                            }
                        }
                        Ok(ClientRequest::Ack { .. }) => {
                            // Streamed partials flow worker → client
                            // directly ([`StreamSession`] covers the
                            // session-managed path); the scheduler has
                            // nothing buffered to trim.
                        }
                        Ok(ClientRequest::Resume { job }) => {
                            if let Some((_, frame)) = recent_finals.iter().find(|(j, _)| *j == job)
                            {
                                obs::counter_cached(&RESENDS, "vista_resend_total").inc();
                                let _ = link.emit(frame.clone());
                            } else if !running.contains_key(&job)
                                && !queue.iter().any(|q| q.job == job)
                            {
                                let _ = link.emit(encode_event(
                                    &EventHeader::Error {
                                        job,
                                        message: "unknown job in resume".into(),
                                    },
                                    Bytes::new(),
                                ));
                            }
                            // Running/queued jobs need no action: the
                            // final event is still on its way.
                        }
                        Ok(ClientRequest::Shutdown) => {
                            shutting_down = true;
                            // Jobs still waiting for workers are rejected
                            // explicitly so their clients never hang.
                            for q in queue.drain(..) {
                                obs::counter_cached(&JOBS_REJECTED, "sched_jobs_rejected_total")
                                    .inc();
                                let _ = link.emit(encode_event(
                                    &EventHeader::JobRejected {
                                        job: q.job,
                                        reason: "back-end is shutting down".into(),
                                        retry_after_ms: None,
                                        queue_depth: None,
                                    },
                                    Bytes::new(),
                                ));
                            }
                            note_queue_depth(queue.len(), &mut queue_high_watermark);
                        }
                        Err(_) => { /* malformed request: ignore */ }
                    }
                }
                Ok(None) => break,
                Err(CommError::Disconnected) => {
                    // Client went away: treat as shutdown. The queued
                    // jobs are *failed*, not silently dropped — the
                    // failure counter and the recent-finals buffer must
                    // account for them even though nobody is listening
                    // for the error events right now (a resumed client
                    // may still ask about them).
                    shutting_down = true;
                    for q in queue.drain(..) {
                        obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
                        // A drained job will never reach handle_job_done;
                        // any cancel-set entry it still owns (e.g. from a
                        // conviction/requeue race) must not outlive it.
                        cancels.write().remove(&q.job);
                        let frame = encode_event(
                            &EventHeader::Error {
                                job: q.job,
                                message: "client disconnected before dispatch".into(),
                            },
                            Bytes::new(),
                        );
                        remember_final(&mut recent_finals, q.job, frame.clone());
                        let _ = link.emit(frame);
                    }
                    note_queue_depth(queue.len(), &mut queue_high_watermark);
                    break;
                }
                Err(_) => break,
            }
        }

        // 2. Worker completions, plus telemetry pongs answering the
        // heartbeat pings of step 4b (probe pongs are consumed inside
        // the probe loop; anything else is stale traffic and dropped).
        while let Ok(Some(msg)) = endpoint.try_recv_any() {
            progressed = true;
            match msg.tag {
                tags::JOB_DONE => handle_job_done(
                    msg.payload,
                    &mut running,
                    &mut free,
                    &cancels,
                    &clock,
                    &link,
                    &mut recent_finals,
                    &mut residency,
                    &mut tsdb,
                ),
                tags::PONG => harvest_obs_pong(&msg.payload, msg.from, &mut tsdb, &mut residency),
                // A previously-convicted worker rank completed the hub's
                // rejoin handshake: lift its dead-rank exclusion so it
                // is eligible for placement again. Probe/placement state
                // tied to the old process is discarded — the restarted
                // process has a cold cache.
                tags::REJOIN => {
                    let r = msg.from;
                    if r >= 1 && r <= n_workers && dead.remove(&r) {
                        residency.remove(&r);
                        free[r] = !running.values().any(|run| run.group.contains(&r));
                        obs::counter_cached(&REJOINS, "sched_rejoins_total").inc();
                    }
                }
                // A remote worker process streaming packets to the
                // client: its EventSender cannot share the link, so the
                // frame rode the transport here and is re-emitted on
                // the real client link verbatim.
                tags::CLIENT_EVENT => {
                    let _ = link.emit(msg.payload);
                }
                _ => {}
            }
        }

        // 3. Dispatch: FIFO with bounded backfill. When the queue head
        // does not fit the free ranks, a later job that does fit may
        // overtake it — but never past a job that has already been
        // jumped `max_skipped_dispatches` times. Requeued jobs shrink
        // to the surviving worker count.
        loop {
            if queue.is_empty() {
                break;
            }
            let alive: usize = (1..=n_workers).filter(|r| !dead.contains(r)).count();
            if alive == 0 {
                let q = queue.pop_front().expect("non-empty just checked");
                note_queue_depth(queue.len(), &mut queue_high_watermark);
                obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
                let frame = encode_event(
                    &EventHeader::Error {
                        job: q.job,
                        message: "no live workers left".into(),
                    },
                    Bytes::new(),
                );
                remember_final(&mut recent_finals, q.job, frame.clone());
                let _ = link.emit(frame);
                progressed = true;
                continue;
            }
            let free_ranks: Vec<Rank> = (1..=n_workers)
                .filter(|&r| free[r] && !dead.contains(&r))
                .collect();
            let Some(idx) = select_candidate(&queue, free_ranks.len(), alive, &sched, last_session)
            else {
                break;
            };
            let mut q = queue.remove(idx).expect("selected index in bounds");
            note_queue_depth(queue.len(), &mut queue_high_watermark);
            if idx > 0 {
                obs::counter_cached(&BACKFILLS, "sched_backfills_total").inc();
                // Every job the pick jumped over ages by one; the first
                // time one reaches the bound it becomes a barrier that
                // nothing behind it may overtake.
                for jumped in queue.iter_mut().take(idx) {
                    jumped.skipped += 1;
                    if jumped.skipped == sched.max_skipped_dispatches {
                        obs::counter_cached(&STARVATION_AGED, "sched_starvation_aged_total").inc();
                    }
                }
            }
            let want = q.workers.min(alive);
            let group: Vec<Rank> = if sched.locality {
                let items = placement_items(&resolver, &server, &q.dataset, &q.params);
                let (group, overlap) = place_group(&free_ranks, want, &items, &residency);
                if overlap > 0 {
                    obs::counter_cached(&LOCALITY_HITS, "sched_locality_hits_total").inc();
                }
                group
            } else {
                free_ranks.into_iter().take(want).collect()
            };
            for &r in &group {
                free[r] = false;
            }
            let dispatched_at = Instant::now();
            // Per-attempt wait, measured from this attempt's enqueue —
            // requeued attempts must not re-report the first attempt's
            // queue time plus the failed dispatch's timeout window.
            let wait = dispatched_at.duration_since(q.enqueued_at);
            obs::counter_cached(&JOBS_DISPATCHED, "sched_jobs_dispatched_total").inc();
            // The job's trace context scopes the dispatch: the queued
            // and dispatch spans link under the client's root span, and
            // the command frame carries the dispatch span onward so
            // worker spans nest beneath it.
            let _trace = obs::install_ctx(q.ctx);
            if q.attempt == 0 {
                q.first_wait = wait;
                obs::histogram_cached(&QUEUE_WAIT_NS, "sched_queue_wait_ns").record_duration(wait);
                obs::complete_span_ctx(
                    "sched.queued",
                    "sched",
                    q.submitted_at,
                    dispatched_at,
                    q.ctx,
                    &[
                        ("job", obs::ArgValue::U64(q.job)),
                        ("workers", obs::ArgValue::U64(q.workers as u64)),
                    ],
                );
            } else {
                q.requeue_wait += wait;
            }
            let frame;
            {
                let _s = obs::span("sched.dispatch", "sched")
                    .arg("job", q.job)
                    .arg("workers", group.len());
                let child = _s.ctx_for_children();
                let msg = wire::CommandMsg {
                    job: q.job,
                    command: q.command.clone(),
                    dataset: q.dataset.clone(),
                    params: q.params.clone(),
                    group: group.clone(),
                    attempt: q.attempt,
                    check: 0,
                    trace_id: child.trace_id,
                    parent_span_id: child.parent_span_id,
                };
                frame = wire::encode_command(&msg);
                for &r in &group {
                    let _ = endpoint.send(r, tags::COMMAND, frame.clone());
                }
            }
            if q.attempt == 0 {
                let _ = link.emit(encode_event(
                    &EventHeader::JobAccepted {
                        job: q.job,
                        workers: group.len(),
                    },
                    Bytes::new(),
                ));
            }
            last_session = Some(q.session);
            running.insert(
                q.job,
                RunningJob {
                    group,
                    accepted_at: dispatched_at,
                    queue_wait_s: clock.wall_to_modeled(q.first_wait),
                    requeue_wait_s: clock.wall_to_modeled(q.requeue_wait),
                    q,
                    frame,
                    deadline: dispatched_at + resilience.dispatch_timeout,
                    cur_timeout: resilience.dispatch_timeout,
                    retransmits: 0,
                },
            );
            progressed = true;
        }

        // 4. Retransmit timed-out commands; once the retransmit budget
        // is spent, probe the group for dead ranks. The master worker
        // replays its cached response on a duplicate command, so a
        // retransmission recovers lost commands, lost partials and lost
        // completions uniformly.
        let now = Instant::now();
        let expired: Vec<JobId> = running
            .iter()
            .filter(|(_, r)| now >= r.deadline)
            .map(|(&j, _)| j)
            .collect();
        for job in expired {
            progressed = true;
            let run = running.get_mut(&job).expect("collected above");
            if run.retransmits < resilience.max_retransmits {
                run.retransmits += 1;
                run.q.retries += 1;
                obs::counter_cached(&RETRIES, "sched_retries_total").inc();
                run.cur_timeout = run.cur_timeout.mul_f64(resilience.backoff_factor);
                run.deadline = Instant::now() + run.cur_timeout;
                for &r in &run.group {
                    let _ = endpoint.send(r, tags::COMMAND, run.frame.clone());
                }
                continue;
            }
            // Probe: every rank of the group must echo the nonce within
            // the probe timeout. The nonce filters stale pongs from
            // earlier probes; unrelated frames arriving meanwhile are
            // buffered by the endpoint and handled next iteration.
            // Unanswered ranks are re-pinged every slice — on a lossy
            // link a single ping would regularly convict live ranks.
            probe_nonce += 1;
            let nonce = Bytes::copy_from_slice(&probe_nonce.to_le_bytes());
            let mut alive_ranks: HashSet<Rank> = HashSet::new();
            let probe_deadline = Instant::now() + resilience.probe_timeout;
            'probe: while alive_ranks.len() < run.group.len() {
                let round_start = Instant::now();
                if round_start >= probe_deadline {
                    break;
                }
                // Ping send time for this round, in trace-epoch ns —
                // the clock-offset estimate below needs it.
                let sent_ns = obs::now_ns();
                for &r in &run.group {
                    if !alive_ranks.contains(&r) {
                        let _ = endpoint.send(r, tags::PING, nonce.clone());
                    }
                }
                let slice_end = (round_start + Duration::from_millis(25)).min(probe_deadline);
                loop {
                    let left = slice_end.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    match endpoint.recv_tag_timeout(tags::PONG, left) {
                        Ok(m) if is_obs_pong(&m.payload) => {
                            // A heartbeat pong drained mid-probe: harvest
                            // its delta instead of dropping it (the shared
                            // nonce counter keeps it from ever aliasing
                            // this probe's nonce).
                            harvest_obs_pong(&m.payload, m.from, &mut tsdb, &mut residency);
                        }
                        Ok(m)
                            if pong_matches(&m.payload, &nonce) && run.group.contains(&m.from) =>
                        {
                            // Workers append their cache-residency
                            // digest (and, on newer peers, their clock
                            // timestamp) after the echoed nonce;
                            // harvest both while we're here.
                            let (digest, t_remote) = split_pong_tail(&m.payload[nonce.len()..]);
                            if let Some(d) = digest {
                                if !d.is_unknown() {
                                    residency.insert(m.from, d);
                                }
                            }
                            if let Some(t_remote) = t_remote {
                                // NTP-style estimate: the worker stamped
                                // its clock mid-flight, so offset =
                                // t_remote - (t_send + rtt/2). The probe
                                // doubles as the flight recorder's clock
                                // probe; min-RTT samples win over there.
                                let rtt = obs::now_ns().saturating_sub(sent_ns);
                                let offset = t_remote as i64 - (sent_ns + rtt / 2) as i64;
                                obs::flight::record_clock_offset(m.from as u64, offset, rtt);
                            }
                            alive_ranks.insert(m.from);
                            if alive_ranks.len() == run.group.len() {
                                break 'probe;
                            }
                        }
                        Ok(_) => {} // stale pong from an earlier probe
                        Err(_) => break,
                    }
                }
            }
            if alive_ranks.len() == run.group.len() {
                // Everyone answered: the job is slow, not stuck. Reset
                // the retransmit budget but keep the grown timeout.
                run.retransmits = 0;
                run.deadline = Instant::now() + run.cur_timeout;
                continue;
            }
            // Dead rank(s): exclude them permanently, free the
            // survivors and requeue the job at the queue front.
            let run = running.remove(&job).expect("present above");
            for &r in &run.group {
                if alive_ranks.contains(&r) {
                    free[r] = true;
                } else if dead.insert(r) {
                    free[r] = false;
                    obs::counter_cached(&DEAD_RANKS, "sched_dead_ranks_total").inc();
                }
            }
            if cancels.write().remove(&job) {
                // The client had already cancelled this job; its group
                // died before the DONE could confirm. Terminate with the
                // Cancelled final instead of requeueing work nobody
                // wants.
                obs::counter_cached(&JOBS_CANCELLED, "sched_jobs_cancelled_total").inc();
                let frame = encode_event(
                    &EventHeader::Cancelled {
                        job,
                        report: JobReport::default(),
                    },
                    Bytes::new(),
                );
                remember_final(&mut recent_finals, job, frame.clone());
                let _ = link.emit(frame);
                continue;
            }
            let mut q = run.q;
            q.attempt += 1;
            q.degraded = true;
            // This attempt's wait starts now; the time already burned
            // on the failed dispatch belongs to neither wait metric.
            q.enqueued_at = Instant::now();
            let alive_total = (1..=n_workers).filter(|r| !dead.contains(r)).count();
            if q.attempt >= resilience.max_attempts || alive_total == 0 {
                obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
                let frame = encode_event(
                    &EventHeader::Error {
                        job,
                        message: format!(
                            "job abandoned after {} attempts ({} live workers)",
                            q.attempt, alive_total
                        ),
                    },
                    Bytes::new(),
                );
                remember_final(&mut recent_finals, job, frame.clone());
                let _ = link.emit(frame);
            } else {
                obs::counter_cached(&REQUEUES, "sched_requeues_total").inc();
                q.workers = q.workers.min(alive_total);
                queue.push_front(q);
                note_queue_depth(queue.len(), &mut queue_high_watermark);
            }
        }

        // 4b. Telemetry plane: heartbeat pings fan the delta harvest
        // out to every live rank, and the periodic snapshot write keeps
        // `telemetry.json` fresh for `vira top` while evaluating SLOs.
        if telemetry.enabled {
            if last_heartbeat.elapsed() >= telemetry.heartbeat_interval {
                last_heartbeat = Instant::now();
                // Shares the probe's nonce counter so a heartbeat nonce
                // can never alias an in-flight probe nonce.
                probe_nonce += 1;
                let payload = obs_ping_payload(probe_nonce);
                let mut sent = 0u64;
                for r in 1..=n_workers {
                    if !dead.contains(&r) {
                        let _ = endpoint.send(r, tags::PING, payload.clone());
                        sent += 1;
                    }
                }
                obs::counter_cached(&HEARTBEATS, "obs_heartbeats_total").add(sent);
            }
            if last_write.elapsed() >= telemetry.write_interval {
                last_write = Instant::now();
                telemetry_tick(
                    &telemetry,
                    &mut tsdb,
                    &mut slo_engine,
                    queue.len(),
                    running.len(),
                    n_workers,
                    &dead,
                    &residency,
                    false,
                );
            }
        }

        // 5. Exit once shut down and drained.
        if shutting_down && running.is_empty() {
            if telemetry.enabled {
                // One last snapshot, marked final so `vira top` in
                // follow mode knows the run is over.
                telemetry_tick(
                    &telemetry,
                    &mut tsdb,
                    &mut slo_engine,
                    queue.len(),
                    running.len(),
                    n_workers,
                    &dead,
                    &residency,
                    true,
                );
            }
            for r in 1..=n_workers {
                let _ = endpoint.send(r, tags::SHUTDOWN, Bytes::new());
            }
            return;
        }

        // 6. Idle wait: block briefly on worker traffic so the loop does
        // not spin. A completion arriving here is handled inline — the
        // former re-send-to-self path copied the payload and cost an
        // extra scheduler round-trip per result.
        if !progressed {
            let wait_started = Instant::now();
            let waited = endpoint.recv_tag_timeout(tags::JOB_DONE, Duration::from_micros(500));
            obs::counter_cached(&IDLE_WAIT_NS, "sched_idle_wait_ns_total")
                .add(wait_started.elapsed().as_nanos() as u64);
            match waited {
                Ok(m) => handle_job_done(
                    m.payload,
                    &mut running,
                    &mut free,
                    &cancels,
                    &clock,
                    &link,
                    &mut recent_finals,
                    &mut residency,
                    &mut tsdb,
                ),
                Err(CommError::Timeout) => {}
                Err(_) => return,
            }
        }
    }
}

/// True when a PONG payload answers the probe `nonce`: the nonce must
/// be echoed as a *prefix*. New workers append their cache-residency
/// digest after the nonce; old workers echo the nonce verbatim — both
/// count as alive.
fn pong_matches(payload: &[u8], nonce: &[u8]) -> bool {
    payload.len() >= nonce.len() && &payload[..nonce.len()] == nonce
}

/// Splits a PONG payload tail (everything after the echoed nonce) into
/// the optional residency digest and the optional clock timestamp.
/// Old workers send the digest alone; new workers append their
/// trace-epoch timestamp (8 bytes LE) after it. A digest dump is only
/// ever empty or full-size (`DIGEST_BITS / 8` bytes), so the two
/// layouts cannot alias; anything else is a foreign payload.
fn split_pong_tail(rest: &[u8]) -> (Option<ResidencyDigest>, Option<u64>) {
    const FULL: usize = vira_dms::cache::DIGEST_BITS / 8;
    if rest.is_empty() || rest.len() == FULL {
        return (ResidencyDigest::from_bytes(rest), None);
    }
    if rest.len() == 8 || rest.len() == FULL + 8 {
        let (d, t) = rest.split_at(rest.len() - 8);
        let ts = u64::from_le_bytes(t.try_into().expect("8-byte tail"));
        return (ResidencyDigest::from_bytes(d), Some(ts));
    }
    (None, None)
}

/// Builds a telemetry heartbeat PING payload: the 8-byte LE nonce
/// followed by the [`wire::OBS_PING_SUFFIX`] marker.
fn obs_ping_payload(nonce: u64) -> Bytes {
    let mut p = Vec::with_capacity(12);
    p.extend_from_slice(&nonce.to_le_bytes());
    p.extend_from_slice(wire::OBS_PING_SUFFIX);
    Bytes::from(p)
}

/// True when a PONG answers a telemetry heartbeat: its echoed prefix is
/// a 12-byte obs-ping payload.
fn is_obs_pong(payload: &[u8]) -> bool {
    payload.len() >= 12 && wire::is_obs_ping(&payload[..12])
}

/// Splits an obs-pong's post-echo bytes into the classic digest/clock
/// pair plus the piggybacked delta blob, when one rides along. The
/// trailer layout is `digest | clock(8) | blob | blob_len(4 LE)`; a
/// blob must start with the `OBSD1` magic, so anything that fails the
/// structural checks falls back to the classic [`split_pong_tail`]
/// parse (old workers answer obs pings with classic pongs).
fn split_obs_pong_tail(rest: &[u8]) -> (Option<ResidencyDigest>, Option<u64>, Option<&str>) {
    const FULL: usize = vira_dms::cache::DIGEST_BITS / 8;
    if rest.len() >= 13 {
        let blob_len =
            u32::from_le_bytes(rest[rest.len() - 4..].try_into().expect("4-byte trailer")) as usize;
        if blob_len >= 1 && blob_len + 12 <= rest.len() {
            let digest_len = rest.len() - 12 - blob_len;
            if digest_len == 0 || digest_len == FULL {
                let blob = &rest[digest_len + 8..digest_len + 8 + blob_len];
                if blob.starts_with(vira_obs::ship::DELTA_MAGIC.as_bytes()) {
                    if let Ok(s) = std::str::from_utf8(blob) {
                        let (d, t) = split_pong_tail(&rest[..digest_len + 8]);
                        return (d, t, Some(s));
                    }
                }
            }
        }
    }
    let (d, t) = split_pong_tail(rest);
    (d, t, None)
}

/// Harvests one telemetry pong: residency digest into the placement
/// map, the metric delta into the tsdb (per-rank seq numbers make the
/// ingest idempotent, so duplicated frames on a lossy transport are
/// dropped there). Non-obs pongs (stale probe answers) are ignored.
fn harvest_obs_pong(
    payload: &[u8],
    from: Rank,
    tsdb: &mut obs::Tsdb,
    residency: &mut HashMap<Rank, ResidencyDigest>,
) {
    if !is_obs_pong(payload) {
        return;
    }
    let (digest, _clock, blob) = split_obs_pong_tail(&payload[12..]);
    if let Some(d) = digest {
        if !d.is_unknown() {
            residency.insert(from, d);
        }
    }
    if let Some(blob) = blob {
        if let Ok(delta) = obs::ship::decode(blob) {
            tsdb.ingest(&delta, obs::now_ns());
        }
    }
}

/// One telemetry evaluation pass: refresh the scheduler gauges, cut and
/// ingest rank 0's own metric delta, evaluate the SLOs (emitting any
/// edge-triggered alert events), and — when an output directory is
/// configured — atomically rewrite `telemetry.json`.
#[allow(clippy::too_many_arguments)]
fn telemetry_tick(
    telemetry: &TelemetryConfig,
    tsdb: &mut obs::Tsdb,
    slo_engine: &mut obs::SloEngine,
    queue_depth: usize,
    running_jobs: usize,
    n_workers: usize,
    dead: &HashSet<Rank>,
    residency: &HashMap<Rank, ResidencyDigest>,
    final_snapshot: bool,
) {
    obs::gauge_cached(&QUEUE_DEPTH, "sched_queue_depth").set(queue_depth as i64);
    obs::gauge_cached(&RUNNING_JOBS, "sched_running_jobs").set(running_jobs as i64);
    let now = obs::now_ns();
    // Rank 0 ships to itself: the scheduler's own counters (and, on an
    // in-process world with its shared registry, anything the workers
    // bumped since the last heartbeat) land in the tsdb without a wire
    // round-trip.
    if let Some(d) = obs::take_delta(0) {
        tsdb.ingest(&d, now);
    }
    let statuses = slo_engine.evaluate(tsdb, now);
    let Some(dir) = telemetry.out_dir.as_deref() else {
        return;
    };
    let offsets: HashMap<u64, i64> = obs::flight::clock_offsets()
        .into_iter()
        .map(|(r, s)| (r, s.offset_ns))
        .collect();
    let ranks: Vec<obs::RankMeta> = (1..=n_workers)
        .map(|r| obs::RankMeta {
            rank: r as u64,
            alive: !dead.contains(&r),
            residency_blocks: residency.get(&r).map(|d| d.set_bits() as u64).unwrap_or(0),
            clock_offset_ns: offsets.get(&(r as u64)).copied().unwrap_or(0),
        })
        .collect();
    let text = obs::render_telemetry_json(tsdb, &statuses, &ranks, now, final_snapshot);
    let _ = std::fs::create_dir_all(dir);
    // Write-then-rename so `vira top` never reads a torn snapshot.
    let tmp = dir.join("telemetry.json.tmp");
    if std::fs::write(&tmp, &text).is_ok() {
        let _ = std::fs::rename(&tmp, dir.join("telemetry.json"));
    }
}

/// Picks the queue index to dispatch next, or `None` when nothing
/// eligible fits the free ranks.
///
/// * Plain FIFO (`backfill` off): only the head is ever considered.
/// * Backfill: the scan may pass over jobs that do not fit, but never
///   past the first job that has already been jumped
///   `max_skipped_dispatches` times (the aging barrier — that job may
///   still be picked itself).
/// * Fair share: within the eligible window, candidate *sessions* are
///   tried round-robin — the first session id strictly greater than
///   the last served one (wrapping), FIFO within each session.
fn select_candidate(
    queue: &VecDeque<QueuedJob>,
    n_free: usize,
    alive: usize,
    sched: &SchedulerConfig,
    last_session: Option<u64>,
) -> Option<usize> {
    if queue.is_empty() || n_free == 0 || alive == 0 {
        return None;
    }
    let fits = |q: &QueuedJob| q.workers.min(alive) <= n_free;
    if !sched.backfill {
        return fits(&queue[0]).then_some(0);
    }
    let limit = queue
        .iter()
        .position(|q| q.skipped >= sched.max_skipped_dispatches)
        .unwrap_or(queue.len() - 1);
    if !sched.fair_share {
        return (0..=limit).find(|&i| fits(&queue[i]));
    }
    let mut sessions: Vec<u64> = queue.iter().take(limit + 1).map(|q| q.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    let pivot = match last_session {
        Some(last) => sessions.iter().position(|&s| s > last).unwrap_or(0),
        None => 0,
    };
    for k in 0..sessions.len() {
        let s = sessions[(pivot + k) % sessions.len()];
        if let Some(i) = (0..=limit).find(|&i| queue[i].session == s && fits(&queue[i])) {
            return Some(i);
        }
    }
    None
}

/// Upper bound on the per-job item footprint used for placement
/// scoring, so scoring stays cheap for huge datasets. The digest is a
/// Bloom-style bitset anyway — a prefix of the footprint is plenty of
/// signal.
const PLACEMENT_ITEM_CAP: usize = 512;

/// The raw `(block, step)` item ids a job will touch: every block of
/// the dataset across the command's time-step window (mirroring the
/// worker-side `steps_of` parameter convention), capped at
/// [`PLACEMENT_ITEM_CAP`].
fn placement_items(
    resolver: &NameResolver,
    server: &DataServer,
    dataset: &str,
    params: &vira_vista::protocol::CommandParams,
) -> Vec<ItemId> {
    let Some(spec) = server.dataset_spec(dataset) else {
        return Vec::new();
    };
    let step0 = params.get_usize("step0").unwrap_or(0) as u32;
    let limit = params.get_usize("n_steps").unwrap_or(spec.n_steps as usize) as u32;
    let end = spec.n_steps.min(step0.saturating_add(limit));
    let mut items = Vec::new();
    'outer: for step in step0..end {
        for block in 0..spec.n_blocks {
            if items.len() >= PLACEMENT_ITEM_CAP {
                break 'outer;
            }
            items.push(resolver.to_id(&ItemName::block_step(
                dataset,
                BlockStepId::new(block, step),
            )));
        }
    }
    items
}

/// Chooses `want` of the free ranks by residency-digest overlap with
/// the job's item footprint (ties fall to the lower rank). The chosen
/// group is returned in ascending rank order — the lowest member is
/// the group master, same invariant as lowest-rank placement. Also
/// returns the summed overlap of the chosen group.
fn place_group(
    free_ranks: &[Rank],
    want: usize,
    items: &[ItemId],
    residency: &HashMap<Rank, ResidencyDigest>,
) -> (Vec<Rank>, usize) {
    let mut scored: Vec<(usize, Rank)> = free_ranks
        .iter()
        .map(|&r| {
            let s = if items.is_empty() {
                0
            } else {
                residency.get(&r).map(|d| d.overlap(items)).unwrap_or(0)
            };
            (s, r)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut total = 0;
    let mut group: Vec<Rank> = scored
        .into_iter()
        .take(want)
        .map(|(s, r)| {
            total += s;
            r
        })
        .collect();
    group.sort_unstable();
    (group, total)
}

/// Where a cancel request lands relative to the job's lifecycle. The
/// three cases need three different actions — drop from the queue,
/// fan CANCEL to the running group, or nothing (idempotent cancel of a
/// finished job) — and only the running case may touch the cancel set.
enum CancelDisposition {
    /// Still queued at this index: drop it, emit the Cancelled final
    /// directly. Must NOT enter the cancel set (it would leak — a
    /// dequeued job never reaches `handle_job_done`).
    Queued(usize),
    /// Running on these ranks: mark the cancel set and fan the CANCEL
    /// tag to every group member.
    Running(Vec<Rank>),
    /// Neither queued nor running — already finished (or never
    /// submitted): no-op.
    Unknown,
}

fn cancel_disposition(
    job: JobId,
    queue: &VecDeque<QueuedJob>,
    running: &HashMap<JobId, RunningJob>,
) -> CancelDisposition {
    if let Some(pos) = queue.iter().position(|q| q.job == job) {
        CancelDisposition::Queued(pos)
    } else if let Some(run) = running.get(&job) {
        CancelDisposition::Running(run.group.clone())
    } else {
        CancelDisposition::Unknown
    }
}

/// Why admission refused a submit: the bounded global queue is full,
/// or the submitting session is over its own queued/in-flight budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdmissionReject {
    QueueFull,
    SessionQuota,
}

/// Pure admission decision for one submit. `None` means admit: control
/// is disabled, or the queue and the session's budget both have room.
/// Global bound first — a full queue sheds everyone, fairness between
/// sessions is the quota's job, not the bound's.
fn admission_verdict(
    admission: &AdmissionConfig,
    queue: &VecDeque<QueuedJob>,
    running: &HashMap<JobId, RunningJob>,
    session: u64,
) -> Option<AdmissionReject> {
    if !admission.enabled {
        return None;
    }
    if queue.len() >= admission.max_queue_depth {
        return Some(AdmissionReject::QueueFull);
    }
    let queued_s = queue.iter().filter(|q| q.session == session).count();
    let running_s = running.values().filter(|r| r.q.session == session).count();
    if queued_s >= admission.max_session_queued
        || queued_s + running_s >= admission.max_session_queued + admission.max_session_running
    {
        return Some(AdmissionReject::SessionQuota);
    }
    None
}

/// Retry-after hint attached to a shed: the configured base plus a
/// linear ramp up to 2x of it as the queue fills. A fuller scheduler
/// pushes retries further out instead of inviting every shed client
/// back at the same instant.
fn busy_retry_hint(admission: &AdmissionConfig, depth: usize) -> u64 {
    let max = admission.max_queue_depth.max(1) as u64;
    let depth = (depth as u64).min(max);
    admission.retry_after_ms + admission.retry_after_ms * depth / max
}

/// Refreshes the queue-depth gauge at the mutation site — not only on
/// the telemetry tick, so bursts shorter than a write interval still
/// show — and keeps the monotone high-watermark counter exactly equal
/// to the deepest queue this scheduler run has observed.
fn note_queue_depth(depth: usize, high_watermark: &mut usize) {
    obs::gauge_cached(&QUEUE_DEPTH, "sched_queue_depth").set(depth as i64);
    if depth > *high_watermark {
        obs::counter_cached(&QUEUE_HIGH_WATERMARK, "sched_queue_high_watermark")
            .add((depth - *high_watermark) as u64);
        *high_watermark = depth;
    }
}

/// Remembers a job's final (or error) event frame for client resume
/// requests, evicting the oldest entry past the cap.
fn remember_final(recent: &mut VecDeque<(JobId, Bytes)>, job: JobId, frame: Bytes) {
    recent.retain(|(j, _)| *j != job);
    if recent.len() >= RECENT_FINALS_CAP {
        recent.pop_front();
    }
    recent.push_back((job, frame));
}

/// Handles one `JOB_DONE` frame from a master worker: frees the group's
/// ranks, clears cancellation state and forwards the merged result (or
/// the error) to the visualization client. Completions from a
/// superseded attempt (the job was requeued meanwhile) are dropped
/// without touching the current dispatch.
#[allow(clippy::too_many_arguments)]
fn handle_job_done(
    frame: Bytes,
    running: &mut HashMap<JobId, RunningJob>,
    free: &mut [bool],
    cancels: &CancelSet,
    clock: &SimClock,
    link: &ServerSide,
    recent_finals: &mut VecDeque<(JobId, Bytes)>,
    residency: &mut HashMap<Rank, ResidencyDigest>,
    tsdb: &mut obs::Tsdb,
) {
    let Some((done, payload)) = wire::decode_done(frame) else {
        return;
    };
    // Harvest the group's piggybacked residency digests and metric
    // deltas before any staleness filtering — even a superseded attempt
    // reports current cache contents, and a delta is a delta no matter
    // which attempt carried it home (per-rank seq numbers in the tsdb
    // drop true duplicates).
    for (r, d) in &done.residency {
        if !d.is_unknown() {
            residency.insert(*r, d.clone());
        }
    }
    for (_, blob) in &done.obs_deltas {
        if let Ok(delta) = obs::ship::decode(blob) {
            tsdb.ingest(&delta, obs::now_ns());
        }
    }
    let stale = match running.get(&done.job) {
        Some(run) => done.attempt != run.q.attempt,
        None => true,
    };
    if stale {
        return;
    }
    let Some(run) = running.remove(&done.job) else {
        return;
    };
    for &r in &run.group {
        free[r] = true;
    }
    // The cancel-set entry doubles as the cancelled-job marker: when
    // the DONE answers a cancelled job, the client gets a `Cancelled`
    // terminal (payload discarded) instead of a `Final` — the
    // DONE-after-CANCEL half of the race, handled idempotently.
    let was_cancelled = cancels.write().remove(&done.job);
    let run_elapsed = run.accepted_at.elapsed();
    let total_runtime_s = clock.wall_to_modeled(run_elapsed);
    obs::complete_span_ctx(
        "sched.job",
        "sched",
        run.accepted_at,
        Instant::now(),
        run.q.ctx,
        &[
            ("job", obs::ArgValue::U64(done.job)),
            ("workers", obs::ArgValue::U64(run.group.len() as u64)),
            ("items", obs::ArgValue::U64(done.n_items as u64)),
        ],
    );
    obs::histogram_cached(&JOB_RUNTIME_NS, "sched_job_runtime_ns").record_duration(run_elapsed);
    job_latency_cohort(run.q.session).record_duration(run_elapsed);
    if was_cancelled {
        // Whatever geometry (or error) the late DONE carried is
        // discarded — the client abandoned the job and must see exactly
        // one `Cancelled` terminal. Accounting is still reported so the
        // cost of the aborted work stays visible.
        obs::counter_cached(&JOBS_CANCELLED, "sched_jobs_cancelled_total").inc();
        let report = JobReport {
            total_runtime_s,
            read_s: done.read_s,
            compute_s: done.compute_s,
            send_s: done.send_s,
            queue_wait_s: run.queue_wait_s,
            requeue_wait_s: run.requeue_wait_s,
            merge_s: done.merge_s,
            retries: run.q.retries,
            degraded: run.q.degraded,
            ..JobReport::default()
        };
        let frame = encode_event(
            &EventHeader::Cancelled {
                job: done.job,
                report,
            },
            Bytes::new(),
        );
        remember_final(recent_finals, done.job, frame.clone());
        let _ = link.emit(frame);
        return;
    }
    if let Some(err) = done.error {
        obs::counter_cached(&JOBS_FAILED, "sched_jobs_failed_total").inc();
        let frame = encode_event(
            &EventHeader::Error {
                job: done.job,
                message: err,
            },
            Bytes::new(),
        );
        remember_final(recent_finals, done.job, frame.clone());
        let _ = link.emit(frame);
        return;
    }
    obs::counter_cached(&JOBS_DONE, "sched_jobs_done_total").inc();
    let report = JobReport {
        total_runtime_s,
        read_s: done.read_s,
        compute_s: done.compute_s,
        send_s: done.send_s,
        queue_wait_s: run.queue_wait_s,
        requeue_wait_s: run.requeue_wait_s,
        merge_s: done.merge_s,
        demand_requests: done.dms.demand_requests,
        cache_hits: done.dms.l1_hits + done.dms.l2_hits,
        cache_misses: done.dms.misses,
        prefetch_issued: done.dms.prefetch_issued,
        prefetch_hits: done.dms.prefetch_hits,
        triangles: if done.kind == PayloadKind::Triangles {
            done.n_items as u64
        } else {
            0
        },
        polylines: if done.kind == PayloadKind::Polylines {
            done.n_items as u64
        } else {
            0
        },
        cells_skipped: done.cells_skipped,
        bricks_skipped: done.bricks_skipped,
        extract_par_s: done.extract_par_s,
        extract_threads: done.extract_threads,
        retries: run.q.retries,
        degraded: run.q.degraded,
    };
    let frame = encode_event(
        &EventHeader::Final {
            job: done.job,
            kind: done.kind,
            n_items: done.n_items,
            report,
        },
        payload,
    );
    remember_final(recent_finals, done.job, frame.clone());
    let _ = link.emit(frame);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vira_vista::protocol::CommandParams;

    fn qj(job: JobId, workers: usize, session: u64, skipped: u32) -> QueuedJob {
        let now = Instant::now();
        QueuedJob {
            job,
            command: "ViewerIso".into(),
            dataset: "TestCube".into(),
            params: CommandParams::new(),
            workers,
            submitted_at: now,
            enqueued_at: now,
            session,
            attempt: 0,
            retries: 0,
            degraded: false,
            first_wait: Duration::ZERO,
            requeue_wait: Duration::ZERO,
            skipped,
            ctx: obs::TraceCtx::default(),
        }
    }

    fn plain_fifo() -> SchedulerConfig {
        SchedulerConfig {
            backfill: false,
            locality: false,
            fair_share: false,
            ..SchedulerConfig::default()
        }
    }

    fn backfill_only() -> SchedulerConfig {
        SchedulerConfig {
            fair_share: false,
            locality: false,
            ..SchedulerConfig::default()
        }
    }

    fn rj(job: JobId, group: Vec<Rank>) -> RunningJob {
        let now = Instant::now();
        RunningJob {
            group,
            accepted_at: now,
            queue_wait_s: 0.0,
            requeue_wait_s: 0.0,
            q: qj(job, 1, 0, 0),
            frame: Bytes::new(),
            deadline: now + Duration::from_secs(1),
            cur_timeout: Duration::from_secs(1),
            retransmits: 0,
        }
    }

    #[test]
    fn cancel_disposition_covers_queued_running_and_finished() {
        let queue: VecDeque<QueuedJob> = vec![qj(1, 1, 0, 0), qj(2, 1, 0, 0)].into();
        let mut running: HashMap<JobId, RunningJob> = HashMap::new();
        running.insert(3, rj(3, vec![1, 4]));
        // Queued: reported by index, never via the cancel set.
        assert!(matches!(
            cancel_disposition(2, &queue, &running),
            CancelDisposition::Queued(1)
        ));
        // Running: the CANCEL fan-out targets exactly the work group.
        match cancel_disposition(3, &queue, &running) {
            CancelDisposition::Running(g) => assert_eq!(g, vec![1, 4]),
            _ => panic!("job 3 is running"),
        }
        // Finished/unknown: idempotent no-op.
        assert!(matches!(
            cancel_disposition(9, &queue, &running),
            CancelDisposition::Unknown
        ));
    }

    #[test]
    fn backfill_overtakes_a_blocked_head() {
        let queue: VecDeque<QueuedJob> = vec![qj(1, 8, 0, 0), qj(2, 1, 0, 0)].into();
        // One free rank: the 8-worker head is blocked, the 1-worker job
        // behind it fits.
        assert_eq!(
            select_candidate(&queue, 1, 9, &backfill_only(), None),
            Some(1)
        );
        // Plain FIFO never looks past the head.
        assert_eq!(select_candidate(&queue, 1, 9, &plain_fifo(), None), None);
        // With enough free ranks the head wins under either policy.
        assert_eq!(
            select_candidate(&queue, 8, 9, &backfill_only(), None),
            Some(0)
        );
        assert_eq!(select_candidate(&queue, 8, 9, &plain_fifo(), None), Some(0));
    }

    #[test]
    fn aged_job_becomes_a_barrier() {
        let bound = SchedulerConfig::default().max_skipped_dispatches;
        // The blocked head has been jumped `bound` times: the job
        // behind it may no longer overtake.
        let queue: VecDeque<QueuedJob> = vec![qj(1, 2, 0, bound), qj(2, 1, 0, 0)].into();
        assert_eq!(select_candidate(&queue, 1, 2, &backfill_only(), None), None);
        // Before the bound is reached, the overtake is allowed.
        let queue: VecDeque<QueuedJob> = vec![qj(1, 2, 0, bound - 1), qj(2, 1, 0, 0)].into();
        assert_eq!(
            select_candidate(&queue, 1, 2, &backfill_only(), None),
            Some(1)
        );
        // The aged job itself stays dispatchable the moment it fits.
        let queue: VecDeque<QueuedJob> = vec![qj(1, 2, 0, bound), qj(2, 1, 0, 0)].into();
        assert_eq!(
            select_candidate(&queue, 2, 2, &backfill_only(), None),
            Some(0)
        );
    }

    #[test]
    fn fair_share_rotates_across_sessions() {
        let sched = SchedulerConfig {
            locality: false,
            ..SchedulerConfig::default()
        };
        let queue: VecDeque<QueuedJob> =
            vec![qj(1, 1, 0, 0), qj(2, 1, 0, 0), qj(3, 1, 7, 0)].into();
        // Session 0 was just served: session 7's job is next even
        // though two session-0 jobs sit ahead of it.
        assert_eq!(select_candidate(&queue, 4, 4, &sched, Some(0)), Some(2));
        // After session 7 the credit wraps back to session 0's oldest.
        assert_eq!(select_candidate(&queue, 4, 4, &sched, Some(7)), Some(0));
        // No history: FIFO order (smallest session first here).
        assert_eq!(select_candidate(&queue, 4, 4, &sched, None), Some(0));
        // Fair share never picks a job that does not fit.
        let queue: VecDeque<QueuedJob> = vec![qj(1, 1, 0, 0), qj(2, 3, 7, 0)].into();
        assert_eq!(select_candidate(&queue, 1, 4, &sched, Some(0)), Some(0));
    }

    fn strict_admission() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            max_queue_depth: 4,
            max_session_queued: 2,
            max_session_running: 1,
            retry_after_ms: 50,
        }
    }

    #[test]
    fn admission_disabled_admits_everything() {
        let admission = AdmissionConfig::default();
        assert!(!admission.enabled);
        // Far past every bound, yet admitted: disabled admission is the
        // historical unbounded-queue behavior.
        let queue: VecDeque<QueuedJob> = (0..5000).map(|j| qj(j, 1, 3, 0)).collect();
        let running: HashMap<JobId, RunningJob> = HashMap::new();
        assert_eq!(admission_verdict(&admission, &queue, &running, 3), None);
    }

    #[test]
    fn admission_sheds_on_full_queue_then_on_session_quota() {
        let admission = strict_admission();
        let running: HashMap<JobId, RunningJob> = HashMap::new();
        // Global bound first: a full queue sheds even a quota-clean
        // session.
        let queue: VecDeque<QueuedJob> = (0..4).map(|j| qj(j, 1, j, 0)).collect();
        assert_eq!(
            admission_verdict(&admission, &queue, &running, 99),
            Some(AdmissionReject::QueueFull)
        );
        // Under the global bound, the per-session queued budget bites…
        let queue: VecDeque<QueuedJob> = vec![qj(1, 1, 7, 0), qj(2, 1, 7, 0)].into();
        assert_eq!(
            admission_verdict(&admission, &queue, &running, 7),
            Some(AdmissionReject::SessionQuota)
        );
        // …while another session still gets in.
        assert_eq!(admission_verdict(&admission, &queue, &running, 8), None);
        // Queued + running budget: one queued job plus enough in-flight
        // work crosses the combined quota.
        let queue: VecDeque<QueuedJob> = vec![qj(1, 1, 7, 0)].into();
        let mut running: HashMap<JobId, RunningJob> = HashMap::new();
        for j in 10..12 {
            let mut run = rj(j, vec![1]);
            run.q.session = 7;
            running.insert(j, run);
        }
        assert_eq!(
            admission_verdict(&admission, &queue, &running, 7),
            Some(AdmissionReject::SessionQuota)
        );
        // The same load on someone else's session is irrelevant.
        assert_eq!(admission_verdict(&admission, &queue, &running, 8), None);
    }

    #[test]
    fn busy_retry_hint_ramps_with_queue_depth() {
        let admission = AdmissionConfig {
            retry_after_ms: 50,
            max_queue_depth: 100,
            ..strict_admission()
        };
        // Empty queue: the base hint. Full queue: exactly double.
        assert_eq!(busy_retry_hint(&admission, 0), 50);
        assert_eq!(busy_retry_hint(&admission, 50), 75);
        assert_eq!(busy_retry_hint(&admission, 100), 100);
        // Depth beyond the bound clamps instead of overflowing the ramp.
        assert_eq!(busy_retry_hint(&admission, 100_000), 100);
        // A zero bound must not divide by zero.
        let degenerate = AdmissionConfig {
            max_queue_depth: 0,
            retry_after_ms: 10,
            ..strict_admission()
        };
        assert_eq!(busy_retry_hint(&degenerate, 0), 10);
    }

    #[test]
    fn queue_high_watermark_tracks_the_deepest_queue_only() {
        let mut hwm = 0usize;
        note_queue_depth(3, &mut hwm);
        assert_eq!(hwm, 3);
        // Draining the queue never lowers the watermark…
        note_queue_depth(0, &mut hwm);
        assert_eq!(hwm, 3);
        // …and a deeper burst raises it by exactly the difference.
        note_queue_depth(5, &mut hwm);
        assert_eq!(hwm, 5);
        note_queue_depth(5, &mut hwm);
        assert_eq!(hwm, 5);
    }

    proptest::proptest! {
        /// Fair-share starvation bound: with K distinct sessions all
        /// holding fitting jobs, no session waits more than K
        /// consecutive dispatches — for any queue interleaving and any
        /// pivot (`last_session`), including wrap-around past the
        /// largest session id.
        #[test]
        fn fair_share_serves_every_session_within_k_dispatches(
            entries in proptest::collection::vec(0u64..6, 1..24),
            last in proptest::option::of(proptest::prelude::any::<u64>()),
        ) {
            let sched = SchedulerConfig {
                locality: false,
                ..SchedulerConfig::default()
            };
            let mut queue: VecDeque<QueuedJob> = entries
                .iter()
                .enumerate()
                .map(|(j, &s)| qj(j as u64, 1, s, 0))
                .collect();
            let k = {
                let mut s: Vec<u64> = entries.clone();
                s.sort_unstable();
                s.dedup();
                s.len()
            };
            let mut last_session = last;
            let mut waited: HashMap<u64, usize> = HashMap::new();
            while !queue.is_empty() {
                // Every job fits (1 worker, 16 free): a starved session
                // can only be the rotation's fault.
                let idx = select_candidate(&queue, 16, 16, &sched, last_session)
                    .expect("fitting jobs are always dispatchable");
                let q = queue.remove(idx).unwrap();
                waited.remove(&q.session);
                for w in queue.iter() {
                    if w.session != q.session {
                        let n = waited.entry(w.session).or_insert(0);
                        *n += 1;
                        proptest::prop_assert!(
                            *n < k,
                            "session {} waited {} dispatches with only {} sessions live",
                            w.session, n, k
                        );
                    }
                }
                last_session = Some(q.session);
            }
        }
    }

    #[test]
    fn place_group_prefers_warm_ranks_and_keeps_master_lowest() {
        let items: Vec<ItemId> = (0..8).map(ItemId).collect();
        let mut residency = HashMap::new();
        let mut warm = ResidencyDigest::empty();
        for &i in &items {
            warm.insert(i);
        }
        residency.insert(4, warm.clone());
        residency.insert(3, warm);
        let free = vec![1, 2, 3, 4];
        let (group, overlap) = place_group(&free, 2, &items, &residency);
        // The two warm ranks win over the lower cold ones…
        assert_eq!(group, vec![3, 4]);
        assert_eq!(overlap, 16);
        // …and the group is ascending so rank 3 is the master.
        let (cold, zero) = place_group(&free, 2, &items, &HashMap::new());
        // No residency knowledge degenerates to lowest-rank placement.
        assert_eq!(cold, vec![1, 2]);
        assert_eq!(zero, 0);
    }

    #[test]
    fn pong_prefix_match_accepts_digest_tails() {
        let nonce = 9u64.to_le_bytes();
        assert!(pong_matches(&nonce, &nonce));
        let mut with_tail = nonce.to_vec();
        with_tail.extend_from_slice(&[0u8; 16]);
        assert!(pong_matches(&with_tail, &nonce));
        assert!(!pong_matches(&nonce[..4], &nonce));
        let other = 10u64.to_le_bytes();
        assert!(!pong_matches(&other, &nonce));
    }

    #[test]
    fn pong_tail_split_covers_old_and_new_layouts() {
        let full = vira_dms::cache::DIGEST_BITS / 8;
        let mut digest = ResidencyDigest::empty();
        digest.insert(ItemId(5));
        let dump = digest.to_bytes();
        assert_eq!(dump.len(), full);
        // Old worker, nonce only.
        assert_eq!(
            split_pong_tail(&[]),
            (Some(ResidencyDigest::default()), None)
        );
        // Old worker, digest only.
        let (d, t) = split_pong_tail(&dump);
        assert_eq!(d.as_ref(), Some(&digest));
        assert_eq!(t, None);
        // New worker, digest + timestamp.
        let mut tail = dump.clone();
        tail.extend_from_slice(&1234u64.to_le_bytes());
        let (d, t) = split_pong_tail(&tail);
        assert_eq!(d.as_ref(), Some(&digest));
        assert_eq!(t, Some(1234));
        // New worker with an unknown digest: timestamp alone.
        let (d, t) = split_pong_tail(&77u64.to_le_bytes());
        assert_eq!(d, Some(ResidencyDigest::default()));
        assert_eq!(t, Some(77));
        // Foreign payloads yield neither.
        assert_eq!(split_pong_tail(&[1, 2, 3]), (None, None));
    }

    #[test]
    fn obs_pong_tail_split_covers_all_layouts() {
        let full = vira_dms::cache::DIGEST_BITS / 8;
        let mut digest = ResidencyDigest::empty();
        digest.insert(ItemId(5));
        let dump = digest.to_bytes();
        let blob = "OBSD1 1 1 100\nc sched_jobs_done_total 2\n";

        // New worker: digest | clock | blob | len.
        let mut tail = dump.clone();
        tail.extend_from_slice(&1234u64.to_le_bytes());
        tail.extend_from_slice(blob.as_bytes());
        tail.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        let (d, t, b) = split_obs_pong_tail(&tail);
        assert_eq!(d.as_ref(), Some(&digest));
        assert_eq!(t, Some(1234));
        assert_eq!(b, Some(blob));

        // Unknown digest still parses: clock | blob | len.
        let mut tail = 77u64.to_le_bytes().to_vec();
        tail.extend_from_slice(blob.as_bytes());
        tail.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        let (d, t, b) = split_obs_pong_tail(&tail);
        assert_eq!(d, Some(ResidencyDigest::default()));
        assert_eq!(t, Some(77));
        assert_eq!(b, Some(blob));

        // Old worker answering an obs ping: classic digest|clock pong.
        let mut classic = dump.clone();
        classic.extend_from_slice(&55u64.to_le_bytes());
        let (d, t, b) = split_obs_pong_tail(&classic);
        assert_eq!(d.as_ref(), Some(&digest));
        assert_eq!(t, Some(55));
        assert_eq!(b, None);
        assert_eq!(split_obs_pong_tail(&[]).2, None);

        // A trailer whose blob lacks the OBSD1 magic is rejected (falls
        // back to the classic parse, which also fails the odd length).
        let mut bogus = 9u64.to_le_bytes().to_vec();
        bogus.extend_from_slice(b"not a delta blob here");
        bogus.extend_from_slice(&21u32.to_le_bytes());
        assert_eq!(split_obs_pong_tail(&bogus), (None, None, None));
        assert_eq!(full, 128, "layout constants baked into this test");
    }

    #[test]
    fn obs_ping_payload_roundtrips_the_marker() {
        let p = obs_ping_payload(42);
        assert_eq!(p.len(), 12);
        assert!(wire::is_obs_ping(&p));
        assert_eq!(&p[..8], &42u64.to_le_bytes());
        // A classic 8-byte probe nonce is not an obs ping.
        assert!(!wire::is_obs_ping(&42u64.to_le_bytes()));
        // An obs pong echoes the ping as its prefix.
        let mut pong = p.to_vec();
        pong.extend_from_slice(&7u64.to_le_bytes());
        assert!(is_obs_pong(&pong));
        assert!(!is_obs_pong(&pong[..11]));
    }

    #[test]
    fn harvest_obs_pong_feeds_the_tsdb_and_residency_map() {
        let mut tsdb = obs::Tsdb::new(obs::TsdbConfig::default());
        let mut residency: HashMap<Rank, ResidencyDigest> = HashMap::new();
        let mut digest = ResidencyDigest::empty();
        digest.insert(ItemId(3));
        let blob = "OBSD1 2 1 100\nc sched_jobs_done_total 5\n";
        let mut pong = obs_ping_payload(1).to_vec();
        pong.extend_from_slice(&digest.to_bytes());
        pong.extend_from_slice(&123u64.to_le_bytes());
        pong.extend_from_slice(blob.as_bytes());
        pong.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        harvest_obs_pong(&pong, 2, &mut tsdb, &mut residency);
        assert_eq!(residency.get(&2), Some(&digest));
        assert_eq!(tsdb.counter_total("sched_jobs_done_total"), 5);
        // A duplicated frame (lossy transport) is dropped by seq.
        harvest_obs_pong(&pong, 2, &mut tsdb, &mut residency);
        assert_eq!(tsdb.counter_total("sched_jobs_done_total"), 5);
        assert_eq!(tsdb.dup_dropped(), 1);
        // Stale probe pongs (8-byte echo) are ignored outright.
        let probe_pong = 9u64.to_le_bytes();
        harvest_obs_pong(&probe_pong, 1, &mut tsdb, &mut residency);
        assert!(residency.get(&1).is_none());
    }

    #[test]
    fn placement_items_respect_step_window_and_cap() {
        let server = DataServer::new(
            SimClock::instant(),
            vira_dms::server::ServerConfig::default(),
        );
        server.register_dataset(
            Arc::new(vira_storage::source::SynthSource::new(Arc::new(
                vira_grid::synth::test_cube(4, 3),
            ))),
            false,
        );
        let resolver = NameResolver::new(server.names().clone());
        let all = placement_items(&resolver, &server, "TestCube", &CommandParams::new());
        // 4-ish blocks × 3 steps, distinct ids.
        let spec = server.dataset_spec("TestCube").unwrap();
        assert_eq!(all.len(), (spec.n_blocks * spec.n_steps) as usize);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        // A one-step window shrinks the footprint accordingly.
        let one = placement_items(
            &resolver,
            &server,
            "TestCube",
            &CommandParams::new().set("n_steps", 1.0),
        );
        assert_eq!(one.len(), spec.n_blocks as usize);
        // Unknown datasets have no footprint (and never panic).
        assert!(placement_items(&resolver, &server, "nope", &CommandParams::new()).is_empty());
    }
}
