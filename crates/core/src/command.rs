//! Layer 3: the command framework.
//!
//! Actual post-processing algorithms live on the uppermost layer of the
//! design (paper §3) and are registered as [`Command`]s. A command is
//! executed by every member of a work group; each member processes its
//! share of the work (see [`JobCtx::my_items`]) and either streams
//! partial geometry directly to the visualization client
//! ([`JobCtx::stream_triangles`]) or returns its share for the master
//! worker to merge.

use crate::wire;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};
use vira_comm::collective::Group;
use vira_comm::link::EventSender;
use vira_comm::transport::{CommError, Rank};
use vira_dms::proxy::DataProxy;
use vira_dms::server::DataServer;
use vira_extract::mesh::{Polyline, TriangleSoup};
use vira_grid::block::{BlockId, BlockStepId};
use vira_grid::field::SharedBlockData;
use vira_grid::synth::DatasetSpec;
use vira_obs as obs;
use vira_storage::costmodel::{ComputeCosts, CostCategory, Meter, SharedChannel, SimClock};
use vira_storage::source::StorageError;
use vira_vista::protocol::{CommandParams, EventHeader, JobId, PayloadKind};

// Worker-side streaming metrics; the client-side mirror lives in
// vira-vista (`vista_*`), so a lossless link shows matching totals.
static STREAM_PACKETS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
static STREAM_ITEMS: OnceLock<Arc<obs::Counter>> = OnceLock::new();

/// Failures surfaced by command execution.
#[derive(Debug)]
pub enum CommandError {
    Storage(StorageError),
    Comm(CommError),
    BadParams(String),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Storage(e) => write!(f, "storage: {e}"),
            CommandError::Comm(e) => write!(f, "comm: {e}"),
            CommandError::BadParams(s) => write!(f, "bad parameters: {s}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<StorageError> for CommandError {
    fn from(e: StorageError) -> Self {
        CommandError::Storage(e)
    }
}

impl From<CommError> for CommandError {
    fn from(e: CommError) -> Self {
        CommandError::Comm(e)
    }
}

/// The non-streamed share of a command's result on one worker.
#[derive(Debug, Default)]
pub struct CommandOutput {
    pub triangles: TriangleSoup,
    pub polylines: Vec<Polyline>,
    /// Extraction cells this worker never examined thanks to bricktree
    /// pruning (summed over all items it processed).
    pub cells_skipped: u64,
    /// Finest-level bricks skipped whole.
    pub bricks_skipped: u64,
    /// Modeled seconds this worker spent inside the parallel extraction
    /// section (zero on the serial path).
    pub extract_par_s: f64,
    /// Extraction threads the command actually used (1 = serial path).
    pub extract_threads: u32,
}

impl CommandOutput {
    pub fn kind(&self) -> PayloadKind {
        if !self.polylines.is_empty() {
            PayloadKind::Polylines
        } else if !self.triangles.is_empty() {
            PayloadKind::Triangles
        } else {
            PayloadKind::None
        }
    }

    pub fn n_items(&self) -> u32 {
        if self.polylines.is_empty() {
            self.triangles.n_triangles() as u32
        } else {
            self.polylines.len() as u32
        }
    }
}

/// Shared cancellation registry (client `Cancel` requests land here).
pub type CancelSet = Arc<RwLock<HashSet<JobId>>>;

/// Everything a command needs on one worker.
pub struct JobCtx<'a> {
    pub job: JobId,
    pub dataset: String,
    pub spec: DatasetSpec,
    pub params: CommandParams,
    pub group: Group,
    pub rank: Rank,
    pub proxy: &'a DataProxy,
    /// Per-node cache of derived scalar fields (λ₂ etc.), persistent
    /// across jobs like the proxy's data caches.
    pub derived: &'a crate::derived::DerivedFieldCache,
    pub server: Arc<DataServer>,
    pub meter: Arc<Meter>,
    pub clock: Arc<SimClock>,
    pub costs: ComputeCosts,
    /// Extraction threads available to this command (from
    /// [`crate::config::ExtractConfig`]); commands that support the
    /// parallel block path fan out over `vira_extract::scoped_map` when
    /// this exceeds one.
    pub extract_threads: usize,
    pub(crate) events: EventSender,
    pub(crate) cancels: CancelSet,
    /// The single serialized link into the visualization client: all
    /// client-bound transmissions of this back-end queue behind each
    /// other (§5.2: many work nodes "literally firing data at the
    /// visualization system" can overload it).
    pub(crate) uplink: Arc<SharedChannel>,
    pub(crate) seq: u32,
}

impl<'a> JobCtx<'a> {
    /// This worker's position within the group.
    pub fn my_index(&self) -> usize {
        self.group
            .index_of(self.rank)
            .expect("executing rank must be a group member")
    }

    /// True for the group's master worker.
    pub fn is_master(&self) -> bool {
        self.group.root() == self.rank
    }

    /// Loads an item through the DMS (caches + prefetching + adaptive
    /// loading strategies).
    pub fn load_block(&self, id: BlockStepId) -> Result<SharedBlockData, CommandError> {
        Ok(self.proxy.request(&self.dataset, id, &self.meter)?)
    }

    /// Loads an item directly from the file server, bypassing the DMS —
    /// the data path of the paper's `Simple*` commands.
    pub fn direct_read(&self, id: BlockStepId) -> Result<SharedBlockData, CommandError> {
        Ok(self
            .server
            .direct_fileserver_read(&self.dataset, id, &self.meter)?)
    }

    /// Issues a user-initiated ("code") prefetch hint.
    pub fn prefetch_hint(&self, id: BlockStepId) {
        self.proxy.prefetch_hint(&self.dataset, id);
    }

    /// Paper-scale cell count of one data item (compute costs are charged
    /// against the nominal workload, not the scaled-down grids — see
    /// `vira-storage`).
    pub fn nominal_cells(&self) -> f64 {
        self.spec.nominal_cells_per_item() as f64
    }

    /// Charges modeled compute seconds (dilated sleep).
    pub fn charge_compute(&self, modeled_s: f64) {
        self.meter
            .charge(&self.clock, CostCategory::Compute, modeled_s);
    }

    /// Actual triangle counts on the scaled-down grids stand for
    /// proportionally more paper-scale triangles; this ratio converts
    /// between the two for transmission-cost purposes.
    pub fn nominal_geometry_scale(&self) -> f64 {
        let actual = self.spec.block_dims.n_cells().max(1) as f64;
        (self.nominal_cells() / actual).max(1.0)
    }

    /// Charges a client-bound transmission of modeled duration `t`,
    /// serialized on the back-end's single client uplink: the charged
    /// (and slept) time includes queueing behind other workers' packets.
    fn charge_uplink(&self, modeled_t: f64) {
        let dilation = self.clock.dilation();
        if dilation > 0.0 {
            let delay_wall = self.uplink.reserve(modeled_t * dilation);
            self.meter
                .charge(&self.clock, CostCategory::Send, delay_wall / dilation);
        } else {
            self.meter
                .charge(&self.clock, CostCategory::Send, modeled_t);
        }
    }

    /// Charges the modeled transmission of `n_triangles` (latency + per
    /// nominal-equivalent triangle).
    fn charge_send(&self, n_triangles: usize) {
        let scaled = n_triangles as f64 * self.nominal_geometry_scale();
        let t = self.costs.send_latency_s + scaled * self.costs.send_s_per_triangle;
        self.charge_uplink(t);
    }

    /// Charges the transmission of `n` unscaled items (polyline points —
    /// trace lengths do not grow with grid resolution the way surface
    /// triangle counts do).
    fn charge_send_unscaled(&self, n: usize) {
        let t = self.costs.send_latency_s + n as f64 * self.costs.send_s_per_triangle;
        self.charge_uplink(t);
    }

    /// The items of `step` this worker owns, interleaved round-robin over
    /// the group (so every worker gets near-front blocks early when the
    /// order is sorted front-to-back).
    pub fn my_blocks(&self, step: u32, block_order: &[BlockId]) -> Vec<BlockStepId> {
        let g = self.group.len();
        let idx = self.my_index();
        block_order
            .iter()
            .enumerate()
            .filter(|(i, _)| i % g == idx)
            .map(|(_, &b)| BlockStepId::new(b, step))
            .collect()
    }

    /// All items this worker owns across every time step of the dataset,
    /// step-major (the full unsteady workload of the evaluation
    /// commands).
    pub fn my_items(&self) -> Vec<BlockStepId> {
        let order: Vec<BlockId> = (0..self.spec.n_blocks).collect();
        (0..self.spec.n_steps)
            .flat_map(|s| self.my_blocks(s, &order))
            .collect()
    }

    /// Streams a partial triangle packet straight to the visualization
    /// client (paper §5.2), charging the modeled send cost.
    pub fn stream_triangles(&mut self, soup: &TriangleSoup) -> Result<(), CommandError> {
        if soup.is_empty() {
            return Ok(());
        }
        self.charge_send(soup.n_triangles());
        obs::counter_cached(&STREAM_PACKETS, "worker_stream_packets_total").inc();
        obs::counter_cached(&STREAM_ITEMS, "worker_stream_items_total")
            .add(soup.n_triangles() as u64);
        let seq = self.seq;
        self.seq += 1;
        self.events
            .emit(vira_vista::protocol::encode_event(
                &EventHeader::Partial {
                    job: self.job,
                    seq,
                    kind: PayloadKind::Triangles,
                    n_items: soup.n_triangles() as u32,
                    from_worker: self.rank,
                },
                soup.to_bytes(),
            ))
            .map_err(CommandError::from)
    }

    /// Streams finished polylines to the client.
    pub fn stream_polylines(&mut self, lines: &[Polyline]) -> Result<(), CommandError> {
        if lines.is_empty() {
            return Ok(());
        }
        self.charge_send_unscaled(lines.iter().map(|l| l.len()).sum());
        obs::counter_cached(&STREAM_PACKETS, "worker_stream_packets_total").inc();
        obs::counter_cached(&STREAM_ITEMS, "worker_stream_items_total").add(lines.len() as u64);
        let seq = self.seq;
        self.seq += 1;
        self.events
            .emit(vira_vista::protocol::encode_event(
                &EventHeader::Partial {
                    job: self.job,
                    seq,
                    kind: PayloadKind::Polylines,
                    n_items: lines.len() as u32,
                    from_worker: self.rank,
                },
                vira_vista::protocol::encode_polylines(lines),
            ))
            .map_err(CommandError::from)
    }

    /// True once the client cancelled this job; commands should check
    /// between work units and return early with whatever they have.
    pub fn is_cancelled(&self) -> bool {
        self.cancels.read().contains(&self.job)
    }

    /// Reports this worker's progress fraction to the visualization
    /// client (§9: a progress indicator in the virtual environment).
    pub fn report_progress(&mut self, fraction: f32) -> Result<(), CommandError> {
        self.events
            .emit(vira_vista::protocol::encode_event(
                &EventHeader::Progress {
                    job: self.job,
                    from_worker: self.rank,
                    fraction: fraction.clamp(0.0, 1.0),
                },
                bytes::Bytes::new(),
            ))
            .map_err(CommandError::from)
    }
}

/// A registered post-processing algorithm.
pub trait Command: Send + Sync {
    /// Registry name (what the client submits).
    fn name(&self) -> &'static str;

    /// Runs this worker's share of the job.
    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError>;
}

/// The command registry of one back-end instance (layer 3 contents).
#[derive(Default)]
pub struct CommandRegistry {
    commands: HashMap<&'static str, Arc<dyn Command>>,
}

impl CommandRegistry {
    pub fn new() -> Self {
        CommandRegistry::default()
    }

    /// Adds a command; replaces any previous one of the same name.
    pub fn register(&mut self, cmd: Arc<dyn Command>) {
        self.commands.insert(cmd.name(), cmd);
    }

    pub fn get(&self, name: &str) -> Option<Arc<dyn Command>> {
        self.commands.get(name).cloned()
    }

    pub fn names(&self) -> Vec<&'static str> {
        let mut v: Vec<_> = self.commands.keys().copied().collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.commands.len()
    }

    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }
}

/// Encodes a worker's partial for the master (geometry payload picked by
/// kind).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_output(
    job: JobId,
    attempt: u32,
    ctx: obs::TraceCtx,
    out: &CommandOutput,
    meter: &Meter,
    dms: vira_dms::stats::DmsStatsSnapshot,
    residency: vira_dms::cache::ResidencyDigest,
    obs_delta: String,
    error: Option<String>,
) -> bytes::Bytes {
    let kind = out.kind();
    let payload = match kind {
        PayloadKind::Triangles => out.triangles.to_bytes(),
        PayloadKind::Polylines => vira_vista::protocol::encode_polylines(&out.polylines),
        PayloadKind::None => bytes::Bytes::new(),
    };
    let header = wire::PartialHeader {
        job,
        kind,
        n_items: out.n_items(),
        read_s: meter.total(CostCategory::Read),
        compute_s: meter.total(CostCategory::Compute),
        send_s: meter.total(CostCategory::Send),
        dms,
        cells_skipped: out.cells_skipped,
        bricks_skipped: out.bricks_skipped,
        extract_par_s: out.extract_par_s,
        extract_threads: out.extract_threads,
        attempt,
        payload_crc: 0, // filled in by encode_partial
        residency,
        obs_delta,
        error,
        trace_id: ctx.trace_id,
        parent_span_id: ctx.parent_span_id,
    };
    wire::encode_partial(&header, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Command for Dummy {
        fn name(&self) -> &'static str {
            "Dummy"
        }
        fn execute(&self, _ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
            Ok(CommandOutput::default())
        }
    }

    #[test]
    fn registry_register_and_lookup() {
        let mut r = CommandRegistry::new();
        assert!(r.is_empty());
        r.register(Arc::new(Dummy));
        assert_eq!(r.len(), 1);
        assert!(r.get("Dummy").is_some());
        assert!(r.get("Nope").is_none());
        assert_eq!(r.names(), vec!["Dummy"]);
    }

    #[test]
    fn output_kind_selection() {
        let mut out = CommandOutput::default();
        assert_eq!(out.kind(), PayloadKind::None);
        out.triangles.push_tri(
            vira_grid::math::Vec3::ZERO,
            vira_grid::math::Vec3::new(1.0, 0.0, 0.0),
            vira_grid::math::Vec3::new(0.0, 1.0, 0.0),
        );
        assert_eq!(out.kind(), PayloadKind::Triangles);
        assert_eq!(out.n_items(), 1);
        out.polylines.push(Polyline::default());
        assert_eq!(out.kind(), PayloadKind::Polylines, "polylines win");
    }
}
