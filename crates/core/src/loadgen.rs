//! Synthetic session load generator — the e19-load harness core.
//!
//! Replays N logical Vista sessions against one back-end client link
//! with a seeded mixed command stream (iso / λ₂ / pathline /
//! progressive) and a configurable arrival process:
//!
//! * **Open loop** — Poisson arrivals at a fixed offered rate. The
//!   generator does not slow down when the back-end does, which is
//!   exactly what makes undersized admission quotas shed: offered load
//!   is independent of service capacity. A bounded outstanding window
//!   keeps the single client link multiplexable (collects interleave
//!   with submits); the window bounds *client-side* pipelining only,
//!   never the arrival schedule.
//! * **Closed loop** — classic think-time rounds: every session keeps
//!   one job in flight, waits for it, then thinks. Offered load adapts
//!   to capacity, so this mode measures latency under sustainable
//!   concurrency rather than shed behavior.
//!
//! Both `vira load` and the `e19-load` bench experiment drive this
//! module, so the CLI and the bench report can never drift apart on
//! bookkeeping semantics. The invariant the CI smoke leg asserts:
//!
//! ```text
//! offered == completed + failed + shed + refused
//! ```
//!
//! where `shed` are structured busy rejections (admission control) and
//! `refused` are permanent validation rejections. Everything is
//! deterministic per `seed` except wall-clock timing.

use std::time::{Duration, Instant};

use vira_vista::{ClientError, CommandParams, SubmitSpec, VistaClient};

/// How job submissions arrive at the back-end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Open-loop Poisson arrivals at `rate_hz` offered jobs/second.
    OpenLoop { rate_hz: f64 },
    /// Closed-loop rounds: each session submits, waits, then thinks
    /// `think_ms` before its next command.
    ClosedLoop { think_ms: u64 },
}

/// One run of the load plane.
#[derive(Clone, Debug)]
pub struct LoadPlan {
    /// Logical Vista sessions (stamped via `VistaClient::set_session`).
    pub sessions: u64,
    /// Total jobs to offer across all sessions.
    pub jobs: usize,
    /// Seed for the command mix, session assignment and inter-arrival
    /// draws. Same seed → same offered stream.
    pub seed: u64,
    pub arrival: Arrival,
    /// Busy-shed resubmit budget per offered job (each resubmit counts
    /// as a new offered submission; the shed that provoked it is still
    /// counted). 0 = count the shed and move on.
    pub max_retries: u32,
    /// Open-loop only: max submissions outstanding before the driver
    /// collects the oldest. Bounds client memory, not offered load.
    pub window: usize,
    /// The command mix, drawn from uniformly per job.
    pub commands: Vec<SubmitSpec>,
}

impl LoadPlan {
    /// A plan over [`default_mix`] with the driver defaults the CLI
    /// and the bench experiment share.
    pub fn new(sessions: u64, jobs: usize, seed: u64, arrival: Arrival, dataset: &str) -> LoadPlan {
        LoadPlan {
            sessions: sessions.max(1),
            jobs,
            seed,
            arrival,
            max_retries: 0,
            window: 32,
            commands: default_mix(dataset, 1),
        }
    }
}

/// The stock mixed command stream of the paper's interactive workload:
/// DMS-backed isosurface, λ₂ vortex regions, pathlines, and the
/// progressive (multiresolution) isosurface. Parameter values match the
/// test-cube synthetic dataset; callers with other datasets override.
pub fn default_mix(dataset: &str, workers: usize) -> Vec<SubmitSpec> {
    let spec = |command: &str, params: CommandParams| SubmitSpec {
        command: command.into(),
        dataset: dataset.into(),
        params,
        workers,
    };
    vec![
        spec("IsoDataMan", CommandParams::new().set("iso", 0.15)),
        spec(
            "VortexDataMan",
            CommandParams::new().set("threshold", -0.01),
        ),
        spec(
            "PathlinesDataMan",
            CommandParams::new().set("n_seeds", 4).set("max_steps", 200),
        ),
        spec(
            "ProgressiveIso",
            CommandParams::new().set("iso", 0.15).set("levels", 2),
        ),
    ]
}

/// Aggregate bookkeeping for one run. `offered` must always equal
/// `completed + failed + shed + refused` — the balance the CI smoke
/// leg cross-checks against the scheduler's own admission counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadOutcome {
    pub offered: u64,
    pub completed: u64,
    pub failed: u64,
    /// Structured busy rejections (queue full / session quota).
    pub shed: u64,
    /// Permanent refusals (unknown command, shutdown, …).
    pub refused: u64,
    /// Busy sheds that were resubmitted within the retry budget.
    pub resubmitted: u64,
    /// Per-completed-job submit→final wall latency.
    pub job_latency_ns: Vec<u64>,
    /// Per-completed-job submit→first-geometry wall latency.
    pub ttfg_ns: Vec<u64>,
    /// Wall duration of the whole run.
    pub wall_ns: u64,
}

impl LoadOutcome {
    /// Offered submissions that the scheduler accepted into its queue.
    pub fn admitted(&self) -> u64 {
        self.offered - self.shed - self.refused
    }

    /// The bookkeeping identity every run must satisfy.
    pub fn balanced(&self) -> bool {
        self.offered == self.completed + self.failed + self.shed + self.refused
    }
}

/// splitmix64 — the same tiny deterministic generator the fault plan
/// uses; good enough for arrival jitter and mix draws, no `rand` dep.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival draw for a Poisson process at `rate_hz`.
    pub fn next_exp(&mut self, rate_hz: f64) -> Duration {
        // 1 - U avoids ln(0); rate is clamped away from zero so a
        // misconfigured plan degenerates to "slow", not to a hang.
        let u = 1.0 - self.next_f64();
        Duration::from_secs_f64((-u.ln()) / rate_hz.max(1e-6))
    }
}

/// The deterministic offered stream: job index → (session, mix index).
/// Exposed so tests and reports can re-derive what was offered.
pub fn offered_stream(plan: &LoadPlan) -> Vec<(u64, usize)> {
    let mut rng = SplitMix64(plan.seed);
    (0..plan.jobs)
        .map(|_| {
            let session = rng.next_u64() % plan.sessions.max(1);
            let mix = (rng.next_u64() as usize) % plan.commands.len().max(1);
            (session, mix)
        })
        .collect()
}

/// One in-flight submission the driver is waiting to collect.
struct Outstanding {
    job: vira_vista::JobId,
    session: u64,
    mix: usize,
    submitted: Instant,
    resubmits: u32,
}

/// Drives `plan` through `client`. The client's session id is restored
/// before every submit *and* collect so per-session-cohort TTFG
/// histograms attribute to the session that issued the job, not to
/// whichever session submitted last.
pub fn run(client: &mut VistaClient, plan: &LoadPlan) -> Result<LoadOutcome, ClientError> {
    assert!(!plan.commands.is_empty(), "load plan needs a command mix");
    let mut out = LoadOutcome::default();
    let t0 = Instant::now();
    match plan.arrival {
        Arrival::OpenLoop { rate_hz } => run_open_loop(client, plan, rate_hz, &mut out)?,
        Arrival::ClosedLoop { think_ms } => run_closed_loop(client, plan, think_ms, &mut out)?,
    }
    out.wall_ns = t0.elapsed().as_nanos() as u64;
    debug_assert!(out.balanced(), "load bookkeeping out of balance: {out:?}");
    Ok(out)
}

fn submit_one(
    client: &mut VistaClient,
    plan: &LoadPlan,
    session: u64,
    mix: usize,
    resubmits: u32,
    out: &mut LoadOutcome,
) -> Result<Outstanding, ClientError> {
    client.set_session(session);
    out.offered += 1;
    let job = client.submit(&plan.commands[mix])?;
    Ok(Outstanding {
        job,
        session,
        mix,
        submitted: Instant::now(),
        resubmits,
    })
}

/// Collects one outstanding job, folding the outcome into the
/// bookkeeping. A busy shed within the retry budget sleeps out the
/// server's retry-after hint and resubmits (a new offered submission
/// for the same logical command).
fn collect_one(
    client: &mut VistaClient,
    plan: &LoadPlan,
    pending: Outstanding,
    out: &mut LoadOutcome,
) -> Result<(), ClientError> {
    let mut pending = pending;
    loop {
        client.set_session(pending.session);
        match client.collect(pending.job) {
            Ok(o) => {
                let elapsed = pending.submitted.elapsed();
                out.completed += 1;
                out.job_latency_ns.push(elapsed.as_nanos() as u64);
                if let Some(first) = o.first_result_wall {
                    out.ttfg_ns.push(first.as_nanos() as u64);
                }
                return Ok(());
            }
            Err(ClientError::Rejected(reason)) if reason.is_busy() => {
                out.shed += 1;
                if pending.resubmits >= plan.max_retries {
                    return Ok(());
                }
                out.resubmitted += 1;
                std::thread::sleep(Duration::from_millis(
                    reason.retry_after_ms().unwrap_or(1).max(1),
                ));
                pending = submit_one(
                    client,
                    plan,
                    pending.session,
                    pending.mix,
                    pending.resubmits + 1,
                    out,
                )?;
            }
            Err(ClientError::Rejected(_)) => {
                out.refused += 1;
                return Ok(());
            }
            Err(_) => {
                // Transport-level failure: the job is gone, account it
                // as failed rather than losing the balance.
                out.failed += 1;
                return Ok(());
            }
        }
    }
}

fn run_open_loop(
    client: &mut VistaClient,
    plan: &LoadPlan,
    rate_hz: f64,
    out: &mut LoadOutcome,
) -> Result<(), ClientError> {
    let stream = offered_stream(plan);
    let mut rng = SplitMix64(plan.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let start = Instant::now();
    let mut next_at = Duration::ZERO;
    let mut outstanding: std::collections::VecDeque<Outstanding> =
        std::collections::VecDeque::new();
    for (session, mix) in stream {
        next_at += rng.next_exp(rate_hz);
        let now = start.elapsed();
        if next_at > now {
            std::thread::sleep(next_at - now);
        }
        // The window bounds pipelining, not arrivals: collecting the
        // oldest job here is the driver catching up, while `next_at`
        // keeps marching on the Poisson schedule regardless.
        while outstanding.len() >= plan.window.max(1) {
            let oldest = outstanding.pop_front().expect("window is non-empty");
            collect_one(client, plan, oldest, out)?;
        }
        outstanding.push_back(submit_one(client, plan, session, mix, 0, out)?);
    }
    while let Some(oldest) = outstanding.pop_front() {
        collect_one(client, plan, oldest, out)?;
    }
    Ok(())
}

fn run_closed_loop(
    client: &mut VistaClient,
    plan: &LoadPlan,
    think_ms: u64,
    out: &mut LoadOutcome,
) -> Result<(), ClientError> {
    let stream = offered_stream(plan);
    let mut offset = 0usize;
    while offset < stream.len() {
        // One round: every session (that still has stream entries)
        // submits one job; then everyone waits; then everyone thinks.
        let round: Vec<(u64, usize)> = stream
            .iter()
            .skip(offset)
            .take(plan.sessions as usize)
            .copied()
            .collect();
        offset += round.len();
        let mut pending = Vec::with_capacity(round.len());
        for (session, mix) in round {
            pending.push(submit_one(client, plan, session, mix, 0, out)?);
        }
        for p in pending {
            collect_one(client, plan, p, out)?;
        }
        if think_ms > 0 && offset < stream.len() {
            std::thread::sleep(Duration::from_millis(think_ms));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Viracocha, ViracochaConfig};
    use std::sync::Arc;
    use vira_storage::source::SynthSource;

    fn launch(config: ViracochaConfig) -> (Viracocha, VistaClient) {
        let (backend, link) = Viracocha::launch(config);
        backend.register_dataset(
            Arc::new(SynthSource::new(Arc::new(vira_grid::synth::test_cube(
                6, 2,
            )))),
            false,
        );
        (backend, VistaClient::new(link))
    }

    #[test]
    fn offered_stream_is_deterministic_and_in_range() {
        let plan = LoadPlan::new(8, 64, 42, Arrival::ClosedLoop { think_ms: 0 }, "TestCube");
        let a = offered_stream(&plan);
        let b = offered_stream(&plan);
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&(s, m)| s < 8 && m < plan.commands.len()));
        // All four command kinds appear in a 64-job draw.
        for mix in 0..plan.commands.len() {
            assert!(a.iter().any(|&(_, m)| m == mix), "mix {mix} never drawn");
        }
        let other = offered_stream(&LoadPlan::new(
            8,
            64,
            43,
            Arrival::ClosedLoop { think_ms: 0 },
            "TestCube",
        ));
        assert_ne!(a, other, "different seed, different stream");
    }

    #[test]
    fn poisson_draws_have_roughly_the_configured_mean() {
        let mut rng = SplitMix64(7);
        let n = 4000;
        let total: f64 = (0..n).map(|_| rng.next_exp(100.0).as_secs_f64()).sum();
        let mean = total / n as f64;
        // Mean inter-arrival at 100 Hz is 10 ms; allow a wide band.
        assert!((0.008..0.012).contains(&mean), "mean {mean}");
    }

    #[test]
    fn closed_loop_run_completes_and_balances() {
        let config = ViracochaConfig::for_tests(2);
        let (backend, mut client) = launch(config);
        let plan = LoadPlan::new(4, 12, 1, Arrival::ClosedLoop { think_ms: 0 }, "TestCube");
        let out = run(&mut client, &plan).expect("load run");
        assert_eq!(out.offered, 12);
        assert_eq!(out.completed, 12);
        assert_eq!(out.shed, 0);
        assert!(out.balanced(), "{out:?}");
        assert_eq!(out.job_latency_ns.len(), 12);
        assert!(!out.ttfg_ns.is_empty());
        client.shutdown().unwrap();
        backend.join();
    }

    #[test]
    fn undersized_quota_sheds_but_never_loses_a_job() {
        let mut config = ViracochaConfig::for_tests(1);
        config.admission.enabled = true;
        config.admission.max_queue_depth = 2;
        config.admission.max_session_queued = 1;
        config.admission.max_session_running = 1;
        config.admission.retry_after_ms = 1;
        let (backend, mut client) = launch(config);
        let mut plan = LoadPlan::new(
            2,
            30,
            3,
            // Offered far faster than a 1-worker backend serves.
            Arrival::OpenLoop { rate_hz: 2000.0 },
            "TestCube",
        );
        plan.window = 16;
        let out = run(&mut client, &plan).expect("load run");
        assert!(out.shed > 0, "tight quotas must shed: {out:?}");
        assert!(out.completed > 0, "some jobs must still finish: {out:?}");
        assert!(out.balanced(), "{out:?}");
        assert_eq!(out.refused, 0, "no validation refusals in this mix");
        client.shutdown().unwrap();
        backend.join();
    }

    #[test]
    fn retry_budget_resubmits_after_shed() {
        let mut config = ViracochaConfig::for_tests(1);
        config.admission.enabled = true;
        config.admission.max_queue_depth = 1;
        config.admission.max_session_queued = 1;
        config.admission.max_session_running = 1;
        config.admission.retry_after_ms = 1;
        let (backend, mut client) = launch(config);
        let mut plan = LoadPlan::new(2, 16, 5, Arrival::OpenLoop { rate_hz: 2000.0 }, "TestCube");
        plan.window = 8;
        plan.max_retries = 4;
        let out = run(&mut client, &plan).expect("load run");
        assert!(out.balanced(), "{out:?}");
        if out.shed > 0 {
            assert!(out.resubmitted > 0, "sheds within budget resubmit: {out:?}");
        }
        client.shutdown().unwrap();
        backend.join();
    }
}
