//! `vira` — command-line driver for the Viracocha back-end.
//!
//! ```text
//! vira commands                         list registered commands
//! vira datasets                         list built-in synthetic datasets
//! vira suggest --dataset engine         suggest an iso level (|u| field)
//! vira run --dataset engine --command IsoDataMan --workers 4 \
//!          --param iso=15 --param n_steps=4 [--res 7] [--dilation 0.01] \
//!          [--save surface.obj|surface.vtk] [--save-lines traces.vtk] \
//!          [--trace-out traces/]
//! vira trace-analyze traces/ [--check 0.25]   critical-path attribution
//! vira top traces/ [--once] [--json]          live telemetry dashboard
//! vira slo-report traces/ [--json]            replay SLOs from a recording
//! vira load --sessions 1000 --arrival open --rate 200 [--admission on] \
//!           [--trace-out traces/] [--json]    synthetic session load plane
//! vira load-report traces/ [--json]           offered/admitted/shed + tails
//! vira serve --listen unix:/tmp/vira.sock --ranks 3 --dataset cube \
//!            --command IsoDataMan --param iso=0.15 [--spawn-local] \
//!            [--jobs N] [--save-soup out] [--fault-plan <file>]
//! vira worker --connect unix:/tmp/vira.sock --dataset cube [--res N]
//! ```
//!
//! Argument parsing is deliberately dependency-free. Diagnostics go
//! through the structured event log (vira-obs, echoed to stderr);
//! result tables stay on stdout. `--trace-out <dir>` records the run
//! and writes `trace.json` / `events.jsonl` / `metrics.prom` there.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;
use vira_comm::fault::{FaultStats, FaultyTransport};
use vira_comm::link::EventSender;
use vira_comm::socket::{SocketAddrSpec, SocketListener, SocketWorker};
use vira_comm::transport::{tags, Transport};
use vira_extract::stats::suggest_iso_level;
use vira_grid::block::BlockStepId;
use vira_grid::synth::{self, SyntheticDataset};
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::loadgen::{self, Arrival, LoadOutcome, LoadPlan};
use viracocha::{
    default_registry, run_remote_worker_with_cancels, AdmissionConfig, CancelSet, FaultPlan,
    TransportConfig, Viracocha, ViracochaConfig,
};

fn usage() -> ! {
    // Help goes through the structured event log like every other
    // diagnostic (echoed to stderr by default), so nothing in the CLI
    // bypasses `events.jsonl` when tracing is on.
    vira_obs::error(
        "vira",
        "usage:\n  vira commands\n  vira datasets\n  vira suggest --dataset <engine|propfan|cube> [--res N] [--exceed F]\n  vira run --dataset <engine|propfan|cube> --command <Name> [--workers N]\n           [--res N] [--dilation F] [--fault-plan <file>] [--param key=value]...\n           [--backfill on|off] [--max-skipped N] [--locality on|off]\n           [--fair-share on|off] [--trace-out <dir>]\n           [--slo-job-latency-ms N] [--slo-ttfg-ms N]\n           [--admission on|off] [--max-queue-depth N] [--max-session-queued N]\n           [--max-session-running N] [--retry-after-ms N]\n  vira load [--dataset <engine|propfan|cube>] [--res N] [--workers N]\n           [--sessions N] [--jobs N] [--seed N] [--arrival open|closed]\n           [--rate F] [--think-ms N] [--window N] [--retries N]\n           [--admission on|off] [--max-queue-depth N] [--max-session-queued N]\n           [--max-session-running N] [--retry-after-ms N]\n           [--json] [--trace-out <dir>]\n  vira load-report <dir> [--json] [--slo-job-latency-ms N] [--slo-ttfg-ms N]\n  vira serve --listen <tcp:host:port|unix:/path> --ranks N\n           --dataset <engine|propfan|cube> --command <Name> [--res N]\n           [--param key=value]... [--jobs N] [--workers N] [--spawn-local]\n           [--fast-resilience] [--save-soup <prefix>] [--fault-plan <file>]\n           [--fault-hub-forwards] [--cancel-after-packets N] [--pause-ms N]\n           [--accept-timeout-ms N] [--trace-out <dir>]\n  vira worker --connect <tcp:host:port|unix:/path>\n           --dataset <engine|propfan|cube> [--res N] [--connect-timeout-ms N]\n           [--rejoin <rank>]\n  vira top <dir> [--once] [--json] [--refresh <ms>]\n  vira slo-report <dir> [--json] [--slo-job-latency-ms N] [--slo-ttfg-ms N]\n  vira trace-analyze <dir> [--check <min-coverage>]",
        &[],
    );
    std::process::exit(2);
}

/// Parses `--key` as a `T`, exiting through [`usage`] with a structured
/// error instead of a raw panic when the value does not parse.
fn flag_parse<T: std::str::FromStr>(args: &Args, key: &str, expects: &str) -> Option<T> {
    args.flags.get(key).map(|v| {
        v.parse().unwrap_or_else(|_| {
            vira_obs::error(
                "vira",
                &format!("--{key} expects {expects}, got '{v}'"),
                &[],
            );
            usage();
        })
    })
}

/// Minimal flag parser: `--key value` pairs plus repeatable `--param
/// key=value`.
struct Args {
    flags: HashMap<String, String>,
    params: Vec<(String, String)>,
}

fn parse_args(args: &[String]) -> Args {
    let mut flags = HashMap::new();
    let mut params = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            vira_obs::error("vira", &format!("unexpected argument '{a}'"), &[]);
            usage();
        };
        let Some(value) = it.next() else {
            vira_obs::error("vira", &format!("flag --{key} needs a value"), &[]);
            usage();
        };
        if key == "param" {
            let Some((k, v)) = value.split_once('=') else {
                vira_obs::error(
                    "vira",
                    &format!("--param expects key=value, got '{value}'"),
                    &[],
                );
                usage();
            };
            params.push((k.to_string(), v.to_string()));
        } else {
            flags.insert(key.to_string(), value.clone());
        }
    }
    Args { flags, params }
}

fn build_dataset(name: &str, res: usize) -> Arc<SyntheticDataset> {
    match name {
        "engine" => Arc::new(synth::engine(res)),
        "propfan" => Arc::new(synth::propfan(res)),
        "cube" => Arc::new(synth::test_cube(res, 4)),
        other => {
            vira_obs::error(
                "vira",
                &format!("unknown dataset '{other}' (engine | propfan | cube)"),
                &[],
            );
            usage();
        }
    }
}

fn cmd_commands() {
    println!("registered commands:");
    for name in default_registry().names() {
        println!("  {name}");
    }
}

fn cmd_datasets() {
    println!("built-in synthetic datasets (see vira_grid::synth):");
    for (key, ds) in [
        ("engine", synth::engine(5)),
        ("propfan", synth::propfan(4)),
        ("cube", synth::test_cube(8, 4)),
    ] {
        let s = &ds.spec;
        println!(
            "  {key:<8} \"{}\": {} blocks × {} steps, nominal {:.2} GB",
            s.name,
            s.n_blocks,
            s.n_steps,
            s.nominal_disk_bytes as f64 / (1u64 << 30) as f64
        );
    }
}

fn cmd_suggest(args: Args) {
    let dataset = args
        .flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| usage());
    let res: usize = flag_parse(&args, "res", "an integer").unwrap_or(6);
    let exceed: f64 = flag_parse(&args, "exceed", "a number").unwrap_or(0.1);
    let ds = build_dataset(&dataset, res);
    // Velocity-magnitude fields of the first time step, block by block.
    let fields: Vec<_> = (0..ds.spec.n_blocks)
        .map(|b| ds.generate(BlockStepId::new(b, 0)).velocity.magnitude())
        .collect();
    match suggest_iso_level(fields.iter(), exceed, 256) {
        Some(iso) => println!(
            "suggested |u| iso level for '{dataset}' (exceeded by ~{:.0} % of samples): {iso:.4}",
            exceed * 100.0
        ),
        None => println!("no suggestion (degenerate field)"),
    }
}

/// Parses an `on`/`off` flag value (also accepts true/false and 1/0).
fn parse_switch(flag: &str, value: &str) -> bool {
    match value {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => {
            vira_obs::error(
                "vira",
                &format!("--{flag} expects on|off, got '{other}'"),
                &[],
            );
            usage();
        }
    }
}

/// Applies the shared admission-control flags (`vira run` and `vira
/// load` take the same set). Bound flags only take effect together with
/// `--admission on`; defaults come from [`AdmissionConfig`].
fn apply_admission_flags(config: &mut ViracochaConfig, args: &Args) {
    if let Some(v) = args.flags.get("admission") {
        config.admission.enabled = parse_switch("admission", v);
    }
    if let Some(n) = flag_parse(args, "max-queue-depth", "an integer") {
        config.admission.max_queue_depth = n;
    }
    if let Some(n) = flag_parse(args, "max-session-queued", "an integer") {
        config.admission.max_session_queued = n;
    }
    if let Some(n) = flag_parse(args, "max-session-running", "an integer") {
        config.admission.max_session_running = n;
    }
    if let Some(ms) = flag_parse::<u64>(args, "retry-after-ms", "milliseconds") {
        config.admission.retry_after_ms = ms;
    }
}

fn cmd_run(args: Args) {
    let dataset = args
        .flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| usage());
    let command = args
        .flags
        .get("command")
        .cloned()
        .unwrap_or_else(|| usage());
    let workers: usize = flag_parse(&args, "workers", "an integer").unwrap_or(2);
    let res: usize = flag_parse(&args, "res", "an integer").unwrap_or(6);
    let dilation: f64 = flag_parse(&args, "dilation", "a number").unwrap_or(0.0);

    let trace_out = args.flags.get("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        vira_obs::set_enabled(true);
    }

    let mut config = ViracochaConfig::for_tests(workers);
    config.dilation = dilation;
    config.proxy.prefetcher = "obl".into();
    if let Some(v) = args.flags.get("backfill") {
        config.sched.backfill = parse_switch("backfill", v);
    }
    if let Some(v) = args.flags.get("locality") {
        config.sched.locality = parse_switch("locality", v);
    }
    if let Some(v) = args.flags.get("fair-share") {
        config.sched.fair_share = parse_switch("fair-share", v);
    }
    if let Some(n) = flag_parse(&args, "max-skipped", "an integer") {
        config.sched.max_skipped_dispatches = n;
    }
    apply_admission_flags(&mut config, &args);
    if let Some(ms) = flag_parse::<u64>(&args, "slo-job-latency-ms", "milliseconds") {
        config.telemetry.job_latency_slo_ns = ms.saturating_mul(1_000_000);
    }
    if let Some(ms) = flag_parse::<u64>(&args, "slo-ttfg-ms", "milliseconds") {
        config.telemetry.ttfg_slo_ns = ms.saturating_mul(1_000_000);
    }
    config.telemetry.out_dir = trace_out.clone();
    let (backend, link) = match args.flags.get("fault-plan") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                vira_obs::error("vira", &format!("cannot read fault plan {path}: {e}"), &[]);
                std::process::exit(2);
            });
            let plan = FaultPlan::parse_str(&text).unwrap_or_else(|e| {
                vira_obs::error("vira", &format!("bad fault plan {path}: {e}"), &[]);
                std::process::exit(2);
            });
            println!("fault plan : {path} (seed {})", plan.seed);
            Viracocha::launch_with_faults(config, plan)
        }
        None => Viracocha::launch(config),
    };
    let ds = build_dataset(&dataset, res);
    let ds_name = ds.spec.name.clone();
    let source = Arc::new(CachedSynthSource::new(ds));
    backend.register_dataset(source, false);

    let mut params = CommandParams::new();
    for (k, v) in args.params {
        params = params.set(&k, v);
    }
    let mut client = VistaClient::new(link);
    let t0 = std::time::Instant::now();
    match client.run(&SubmitSpec {
        command: command.clone(),
        dataset: ds_name,
        params,
        workers,
    }) {
        Ok(out) => {
            println!("command    : {command} on '{dataset}' with {workers} workers");
            println!("wall time  : {:.3} s", t0.elapsed().as_secs_f64());
            println!("modeled    : {:.3} s total", out.report.total_runtime_s);
            println!(
                "breakdown  : read {:.3} s / compute {:.3} s / send {:.3} s",
                out.report.read_s, out.report.compute_s, out.report.send_s
            );
            println!(
                "dms        : {} hits / {} misses / {} prefetches ({} useful)",
                out.report.cache_hits,
                out.report.cache_misses,
                out.report.prefetch_issued,
                out.report.prefetch_hits
            );
            if out.report.retries > 0 || out.report.degraded {
                println!(
                    "resilience : {} command retransmits, degraded group: {}",
                    out.report.retries, out.report.degraded
                );
            }
            if out.report.requeue_wait_s > 0.0 {
                println!(
                    "queueing   : {:.3} s first wait + {:.3} s requeued wait",
                    out.report.queue_wait_s, out.report.requeue_wait_s
                );
            }
            println!(
                "geometry   : {} triangles, {} polylines, {} streamed packets",
                out.triangles.n_triangles(),
                out.polylines.len(),
                out.packets.len()
            );
            if let Some(first) = out.first_result_wall {
                println!(
                    "first data : {:.3} s wall after submit",
                    first.as_secs_f64()
                );
            }
            if let Some(path) = args.flags.get("save") {
                match vira_extract::export::save_soup(&out.triangles, std::path::Path::new(path)) {
                    Ok(()) => println!(
                        "saved      : {} ({} triangles)",
                        path,
                        out.triangles.n_triangles()
                    ),
                    Err(e) => vira_obs::error("vira", &format!("could not save {path}: {e}"), &[]),
                }
            }
            if let Some(path) = args.flags.get("save-lines") {
                let save = std::fs::File::create(path).and_then(|f| {
                    let mut w = std::io::BufWriter::new(f);
                    vira_extract::export::write_vtk_polylines(
                        &out.polylines,
                        "viracocha traces",
                        &mut w,
                    )
                });
                match save {
                    Ok(()) => println!("saved      : {} ({} polylines)", path, out.polylines.len()),
                    Err(e) => vira_obs::error("vira", &format!("could not save {path}: {e}"), &[]),
                }
            }
        }
        Err(e) => {
            vira_obs::error("vira", &format!("job failed: {e}"), &[]);
            let _ = client.shutdown();
            backend.join();
            std::process::exit(1);
        }
    }
    if let Some(stats) = backend.fault_stats() {
        let s = stats.snapshot();
        println!(
            "faults     : {} injected ({} dropped / {} duplicated / {} delayed / {} reordered / {} truncated / {} corrupted / {} ranks killed)",
            s.injected, s.dropped, s.duplicated, s.delayed, s.reordered, s.truncated, s.corrupted, s.killed_ranks
        );
    }
    let _ = client.shutdown();
    backend.join();
    if let Some(dir) = trace_out {
        match vira_obs::export_all(&dir) {
            Ok(s) => println!(
                "trace      : {} spans, {} events, {} flight recordings -> {}",
                s.spans,
                s.events,
                s.flights,
                dir.display()
            ),
            Err(e) => vira_obs::error(
                "vira",
                &format!("trace export to {} failed: {e}", dir.display()),
                &[],
            ),
        }
    }
}

/// (count, p50, p99, p999) upper bounds over raw nanosecond samples,
/// folded through the same log2 buckets the live histograms use — so
/// the CLI's numbers are directly comparable to `vira top` /
/// `telemetry.json` quantile rows (same bucket error).
fn tail_ubs(samples: &[u64]) -> (u64, u64, u64, u64) {
    let snap = sparse_hist(samples).to_snapshot();
    (
        snap.count,
        snap.quantile_upper_bound(0.50),
        snap.quantile_upper_bound(0.99),
        snap.quantile_upper_bound(0.999),
    )
}

/// Human-readable `vira load` summary. Pure so the layout is testable.
fn render_load_summary(plan: &LoadPlan, admission: &AdmissionConfig, out: &LoadOutcome) -> String {
    use std::fmt::Write;
    let mut o = String::new();
    let arrival = match plan.arrival {
        Arrival::OpenLoop { rate_hz } => format!("open-loop {rate_hz:.1} jobs/s"),
        Arrival::ClosedLoop { think_ms } => format!("closed-loop {think_ms} ms think"),
    };
    let wall_s = (out.wall_ns as f64 / 1e9).max(1e-9);
    let _ = writeln!(
        o,
        "load plane : {} sessions, {arrival}, seed {}",
        plan.sessions, plan.seed
    );
    let admission_line = if admission.enabled {
        format!(
            "on (queue <= {}, {} queued + {} running per session, retry-after {} ms)",
            admission.max_queue_depth,
            admission.max_session_queued,
            admission.max_session_running,
            admission.retry_after_ms
        )
    } else {
        "off (unbounded queue)".to_string()
    };
    let _ = writeln!(o, "admission  : {admission_line}");
    let _ = writeln!(
        o,
        "offered    : {} submissions ({} resubmits after busy)",
        out.offered, out.resubmitted
    );
    let _ = writeln!(
        o,
        "admitted   : {} ({:.1} % of offered)",
        out.admitted(),
        100.0 * out.admitted() as f64 / out.offered.max(1) as f64
    );
    let _ = writeln!(
        o,
        "shed       : {} busy rejections / {} refused",
        out.shed, out.refused
    );
    let _ = writeln!(
        o,
        "completed  : {} ok / {} failed in {:.2} s ({:.1} jobs/s goodput)",
        out.completed,
        out.failed,
        wall_s,
        out.completed as f64 / wall_s
    );
    let (n, p50, p99, p999) = tail_ubs(&out.job_latency_ns);
    if n > 0 {
        let _ = writeln!(
            o,
            "job latency: p50 <= {:.2} ms, p99 <= {:.2} ms, p999 <= {:.2} ms ({n} samples)",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
            p999 as f64 / 1e6
        );
    }
    let (n, p50, p99, p999) = tail_ubs(&out.ttfg_ns);
    if n > 0 {
        let _ = writeln!(
            o,
            "ttfg       : p50 <= {:.2} ms, p99 <= {:.2} ms, p999 <= {:.2} ms ({n} samples)",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
            p999 as f64 / 1e6
        );
    }
    let _ = writeln!(
        o,
        "balance    : offered == completed + failed + shed + refused: {}",
        if out.balanced() { "ok" } else { "BROKEN" }
    );
    o
}

/// Machine-readable `vira load --json` summary (hand-rolled: every
/// value is a number or bool, nothing needs escaping).
fn render_load_json(plan: &LoadPlan, admission: &AdmissionConfig, out: &LoadOutcome) -> String {
    let (jn, jp50, jp99, jp999) = tail_ubs(&out.job_latency_ns);
    let (tn, tp50, tp99, tp999) = tail_ubs(&out.ttfg_ns);
    let arrival = match plan.arrival {
        Arrival::OpenLoop { rate_hz } => format!("\"arrival\":\"open\",\"rate_hz\":{rate_hz}"),
        Arrival::ClosedLoop { think_ms } => {
            format!("\"arrival\":\"closed\",\"think_ms\":{think_ms}")
        }
    };
    format!(
        concat!(
            "{{\"sessions\":{},{},\"seed\":{},\"admission\":{},",
            "\"offered\":{},\"admitted\":{},\"shed\":{},\"refused\":{},",
            "\"completed\":{},\"failed\":{},\"resubmitted\":{},",
            "\"wall_ns\":{},\"balanced\":{},",
            "\"job_latency\":{{\"count\":{},\"p50_ub\":{},\"p99_ub\":{},\"p999_ub\":{}}},",
            "\"ttfg\":{{\"count\":{},\"p50_ub\":{},\"p99_ub\":{},\"p999_ub\":{}}}}}"
        ),
        plan.sessions,
        arrival,
        plan.seed,
        admission.enabled,
        out.offered,
        out.admitted(),
        out.shed,
        out.refused,
        out.completed,
        out.failed,
        out.resubmitted,
        out.wall_ns,
        out.balanced(),
        jn,
        jp50,
        jp99,
        jp999,
        tn,
        tp50,
        tp99,
        tp999
    )
}

/// `vira load`: the e19 load plane on the in-process transport —
/// replays `--sessions` synthetic Vista sessions with a seeded mixed
/// command stream (iso / λ₂ / pathlines / progressive) against a
/// freshly launched back-end and reports offered vs. admitted vs. shed
/// throughput plus job-latency / TTFG tails. With `--trace-out` the run
/// records telemetry + flight data for `vira load-report`. Exits
/// non-zero if any job fails outright or the bookkeeping identity
/// `offered == completed + failed + shed + refused` breaks.
fn cmd_load(args: Args) {
    let dataset = args
        .flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| "cube".to_string());
    let res: usize = flag_parse(&args, "res", "an integer").unwrap_or(6);
    let workers: usize = flag_parse(&args, "workers", "an integer").unwrap_or(2);
    let sessions: u64 = flag_parse(&args, "sessions", "a session count").unwrap_or(1000);
    let jobs: usize =
        flag_parse(&args, "jobs", "a job count").unwrap_or((sessions as usize).saturating_mul(2));
    let seed: u64 = flag_parse(&args, "seed", "an integer").unwrap_or(19);
    let json = args.flags.contains_key("json");
    let arrival = match args
        .flags
        .get("arrival")
        .map(String::as_str)
        .unwrap_or("open")
    {
        "open" => Arrival::OpenLoop {
            rate_hz: flag_parse(&args, "rate", "jobs per second").unwrap_or(200.0),
        },
        "closed" => Arrival::ClosedLoop {
            think_ms: flag_parse(&args, "think-ms", "milliseconds").unwrap_or(10),
        },
        other => {
            vira_obs::error(
                "vira",
                &format!("--arrival expects open|closed, got '{other}'"),
                &[],
            );
            usage();
        }
    };
    let trace_out = args.flags.get("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        vira_obs::set_enabled(true);
    }

    let mut config = ViracochaConfig::for_tests(workers);
    config.proxy.prefetcher = "obl".into();
    apply_admission_flags(&mut config, &args);
    config.telemetry.out_dir = trace_out.clone();
    let admission = config.admission.clone();

    let (backend, link) = Viracocha::launch(config);
    let ds = build_dataset(&dataset, res);
    let ds_name = ds.spec.name.clone();
    backend.register_dataset(Arc::new(CachedSynthSource::new(ds)), false);

    let mut plan = LoadPlan::new(sessions, jobs, seed, arrival, &ds_name);
    if let Some(w) = flag_parse(&args, "window", "an integer") {
        plan.window = w;
    }
    if let Some(r) = flag_parse(&args, "retries", "an integer") {
        plan.max_retries = r;
    }

    let mut client = VistaClient::new(link);
    let out =
        loadgen::run(&mut client, &plan).unwrap_or_else(|e| fail(&format!("load run failed: {e}")));
    let _ = client.shutdown();
    backend.join();

    if json {
        println!("{}", render_load_json(&plan, &admission, &out));
    } else {
        print!("{}", render_load_summary(&plan, &admission, &out));
    }
    if let Some(dir) = trace_out {
        match vira_obs::export_all(&dir) {
            Ok(s) => {
                if !json {
                    println!(
                        "trace      : {} spans, {} events, {} flight recordings -> {}",
                        s.spans,
                        s.events,
                        s.flights,
                        dir.display()
                    );
                }
            }
            Err(e) => vira_obs::error(
                "vira",
                &format!("trace export to {} failed: {e}", dir.display()),
                &[],
            ),
        }
    }
    if !out.balanced() || out.failed > 0 {
        std::process::exit(1);
    }
}

/// Exits through a structured error message.
fn fail(msg: &str) -> ! {
    vira_obs::error("vira", msg, &[]);
    std::process::exit(1);
}

/// The chaos-test resilience profile (`--fast-resilience`): the same
/// aggressive timeouts `tests/chaos.rs` uses, so a killed worker
/// process is convicted and its job requeued within test time instead
/// of the production-grade multi-second defaults.
fn fast_resilience(config: &mut ViracochaConfig) {
    config.resilience.dispatch_timeout = Duration::from_millis(150);
    config.resilience.backoff_factor = 1.5;
    config.resilience.max_retransmits = 2;
    config.resilience.probe_timeout = Duration::from_millis(500);
    config.resilience.gather_timeout = Duration::from_secs(10);
    config.resilience.max_attempts = 3;
}

/// `vira serve`: the scheduler/master process of a multi-process
/// deployment. Binds the listen address, waits for `--ranks` worker
/// processes to handshake (optionally forking them itself with
/// `--spawn-local`), then drives `--jobs` identical jobs through the
/// normal Vista session and shuts the world down. Emits one
/// machine-parseable `RESULT ...` line per job (the multiproc harness
/// greps these) and, with `--save-soup`, the merged triangle soup of
/// job *i* as raw bytes at `<prefix>.<i>` for byte-identity checks.
fn cmd_serve(args: Args) {
    let listen = args.flags.get("listen").cloned().unwrap_or_else(|| usage());
    let ranks: usize = flag_parse(&args, "ranks", "an integer").unwrap_or(3);
    let dataset = args
        .flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| usage());
    let command = args
        .flags
        .get("command")
        .cloned()
        .unwrap_or_else(|| "IsoDataMan".to_string());
    let workers: usize = flag_parse(&args, "workers", "an integer").unwrap_or(ranks);
    let res: usize = flag_parse(&args, "res", "an integer").unwrap_or(6);
    let jobs: usize = flag_parse(&args, "jobs", "an integer").unwrap_or(1);
    let accept_ms: u64 = flag_parse(&args, "accept-timeout-ms", "milliseconds").unwrap_or(30_000);
    let cancel_after: Option<usize> = flag_parse(&args, "cancel-after-packets", "a packet count");
    let pause_ms: u64 = flag_parse(&args, "pause-ms", "milliseconds").unwrap_or(0);
    let trace_out = args.flags.get("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        vira_obs::set_enabled(true);
    }

    let spec = SocketAddrSpec::parse(&listen)
        .unwrap_or_else(|e| fail(&format!("bad --listen address: {e}")));
    let listener =
        SocketListener::bind(&spec).unwrap_or_else(|e| fail(&format!("cannot bind {spec}: {e}")));
    let addr = listener.local_addr().to_string();
    println!("serving    : {addr} ({ranks} worker ranks)");
    let _ = std::io::stdout().flush();

    let mut children = Vec::new();
    if args.flags.contains_key("spawn-local") {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| fail(&format!("cannot locate own binary: {e}")));
        for _ in 0..ranks {
            let child = std::process::Command::new(&exe)
                .args([
                    "worker",
                    "--connect",
                    &addr,
                    "--dataset",
                    &dataset,
                    "--res",
                    &res.to_string(),
                ])
                .spawn()
                .unwrap_or_else(|e| fail(&format!("cannot spawn local worker: {e}")));
            children.push(child);
        }
    }

    let hub = listener
        .accept_world(ranks, Duration::from_millis(accept_ms))
        .unwrap_or_else(|e| fail(&format!("worker handshake failed: {e}")));
    println!("world      : all {ranks} worker ranks connected");
    let _ = std::io::stdout().flush();

    let mut config = ViracochaConfig::for_tests(ranks);
    config.proxy.prefetcher = "obl".into();
    if let Ok(t) = TransportConfig::from_addr(&listen) {
        config.transport = t;
    }
    if args.flags.contains_key("fast-resilience") {
        fast_resilience(&mut config);
    }
    config.telemetry.out_dir = trace_out.clone();

    let (backend, link) = match args.flags.get("fault-plan") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read fault plan {path}: {e}")));
            let plan = FaultPlan::parse_str(&text)
                .unwrap_or_else(|e| fail(&format!("bad fault plan {path}: {e}")));
            println!("fault plan : {path} (seed {})", plan.seed);
            let plan = Arc::new(plan);
            let stats = Arc::new(FaultStats::default());
            if args.flags.contains_key("fault-hub-forwards") {
                // Also inject on the hub's worker->worker forward path,
                // which the scheduler-side decorator never sees.
                hub.set_route_faults(plan.clone(), stats.clone());
            }
            let faulty = FaultyTransport::new(hub, plan, stats.clone());
            Viracocha::launch_master_on_transport(config, default_registry(), faulty, Some(stats))
        }
        None => {
            if args.flags.contains_key("fault-hub-forwards") {
                fail("--fault-hub-forwards needs --fault-plan");
            }
            Viracocha::launch_master_on_transport(config, default_registry(), hub, None)
        }
    };
    // The scheduler process registers the dataset too: it validates
    // specs and scores locality; the worker processes register their
    // own copies (same deterministic synthetic source).
    let ds = build_dataset(&dataset, res);
    let ds_name = ds.spec.name.clone();
    backend.register_dataset(Arc::new(CachedSynthSource::new(ds)), false);

    let mut params = CommandParams::new();
    for (k, v) in &args.params {
        params = params.set(k, v.clone());
    }
    let spec = SubmitSpec {
        command: command.clone(),
        dataset: ds_name,
        params,
        workers,
    };
    let mut client = VistaClient::new(link);
    let mut failed = 0usize;
    for i in 0..jobs {
        if i > 0 && pause_ms > 0 {
            // Window between jobs for out-of-band events (worker death,
            // rejoin) to land before the next submission.
            std::thread::sleep(Duration::from_millis(pause_ms));
        }
        let outcome = match cancel_after {
            Some(n) => client
                .submit(&spec)
                .and_then(|job| client.collect_cancelling_after(job, n)),
            None => client.run(&spec),
        };
        match outcome {
            Ok(out) => {
                println!(
                    "RESULT job={i} ok=1 triangles={} polylines={} packets={} degraded={} retries={} cancelled={}",
                    out.triangles.n_triangles(),
                    out.polylines.len(),
                    out.packets.len(),
                    u32::from(out.report.degraded),
                    out.report.retries,
                    u32::from(out.cancelled),
                );
                if let Some(prefix) = args.flags.get("save-soup") {
                    let path = format!("{prefix}.{i}");
                    match std::fs::write(&path, out.triangles.to_bytes()) {
                        Ok(()) => println!("saved soup : {path}"),
                        Err(e) => {
                            vira_obs::error("vira", &format!("could not save {path}: {e}"), &[])
                        }
                    }
                }
            }
            Err(e) => {
                failed += 1;
                println!("RESULT job={i} ok=0 error={e}");
            }
        }
        let _ = std::io::stdout().flush();
    }
    if let Some(stats) = backend.fault_stats() {
        let s = stats.snapshot();
        println!(
            "faults     : {} injected ({} dropped / {} duplicated / {} delayed / {} reordered / {} truncated / {} corrupted / {} ranks killed)",
            s.injected, s.dropped, s.duplicated, s.delayed, s.reordered, s.truncated, s.corrupted, s.killed_ranks
        );
    }
    let _ = client.shutdown();
    backend.join();
    // With --spawn-local, reap the children: the SHUTDOWN broadcast
    // (or, for a killed rank, the hub teardown) ends each of them.
    for mut c in children {
        let _ = c.wait();
    }
    if let Some(dir) = trace_out {
        match vira_obs::export_all(&dir) {
            Ok(s) => println!(
                "trace      : {} spans, {} events, {} flight recordings -> {}",
                s.spans,
                s.events,
                s.flights,
                dir.display()
            ),
            Err(e) => vira_obs::error(
                "vira",
                &format!("trace export to {} failed: {e}", dir.display()),
                &[],
            ),
        }
    }
    println!("serve done : {jobs} jobs, {failed} failed");
    let _ = std::io::stdout().flush();
    if failed > 0 {
        std::process::exit(1);
    }
}

/// `vira worker`: one worker rank of a multi-process deployment.
/// Connects (with retry) to a `vira serve` hub, learns its rank from
/// the handshake, registers the same deterministic dataset the
/// scheduler uses, and serves jobs until SHUTDOWN or connection loss.
fn cmd_worker(args: Args) {
    let connect = args
        .flags
        .get("connect")
        .cloned()
        .unwrap_or_else(|| usage());
    let dataset = args
        .flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| usage());
    let res: usize = flag_parse(&args, "res", "an integer").unwrap_or(6);
    let rejoin: Option<usize> = flag_parse(&args, "rejoin", "a rank");

    let mut tconf = TransportConfig::from_addr(&connect)
        .unwrap_or_else(|e| fail(&format!("bad --connect address: {e}")));
    if let Some(ms) = flag_parse::<u64>(&args, "connect-timeout-ms", "milliseconds") {
        tconf.connect_timeout = Duration::from_millis(ms);
    }

    let spec = SocketAddrSpec::parse(&connect)
        .unwrap_or_else(|e| fail(&format!("bad --connect address: {e}")));
    let transport = match rejoin {
        Some(rank) => SocketWorker::rejoin(&spec, rank, tconf.connect_timeout),
        None => SocketWorker::connect(&spec, tconf.connect_timeout),
    }
    .unwrap_or_else(|e| fail(&format!("cannot join {spec}: {e}")));
    let (rank, world) = (transport.rank(), transport.world_size());
    if rejoin.is_some() {
        println!("rejoined as rank {rank} of {world} via {spec}");
    } else {
        println!("joined as rank {rank} of {world} via {spec}");
    }
    let _ = std::io::stdout().flush();

    // Mid-job cancellation: the worker loop only drains its inbox
    // between jobs, so CANCEL frames are intercepted on the socket
    // reader thread and dropped straight into the rank-local cancel
    // set, where `ctx.is_cancelled()` sees them during extraction.
    let cancels = CancelSet::default();
    {
        let cancels = cancels.clone();
        transport.set_frame_tap(move |frame| {
            if frame.tag == tags::CANCEL {
                if let Some(job) = viracocha::wire::decode_cancel(&frame.payload) {
                    cancels.write().insert(job);
                }
            }
        });
    }

    // Client-bound streamed packets ride the transport to the
    // scheduler as CLIENT_EVENT frames; it re-emits them on the real
    // client link.
    let sender = transport.sender();
    let events = EventSender::from_fn(move |frame| sender.send(0, tags::CLIENT_EVENT, &frame));

    let mut config = ViracochaConfig::for_tests(world - 1);
    config.proxy.prefetcher = "obl".into();
    config.transport = tconf;
    let ds = build_dataset(&dataset, res);
    run_remote_worker_with_cancels(
        config,
        default_registry(),
        transport,
        events,
        cancels,
        |server| {
            server.register_dataset(Arc::new(CachedSynthSource::new(ds)), false);
        },
    );
    println!("worker rank {rank} exiting");
    let _ = std::io::stdout().flush();
}

/// Runs the critical-path analyzer over a `--trace-out` directory's
/// flight recordings and prints the per-job attribution table. With
/// `--check <frac>` the command fails unless every job's stage
/// attribution covers at least that fraction of its wall time — the CI
/// guard against the analyzer silently losing track of where time
/// goes.
fn cmd_trace_analyze(args: Args) {
    let Some(dir) = args.flags.get("dir").cloned() else {
        usage();
    };
    let rows = match vira_obs::analyze_dir(std::path::Path::new(&dir)) {
        Ok(rows) => rows,
        Err(e) => {
            vira_obs::error("vira", &format!("trace-analyze {dir}: {e}"), &[]);
            std::process::exit(1);
        }
    };
    if rows.is_empty() {
        vira_obs::error(
            "vira",
            &format!("{dir}: no flight-<trace>.jsonl recordings (run with --trace-out)"),
            &[],
        );
        std::process::exit(1);
    }
    print!("{}", vira_obs::render_table(&rows));
    if let Some(min) = flag_parse::<f64>(&args, "check", "a fraction like 0.25") {
        for r in &rows {
            if r.coverage < min {
                vira_obs::error(
                    "vira",
                    &format!(
                        "trace {} (job {}): attribution covers {:.1}% of wall time, below --check {:.1}%",
                        r.trace_id,
                        r.job,
                        r.coverage * 100.0,
                        min * 100.0
                    ),
                    &[],
                );
                std::process::exit(1);
            }
        }
    }
}

/// One-line cluster summary plus quantile / rank / SLO tables from a
/// parsed `telemetry.json` snapshot. Pure so the layout is unit-testable.
fn render_top(snap: &vira_obs::json::Json) -> String {
    use std::fmt::Write;
    let mut o = String::new();
    let t_ns = snap.get("t_ns").and_then(|v| v.as_u64()).unwrap_or(0);
    let done = snap.get("final").and_then(|v| v.as_bool()).unwrap_or(false);
    let cluster = snap.get("cluster");
    let counter = |name: &str| -> u64 {
        cluster
            .and_then(|c| c.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let gauge = |name: &str| -> f64 {
        cluster
            .and_then(|c| c.get("gauges"))
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    let _ = writeln!(
        o,
        "vira top — snapshot at {:.3} s{}",
        t_ns as f64 / 1e9,
        if done { " (final)" } else { "" }
    );
    let _ = writeln!(
        o,
        "jobs       : {} done / {} failed / queue depth {:.0} / running {:.0}",
        counter("sched_jobs_done_total"),
        counter("sched_jobs_failed_total"),
        gauge("sched_queue_depth"),
        gauge("sched_running_jobs")
    );
    let admitted = counter("sched_admitted_total");
    let shed = counter("sched_shed_total");
    if admitted > 0 || shed > 0 {
        let _ = writeln!(
            o,
            "admission  : {} offered = {} admitted + {} shed ({} via session quota) / queue high-watermark {}",
            admitted + shed,
            admitted,
            shed,
            counter("sched_quota_rejections_total"),
            counter("sched_queue_high_watermark")
        );
    }
    let dup = snap
        .get("tsdb")
        .and_then(|t| t.get("dup_dropped"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let _ = writeln!(
        o,
        "telemetry  : {} deltas shipped / {} heartbeats / {} duplicate deltas dropped",
        counter("obs_deltas_shipped_total"),
        counter("obs_heartbeats_total"),
        dup
    );

    if let Some(quants) = cluster
        .and_then(|c| c.get("quantiles"))
        .and_then(|q| q.as_obj())
    {
        if !quants.is_empty() {
            let _ = writeln!(
                o,
                "\n{:<28} {:>9} {:>14} {:>14} {:>14} {:>14}",
                "histogram (ns)", "count", "mean", "p50<=", "p99<=", "p999<="
            );
            for (name, q) in quants {
                let u = |k: &str| q.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let mean = q.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let _ = writeln!(
                    o,
                    "{:<28} {:>9} {:>14.0} {:>14} {:>14} {:>14}",
                    name,
                    u("count"),
                    mean,
                    u("p50_ub"),
                    u("p99_ub"),
                    u("p999_ub")
                );
            }
        }
    }

    if let Some(ranks) = snap.get("ranks").and_then(|r| r.as_arr()) {
        if !ranks.is_empty() {
            let _ = writeln!(
                o,
                "\n{:<5} {:<6} {:>9} {:>14} {:>7} {:>14}",
                "rank", "alive", "resident", "clock off ns", "deltas", "delta age ms"
            );
            for r in ranks {
                let u = |k: &str| r.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let alive = r.get("alive").and_then(|v| v.as_bool()).unwrap_or(false);
                let offset = r
                    .get("clock_offset_ns")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                let _ = writeln!(
                    o,
                    "{:<5} {:<6} {:>9} {:>14.0} {:>7} {:>14.1}",
                    u("rank"),
                    if alive { "up" } else { "DEAD" },
                    u("residency_blocks"),
                    offset,
                    u("deltas"),
                    u("last_delta_age_ns") as f64 / 1e6
                );
            }
        }
    }

    if let Some(slos) = snap.get("slo").and_then(|s| s.as_arr()) {
        if !slos.is_empty() {
            let _ = writeln!(
                o,
                "\n{:<22} {:>9} {:>11} {:>11} {:>8}",
                "slo", "objective", "fast burn", "slow burn", "state"
            );
            for s in slos {
                let f = |k: &str| s.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
                let name = s.get("name").and_then(|v| v.as_str()).unwrap_or("?");
                let firing = s.get("firing").and_then(|v| v.as_bool()).unwrap_or(false);
                let _ = writeln!(
                    o,
                    "{:<22} {:>9.3} {:>11.2} {:>11.2} {:>8}",
                    name,
                    f("objective"),
                    f("fast_burn"),
                    f("slow_burn"),
                    if firing { "FIRING" } else { "ok" }
                );
            }
        }
    }
    o
}

/// `vira top <dir>`: render the scheduler's `telemetry.json` snapshot.
/// Follow mode (the default) re-reads every `--refresh` ms and exits
/// once the run writes its final snapshot; `--once` renders a single
/// frame and `--json` emits the raw snapshot for scripting/CI.
fn cmd_top(args: Args) {
    let Some(dir) = args.flags.get("dir").cloned() else {
        usage();
    };
    let once = args.flags.contains_key("once");
    let json = args.flags.contains_key("json");
    let refresh_ms: u64 = flag_parse(&args, "refresh", "milliseconds").unwrap_or(500);
    let path = std::path::Path::new(&dir).join("telemetry.json");
    loop {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                if once {
                    vira_obs::error(
                        "vira",
                        &format!(
                            "cannot read {}: {e} (run with --trace-out?)",
                            path.display()
                        ),
                        &[],
                    );
                    std::process::exit(1);
                }
                // Follow mode: the scheduler may not have written the
                // first snapshot yet.
                std::thread::sleep(std::time::Duration::from_millis(refresh_ms.max(50)));
                continue;
            }
        };
        let snap = match vira_obs::json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                vira_obs::error(
                    "vira",
                    &format!("bad snapshot {}: {e}", path.display()),
                    &[],
                );
                std::process::exit(1);
            }
        };
        if json {
            println!("{}", text.trim_end());
        } else {
            if !once {
                // Clear and home: a stable dashboard under watch.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_top(&snap));
        }
        let done = snap.get("final").and_then(|v| v.as_bool()).unwrap_or(false);
        if once || done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms.max(50)));
    }
}

/// Folds raw samples into the same log2 layout the live histograms use.
fn sparse_hist(samples: &[u64]) -> vira_obs::SparseHist {
    let mut snap = vira_obs::HistogramSnapshot::default();
    for &v in samples {
        snap.buckets[vira_obs::Histogram::bucket_index(v)] += 1;
        snap.count += 1;
        snap.sum += v;
    }
    vira_obs::SparseHist::from_snapshot(&snap)
}

/// `vira slo-report <dir>`: replay a recording's flight spans through
/// the same tsdb + SLO engine the live telemetry plane runs, as an
/// independent cross-check of `telemetry.json`. Job runtimes come from
/// `sched.job` spans and time-to-first-geometry from
/// `vista.first_result` spans.
fn cmd_slo_report(args: Args) {
    let Some(dir) = args.flags.get("dir").cloned() else {
        usage();
    };
    let json = args.flags.contains_key("json");
    let defaults = viracocha::TelemetryConfig::default();
    let job_slo_ns = flag_parse::<u64>(&args, "slo-job-latency-ms", "milliseconds")
        .map(|ms| ms.saturating_mul(1_000_000))
        .unwrap_or(defaults.job_latency_slo_ns);
    let ttfg_slo_ns = flag_parse::<u64>(&args, "slo-ttfg-ms", "milliseconds")
        .map(|ms| ms.saturating_mul(1_000_000))
        .unwrap_or(defaults.ttfg_slo_ns);

    let (job_ns, ttfg_ns) = collect_flight_durations(&dir);
    if job_ns.is_empty() && ttfg_ns.is_empty() {
        vira_obs::error(
            "vira",
            &format!("{dir}: no flight-<trace>.jsonl recordings (run with --trace-out)"),
            &[],
        );
        std::process::exit(1);
    }

    // One synthetic delta replayed through the live-plane machinery.
    let now = vira_obs::now_ns();
    let mut delta = vira_obs::MetricsDelta {
        rank: 0,
        seq: 1,
        t_ns: now,
        ..Default::default()
    };
    delta
        .counters
        .push(("sched_jobs_done_total".into(), job_ns.len() as u64));
    if !job_ns.is_empty() {
        delta
            .histograms
            .push(("sched_job_runtime_ns".into(), sparse_hist(&job_ns)));
    }
    if !ttfg_ns.is_empty() {
        delta
            .histograms
            .push(("vista_first_result_ns".into(), sparse_hist(&ttfg_ns)));
    }
    let mut db = vira_obs::Tsdb::new(vira_obs::TsdbConfig::default());
    db.ingest(&delta, now);
    let mut engine = vira_obs::SloEngine::new(vira_obs::default_specs(job_slo_ns, ttfg_slo_ns));
    let statuses = engine.evaluate(&db, now);
    let text = vira_obs::render_telemetry_json(&db, &statuses, &[], now, true);
    if json {
        println!("{text}");
        return;
    }
    let snap = vira_obs::json::parse(&text).unwrap_or_else(|e| {
        vira_obs::error("vira", &format!("internal render error: {e}"), &[]);
        std::process::exit(1);
    });
    println!(
        "slo report : {} jobs, {} first-geometry samples from {dir}",
        job_ns.len(),
        ttfg_ns.len()
    );
    print!("{}", render_top(&snap));
    if statuses.iter().any(|s| s.firing) {
        std::process::exit(1);
    }
}

/// Collects replayed span durations from a recording directory:
/// (`sched.job` runtimes, `vista.first_result` TTFG samples).
fn collect_flight_durations(dir: &str) -> (Vec<u64>, Vec<u64>) {
    let mut job_ns: Vec<u64> = Vec::new();
    let mut ttfg_ns: Vec<u64> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (job_ns, ttfg_ns);
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("flight-") || !name.ends_with(".jsonl") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let spans = match vira_obs::parse_flight_spans(&text) {
            Ok(spans) => spans,
            Err(e) => {
                vira_obs::error("vira", &format!("skipping malformed {name}: {e}"), &[]);
                continue;
            }
        };
        for span in spans {
            match span.name.as_str() {
                "sched.job" => job_ns.push(span.dur_ns),
                "vista.first_result" => ttfg_ns.push(span.dur_ns),
                _ => {}
            }
        }
    }
    (job_ns, ttfg_ns)
}

/// `vira load-report <dir>`: post-mortem for a `vira load --trace-out`
/// (or any traced) run. Combines the live `telemetry.json` snapshot —
/// admission counters, queue high-watermark, per-cohort quantiles —
/// with an *independent* replay of the flight recordings through the
/// same tsdb + SLO engine, and reports offered vs. admitted vs. shed
/// plus which SLO is burning hardest. The replay inherits the live
/// admission counters so the shed-ratio SLO evaluates on real
/// offered/shed data. `--json` emits `{"live":…,"replay":…}` so CI can
/// cross-check live quantiles against the replay within bucket error.
fn cmd_load_report(args: Args) {
    let Some(dir) = args.flags.get("dir").cloned() else {
        usage();
    };
    let json = args.flags.contains_key("json");
    let defaults = viracocha::TelemetryConfig::default();
    let job_slo_ns = flag_parse::<u64>(&args, "slo-job-latency-ms", "milliseconds")
        .map(|ms| ms.saturating_mul(1_000_000))
        .unwrap_or(defaults.job_latency_slo_ns);
    let ttfg_slo_ns = flag_parse::<u64>(&args, "slo-ttfg-ms", "milliseconds")
        .map(|ms| ms.saturating_mul(1_000_000))
        .unwrap_or(defaults.ttfg_slo_ns);

    let live_path = std::path::Path::new(&dir).join("telemetry.json");
    let live_text = std::fs::read_to_string(&live_path).ok();
    let live = live_text
        .as_deref()
        .and_then(|t| vira_obs::json::parse(t).ok());
    let live_counter = |name: &str| -> u64 {
        live.as_ref()
            .and_then(|s| s.get("cluster"))
            .and_then(|c| c.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let admitted = live_counter("sched_admitted_total");
    let shed = live_counter("sched_shed_total");
    let quota = live_counter("sched_quota_rejections_total");
    let high_watermark = live_counter("sched_queue_high_watermark");

    let (job_ns, ttfg_ns) = collect_flight_durations(&dir);
    if job_ns.is_empty() && ttfg_ns.is_empty() && live.is_none() {
        fail(&format!(
            "{dir}: no telemetry.json and no flight-<trace>.jsonl recordings (run vira load with --trace-out)"
        ));
    }

    // One synthetic delta replayed through the live-plane machinery.
    // The admission counters are copied over from the live snapshot so
    // the shed-ratio SLO sees the run's real offered/shed split.
    let now = vira_obs::now_ns();
    let mut delta = vira_obs::MetricsDelta {
        rank: 0,
        seq: 1,
        t_ns: now,
        ..Default::default()
    };
    delta
        .counters
        .push(("sched_jobs_done_total".into(), job_ns.len() as u64));
    if admitted > 0 || shed > 0 {
        delta
            .counters
            .push(("sched_admitted_total".into(), admitted));
        delta.counters.push(("sched_shed_total".into(), shed));
        delta
            .counters
            .push(("sched_quota_rejections_total".into(), quota));
    }
    if !job_ns.is_empty() {
        delta
            .histograms
            .push(("sched_job_runtime_ns".into(), sparse_hist(&job_ns)));
    }
    if !ttfg_ns.is_empty() {
        delta
            .histograms
            .push(("vista_first_result_ns".into(), sparse_hist(&ttfg_ns)));
    }
    let mut db = vira_obs::Tsdb::new(vira_obs::TsdbConfig::default());
    db.ingest(&delta, now);
    let mut engine = vira_obs::SloEngine::new(vira_obs::default_specs(job_slo_ns, ttfg_slo_ns));
    let statuses = engine.evaluate(&db, now);
    let replay_text = vira_obs::render_telemetry_json(&db, &statuses, &[], now, true);

    if json {
        let live_json = live_text
            .as_deref()
            .map(|t| t.trim_end().to_string())
            .unwrap_or_else(|| "null".to_string());
        println!("{{\"live\":{live_json},\"replay\":{replay_text}}}");
        return;
    }

    println!("load report: {dir}");
    if admitted > 0 || shed > 0 {
        println!(
            "admission  : offered {} = admitted {} + shed {} ({} via session quota)",
            admitted + shed,
            admitted,
            shed,
            quota
        );
        println!("queue      : high-watermark {high_watermark} jobs");
    } else {
        println!(
            "admission  : no live admission counters (telemetry.json missing or admission idle)"
        );
    }
    println!(
        "replay     : {} job spans, {} first-geometry spans",
        job_ns.len(),
        ttfg_ns.len()
    );
    let hottest = statuses
        .iter()
        .filter(|s| s.fast_burn > 0.0)
        .max_by(|a, b| a.fast_burn.total_cmp(&b.fast_burn));
    match hottest {
        Some(s) if s.firing => println!(
            "burning    : {} burned first ({:.1}x fast burn, FIRING)",
            s.name, s.fast_burn
        ),
        Some(s) => println!(
            "burning    : hottest is {} ({:.1}x fast burn, within budget)",
            s.name, s.fast_burn
        ),
        None => println!("burning    : no SLO consuming error budget"),
    }
    let snap = vira_obs::json::parse(&replay_text).unwrap_or_else(|e| {
        vira_obs::error("vira", &format!("internal render error: {e}"), &[]);
        std::process::exit(1);
    });
    print!("{}", render_top(&snap));
}

/// Rewrites a bare leading positional into `--dir` and gives listed
/// boolean switches an implicit `true` value, so subcommands like
/// `vira top traces/ --once --json` fit the `--key value` parser.
fn rewrite_dir_and_switches(rest: &[String], switches: &[&str]) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(rest.len() + 2);
    for (i, a) in rest.iter().enumerate() {
        if i == 0 && !a.starts_with("--") {
            out.push("--dir".to_string());
            out.push(a.clone());
        } else if switches.iter().any(|s| a == &format!("--{s}")) {
            out.push(a.clone());
            out.push("true".to_string());
        } else {
            out.push(a.clone());
        }
    }
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((sub, rest)) = argv.split_first() else {
        usage();
    };
    match sub.as_str() {
        "commands" => cmd_commands(),
        "datasets" => cmd_datasets(),
        "suggest" => cmd_suggest(parse_args(rest)),
        "run" => cmd_run(parse_args(rest)),
        "serve" => cmd_serve(parse_args(&rewrite_dir_and_switches(
            rest,
            &["spawn-local", "fast-resilience", "fault-hub-forwards"],
        ))),
        "worker" => cmd_worker(parse_args(rest)),
        "top" => cmd_top(parse_args(&rewrite_dir_and_switches(
            rest,
            &["once", "json"],
        ))),
        "slo-report" => cmd_slo_report(parse_args(&rewrite_dir_and_switches(rest, &["json"]))),
        "load" => cmd_load(parse_args(&rewrite_dir_and_switches(rest, &["json"]))),
        "load-report" => {
            cmd_load_report(parse_args(&rewrite_dir_and_switches(rest, &["json"])));
        }
        "trace-analyze" => {
            cmd_trace_analyze(parse_args(&rewrite_dir_and_switches(rest, &[])));
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_handles_positional_dir_and_switches() {
        let argv: Vec<String> = ["traces", "--once", "--json", "--refresh", "100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = rewrite_dir_and_switches(&argv, &["once", "json"]);
        let args = parse_args(&out);
        assert_eq!(args.flags.get("dir").map(String::as_str), Some("traces"));
        assert!(args.flags.contains_key("once"));
        assert!(args.flags.contains_key("json"));
        assert_eq!(args.flags.get("refresh").map(String::as_str), Some("100"));
    }

    #[test]
    fn render_top_shows_quantiles_ranks_and_slos() {
        let text = r#"{"v":1,"t_ns":2500000000,"final":true,
            "cluster":{"counters":{"sched_jobs_done_total":7,"obs_deltas_shipped_total":12},
                       "gauges":{"sched_queue_depth":0,"sched_running_jobs":1},
                       "quantiles":{"sched_job_runtime_ns":{"count":7,"mean":1000.0,
                           "p50_ub":1024,"p99_ub":2048,"p999_ub":2048}}},
            "ranks":[{"rank":1,"alive":true,"residency_blocks":4,"clock_offset_ns":-12,
                      "deltas":3,"last_delta_age_ns":1000000,"counters":{},"gauges":{}}],
            "slo":[{"name":"job_latency_p99","objective":0.99,"fast_total":7,"slow_total":7,
                    "fast_bad_fraction":0.5,"slow_bad_fraction":0.5,
                    "fast_burn":50.0,"slow_burn":50.0,"firing":true}],
            "tsdb":{"dup_dropped":1,"series_dropped":0,"scalar_points":9}}"#;
        let snap = vira_obs::json::parse(text).expect("fixture parses");
        let out = render_top(&snap);
        assert!(out.contains("(final)"), "{out}");
        assert!(out.contains("7 done"), "{out}");
        assert!(out.contains("sched_job_runtime_ns"), "{out}");
        assert!(out.contains("2048"), "{out}");
        assert!(out.contains("job_latency_p99"), "{out}");
        assert!(out.contains("FIRING"), "{out}");
        assert!(out.contains("1 duplicate deltas dropped"), "{out}");
        // Rank row: alive rank 1 with 4 resident blocks.
        assert!(out.contains("up"), "{out}");
    }

    #[test]
    fn render_top_shows_the_admission_row_when_counters_are_present() {
        let text = r#"{"v":1,"t_ns":1000000000,"final":true,
            "cluster":{"counters":{"sched_jobs_done_total":90,
                                   "sched_admitted_total":95,"sched_shed_total":5,
                                   "sched_quota_rejections_total":2,
                                   "sched_queue_high_watermark":8},
                       "gauges":{}},
            "ranks":[],"slo":[],"tsdb":{"dup_dropped":0}}"#;
        let snap = vira_obs::json::parse(text).expect("fixture parses");
        let out = render_top(&snap);
        assert!(
            out.contains("admission  : 100 offered = 95 admitted + 5 shed (2 via session quota) / queue high-watermark 8"),
            "{out}"
        );
        // No admission traffic -> no row.
        let idle = vira_obs::json::parse(
            r#"{"v":1,"t_ns":1,"final":true,"cluster":{"counters":{},"gauges":{}},
                "ranks":[],"slo":[],"tsdb":{"dup_dropped":0}}"#,
        )
        .expect("fixture parses");
        assert!(!render_top(&idle).contains("admission"));
    }

    #[test]
    fn load_renderers_report_the_balance_and_tails() {
        let plan = LoadPlan::new(
            100,
            400,
            7,
            Arrival::OpenLoop { rate_hz: 250.0 },
            "TestCube",
        );
        let admission = AdmissionConfig {
            enabled: true,
            max_queue_depth: 8,
            max_session_queued: 2,
            max_session_running: 1,
            retry_after_ms: 5,
        };
        let out = LoadOutcome {
            offered: 400,
            completed: 380,
            failed: 0,
            shed: 20,
            refused: 0,
            resubmitted: 12,
            job_latency_ns: vec![1_000_000; 380],
            ttfg_ns: vec![500_000; 380],
            wall_ns: 2_000_000_000,
        };
        assert!(out.balanced());
        let text = render_load_summary(&plan, &admission, &out);
        assert!(
            text.contains("100 sessions, open-loop 250.0 jobs/s"),
            "{text}"
        );
        assert!(text.contains("queue <= 8"), "{text}");
        assert!(
            text.contains("admitted   : 380 (95.0 % of offered)"),
            "{text}"
        );
        assert!(text.contains("20 busy rejections"), "{text}");
        assert!(text.contains("190.0 jobs/s goodput"), "{text}");
        assert!(
            text.contains("balance    : offered == completed + failed + shed + refused: ok"),
            "{text}"
        );
        let j = render_load_json(&plan, &admission, &out);
        let parsed = vira_obs::json::parse(&j).expect("load json parses");
        assert_eq!(parsed.get("offered").and_then(|v| v.as_u64()), Some(400));
        assert_eq!(parsed.get("shed").and_then(|v| v.as_u64()), Some(20));
        assert_eq!(parsed.get("balanced").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            parsed
                .get("job_latency")
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_u64()),
            Some(380)
        );
        // All samples are 1 ms -> the p50 upper bound is the enclosing
        // log2 bucket boundary, strictly above the sample.
        let p50 = parsed
            .get("job_latency")
            .and_then(|h| h.get("p50_ub"))
            .and_then(|v| v.as_u64())
            .expect("p50_ub");
        assert!(p50 >= 1_000_000, "{p50}");
    }

    #[test]
    fn sparse_hist_folds_samples_into_log2_buckets() {
        let h = sparse_hist(&[1, 2, 3, 1000]);
        let snap = h.to_snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1006);
        // 1 → bucket 0, 2..3 → bucket 1, 1000 → bucket 9 (512..1023).
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 2);
        assert_eq!(snap.buckets[9], 1);
    }
}
