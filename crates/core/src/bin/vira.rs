//! `vira` — command-line driver for the Viracocha back-end.
//!
//! ```text
//! vira commands                         list registered commands
//! vira datasets                         list built-in synthetic datasets
//! vira suggest --dataset engine         suggest an iso level (|u| field)
//! vira run --dataset engine --command IsoDataMan --workers 4 \
//!          --param iso=15 --param n_steps=4 [--res 7] [--dilation 0.01] \
//!          [--save surface.obj|surface.vtk] [--save-lines traces.vtk] \
//!          [--trace-out traces/]
//! vira trace-analyze traces/ [--check 0.25]   critical-path attribution
//! ```
//!
//! Argument parsing is deliberately dependency-free. Diagnostics go
//! through the structured event log (vira-obs, echoed to stderr);
//! result tables stay on stdout. `--trace-out <dir>` records the run
//! and writes `trace.json` / `events.jsonl` / `metrics.prom` there.

use std::collections::HashMap;
use std::sync::Arc;
use vira_extract::stats::suggest_iso_level;
use vira_grid::block::BlockStepId;
use vira_grid::synth::{self, SyntheticDataset};
use vira_storage::source::CachedSynthSource;
use vira_vista::{CommandParams, SubmitSpec, VistaClient};
use viracocha::{default_registry, FaultPlan, Viracocha, ViracochaConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  vira commands\n  vira datasets\n  vira suggest --dataset <engine|propfan|cube> [--res N] [--exceed F]\n  vira run --dataset <engine|propfan|cube> --command <Name> [--workers N]\n           [--res N] [--dilation F] [--fault-plan <file>] [--param key=value]...\n           [--backfill on|off] [--max-skipped N] [--locality on|off]\n           [--fair-share on|off] [--trace-out <dir>]\n  vira trace-analyze <dir> [--check <min-coverage>]"
    );
    std::process::exit(2);
}

/// Minimal flag parser: `--key value` pairs plus repeatable `--param
/// key=value`.
struct Args {
    flags: HashMap<String, String>,
    params: Vec<(String, String)>,
}

fn parse_args(args: &[String]) -> Args {
    let mut flags = HashMap::new();
    let mut params = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            vira_obs::error("vira", &format!("unexpected argument '{a}'"), &[]);
            usage();
        };
        let Some(value) = it.next() else {
            vira_obs::error("vira", &format!("flag --{key} needs a value"), &[]);
            usage();
        };
        if key == "param" {
            let Some((k, v)) = value.split_once('=') else {
                vira_obs::error(
                    "vira",
                    &format!("--param expects key=value, got '{value}'"),
                    &[],
                );
                usage();
            };
            params.push((k.to_string(), v.to_string()));
        } else {
            flags.insert(key.to_string(), value.clone());
        }
    }
    Args { flags, params }
}

fn build_dataset(name: &str, res: usize) -> Arc<SyntheticDataset> {
    match name {
        "engine" => Arc::new(synth::engine(res)),
        "propfan" => Arc::new(synth::propfan(res)),
        "cube" => Arc::new(synth::test_cube(res, 4)),
        other => {
            vira_obs::error(
                "vira",
                &format!("unknown dataset '{other}' (engine | propfan | cube)"),
                &[],
            );
            usage();
        }
    }
}

fn cmd_commands() {
    println!("registered commands:");
    for name in default_registry().names() {
        println!("  {name}");
    }
}

fn cmd_datasets() {
    println!("built-in synthetic datasets (see vira_grid::synth):");
    for (key, ds) in [
        ("engine", synth::engine(5)),
        ("propfan", synth::propfan(4)),
        ("cube", synth::test_cube(8, 4)),
    ] {
        let s = &ds.spec;
        println!(
            "  {key:<8} \"{}\": {} blocks × {} steps, nominal {:.2} GB",
            s.name,
            s.n_blocks,
            s.n_steps,
            s.nominal_disk_bytes as f64 / (1u64 << 30) as f64
        );
    }
}

fn cmd_suggest(args: Args) {
    let dataset = args.flags.get("dataset").cloned().unwrap_or_else(|| usage());
    let res: usize = args
        .flags
        .get("res")
        .map(|v| v.parse().expect("--res must be an integer"))
        .unwrap_or(6);
    let exceed: f64 = args
        .flags
        .get("exceed")
        .map(|v| v.parse().expect("--exceed must be a number"))
        .unwrap_or(0.1);
    let ds = build_dataset(&dataset, res);
    // Velocity-magnitude fields of the first time step, block by block.
    let fields: Vec<_> = (0..ds.spec.n_blocks)
        .map(|b| ds.generate(BlockStepId::new(b, 0)).velocity.magnitude())
        .collect();
    match suggest_iso_level(fields.iter(), exceed, 256) {
        Some(iso) => println!(
            "suggested |u| iso level for '{dataset}' (exceeded by ~{:.0} % of samples): {iso:.4}",
            exceed * 100.0
        ),
        None => println!("no suggestion (degenerate field)"),
    }
}

/// Parses an `on`/`off` flag value (also accepts true/false and 1/0).
fn parse_switch(flag: &str, value: &str) -> bool {
    match value {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => {
            vira_obs::error(
                "vira",
                &format!("--{flag} expects on|off, got '{other}'"),
                &[],
            );
            usage();
        }
    }
}

fn cmd_run(args: Args) {
    let dataset = args.flags.get("dataset").cloned().unwrap_or_else(|| usage());
    let command = args.flags.get("command").cloned().unwrap_or_else(|| usage());
    let workers: usize = args
        .flags
        .get("workers")
        .map(|v| v.parse().expect("--workers must be an integer"))
        .unwrap_or(2);
    let res: usize = args
        .flags
        .get("res")
        .map(|v| v.parse().expect("--res must be an integer"))
        .unwrap_or(6);
    let dilation: f64 = args
        .flags
        .get("dilation")
        .map(|v| v.parse().expect("--dilation must be a number"))
        .unwrap_or(0.0);

    let trace_out = args.flags.get("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        vira_obs::set_enabled(true);
    }

    let mut config = ViracochaConfig::for_tests(workers);
    config.dilation = dilation;
    config.proxy.prefetcher = "obl".into();
    if let Some(v) = args.flags.get("backfill") {
        config.sched.backfill = parse_switch("backfill", v);
    }
    if let Some(v) = args.flags.get("locality") {
        config.sched.locality = parse_switch("locality", v);
    }
    if let Some(v) = args.flags.get("fair-share") {
        config.sched.fair_share = parse_switch("fair-share", v);
    }
    if let Some(v) = args.flags.get("max-skipped") {
        config.sched.max_skipped_dispatches =
            v.parse().expect("--max-skipped must be an integer");
    }
    let (backend, link) = match args.flags.get("fault-plan") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                vira_obs::error("vira", &format!("cannot read fault plan {path}: {e}"), &[]);
                std::process::exit(2);
            });
            let plan = FaultPlan::parse_str(&text).unwrap_or_else(|e| {
                vira_obs::error("vira", &format!("bad fault plan {path}: {e}"), &[]);
                std::process::exit(2);
            });
            println!("fault plan : {path} (seed {})", plan.seed);
            Viracocha::launch_with_faults(config, plan)
        }
        None => Viracocha::launch(config),
    };
    let ds = build_dataset(&dataset, res);
    let ds_name = ds.spec.name.clone();
    let source = Arc::new(CachedSynthSource::new(ds));
    backend.register_dataset(source, false);

    let mut params = CommandParams::new();
    for (k, v) in args.params {
        params = params.set(&k, v);
    }
    let mut client = VistaClient::new(link);
    let t0 = std::time::Instant::now();
    match client.run(&SubmitSpec {
        command: command.clone(),
        dataset: ds_name,
        params,
        workers,
    }) {
        Ok(out) => {
            println!("command    : {command} on '{dataset}' with {workers} workers");
            println!("wall time  : {:.3} s", t0.elapsed().as_secs_f64());
            println!("modeled    : {:.3} s total", out.report.total_runtime_s);
            println!(
                "breakdown  : read {:.3} s / compute {:.3} s / send {:.3} s",
                out.report.read_s, out.report.compute_s, out.report.send_s
            );
            println!(
                "dms        : {} hits / {} misses / {} prefetches ({} useful)",
                out.report.cache_hits,
                out.report.cache_misses,
                out.report.prefetch_issued,
                out.report.prefetch_hits
            );
            if out.report.retries > 0 || out.report.degraded {
                println!(
                    "resilience : {} command retransmits, degraded group: {}",
                    out.report.retries, out.report.degraded
                );
            }
            if out.report.requeue_wait_s > 0.0 {
                println!(
                    "queueing   : {:.3} s first wait + {:.3} s requeued wait",
                    out.report.queue_wait_s, out.report.requeue_wait_s
                );
            }
            println!(
                "geometry   : {} triangles, {} polylines, {} streamed packets",
                out.triangles.n_triangles(),
                out.polylines.len(),
                out.packets.len()
            );
            if let Some(first) = out.first_result_wall {
                println!("first data : {:.3} s wall after submit", first.as_secs_f64());
            }
            if let Some(path) = args.flags.get("save") {
                match vira_extract::export::save_soup(&out.triangles, std::path::Path::new(path)) {
                    Ok(()) => println!("saved      : {} ({} triangles)", path, out.triangles.n_triangles()),
                    Err(e) => vira_obs::error("vira", &format!("could not save {path}: {e}"), &[]),
                }
            }
            if let Some(path) = args.flags.get("save-lines") {
                let save = std::fs::File::create(path).and_then(|f| {
                    let mut w = std::io::BufWriter::new(f);
                    vira_extract::export::write_vtk_polylines(&out.polylines, "viracocha traces", &mut w)
                });
                match save {
                    Ok(()) => println!("saved      : {} ({} polylines)", path, out.polylines.len()),
                    Err(e) => vira_obs::error("vira", &format!("could not save {path}: {e}"), &[]),
                }
            }
        }
        Err(e) => {
            vira_obs::error("vira", &format!("job failed: {e}"), &[]);
            let _ = client.shutdown();
            backend.join();
            std::process::exit(1);
        }
    }
    if let Some(stats) = backend.fault_stats() {
        let s = stats.snapshot();
        println!(
            "faults     : {} injected ({} dropped / {} duplicated / {} delayed / {} reordered / {} truncated / {} corrupted / {} ranks killed)",
            s.injected, s.dropped, s.duplicated, s.delayed, s.reordered, s.truncated, s.corrupted, s.killed_ranks
        );
    }
    let _ = client.shutdown();
    backend.join();
    if let Some(dir) = trace_out {
        match vira_obs::export_all(&dir) {
            Ok(s) => println!(
                "trace      : {} spans, {} events, {} flight recordings -> {}",
                s.spans,
                s.events,
                s.flights,
                dir.display()
            ),
            Err(e) => vira_obs::error(
                "vira",
                &format!("trace export to {} failed: {e}", dir.display()),
                &[],
            ),
        }
    }
}

/// Runs the critical-path analyzer over a `--trace-out` directory's
/// flight recordings and prints the per-job attribution table. With
/// `--check <frac>` the command fails unless every job's stage
/// attribution covers at least that fraction of its wall time — the CI
/// guard against the analyzer silently losing track of where time
/// goes.
fn cmd_trace_analyze(args: Args) {
    let Some(dir) = args.flags.get("dir").cloned() else {
        usage();
    };
    let rows = match vira_obs::analyze_dir(std::path::Path::new(&dir)) {
        Ok(rows) => rows,
        Err(e) => {
            vira_obs::error("vira", &format!("trace-analyze {dir}: {e}"), &[]);
            std::process::exit(1);
        }
    };
    if rows.is_empty() {
        vira_obs::error(
            "vira",
            &format!("{dir}: no flight-<trace>.jsonl recordings (run with --trace-out)"),
            &[],
        );
        std::process::exit(1);
    }
    print!("{}", vira_obs::render_table(&rows));
    if let Some(v) = args.flags.get("check") {
        let min: f64 = v.parse().expect("--check must be a fraction like 0.25");
        for r in &rows {
            if r.coverage < min {
                vira_obs::error(
                    "vira",
                    &format!(
                        "trace {} (job {}): attribution covers {:.1}% of wall time, below --check {:.1}%",
                        r.trace_id,
                        r.job,
                        r.coverage * 100.0,
                        min * 100.0
                    ),
                    &[],
                );
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((sub, rest)) = argv.split_first() else {
        usage();
    };
    match sub.as_str() {
        "commands" => cmd_commands(),
        "datasets" => cmd_datasets(),
        "suggest" => cmd_suggest(parse_args(rest)),
        "run" => cmd_run(parse_args(rest)),
        "trace-analyze" => {
            // Accept the directory as a bare positional: rewrite it into
            // the `--dir` flag the shared parser understands.
            let mut rest = rest.to_vec();
            if let Some(first) = rest.first() {
                if !first.starts_with("--") {
                    rest.splice(0..1, ["--dir".to_string(), first.clone()]);
                }
            }
            cmd_trace_analyze(parse_args(&rest));
        }
        _ => usage(),
    }
}
