//! Pathline commands (paper §6.3, §7.3).
//!
//! Seed points are distributed round-robin over the group; every trace
//! integrates with adaptive RK4 over the dataset's full time span. The
//! data access pattern — non-uniform, time-advancing block requests —
//! is exactly the workload the Markov prefetcher is built for: with the
//! DMS variant every block request goes through the proxy, so a learning
//! pass followed by a traced pass reproduces the paper's Figure 14.

use super::seed_points;
use crate::command::{Command, CommandError, CommandOutput, JobCtx};
use vira_extract::pathline::{
    trace_pathline, FieldSampler, MultiBlockSampler, PathlineConfig, TimeScheme,
};
use vira_grid::block::BlockStepId;
use vira_grid::field::SharedBlockData;
use vira_grid::math::Vec3;

/// Wraps a sampler so every velocity evaluation charges a slice of the
/// modeled integration cost — spreading compute over the trace so that
/// prefetch I/O genuinely overlaps it.
struct ChargedSampler<'c, 'a, S: FieldSampler> {
    inner: S,
    ctx: &'c JobCtx<'a>,
    cost_per_eval: f64,
}

impl<S: FieldSampler> FieldSampler for ChargedSampler<'_, '_, S> {
    fn velocity(&mut self, p: Vec3, t: f64) -> Option<Vec3> {
        self.ctx.charge_compute(self.cost_per_eval);
        self.inner.velocity(p, t)
    }

    fn velocity_at_level(&mut self, p: Vec3, t: f64, hi: bool) -> Option<Vec3> {
        self.ctx.charge_compute(self.cost_per_eval);
        self.inner.velocity_at_level(p, t, hi)
    }

    fn level_alpha(&self, t: f64) -> f64 {
        self.inner.level_alpha(t)
    }
}

fn pathline_cfg(ctx: &JobCtx<'_>) -> PathlineConfig {
    let dt = ctx.spec.dt;
    let scheme = match ctx.params.get("scheme") {
        Some("adjacent-levels") => TimeScheme::AdjacentLevels,
        _ => TimeScheme::VelocityInterp,
    };
    PathlineConfig {
        h_init: ctx.params.get_f64("h_init").unwrap_or(dt / 4.0),
        h_min: dt * 1e-6,
        h_max: dt,
        tol: ctx.params.get_f64("tol").unwrap_or(1e-5),
        max_steps: ctx.params.get_usize("max_steps").unwrap_or(20_000),
        scheme,
    }
}

fn run_pathlines(ctx: &mut JobCtx<'_>, use_dms: bool) -> Result<CommandOutput, CommandError> {
    let n_seeds = ctx.params.get_usize("n_seeds").unwrap_or(16);
    let rngseed = ctx
        .params
        .get("rngseed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let t0 = ctx.params.get_f64("t0").unwrap_or(0.0);
    let t1 = ctx
        .params
        .get_f64("t1")
        .unwrap_or((ctx.spec.n_steps.saturating_sub(1)) as f64 * ctx.spec.dt);
    if t1 <= t0 {
        return Err(CommandError::BadParams(format!(
            "invalid time span [{t0}, {t1}]"
        )));
    }
    let topo = ctx.server.topology(&ctx.dataset).ok_or_else(|| {
        CommandError::BadParams(format!("dataset {} has no topology metadata", ctx.dataset))
    })?;
    let cfg = pathline_cfg(ctx);
    // 12 velocity evaluations per step-doubled RK4 triple.
    let cost_per_eval = ctx.costs.pathline_s_per_step / 12.0;

    let seeds = seed_points(ctx, n_seeds, rngseed);
    let mine: Vec<Vec3> = seeds
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % ctx.group.len() == ctx.my_index())
        .map(|(_, s)| s)
        .collect();

    let mut out = CommandOutput::default();
    for seed in mine {
        if ctx.is_cancelled() {
            break;
        }
        // Borrow-friendly fetcher: captures ctx immutably.
        let ctx_ref: &JobCtx<'_> = ctx;
        let result = if use_dms {
            let fetch = |id: BlockStepId| ctx_ref.load_block(id).ok();
            let sampler =
                MultiBlockSampler::new(fetch, topo.clone(), ctx_ref.spec.n_steps, ctx_ref.spec.dt);
            let mut charged = ChargedSampler {
                inner: sampler,
                ctx: ctx_ref,
                cost_per_eval,
            };
            trace_pathline(&mut charged, seed, t0, t1, &cfg)
        } else {
            // No data management at all: every trace re-reads its items
            // from the file server (the sampler holds an item only for
            // the duration of one trace).
            let fetch =
                |id: BlockStepId| -> Option<SharedBlockData> { ctx_ref.direct_read(id).ok() };
            let sampler =
                MultiBlockSampler::new(fetch, topo.clone(), ctx_ref.spec.n_steps, ctx_ref.spec.dt);
            let mut charged = ChargedSampler {
                inner: sampler,
                ctx: ctx_ref,
                cost_per_eval,
            };
            trace_pathline(&mut charged, seed, t0, t1, &cfg)
        };
        if result.line.len() > 1 {
            out.polylines.push(result.line);
        }
    }
    Ok(out)
}

/// Pathline integration without data management: every trace loads its
/// blocks from the file server anew — the Fig. 13 baseline with its poor
/// scalability under load imbalance.
pub struct SimplePathlines;

impl Command for SimplePathlines {
    fn name(&self) -> &'static str {
        "SimplePathlines"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        run_pathlines(ctx, false)
    }
}

/// Pathline integration through the DMS: cached blocks are reused across
/// commands and the (Markov) prefetcher overlaps block loading with the
/// numerical integration.
pub struct PathlinesDataMan;

impl Command for PathlinesDataMan {
    fn name(&self) -> &'static str {
        "PathlinesDataMan"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        run_pathlines(ctx, true)
    }
}
