//! Isosurface commands on the velocity magnitude: the paper's
//! `SimpleIso` (no data management) and `IsoDataMan` (DMS-enabled)
//! baselines, plus a collective-I/O variant for the §4.3 ablation.
//!
//! All three share [`extract_items`], which has two execution paths:
//! the historical fully-serial loop, and — when the back-end is
//! configured with more than one extraction thread
//! ([`crate::config::ExtractConfig`]) — an intra-worker parallel path
//! that loads blocks serially and fans the pure extraction kernels out
//! over [`vira_extract::scoped_map`]. Results are merged in block
//! order, so both paths produce byte-identical payloads.

use super::{require_f64, steps_of};
use crate::command::{Command, CommandError, CommandOutput, JobCtx};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use vira_extract::iso::extract_isosurface;

// Counts threads entering parallel extraction sections (see DESIGN.md
// metric registry; stays 0 on serial-only back-ends).
static EXTRACT_THREADS: OnceLock<Arc<vira_obs::Counter>> = OnceLock::new();

fn extract_items(
    ctx: &mut JobCtx<'_>,
    use_dms: bool,
    collective: bool,
) -> Result<CommandOutput, CommandError> {
    let iso = require_f64(ctx, "iso")?;
    let mut out = CommandOutput {
        extract_threads: 1,
        ..CommandOutput::default()
    };
    let order: Vec<_> = (0..ctx.spec.n_blocks).collect();
    let compute_per_item = ctx.costs.iso_s_per_cell * ctx.nominal_cells();
    let steps = steps_of(ctx);
    let items: Vec<_> = steps
        .iter()
        .flat_map(|&s| ctx.my_blocks(s, &order))
        .collect();
    let total_items = items.len().max(1);
    let threads = ctx.extract_threads.min(items.len()).max(1);

    if threads > 1 {
        // Parallel block path. Loads stay serial — DMS traffic, the
        // cost meter and the cache accounting are order-sensitive —
        // and only the pure extraction kernels fan out. The merge
        // below walks the results in item order, so the payload is
        // byte-identical to the serial path no matter the thread count
        // or completion order.
        let mut loaded = Vec::with_capacity(items.len());
        for &id in &items {
            if ctx.is_cancelled() {
                return Ok(out);
            }
            let data = if collective && !ctx.proxy.is_cached(&ctx.dataset, id) {
                ctx.server
                    .collective_read(&ctx.dataset, id, ctx.group.len(), &ctx.meter)?
            } else if use_dms {
                ctx.load_block(id)?
            } else {
                ctx.direct_read(id)?
            };
            ctx.charge_compute(compute_per_item);
            loaded.push((id, data));
        }
        vira_obs::counter_cached(&EXTRACT_THREADS, "extract_threads_total").add(threads as u64);
        let job = ctx.job;
        let started = Instant::now();
        let results = vira_extract::scoped_map(threads, &loaded, |_, (id, data)| {
            let mut block_span = vira_obs::span("extract.block", "extract")
                .arg("job", job)
                .arg("block", id.block)
                .arg("step", id.step);
            let field = data.velocity.magnitude();
            let (soup, stats) = extract_isosurface(&data.grid, &field, iso);
            block_span.set_arg("triangles", soup.n_triangles());
            block_span.set_arg("cells_skipped", stats.cells_skipped as u64);
            block_span.set_arg("bricks_skipped", stats.bricks_skipped as u64);
            drop(block_span);
            (soup, stats)
        });
        out.extract_par_s = ctx.clock.wall_to_modeled(started.elapsed());
        out.extract_threads = threads as u32;
        let mut done = 0usize;
        for (soup, stats) in &results {
            out.triangles.extend_from(soup);
            out.cells_skipped += stats.cells_skipped as u64;
            out.bricks_skipped += stats.bricks_skipped as u64;
            done += 1;
            // Same cadence as the serial path: every ~5 % of the share.
            if done.is_multiple_of((total_items / 20).max(1)) || done == total_items {
                ctx.report_progress(done as f32 / total_items as f32)?;
            }
        }
        return Ok(out);
    }

    let mut done = 0usize;
    for id in items {
        if ctx.is_cancelled() {
            return Ok(out);
        }
        let mut block_span = vira_obs::span("extract.block", "extract")
            .arg("job", ctx.job)
            .arg("block", id.block)
            .arg("step", id.step);
        let data = if collective && !ctx.proxy.is_cached(&ctx.dataset, id) {
            // Cold item: all group members fetch their items in one
            // coordinated operation.
            ctx.server
                .collective_read(&ctx.dataset, id, ctx.group.len(), &ctx.meter)?
        } else if use_dms {
            ctx.load_block(id)?
        } else {
            ctx.direct_read(id)?
        };
        ctx.charge_compute(compute_per_item);
        let field = data.velocity.magnitude();
        let (soup, stats) = extract_isosurface(&data.grid, &field, iso);
        block_span.set_arg("triangles", soup.n_triangles());
        block_span.set_arg("cells_skipped", stats.cells_skipped as u64);
        block_span.set_arg("bricks_skipped", stats.bricks_skipped as u64);
        drop(block_span);
        out.triangles.extend_from(&soup);
        out.cells_skipped += stats.cells_skipped as u64;
        out.bricks_skipped += stats.bricks_skipped as u64;
        done += 1;
        // Coarse progress ticks: every ~5 % of this worker's share.
        if done.is_multiple_of((total_items / 20).max(1)) || done == total_items {
            ctx.report_progress(done as f32 / total_items as f32)?;
        }
    }
    Ok(out)
}

/// Isosurface extraction without any data management (paper Fig. 6/7
/// baseline): every item is read straight from the file server.
pub struct SimpleIso;

impl Command for SimpleIso {
    fn name(&self) -> &'static str {
        "SimpleIso"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        extract_items(ctx, false, false)
    }
}

/// Isosurface extraction through the DMS: caches, prefetching and
/// adaptive loading strategies.
pub struct IsoDataMan;

impl Command for IsoDataMan {
    fn name(&self) -> &'static str {
        "IsoDataMan"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        extract_items(ctx, true, false)
    }
}

/// Isosurface extraction using collective I/O for cold items (§4.3:
/// "applicable when multiple processors collectively access a file …
/// mostly at cold starts").
pub struct CollectiveIso;

impl Command for CollectiveIso {
    fn name(&self) -> &'static str {
        "CollectiveIso"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        extract_items(ctx, true, true)
    }
}
