//! Isosurface commands on the velocity magnitude: the paper's
//! `SimpleIso` (no data management) and `IsoDataMan` (DMS-enabled)
//! baselines, plus a collective-I/O variant for the §4.3 ablation.

use super::{require_f64, steps_of};
use crate::command::{Command, CommandError, CommandOutput, JobCtx};
use vira_extract::iso::extract_isosurface;

fn extract_items(
    ctx: &mut JobCtx<'_>,
    use_dms: bool,
    collective: bool,
) -> Result<CommandOutput, CommandError> {
    let iso = require_f64(ctx, "iso")?;
    let mut out = CommandOutput::default();
    let order: Vec<_> = (0..ctx.spec.n_blocks).collect();
    let compute_per_item = ctx.costs.iso_s_per_cell * ctx.nominal_cells();
    let steps = steps_of(ctx);
    let total_items = (steps.len() * ctx.my_blocks(0, &order).len()).max(1);
    let mut done = 0usize;
    for step in steps {
        for id in ctx.my_blocks(step, &order) {
            if ctx.is_cancelled() {
                return Ok(out);
            }
            let mut block_span = vira_obs::span("extract.block", "extract")
                .arg("job", ctx.job)
                .arg("block", id.block)
                .arg("step", id.step);
            let data = if collective && !ctx.proxy.is_cached(&ctx.dataset, id) {
                // Cold item: all group members fetch their items in one
                // coordinated operation.
                ctx.server.collective_read(
                    &ctx.dataset,
                    id,
                    ctx.group.len(),
                    &ctx.meter,
                )?
            } else if use_dms {
                ctx.load_block(id)?
            } else {
                ctx.direct_read(id)?
            };
            ctx.charge_compute(compute_per_item);
            let field = data.velocity.magnitude();
            let (soup, stats) = extract_isosurface(&data.grid, &field, iso);
            block_span.set_arg("triangles", soup.n_triangles());
            block_span.set_arg("cells_skipped", stats.cells_skipped as u64);
            block_span.set_arg("bricks_skipped", stats.bricks_skipped as u64);
            drop(block_span);
            out.triangles.extend_from(&soup);
            out.cells_skipped += stats.cells_skipped as u64;
            out.bricks_skipped += stats.bricks_skipped as u64;
            done += 1;
            // Coarse progress ticks: every ~5 % of this worker's share.
            if done.is_multiple_of((total_items / 20).max(1)) || done == total_items {
                ctx.report_progress(done as f32 / total_items as f32)?;
            }
        }
    }
    Ok(out)
}

/// Isosurface extraction without any data management (paper Fig. 6/7
/// baseline): every item is read straight from the file server.
pub struct SimpleIso;

impl Command for SimpleIso {
    fn name(&self) -> &'static str {
        "SimpleIso"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        extract_items(ctx, false, false)
    }
}

/// Isosurface extraction through the DMS: caches, prefetching and
/// adaptive loading strategies.
pub struct IsoDataMan;

impl Command for IsoDataMan {
    fn name(&self) -> &'static str {
        "IsoDataMan"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        extract_items(ctx, true, false)
    }
}

/// Isosurface extraction using collective I/O for cold items (§4.3:
/// "applicable when multiple processors collectively access a file …
/// mostly at cold starts").
pub struct CollectiveIso;

impl Command for CollectiveIso {
    fn name(&self) -> &'static str {
        "CollectiveIso"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        extract_items(ctx, true, true)
    }
}
