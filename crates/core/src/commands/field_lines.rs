//! Streamlines and streaklines — the particle-trace extensions the
//! paper's future work (§9) names next to pathlines.
//!
//! * **Streamlines**: instantaneous field lines of a single time level
//!   (the unsteady sampler frozen at one instant).
//! * **Streaklines**: the locus of all particles continuously released
//!   from a seed during a time interval, observed at the interval's end.
//!
//! Both run through the DMS like `PathlinesDataMan` and report progress
//! per seed (§9's progress-indicator suggestion).

use super::seed_points;
use crate::command::{Command, CommandError, CommandOutput, JobCtx};
use vira_extract::pathline::{
    trace_pathline, trace_streakline, MultiBlockSampler, PathlineConfig, SteadySampler, TimeScheme,
};
use vira_grid::block::BlockStepId;
use vira_grid::field::SharedBlockData;
use vira_grid::math::Vec3;

fn my_seeds(ctx: &JobCtx<'_>) -> Vec<Vec3> {
    let n_seeds = ctx.params.get_usize("n_seeds").unwrap_or(16);
    let rngseed = ctx
        .params
        .get("rngseed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    seed_points(ctx, n_seeds, rngseed)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % ctx.group.len() == ctx.my_index())
        .map(|(_, s)| s)
        .collect()
}

fn integrator_cfg(ctx: &JobCtx<'_>, scheme: TimeScheme) -> PathlineConfig {
    let dt = ctx.spec.dt;
    PathlineConfig {
        h_init: ctx.params.get_f64("h_init").unwrap_or(dt / 4.0),
        h_min: dt * 1e-6,
        h_max: dt,
        tol: ctx.params.get_f64("tol").unwrap_or(1e-5),
        max_steps: ctx.params.get_usize("max_steps").unwrap_or(20_000),
        scheme,
    }
}

/// Instantaneous streamlines of one time level.
///
/// Parameters: `step` (time level, default 0), `n_seeds`, `rngseed`,
/// `t_span` (pseudo-time integration horizon, default 2·n_steps·dt).
pub struct Streamlines;

impl Command for Streamlines {
    fn name(&self) -> &'static str {
        "Streamlines"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        let step = ctx.params.get_usize("step").unwrap_or(0) as u32;
        if step >= ctx.spec.n_steps {
            return Err(CommandError::BadParams(format!(
                "step {step} out of range (dataset has {})",
                ctx.spec.n_steps
            )));
        }
        let t_span = ctx
            .params
            .get_f64("t_span")
            .unwrap_or(2.0 * ctx.spec.n_steps as f64 * ctx.spec.dt);
        let topo = ctx.server.topology(&ctx.dataset).ok_or_else(|| {
            CommandError::BadParams(format!("dataset {} has no topology metadata", ctx.dataset))
        })?;
        let cfg = integrator_cfg(ctx, TimeScheme::VelocityInterp);
        let cost_per_seed = ctx.costs.pathline_s_per_step * 20.0;
        let frozen_t = step as f64 * ctx.spec.dt;

        let seeds = my_seeds(ctx);
        let total = seeds.len().max(1);
        let mut out = CommandOutput::default();
        for (n, seed) in seeds.into_iter().enumerate() {
            if ctx.is_cancelled() {
                break;
            }
            let ctx_ref: &JobCtx<'_> = ctx;
            let fetch = |id: BlockStepId| -> Option<SharedBlockData> {
                // Streamlines only ever touch the frozen level.
                ctx_ref.load_block(BlockStepId::new(id.block, step)).ok()
            };
            let inner =
                MultiBlockSampler::new(fetch, topo.clone(), ctx_ref.spec.n_steps, ctx_ref.spec.dt);
            let mut sampler = SteadySampler::new(inner, frozen_t);
            ctx.charge_compute(cost_per_seed);
            let r = trace_pathline(&mut sampler, seed, 0.0, t_span, &cfg);
            if r.line.len() > 1 {
                out.polylines.push(r.line);
            }
            ctx.report_progress((n + 1) as f32 / total as f32)?;
        }
        Ok(out)
    }
}

/// Streaklines over `[t0, t1]` with `releases` particles per seed.
pub struct Streaklines;

impl Command for Streaklines {
    fn name(&self) -> &'static str {
        "Streaklines"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        let t0 = ctx.params.get_f64("t0").unwrap_or(0.0);
        let t1 = ctx
            .params
            .get_f64("t1")
            .unwrap_or((ctx.spec.n_steps.saturating_sub(1)) as f64 * ctx.spec.dt);
        let releases = ctx.params.get_usize("releases").unwrap_or(20).max(1);
        if t1 <= t0 {
            return Err(CommandError::BadParams(format!(
                "invalid time span [{t0}, {t1}]"
            )));
        }
        let topo = ctx.server.topology(&ctx.dataset).ok_or_else(|| {
            CommandError::BadParams(format!("dataset {} has no topology metadata", ctx.dataset))
        })?;
        let cfg = integrator_cfg(ctx, TimeScheme::VelocityInterp);
        // A streakline costs roughly `releases` short pathlines.
        let cost_per_seed = ctx.costs.pathline_s_per_step * 10.0 * releases as f64;

        let seeds = my_seeds(ctx);
        let total = seeds.len().max(1);
        let mut out = CommandOutput::default();
        for (n, seed) in seeds.into_iter().enumerate() {
            if ctx.is_cancelled() {
                break;
            }
            let ctx_ref: &JobCtx<'_> = ctx;
            let fetch = |id: BlockStepId| ctx_ref.load_block(id).ok();
            let mut sampler =
                MultiBlockSampler::new(fetch, topo.clone(), ctx_ref.spec.n_steps, ctx_ref.spec.dt);
            ctx.charge_compute(cost_per_seed);
            let line = trace_streakline(&mut sampler, seed, t0, t1, releases, &cfg);
            if line.len() > 1 {
                out.polylines.push(line);
            }
            ctx.report_progress((n + 1) as f32 / total as f32)?;
        }
        Ok(out)
    }
}
