//! The built-in post-processing commands — the paper's evaluation
//! workloads (§6.3) plus the progressive extension (§5.3) and a
//! collective-I/O variant (§4.3).
//!
//! | Command | Data path | Streaming |
//! |---|---|---|
//! | `SimpleIso` | direct file-server reads | no |
//! | `IsoDataMan` | DMS | no |
//! | `ViewerIso` | DMS | view-dependent, BSP front-to-back |
//! | `CollectiveIso` | collective I/O on cold items | no |
//! | `SimpleVortex` | direct reads | no |
//! | `VortexDataMan` | DMS | no |
//! | `StreamedVortex` | DMS | cell-wise λ₂ batches |
//! | `SimplePathlines` | direct reads (job-local map) | no |
//! | `PathlinesDataMan` | DMS (Markov-friendly) | per-trace packets |
//! | `ProgressiveIso` | DMS | coarse-to-fine levels |
//! | `Streamlines` | DMS (frozen level) | no |
//! | `Streaklines` | DMS | no |
//!
//! Shared parameter conventions: `iso` (scalar level on \|u\|),
//! `threshold` (λ₂ level), `viewpoint` ("x,y,z"), `batch` (triangles per
//! streamed packet), `n_steps` (limit the number of processed time
//! steps), `step0` (first step), pathlines: `n_seeds`, `t0`, `t1`,
//! `rngseed`, `scheme`.

mod admin;
mod field_lines;
mod iso;
mod pathlines;
mod progressive;
mod viewer;
mod vortex;

pub use admin::ClearCache;
pub use field_lines::{Streaklines, Streamlines};
pub use iso::{CollectiveIso, IsoDataMan, SimpleIso};
pub use pathlines::{PathlinesDataMan, SimplePathlines};
pub use progressive::ProgressiveIso;
pub use viewer::ViewerIso;
pub use vortex::{SimpleVortex, StreamedVortex, VortexDataMan};

use crate::command::{CommandError, CommandRegistry, JobCtx};
use std::sync::Arc;
use vira_grid::block::BlockId;
use vira_grid::math::Vec3;

/// Registers every built-in command.
pub fn default_registry() -> CommandRegistry {
    let mut r = CommandRegistry::new();
    r.register(Arc::new(ClearCache));
    r.register(Arc::new(SimpleIso));
    r.register(Arc::new(IsoDataMan));
    r.register(Arc::new(ViewerIso));
    r.register(Arc::new(CollectiveIso));
    r.register(Arc::new(SimpleVortex));
    r.register(Arc::new(VortexDataMan));
    r.register(Arc::new(StreamedVortex));
    r.register(Arc::new(SimplePathlines));
    r.register(Arc::new(PathlinesDataMan));
    r.register(Arc::new(ProgressiveIso));
    r.register(Arc::new(Streamlines));
    r.register(Arc::new(Streaklines));
    r
}

/// Required f64 parameter.
pub(crate) fn require_f64(ctx: &JobCtx<'_>, key: &str) -> Result<f64, CommandError> {
    ctx.params
        .get_f64(key)
        .ok_or_else(|| CommandError::BadParams(format!("missing parameter '{key}'")))
}

/// Triangles per streamed packet.
pub(crate) fn batch_size(ctx: &JobCtx<'_>) -> usize {
    ctx.params.get_usize("batch").unwrap_or(2000).max(1)
}

/// The time steps this job processes: `step0 ..` limited by `n_steps`
/// (default: the whole unsteady dataset, as in the paper's evaluation).
pub(crate) fn steps_of(ctx: &JobCtx<'_>) -> Vec<u32> {
    let step0 = ctx.params.get_usize("step0").unwrap_or(0) as u32;
    let limit = ctx
        .params
        .get_usize("n_steps")
        .unwrap_or(ctx.spec.n_steps as usize) as u32;
    (step0..ctx.spec.n_steps.min(step0 + limit)).collect()
}

/// Block ids sorted front-to-back with respect to a viewpoint (by
/// bounding-box distance); falls back to id order when the server has no
/// geometry metadata for the dataset.
pub(crate) fn front_to_back_order(ctx: &JobCtx<'_>, viewpoint: Vec3) -> Vec<BlockId> {
    let ids: Vec<BlockId> = (0..ctx.spec.n_blocks).collect();
    let Some(bboxes) = ctx.server.block_bboxes(&ctx.dataset) else {
        return ids;
    };
    let mut with_d: Vec<(f64, BlockId)> = ids
        .iter()
        .map(|&b| (bboxes[b as usize].distance_sq(viewpoint), b))
        .collect();
    with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    with_d.into_iter().map(|(_, b)| b).collect()
}

/// Deterministic seed points inside the dataset's bounding box (shrunk
/// toward the centre so seeds start well inside the flow). Plain LCG —
/// no RNG dependency needed, and reproducible across runs.
pub(crate) fn seed_points(ctx: &JobCtx<'_>, n: usize, rngseed: u64) -> Vec<Vec3> {
    let bbox = match ctx.server.block_bboxes(&ctx.dataset) {
        Some(bs) => {
            let mut u = vira_grid::math::Aabb::EMPTY;
            for b in bs.iter() {
                u.expand(b.min);
                u.expand(b.max);
            }
            u
        }
        None => vira_grid::math::Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
    };
    let c = bbox.center();
    let half = bbox.diagonal() * 0.5 * 0.6; // stay inside
    let mut state = rngseed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // [-1, 1)
    };
    (0..n)
        .map(|_| {
            Vec3::new(
                c.x + half.x * next(),
                c.y + half.y * next(),
                c.z + half.z * next(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_builtin_commands() {
        let r = default_registry();
        assert_eq!(
            r.names(),
            vec![
                "ClearCache",
                "CollectiveIso",
                "IsoDataMan",
                "PathlinesDataMan",
                "ProgressiveIso",
                "SimpleIso",
                "SimplePathlines",
                "SimpleVortex",
                "Streaklines",
                "StreamedVortex",
                "Streamlines",
                "ViewerIso",
                "VortexDataMan",
            ]
        );
    }
}
