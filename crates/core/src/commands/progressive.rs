//! `ProgressiveIso` — progressive multi-resolution isosurface extraction
//! (paper §5.3 / future work §9).
//!
//! Each block's isosurface is extracted on a subsampling pyramid from
//! coarse to fine; every level is streamed to the client the moment it
//! is available. The base level gives the user a near-immediate
//! impression of the final result; the finest level is the exact
//! surface. The extra levels make the total computation cost exceed a
//! single-pass extraction — the latency/overhead trade-off quantified by
//! the `ablation_progressive` experiment.

use super::{batch_size, require_f64, steps_of};
use crate::command::{Command, CommandError, CommandOutput, JobCtx};
use vira_extract::multires::progressive_isosurface;

pub struct ProgressiveIso;

impl Command for ProgressiveIso {
    fn name(&self) -> &'static str {
        "ProgressiveIso"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        let iso = require_f64(ctx, "iso")?;
        let levels = ctx.params.get_usize("levels").unwrap_or(3).max(1);
        let batch = batch_size(ctx);
        let order: Vec<_> = (0..ctx.spec.n_blocks).collect();
        let nominal = ctx.nominal_cells();
        let mut out = CommandOutput::default();

        for step in steps_of(ctx) {
            for id in ctx.my_blocks(step, &order) {
                if ctx.is_cancelled() {
                    return Ok(out);
                }
                let mut block_span = vira_obs::span("extract.block", "extract")
                    .arg("job", ctx.job)
                    .arg("block", id.block)
                    .arg("step", id.step);
                let data = ctx.load_block(id)?;
                let field = data.velocity.magnitude();
                let mut stream_err: Option<CommandError> = None;
                let mut cells_skipped = 0u64;
                let mut bricks_skipped = 0u64;
                progressive_isosurface(&data.grid, &field, iso, levels, |level| {
                    let _level_span = vira_obs::span("extract.level", "extract")
                        .arg("stride", level.stride as u64)
                        .arg("triangles", level.surface.n_triangles());
                    cells_skipped += level.stats.cells_skipped as u64;
                    bricks_skipped += level.stats.bricks_skipped as u64;
                    if stream_err.is_some() {
                        return;
                    }
                    // A level subsampled by stride s has ~1/s³ of the
                    // nominal cells; charge the level's share before its
                    // surface goes out.
                    let frac = 1.0 / (level.stride as f64).powi(3);
                    ctx.charge_compute(ctx.costs.iso_s_per_cell * nominal * frac);
                    let mut remaining = level.surface.clone();
                    while !remaining.is_empty() {
                        let chunk = remaining.drain_front(batch);
                        if let Err(e) = ctx.stream_triangles(&chunk) {
                            stream_err = Some(e);
                            return;
                        }
                    }
                });
                block_span.set_arg("cells_skipped", cells_skipped);
                block_span.set_arg("bricks_skipped", bricks_skipped);
                drop(block_span);
                if let Some(e) = stream_err {
                    return Err(e);
                }
                out.cells_skipped += cells_skipped;
                out.bricks_skipped += bricks_skipped;
            }
        }
        Ok(out)
    }
}
