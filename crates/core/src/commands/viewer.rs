//! `ViewerIso` — the view-dependent streaming isosurface of §6.3:
//!
//! 1. all blocks are sorted front-to-back with respect to the viewer's
//!    position and distributed round-robin over the workers;
//! 2. per block, a BSP tree of its domain is built and traversed in a
//!    view-dependent fashion, producing the active-cell list while
//!    pruning empty branches;
//! 3. active cells are triangulated, and whenever a user-specified
//!    number of triangles is reached the fragment is streamed directly
//!    to the visualization client.
//!
//! Unlike occlusion-culling view-dependent extractors, the *full*
//! isosurface is always computed — the user will inspect it from other
//! viewpoints in the virtual environment; the view dependence only
//! controls the *order* of delivery.

use super::{batch_size, front_to_back_order, require_f64, steps_of};
use crate::command::{Command, CommandError, CommandOutput, JobCtx};
use vira_extract::bsp::BspTree;
use vira_extract::mesh::TriangleSoup;
use vira_extract::tetra::contour_cell;
use vira_grid::math::Vec3;

pub struct ViewerIso;

impl Command for ViewerIso {
    fn name(&self) -> &'static str {
        "ViewerIso"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        let iso = require_f64(ctx, "iso")?;
        let vp = ctx
            .params
            .get_vec3("viewpoint")
            .ok_or_else(|| CommandError::BadParams("missing parameter 'viewpoint'".into()))?;
        let viewpoint = Vec3::new(vp[0], vp[1], vp[2]);
        let batch = batch_size(ctx);
        let order = front_to_back_order(ctx, viewpoint);
        // BSP construction and traversal add to the plain per-cell cost —
        // the "true cost of streaming" the paper leaves in deliberately.
        let compute_per_item =
            (ctx.costs.iso_s_per_cell + ctx.costs.bsp_overhead_s_per_cell) * ctx.nominal_cells();

        for step in steps_of(ctx) {
            for id in ctx.my_blocks(step, &order) {
                if ctx.is_cancelled() {
                    return Ok(CommandOutput::default());
                }
                // The data manager assists file loading with simple OBL
                // prefetching (configured at the proxy); the request
                // itself goes through the DMS.
                let data = ctx.load_block(id)?;
                ctx.charge_compute(compute_per_item);
                let field = data.velocity.magnitude();
                let tree = BspTree::build(&data.grid, &field);
                let mut pending = TriangleSoup::new();
                let mut stream_err: Option<CommandError> = None;
                tree.traverse_front_to_back(iso, viewpoint, &field, |(i, j, k)| {
                    if stream_err.is_some() {
                        return;
                    }
                    let corners = data.grid.cell_corners(i, j, k);
                    let scalars = field.cell_corners(i, j, k);
                    contour_cell(&corners, &scalars, iso, &mut pending);
                    if pending.n_triangles() >= batch {
                        if let Err(e) = ctx.stream_triangles(&std::mem::take(&mut pending)) {
                            stream_err = Some(e);
                        }
                    }
                });
                if let Some(e) = stream_err {
                    return Err(e);
                }
                ctx.stream_triangles(&pending)?;
            }
        }
        Ok(CommandOutput::default())
    }
}
