//! Administrative commands used by the experiment harness.

use crate::command::{Command, CommandError, CommandOutput, JobCtx};

/// Empties every group member's proxy caches (and optionally resets
/// learned prefetcher state). Submit with `workers` = the full pool so
/// all proxies participate. Parameters: `reset_prefetcher` ("true" /
/// "false", default false — keeping learned Markov transitions across a
/// cache clear is exactly what the Fig. 14 learning-phase methodology
/// needs).
pub struct ClearCache;

impl Command for ClearCache {
    fn name(&self) -> &'static str {
        "ClearCache"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        let reset = ctx
            .params
            .get("reset_prefetcher")
            .map(|v| v == "true" || v == "1")
            .unwrap_or(false);
        ctx.proxy.quiesce();
        ctx.proxy.clear_cache(reset);
        ctx.derived.clear();
        Ok(CommandOutput::default())
    }
}
