//! λ₂ vortex-region commands (paper §6.3, Figures 9–12): direct-read and
//! DMS baselines computing the complete λ₂ field per block, and the
//! streamed variant that processes cells one by one, flushing triangle
//! batches to the client as soon as the active-cell list fills up.

use super::{require_f64, steps_of};
use crate::command::{Command, CommandError, CommandOutput, JobCtx};
use vira_extract::halo::GhostedBlock;
use vira_extract::iso::{extract_isosurface, extract_isosurface_with_tree};
use vira_extract::lambda2::{lambda2_field, Lambda2Streamer};
use vira_grid::block::BlockStepId;
use vira_grid::field::SharedBlockData;

fn vortex_items(ctx: &mut JobCtx<'_>, use_dms: bool) -> Result<CommandOutput, CommandError> {
    let threshold = require_f64(ctx, "threshold")?;
    // With `cache_fields`, the derived λ₂ field is memoized per node —
    // the explorative threshold-tweaking loop (§1.1) then only pays the
    // cheap re-isosurfacing, not the tensor/eigen computation.
    let cache_fields = ctx
        .params
        .get("cache_fields")
        .map(|v| v == "true" || v == "1")
        .unwrap_or(false);
    // With `ghosts`, each block additionally loads its face neighbours
    // (through the DMS, so they are usually cache hits on another
    // worker's behalf) and computes λ₂ with centered stencils across
    // block interfaces — no seams in the vortex boundaries.
    let ghosts = ctx
        .params
        .get("ghosts")
        .map(|v| v == "true" || v == "1")
        .unwrap_or(false);
    let topology = if ghosts {
        Some(ctx.server.topology(&ctx.dataset).ok_or_else(|| {
            CommandError::BadParams(format!(
                "dataset {} has no topology metadata for ghost exchange",
                ctx.dataset
            ))
        })?)
    } else {
        None
    };
    let mut out = CommandOutput::default();
    let order: Vec<_> = (0..ctx.spec.n_blocks).collect();
    let lambda2_cost = ctx.costs.lambda2_s_per_cell * ctx.nominal_cells();
    let iso_cost = ctx.costs.iso_s_per_cell * ctx.nominal_cells();
    for step in steps_of(ctx) {
        for id in ctx.my_blocks(step, &order) {
            if ctx.is_cancelled() {
                return Ok(out);
            }
            let data = if use_dms {
                ctx.load_block(id)?
            } else {
                ctx.direct_read(id)?
            };
            // Field derivation: plain, ghost-aware, and/or memoized.
            let derive = |ctx: &JobCtx<'_>| -> Result<vira_grid::ScalarField, CommandError> {
                if let Some(topo) = &topology {
                    let neighbor_data: Vec<SharedBlockData> = topo
                        .neighbors(id.block)
                        .iter()
                        .map(|&nb| ctx.load_block(BlockStepId::new(nb, id.step)))
                        .collect::<Result<_, _>>()?;
                    let refs: Vec<&vira_grid::BlockData> =
                        neighbor_data.iter().map(|d| &**d).collect();
                    Ok(GhostedBlock::assemble(&data, &refs, 1e-9).lambda2_field())
                } else {
                    Ok(lambda2_field(&data))
                }
            };
            let kind: &'static str = if ghosts { "lambda2-ghosted" } else { "lambda2" };
            let (soup, stats) = if cache_fields {
                // Block-level prune on the memoized range (harvested from
                // the bricktree root, see `DerivedFieldCache::range_of`):
                // when the whole block straddles nothing at this
                // threshold, a sweep iteration skips it without touching
                // the field or the tree. Mirrors the brick activity test
                // (`hi > iso && lo <= iso`), so geometry is unchanged.
                if let Some((lo, hi)) = ctx.derived.range_of(&ctx.dataset, kind, id) {
                    if !(hi > threshold && lo <= threshold) {
                        out.cells_skipped += data.dims().n_cells() as u64;
                        continue;
                    }
                }
                let (hits_before, _) = ctx.derived.stats();
                let mut derive_err = None;
                // The bricktree is memoized alongside the field, so a
                // threshold sweep builds it exactly once per block.
                let (f, tree) =
                    ctx.derived
                        .get_or_compute_with_tree(&ctx.dataset, kind, id, || match derive(ctx) {
                            Ok(f) => f,
                            Err(e) => {
                                derive_err = Some(e);
                                vira_grid::ScalarField::from_fn(data.dims(), |_, _, _| {
                                    f64::INFINITY
                                })
                            }
                        });
                if let Some(e) = derive_err {
                    return Err(e);
                }
                let (hits_after, _) = ctx.derived.stats();
                // Charge the full derivation only when it actually ran;
                // a memoized field costs just the re-contouring below.
                if hits_after == hits_before {
                    ctx.charge_compute(lambda2_cost);
                } else {
                    ctx.charge_compute(iso_cost);
                }
                extract_isosurface_with_tree(&data.grid, &f, threshold, Some(&tree))
            } else {
                ctx.charge_compute(lambda2_cost);
                let f = derive(ctx)?;
                extract_isosurface(&data.grid, &f, threshold)
            };
            out.triangles.extend_from(&soup);
            out.cells_skipped += stats.cells_skipped as u64;
            out.bricks_skipped += stats.bricks_skipped as u64;
        }
    }
    Ok(out)
}

/// λ₂ extraction without data management: the Fig. 9/10 baseline.
pub struct SimpleVortex;

impl Command for SimpleVortex {
    fn name(&self) -> &'static str {
        "SimpleVortex"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        vortex_items(ctx, false)
    }
}

/// λ₂ extraction through the DMS, full field per block (non-streamed).
pub struct VortexDataMan;

impl Command for VortexDataMan {
    fn name(&self) -> &'static str {
        "VortexDataMan"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        vortex_items(ctx, true)
    }
}

/// Streamed λ₂ extraction: cells are processed one by one with lazy,
/// memoized λ₂ evaluation; whenever the active-cell batch fills, the
/// triangulated fragment is transmitted immediately (paper §6.3).
pub struct StreamedVortex;

impl Command for StreamedVortex {
    fn name(&self) -> &'static str {
        "StreamedVortex"
    }

    fn execute(&self, ctx: &mut JobCtx<'_>) -> Result<CommandOutput, CommandError> {
        let threshold = require_f64(ctx, "threshold")?;
        let batch = super::batch_size(ctx);
        let order: Vec<_> = (0..ctx.spec.n_blocks).collect();
        // Streaming overhead: the cell-wise pass costs slightly more than
        // the optimized full-field pass (extra bookkeeping per cell).
        let compute_per_item =
            (ctx.costs.lambda2_s_per_cell + 0.1 * ctx.costs.iso_s_per_cell) * ctx.nominal_cells();
        let mut out = CommandOutput::default();
        for step in steps_of(ctx) {
            for id in ctx.my_blocks(step, &order) {
                if ctx.is_cancelled() {
                    return Ok(out);
                }
                let data = ctx.load_block(id)?;
                ctx.charge_compute(compute_per_item);
                // Prune with the memoized λ₂ field's bricktree when an
                // earlier full-field pass (VortexDataMan with
                // `cache_fields`) left one behind; otherwise stay lazy and
                // scan every cell with compute-on-first-touch.
                let cached = ctx.derived.peek_tree(&ctx.dataset, "lambda2", id);
                let streamer = match &cached {
                    Some((_, tree)) => Lambda2Streamer::with_tree(&data, tree),
                    None => Lambda2Streamer::new(&data),
                };
                let mut stream_err: Option<CommandError> = None;
                let stats = streamer.run(threshold, batch, |soup| {
                    if stream_err.is_none() {
                        if let Err(e) = ctx.stream_triangles(&soup) {
                            stream_err = Some(e);
                        }
                    }
                });
                if let Some(e) = stream_err {
                    return Err(e);
                }
                out.cells_skipped += stats.cells_skipped as u64;
                out.bricks_skipped += stats.bricks_skipped as u64;
            }
        }
        // Everything was streamed; the merged final result is empty
        // apart from the pruning counters.
        Ok(out)
    }
}
