//! Assembly of one Viracocha back-end instance: the communication world,
//! the data server, the scheduler thread and the worker threads.

use crate::command::{CancelSet, CommandRegistry};
use crate::commands::default_registry;
use crate::config::ViracochaConfig;
use crate::scheduler::{scheduler_main, SchedulerSetup};
use crate::worker::{worker_main, WorkerSetup};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use vira_comm::endpoint::Endpoint;
use vira_comm::fault::{FaultPlan, FaultStats, FaultyTransport};
use vira_comm::link::{client_server_link, ClientSide, EventSender};
use vira_comm::transport::{LocalWorld, Transport};
use vira_dms::server::{DataServer, SharedCache};
use vira_storage::costmodel::{SharedChannel, SimClock};
use vira_storage::source::DataSource;

/// A running Viracocha back-end.
///
/// The visualization client talks to it through the [`ClientSide`] link
/// returned by [`Viracocha::launch`] (typically wrapped in a
/// `vira_vista::VistaClient`). Datasets are registered through
/// [`Viracocha::register_dataset`] at any time before the first job that
/// uses them.
pub struct Viracocha {
    server: Arc<DataServer>,
    clock: Arc<SimClock>,
    registry: Arc<CommandRegistry>,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    fault_stats: Option<Arc<FaultStats>>,
    cancels: CancelSet,
}

impl Viracocha {
    /// Launches a back-end with the built-in command registry.
    pub fn launch(config: ViracochaConfig) -> (Viracocha, ClientSide) {
        Self::launch_with_registry(config, default_registry())
    }

    /// Launches a back-end with a custom command registry — the paper's
    /// layer-3 extensibility: "this design allows the reuse of the
    /// Viracocha framework for purposes different from CFD
    /// post-processing by simply exchanging this topmost layer".
    pub fn launch_with_registry(
        config: ViracochaConfig,
        registry: CommandRegistry,
    ) -> (Viracocha, ClientSide) {
        let endpoints = LocalWorld::create(config.n_workers + 1);
        Self::launch_on_transports(config, registry, endpoints, None)
    }

    /// Launches a back-end whose every rank-to-rank message passes
    /// through a [`FaultyTransport`] driven by `plan` — the chaos-test
    /// entry point. An inert plan behaves exactly like
    /// [`Viracocha::launch`].
    pub fn launch_with_faults(config: ViracochaConfig, plan: FaultPlan) -> (Viracocha, ClientSide) {
        Self::launch_faulty_with_registry(config, default_registry(), plan)
    }

    /// [`Viracocha::launch_with_faults`] with a custom command registry.
    pub fn launch_faulty_with_registry(
        config: ViracochaConfig,
        registry: CommandRegistry,
        plan: FaultPlan,
    ) -> (Viracocha, ClientSide) {
        let plan = Arc::new(plan);
        let stats = Arc::new(FaultStats::default());
        let endpoints: Vec<_> = LocalWorld::create(config.n_workers + 1)
            .into_iter()
            .map(|e| FaultyTransport::new(e, plan.clone(), stats.clone()))
            .collect();
        Self::launch_on_transports(config, registry, endpoints, Some(stats))
    }

    /// Launches the scheduler and worker threads on pre-built rank
    /// transports (index = rank; rank 0 is the scheduler).
    fn launch_on_transports<T: Transport + Send + 'static>(
        config: ViracochaConfig,
        registry: CommandRegistry,
        mut endpoints: Vec<T>,
        fault_stats: Option<Arc<FaultStats>>,
    ) -> (Viracocha, ClientSide) {
        assert!(config.n_workers >= 1, "need at least one worker");
        assert_eq!(
            endpoints.len(),
            config.n_workers + 1,
            "need one transport per rank"
        );
        let clock = SimClock::new(config.dilation);
        let server = DataServer::new(clock.clone(), config.server.clone());
        let registry = Arc::new(registry);
        let cancels: CancelSet = Arc::new(RwLock::new(HashSet::new()));
        let (client_side, server_side) = client_server_link();
        let events = server_side.event_sender();
        let uplink = SharedChannel::new();

        let mut workers = Vec::with_capacity(config.n_workers);
        // Spawn workers for ranks 1..=n; rank 0 stays with the scheduler.
        for endpoint in endpoints.drain(1..) {
            let rank = endpoint.rank();
            let setup = WorkerSetup {
                endpoint: Endpoint::new(endpoint),
                server: server.clone(),
                clock: clock.clone(),
                registry: registry.clone(),
                config: config.clone(),
                events: events.clone(),
                cancels: cancels.clone(),
                uplink: uplink.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("vira-worker-{rank}"))
                    .spawn(move || worker_main(setup))
                    .expect("failed to spawn worker"),
            );
        }
        let sched_endpoint = endpoints.pop().expect("rank 0 endpoint");
        let setup = SchedulerSetup {
            endpoint: Endpoint::new(sched_endpoint),
            link: server_side,
            server: server.clone(),
            clock: clock.clone(),
            registry: registry.clone(),
            cancels: cancels.clone(),
            n_workers: config.n_workers,
            resilience: config.resilience.clone(),
            sched: config.sched.clone(),
            admission: config.admission.clone(),
            telemetry: config.telemetry.clone(),
        };
        let scheduler = std::thread::Builder::new()
            .name("vira-scheduler".into())
            .spawn(move || scheduler_main(setup))
            .expect("failed to spawn scheduler");

        (
            Viracocha {
                server,
                clock,
                registry,
                scheduler: Some(scheduler),
                workers,
                fault_stats,
                cancels,
            },
            client_side,
        )
    }

    /// Launches only the scheduler (rank 0) of a multi-process
    /// deployment on a pre-connected transport whose worker ranks live
    /// in other OS processes (`vira serve`). The returned handle joins
    /// the scheduler thread only; the worker processes exit on the
    /// scheduler's `SHUTDOWN` broadcast or when their hub connection
    /// drops. `fault_stats` accompanies a
    /// [`FaultyTransport`]-wrapped hub (the socket chaos leg).
    pub fn launch_master_on_transport<T: Transport + Send + 'static>(
        config: ViracochaConfig,
        registry: CommandRegistry,
        transport: T,
        fault_stats: Option<Arc<FaultStats>>,
    ) -> (Viracocha, ClientSide) {
        assert!(config.n_workers >= 1, "need at least one worker");
        assert_eq!(transport.rank(), 0, "the master must hold rank 0");
        assert_eq!(
            transport.world_size(),
            config.n_workers + 1,
            "transport world must match n_workers + scheduler"
        );
        let clock = SimClock::new(config.dilation);
        let server = DataServer::new(clock.clone(), config.server.clone());
        let registry = Arc::new(registry);
        let cancels: CancelSet = Arc::new(RwLock::new(HashSet::new()));
        let (client_side, server_side) = client_server_link();
        let setup = SchedulerSetup {
            endpoint: Endpoint::new(transport),
            link: server_side,
            server: server.clone(),
            clock: clock.clone(),
            registry: registry.clone(),
            cancels: cancels.clone(),
            n_workers: config.n_workers,
            resilience: config.resilience.clone(),
            sched: config.sched.clone(),
            admission: config.admission.clone(),
            telemetry: config.telemetry.clone(),
        };
        let scheduler = std::thread::Builder::new()
            .name("vira-scheduler".into())
            .spawn(move || scheduler_main(setup))
            .expect("failed to spawn scheduler");
        (
            Viracocha {
                server,
                clock,
                registry,
                scheduler: Some(scheduler),
                workers: Vec::new(),
                fault_stats,
                cancels,
            },
            client_side,
        )
    }

    /// The central data server (dataset registry, name service, peer
    /// directory).
    pub fn server(&self) -> &Arc<DataServer> {
        &self.server
    }

    /// The simulation clock used for modeled-time accounting.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Registered command names.
    pub fn commands(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// Injection counters of the fault layer, when the back-end was
    /// launched with [`Viracocha::launch_with_faults`].
    pub fn fault_stats(&self) -> Option<&Arc<FaultStats>> {
        self.fault_stats.as_ref()
    }

    /// The shared cancellation set — exposed so tests can assert it is
    /// drained after cancels resolve (an entry that outlives its job is
    /// a leak: nothing else ever removes it).
    pub fn cancel_set(&self) -> &CancelSet {
        &self.cancels
    }

    /// Registers a dataset with the data server. `replicated` makes it
    /// additionally available on node-local disks (the "direct loading
    /// from hard disk" strategy).
    pub fn register_dataset(&self, source: Arc<dyn DataSource>, replicated: bool) {
        self.server.register_dataset(source, replicated);
    }

    /// Per-node caches of all proxies — exposed for experiments that
    /// need cold-cache runs.
    pub fn peer_cache_of(&self, node: usize) -> Option<SharedCache> {
        // The server holds the registered cache handles.
        self.server.peer_cache_handle(node)
    }

    /// Waits for the back-end to exit (after the client sent `Shutdown`
    /// or dropped its link).
    pub fn join(mut self) {
        if let Some(s) = self.scheduler.take() {
            let _ = s.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Runs one worker rank of a multi-process deployment on the calling
/// thread (`vira worker`): builds the rank-local service state a
/// single-process back-end would share — clock, data server, cancel
/// set, client uplink — and enters the worker loop. Returns when the
/// scheduler sends `SHUTDOWN` or the hub connection is lost.
///
/// `register` populates this process's dataset registry before the
/// first command arrives; every rank must register the same datasets
/// the scheduler process did (synthetic sources are deterministic, so
/// the specs agree). `events` is where streamed client packets go — a
/// remote worker forwards them to the scheduler as `CLIENT_EVENT`
/// frames via [`EventSender::from_fn`], and the scheduler re-emits
/// them on the real client link.
///
/// Cancellation across processes: the scheduler fans a `CANCEL` frame
/// to every rank of a cancelled job's work group, and `vira worker`
/// installs a socket-reader frame tap that inserts the job id into
/// this process's cancel set the moment the frame arrives — even while
/// the worker thread is deep inside an extraction — so
/// `JobCtx::is_cancelled` trips mid-job exactly like in-process. Pass
/// that tap-shared set via [`run_remote_worker_with_cancels`]; the
/// plain [`run_remote_worker`] builds a private set and therefore only
/// honors cancels between jobs. Remaining known scope limit: the DMS
/// peer directory is process-local, so cross-process peer cache
/// transfers are inert (jobs still complete correctly; locality
/// scoring just sees fewer peers).
pub fn run_remote_worker<T: Transport>(
    config: ViracochaConfig,
    registry: CommandRegistry,
    transport: T,
    events: EventSender,
    register: impl FnOnce(&Arc<DataServer>),
) {
    let cancels: CancelSet = Arc::new(RwLock::new(HashSet::new()));
    run_remote_worker_with_cancels(config, registry, transport, events, cancels, register);
}

/// [`run_remote_worker`] with a caller-owned cancel set — the handle a
/// transport-level frame tap (see `SocketWorker::set_frame_tap`) uses
/// to deliver cross-process cancellation into the running job.
pub fn run_remote_worker_with_cancels<T: Transport>(
    config: ViracochaConfig,
    registry: CommandRegistry,
    transport: T,
    events: EventSender,
    cancels: CancelSet,
    register: impl FnOnce(&Arc<DataServer>),
) {
    let clock = SimClock::new(config.dilation);
    let server = DataServer::new(clock.clone(), config.server.clone());
    register(&server);
    let setup = WorkerSetup {
        endpoint: Endpoint::new(transport),
        server,
        clock,
        registry: Arc::new(registry),
        config,
        events,
        cancels,
        uplink: SharedChannel::new(),
    };
    worker_main(setup);
}

impl Drop for Viracocha {
    fn drop(&mut self) {
        // Best effort: if the user forgot to join, detach cleanly. The
        // scheduler exits when the client link drops.
        if let Some(s) = self.scheduler.take() {
            let _ = s.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
