//! # viracocha
//!
//! A Rust reproduction of **Viracocha** — the parallel CFD
//! post-processing framework of Gerndt, Hentschel, Wolter, Kuhlen and
//! Bischof (SC 2004). Viracocha decouples flow-feature extraction from
//! VR visualization: a scheduler accepts commands from the
//! visualization client, forms work groups of workers, and the workers
//! extract features (isosurfaces, λ₂ vortex regions, pathlines) backed
//! by a data management system (caching, prefetching, adaptive loading)
//! — optionally *streaming* partial results to the client while the
//! computation is still running.
//!
//! Three-layer architecture (paper §3):
//!
//! 1. **Transport** — `vira-comm` (generic interface; in-process rank
//!    world standing in for MPI, framed link standing in for TCP/IP).
//! 2. **Framework** — [`scheduler`], [`worker`], and the DMS
//!    (`vira-dms`).
//! 3. **Commands** — [`commands`], exchangeable via
//!    [`Viracocha::launch_with_registry`].
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use viracocha::{Viracocha, ViracochaConfig};
//! use vira_storage::source::SynthSource;
//! use vira_vista::{CommandParams, SubmitSpec, VistaClient};
//!
//! let (backend, link) = Viracocha::launch(ViracochaConfig::for_tests(2));
//! backend.register_dataset(
//!     Arc::new(SynthSource::new(Arc::new(vira_grid::synth::test_cube(8, 2)))),
//!     false,
//! );
//! let mut client = VistaClient::new(link);
//! let out = client
//!     .run(&SubmitSpec {
//!         command: "IsoDataMan".into(),
//!         dataset: "TestCube".into(),
//!         params: CommandParams::new().set("iso", 0.15),
//!         workers: 2,
//!     })
//!     .unwrap();
//! assert!(out.triangles.n_triangles() > 0);
//! client.shutdown().unwrap();
//! backend.join();
//! ```

pub mod command;
pub mod commands;
pub mod config;
pub mod derived;
pub mod loadgen;
pub mod runtime;
pub mod scheduler;
pub mod wire;
pub mod worker;

pub use command::{CancelSet, Command, CommandError, CommandOutput, CommandRegistry, JobCtx};
pub use commands::default_registry;
pub use config::{
    AdmissionConfig, ResilienceConfig, SchedulerConfig, TelemetryConfig, TransportConfig,
    TransportKind, ViracochaConfig,
};
pub use derived::DerivedFieldCache;
pub use loadgen::{Arrival, LoadOutcome, LoadPlan};
pub use runtime::{run_remote_worker, run_remote_worker_with_cancels, Viracocha};
pub use vira_comm::fault::{FaultPlan, FaultStats, FaultStatsSnapshot, LinkFaults};
