//! # vira-storage
//!
//! The storage substrate of the Viracocha workspace: modeled storage
//! devices and the **time-dilation cost model** that stands in for the
//! paper's testbed hardware (a 24-CPU SUN Fire 6800 reading gigabyte
//! datasets from a file server).
//!
//! See `DESIGN.md` ("Substitutions") for why a cost model: every compute /
//! read / send operation charges a *modeled* duration derived from the
//! paper-scale workload, and the [`costmodel::SimClock`] turns modeled
//! seconds into dilated wall-clock sleeps. Sleeping threads overlap
//! perfectly, so worker-scaling experiments reproduce the paper's shapes
//! on any host, while the real extraction algorithms still run on
//! scaled-down grids.
//!
//! * [`costmodel`] — [`costmodel::SimClock`], per-worker
//!   [`costmodel::Meter`]s, [`costmodel::ComputeCosts`] constants.
//! * [`source`] — where payloads come from (synthetic or on-disk).
//! * [`device`] — storage tiers with latency/bandwidth profiles.

pub mod compress;
pub mod costmodel;
pub mod device;
pub mod source;

pub use compress::{probe_block_compression, rle_compress, rle_decompress, CompressionProbe};
pub use costmodel::{ComputeCosts, CostBreakdown, CostCategory, Meter, SharedChannel, SimClock};
pub use device::{Device, DeviceProfile};
pub use source::{DataSource, DiskSource, StorageError, SynthSource};
